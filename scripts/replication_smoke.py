#!/usr/bin/env python
"""Replication smoke for CI: primary + standby, kill, promote, I7.

Wraps :func:`repro.faults.failover_chaos.run_failover_chaos` with the
seed CI pins (42): a durable primary ships every committed journal
batch semi-synchronously to a warm standby, writer threads commit
monotone counters through retry clients, the primary is ``SIGKILL``-ed
mid-group-commit, and the standby is promoted onto the primary's port
with the supervisor's ``promote`` frame.  The run passes iff

  1. every request either succeeded or failed with a *typed* error
     (``ConnectionLost`` retry, ``RemoteError``) — nothing unexpected,
  2. the promoted daemon's audit timeline — the merged pre/post-crash
     history, rebuilt by replaying the mirrored session journal —
     satisfies the exposure invariants I1-I6 with the restart's
     outage allowance,
  3. the promoted daemon carries the restart event and the
     outage-attributed forced detaches for windows that straddled
     the kill,
  4. **I7 — zero acknowledged-write loss**: every writer's final
     read-back from the promoted daemon is at least the highest
     value whose ``psync`` the dead primary acknowledged.

Exit status 0 iff all four hold.  Usage::

    PYTHONPATH=src python scripts/replication_smoke.py [--seed N] [--out F]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.faults.failover_chaos import run_failover_chaos  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--writers", type=int, default=3)
    parser.add_argument("--out", default=None,
                        help="write the JSON verdict here as well")
    args = parser.parse_args()

    result = run_failover_chaos(args.seed, writers=args.writers)
    print(result.describe())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2)
            fh.write("\n")
        print(f"verdict written to {args.out}")
    print(f"\nreplication smoke: {'OK' if result.ok else 'FAIL'}")
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
