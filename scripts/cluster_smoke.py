#!/usr/bin/env python
"""Cluster smoke for CI: router + 2 shards, kill one, check I1-I6.

Wraps :func:`repro.faults.cluster_chaos.run_cluster_chaos` with the
seed CI pins (42): four workers drive PMOs spread across both shards
through the router, shard 0 is ``SIGKILL``-ed mid-traffic and warm-
restarted by the supervisor on the same port, and the run passes iff

  1. every request either succeeded or failed with a *typed* error
     (``ConnectionLost`` retry, ``RemoteError``) — nothing unexpected,
  2. the exposure invariants I1-I6 hold on each shard's own audit
     timeline (the victim's with its restart downtime allowance),
  3. they hold again on the merged global timeline,
  4. the victim's forced detaches are outage/restart-attributed and
     the survivor shard saw neither a restart nor outage fallout.

Exit status 0 iff all four hold.  Usage::

    PYTHONPATH=src python scripts/cluster_smoke.py [--seed N] [--out F]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.faults.cluster_chaos import run_cluster_chaos  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--out", default=None,
                        help="write the JSON verdict here as well")
    args = parser.parse_args()

    result = run_cluster_chaos(
        args.seed, shards=args.shards, workers=args.workers,
        rounds=args.rounds)
    print(result.describe())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2)
            fh.write("\n")
        print(f"verdict written to {args.out}")
    print(f"\ncluster smoke: {'OK' if result.ok else 'FAIL'}")
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
