#!/usr/bin/env python
"""Out-of-process recovery smoke: kill -9 a real terpd, restart, check.

The in-tree tests crash the daemon *in process* (``ServiceThread.kill``)
so they can reach into both incarnations.  This script is the
no-cheating version CI runs: a real subprocess daemon on a durable
pool, a real ``SIGKILL``, a second subprocess on the same directory,
and only the wire API (plus the audit trace it serves) to judge:

  1. committed data survives the crash byte-for-byte,
  2. the dropped session resumes with its pre-crash token and id,
  3. the holding that outlived its EW budget during the outage was
     force-detached at recovery and attributed to the outage.

Exit status 0 iff all three hold.  Usage::

    PYTHONPATH=src python scripts/recovery_smoke.py [--keep]
"""

from __future__ import annotations

import argparse
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.service.client import SyncTerpClient  # noqa: E402

SERVING = re.compile(r"terpd serving on tcp://[^:]+:(\d+)")

#: Generous budget so the live daemon never sweeps the squatter —
#: only the outage (which dwarfs it) can make the holding overdue.
SESSION_EW_MS = 150.0
OUTAGE_S = 0.5

PAYLOAD = b"recovery smoke payload: " + bytes(range(256)) * 16


def start_daemon(pool_dir: str) -> "tuple[subprocess.Popen, int]":
    """Spawn terpd on an ephemeral port; return (process, port)."""
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.service",
         "--port", "0", "--pool-dir", pool_dir,
         "--session-ew-ms", str(SESSION_EW_MS),
         "--sweep-period-ms", "5",
         "--resume-linger-ms", "10000"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env={**os.environ,
             "PYTHONPATH": os.pathsep.join(
                 p for p in (os.environ.get("PYTHONPATH"), "src") if p)})
    deadline = time.monotonic() + 20
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        sys.stdout.write(f"  [terpd] {line}")
        match = SERVING.search(line)
        if match:
            return proc, int(match.group(1))
    proc.kill()
    raise RuntimeError("daemon never announced its port")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--keep", action="store_true",
                        help="keep the pool directory for inspection")
    args = parser.parse_args()

    pool_dir = tempfile.mkdtemp(prefix="terp-recovery-smoke-")
    print(f"pool: {pool_dir}")
    failures: "list[str]" = []
    proc_b = None

    proc_a, port_a = start_daemon(pool_dir)
    print(f"daemon A up on port {port_a} (pid {proc_a.pid})")
    squatter = SyncTerpClient(port=port_a, user="squatter")
    try:
        with SyncTerpClient(port=port_a, user="writer") as writer:
            writer.create("smoke", 1 << 20, mode=0o666)
            writer.attach("smoke")
            oid = writer.pmalloc("smoke", len(PAYLOAD))
            writer.write(oid, PAYLOAD)
            flushed = writer.psync("smoke")
            print(f"committed {len(PAYLOAD)} bytes "
                  f"({flushed} page(s) flushed)")
            writer.detach("smoke")
        squatter.connect()
        squatter.attach("smoke")
        sid = squatter.session_id
        token = squatter.resume_token
        print(f"squatter holding as session {sid}")

        print(f"kill -9 {proc_a.pid}; outage {OUTAGE_S}s "
              f"(budget {SESSION_EW_MS}ms)")
        os.kill(proc_a.pid, signal.SIGKILL)
        proc_a.wait(timeout=10)
        squatter.close()
        time.sleep(OUTAGE_S)

        proc_b, port_b = start_daemon(pool_dir)
        print(f"daemon B up on port {port_b} (pid {proc_b.pid})")

        # (1) committed data intact
        with SyncTerpClient(port=port_b, user="reader") as reader:
            reader.attach("smoke", access="r")
            got = reader.read(oid, len(PAYLOAD))
            if got != PAYLOAD:
                failures.append(
                    f"data NOT intact: {len(got)} bytes, "
                    f"first mismatch at "
                    f"{next((i for i, (a, b) in enumerate(zip(got, PAYLOAD)) if a != b), '?')}")
            else:
                print("data intact: OK")
            reader.detach("smoke")

            # (3) outage-overdue holding force-detached and attributed
            trace = reader.trace(limit=100)
            forced = [e for e in trace["audit"]
                      if e["kind"] == "forced-detach"]
            attributed = [e for e in forced
                          if "outage" in str(e.get("reason", ""))]
            if not attributed:
                failures.append(
                    f"no outage-attributed forced detach in audit; "
                    f"forced events: {forced}")
            else:
                print(f"outage attribution: OK "
                      f"({attributed[0]['reason']!r})")
            restarts = [e for e in trace["audit"]
                        if e["kind"] == "restart"]
            if not restarts:
                failures.append("no restart event on audit timeline")
            else:
                print(f"restart on timeline: OK "
                      f"(downtime {restarts[0]['duration_ns'] / 1e6:.0f}ms)")

        # (2) session resumes by its pre-crash token
        squatter._port = port_b
        squatter._reconnect()
        if squatter.resumes < 1 or squatter.session_id != sid \
                or squatter.resume_token != token:
            failures.append(
                f"session did not resume: resumes={squatter.resumes} "
                f"sid {squatter.session_id} (want {sid})")
        else:
            print(f"session resumed as {squatter.session_id}: OK")
        squatter.goodbye()
        squatter.close()
    finally:
        for proc in (proc_a, proc_b):
            if proc is not None and proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
        if args.keep:
            print(f"kept pool: {pool_dir}")
        else:
            shutil.rmtree(pool_dir, ignore_errors=True)

    if failures:
        print("\nrecovery smoke: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nrecovery smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
