#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation.

Runs the whole experiment suite at a configurable scale and prints
each artifact in the paper's layout.  At ``--scale 1.0`` the
operation counts match the benchmark harness defaults; the statistics
are rate-based and stable well below the paper's 100K operations.

Usage::

    python examples/reproduce_paper.py             # ~3 minutes
    python examples/reproduce_paper.py --scale 0.2 # quick look
    python examples/reproduce_paper.py --only table3 fig9
"""

import argparse
import sys
import time

from repro.eval.experiments import (
    fig8, fig9, fig10, fig11, table3, table4, table5, table6)

BASE_TXS = 6_000
BASE_ITERS = 4_000
BASE_OBJECTS = 1_000


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="multiplier on operation counts")
    parser.add_argument("--only", nargs="*", default=None,
                        help="subset of artifacts, e.g. table3 fig9")
    args = parser.parse_args()
    txs = max(200, int(BASE_TXS * args.scale))
    iters = max(200, int(BASE_ITERS * args.scale))
    objects = max(100, int(BASE_OBJECTS * args.scale))

    artifacts = {
        "fig8": lambda: fig8.run(n_objects_per_profile=objects),
        "table3": lambda: table3.run(n_transactions=txs),
        "fig9": lambda: fig9.run(n_transactions=txs),
        "table4": lambda: table4.run(n_iterations=iters),
        "fig10": lambda: fig10.run(n_iterations=iters),
        "fig11": lambda: fig11.run(n_iterations=max(200, iters // 2),
                                   num_threads=4),
        "table5": lambda: table5.run(),
        "table6": lambda: table6.run(n_transactions=txs // 2,
                                     n_iterations=iters // 2),
    }
    selected = args.only or list(artifacts)
    unknown = set(selected) - set(artifacts)
    if unknown:
        print(f"unknown artifacts: {sorted(unknown)}; "
              f"choose from {list(artifacts)}")
        return 2

    for name in selected:
        started = time.time()
        result = artifacts[name]()
        elapsed = time.time() - started
        print("=" * 72)
        print(result.render())
        print(f"[{name} regenerated in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
