#!/usr/bin/env python3
"""Thread composability: the Figure 4 scenario, executed.

Three threads share one PMO under EW-conscious semantics.  The
example replays the paper's exact timeline — thread 1 attaches
read-only, thread 2 read-write, thread 3 never attaches — and shows
each access's outcome, then contrasts it with Basic semantics where
the second thread's attach is simply an error.
"""

from repro import (
    Access, BasicSemantics, EwConsciousSemantics, Outcome)
from repro.core.units import us

PMO = "pmo1"


def show(label: str, outcome: Outcome) -> None:
    symbol = {"ok": "permitted", "performed": "performed",
              "silent": "lowered/silent"}.get(outcome.value,
                                              outcome.value.upper())
    print(f"  {label:34s} -> {symbol}")


def main() -> None:
    print("EW-conscious semantics (Figure 4), L = 40us:")
    sem = EwConsciousSemantics(us(40))
    show("t1: attach(PMO1, R)", sem.attach(1, PMO, Access.READ, 0).outcome)
    show("t1: ld A", sem.access(1, PMO, Access.READ, us(1)).outcome)
    show("t1: st B", sem.access(1, PMO, Access.WRITE, us(2)).outcome)
    show("t2: attach(PMO1, RW)", sem.attach(2, PMO, Access.RW,
                                            us(3)).outcome)
    show("t2: st B", sem.access(2, PMO, Access.WRITE, us(4)).outcome)
    show("t1: detach(PMO1)", sem.detach(1, PMO, us(5)).outcome)
    print(f"  {'':34s}    (PMO still mapped: {sem.is_mapped(PMO)})")
    show("t1: ld C (after its detach)",
         sem.access(1, PMO, Access.READ, us(6)).outcome)
    show("t2: detach(PMO1) at t=41us", sem.detach(2, PMO,
                                                  us(41)).outcome)
    print(f"  {'':34s}    (PMO still mapped: {sem.is_mapped(PMO)})")
    show("t2: st C (after real detach)",
         sem.access(2, PMO, Access.WRITE, us(42)).outcome)
    show("t3: ld A (never attached)",
         sem.access(3, PMO, Access.READ, us(2)).outcome)

    print("\nSame program under Basic semantics:")
    basic = BasicSemantics()
    show("t1: attach(PMO1, R)",
         basic.attach(1, PMO, Access.READ, 0).outcome)
    show("t2: attach(PMO1, RW)",
         basic.attach(2, PMO, Access.RW, us(3)).outcome)
    print("\nBasic semantics cannot compose threads: the second "
          "attach is invalid,\nwhich is exactly why the paper "
          "rejects it (Section IV-A).")


if __name__ == "__main__":
    main()
