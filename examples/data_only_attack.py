#!/usr/bin/env python3
"""The Figure 12 data-only attack, replayed against real PMO data.

A victim FTP-like server keeps a linked list in a PMO.  A buffer
overflow gives the attacker control of the request-handler's local
variables, turning three innocent statements into chained data-only
gadgets that add a chosen value to every list node.

The same attack runs under three protections.  Watch the mechanics:

* **none** — the attacker probes once for the base address, then
  corrupts node after node;
* **MERR** — windows + re-randomization force re-probing every
  exposure window; progress slows but accumulates;
* **TERP** — the compromised thread holds PMO permission for only a
  small slice of each window; probes mostly *fault* (a detectable
  signal), learned addresses die before they can be reused, and the
  attack stalls.
"""

from repro.security.attacks import (
    AttackConfig, DataOnlyAttack, Protection)


def main() -> None:
    print("Attack goal (Figure 12b): list->prop += 7777 "
          "for every node\n")
    print(f"{'protection':11s} {'corrupted':>10s} {'rounds':>8s} "
          f"{'faults':>8s} {'stale':>7s} {'verdict'}")
    for protection in Protection:
        config = AttackConfig(protection=protection, max_rounds=60_000)
        attack = DataOnlyAttack(config, n_nodes=12, seed=7)
        outcome = attack.run()
        verdict = ("ATTACK SUCCEEDED" if outcome.succeeded
                   else "attack failed / stalled")
        print(f"{protection.value:11s} "
              f"{outcome.corrupted_nodes:4d}/{outcome.total_nodes:<5d} "
              f"{outcome.rounds_used:8d} {outcome.faults:8d} "
              f"{outcome.stale_addresses:7d} {verdict}")
        if protection is Protection.NONE:
            props = attack.victim.props()
            print(f"{'':11s} victim list after attack: "
                  f"{props[:4]}... (+7777 each)")
    print("\nEach probe costs 1us; TERP grants the thread ~1/30 of "
          "each 40us window\nand re-randomizes the PMO between "
          "windows (10-bit demo entropy).")


if __name__ == "__main__":
    main()
