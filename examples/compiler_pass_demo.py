#!/usr/bin/env python3
"""The TERP compiler pass on a Figure 5-style control-flow graph.

Builds a function with branching and a loop around PMO accesses, runs
the region analysis and Algorithm 1's insertion, prints the
instrumented IR, and then *executes* it against the TERP architecture
engine to show the inserted conditional attach/detach (a) never
violate the EW-conscious semantics and (b) bound the thread exposure
window at the compiler's budget.
"""

from repro.arch.cond_engine import TerpArchEngine
from repro.compiler.insertion import TerpInsertionPass, verify_program
from repro.compiler.interp import Interpreter
from repro.compiler.ir import Call, Compute, Load, Program, Store
from repro.compiler.pointer_analysis import analyze
from repro.core.units import cycles_to_ns, ns_to_us, us


def build_program() -> Program:
    """if (...) { read PMO } else { update PMO };
    then loop { helper(); compute } — helper writes the PMO."""
    prog = Program()
    prog.declare_pmo_handle("h", "accounts")

    helper = prog.function("audit")
    helper.block("entry", [Load("h"), Compute(40), Store("h")])

    main = prog.function("main")
    main.block("entry", [Compute(100)]).branch("fast", "slow")
    main.block("fast", [Load("h"), Compute(30)]).jump("join")
    main.block("slow", [Load("h"), Compute(400), Store("h")]) \
        .jump("join")
    main.block("join", [Compute(50)]).jump("loop")
    main.block("loop", [Compute(20)]).branch("body", "done")
    main.block("body", [Call("audit"), Compute(500)]).jump("loop")
    main.block("done", [Compute(10)])
    return prog


def dump(prog: Program) -> None:
    for fn in prog.functions.values():
        print(f"  function {fn.name}:")
        for name, bb in fn.blocks.items():
            ops = ", ".join(type(i).__name__ +
                            (f"({i.pmo})" if hasattr(i, "pmo") else "")
                            for i in bb.instrs)
            arrow = f" -> {bb.successors}" if bb.successors else ""
            print(f"    {name}: [{ops}]{arrow}")


def main() -> None:
    prog = build_program()
    points_to = analyze(prog)
    print("pointer analysis: PMO-accessing blocks per function")
    for fname in prog.functions:
        blocks = sorted(points_to.blocks_with_accesses(fname))
        print(f"  {fname}: {blocks}")

    tew_cycles = 2_000   # ~0.9us at 2.2 GHz
    pass_ = TerpInsertionPass(let_threshold_cycles=100_000,
                              tew_cycles=tew_cycles)
    report = pass_.run(prog)
    verify_program(prog)
    print(f"\ninserted {report.attaches} CondAttach / "
          f"{report.detaches} CondDetach across {report.regions} "
          "PMO-WFG regions (verified: matched on every path)\n")
    dump(prog)

    engine = TerpArchEngine(us(40))
    result = Interpreter(prog, engine, seed=11).run("main")
    print(f"\nexecution under the TERP architecture engine:")
    print(f"  {result.attaches} attaches, {result.detaches} detaches, "
          f"{result.faults} faults, "
          f"{result.semantics_errors} semantics errors")
    print(f"  thread windows: {result.tew_count}, max "
          f"{ns_to_us(result.max_tew_ns):.2f}us "
          f"(budget {ns_to_us(cycles_to_ns(tew_cycles)):.2f}us)")
    assert result.clean


if __name__ == "__main__":
    main()
