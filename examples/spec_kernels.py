#!/usr/bin/env python3
"""Run the five SPEC-style kernels on persistent memory objects.

Each kernel keeps its working state (lattices, flows, particle
coordinates, compression dictionaries) in PMOs — the paper's
"heap objects larger than 128KB become PMOs" policy, executable.
The example steps each kernel, checks its correctness invariant, then
crashes the machine mid-computation and shows the state surviving.
"""

from repro.pmo.pool import PmoManager
from repro.workloads.spec.kernels import ALL_KERNELS, make_kernel

STEPS = {"mcf": 10, "lbm": 6, "imagick": 20, "nab": 10, "xz": 8}


def main() -> None:
    print(f"{'kernel':9s} {'PMOs':>5s} {'steps':>6s} "
          f"{'metric':>10s} {'invariant':>10s} {'post-crash':>11s}")
    for name in ALL_KERNELS:
        manager = PmoManager()
        kernel = make_kernel(name)
        kernel.setup(manager)
        metric = 0.0
        for _ in range(STEPS[name]):
            metric = kernel.step()
        ok_before = kernel.verify()
        # Power failure: every PMO crashes and recovers from its
        # persistent bytes (redo log replayed, heap rescanned).
        manager.simulate_reboot()
        ok_after = kernel.verify()
        print(f"{name:9s} {len(kernel.pmo_names()):5d} "
              f"{STEPS[name]:6d} {metric:10.3f} "
              f"{str(ok_before):>10s} {str(ok_after):>11s}")

    print("\nmetrics: mcf = flow pushed by the last augmentation, "
          "lbm = total lattice mass,\nimagick = mean blurred row, "
          "nab = kinetic energy, xz = compression ratio")


if __name__ == "__main__":
    main()
