#!/usr/bin/env python3
"""Quickstart: create a PMO, protect it with TERP, and watch the
exposure windows.

Walks the whole public API surface in one sitting:

1. create and attach a persistent memory object (Table I API);
2. store data through crash-consistent transactions;
3. see the EW-conscious semantics lower detaches to thread-permission
   changes (the PMO stays mapped, the thread loses access);
4. survive a simulated crash and reboot;
5. read the exposure-window report TERP is named after.
"""

from repro import Access, PmoLibrary, ProtectionFault
from repro.core.units import MIB, us
from repro.workloads.structures import PersistentHashMap


def main() -> None:
    lib = PmoLibrary(ew_target_us=40.0)

    # -- 1. create + attach -------------------------------------------------
    pmo = lib.PMO_create("quickstart", 16 * MIB)
    handle = lib.attach(pmo, Access.RW)
    print(f"attached {pmo.name!r} "
          f"(base VA {handle.base_va_at_attach:#x})")

    # -- 2. persistent data, crash-consistently ------------------------------
    table = PersistentHashMap.create(pmo, nbuckets=64)
    for i in range(100):
        table.put(f"key-{i}".encode(), f"value-{i}".encode())
    lib.tick(us(5))
    print(f"stored {len(table)} entries; "
          f"key-42 -> {table.get(b'key-42').decode()}")

    # -- 3. EW-conscious detach: lowered, not unmapped -----------------------
    lib.detach(pmo)   # well before the 40us target
    mapped = lib.runtime.space.is_attached(pmo.pmo_id)
    print(f"after early detach: PMO still mapped? {mapped} "
          "(detach lowered to a thread-permission revoke)")
    oid = table._root
    try:
        lib.read(oid, 8)
    except ProtectionFault as exc:
        print(f"but this thread can no longer touch it: {exc}")

    # A detach after the EW target really unmaps.
    lib.attach(pmo, Access.RW)
    lib.tick(us(41))
    lib.detach(pmo)
    print(f"after late detach: PMO still mapped? "
          f"{lib.runtime.space.is_attached(pmo.pmo_id)}")

    # -- 4. crash and recover ---------------------------------------------------
    lib.tick(us(60))   # PMO-free computation (windows stay closed)
    lib.manager.simulate_reboot()
    reopened = lib.PMO_open("quickstart")
    recovered = PersistentHashMap.open(reopened)
    print(f"after reboot: {len(recovered)} entries survive; "
          f"key-7 -> {recovered.get(b'key-7').decode()}")

    # -- 5. the exposure report ----------------------------------------------------
    lib.runtime.finish(lib.clock_ns)
    report = lib.runtime.monitor.report(lib.clock_ns)
    print(f"exposure: EW avg {report.ew_avg_us:.1f}us "
          f"(max {report.ew_max_us:.1f}us), "
          f"ER {report.er_percent:.1f}%, "
          f"TEW avg {report.tew_avg_us:.1f}us, "
          f"TER {report.ter_percent:.1f}%")


if __name__ == "__main__":
    main()
