#!/usr/bin/env python3
"""Multiple clients share a PMO through a terpd daemon.

The earlier version of this example faked processes inside one
interpreter; now the real service layer does the work.  A terpd
daemon owns the PMO library; each client connects over a socket and
gets its own session — its own TERP entity, its own grants, its own
exposure budget.  The story is unchanged:

* alice publishes a world-readable PMO and writes to it;
* bob (a different user, different connection) attaches read-only and
  reads alice's committed data — his write attempt faults;
* mallory is refused by mode bits before TERP is consulted;
* a tenant that sits on its attach past the session EW budget is
  force-detached by the daemon's sweeper — crashed or malicious
  clients cannot hold a window open.

Run::

    PYTHONPATH=src python examples/multiprocess_sharing.py
"""

import time

from repro.core.units import MIB
from repro.service.client import RemoteError, SyncTerpClient
from repro.service.server import ServiceThread, TerpService


def main() -> None:
    service = TerpService(port=0,
                          session_ew_ns=50_000_000,    # 50ms budget
                          sweep_period_ns=10_000_000,  # 10ms sweeps
                          seed=11)
    with ServiceThread(service) as svc:
        port = svc.bound_port
        print(f"terpd listening on 127.0.0.1:{port}\n")

        with SyncTerpClient(port=port, user="alice") as alice, \
                SyncTerpClient(port=port, user="bob") as bob, \
                SyncTerpClient(port=port, user="mallory") as mallory:
            alice.create("market-data", 16 * MIB, mode=0o644)
            print("alice created 'market-data' (mode 644)")

            result = alice.attach("market-data")
            print(f"alice attach -> {result['outcome']} "
                  f"at {result['base_va']:#016x}")
            oid = alice.pmalloc("market-data", 64)
            alice.tx_begin("market-data")
            alice.write(oid, b"price: 42.17")
            flushed = alice.psync("market-data")
            print(f"alice wrote and psync'd ({flushed} pending write)")

            # bob's attach lowers to a grant on the daemon's single
            # mapping (EW-conscious case 2): shared, not remapped.
            result = bob.attach("market-data", access="r")
            print(f"bob attach(r) -> {result['outcome']} "
                  "(grant on the existing window)")
            print(f"bob reads: {bob.read(oid, 12).decode()}")
            try:
                bob.write(oid, b"hijack")
            except RemoteError as exc:
                print(f"bob write -> {exc.kind}: refused "
                      "(mode 644: read-only for others)")

            try:
                mallory.attach("market-data")
            except RemoteError as exc:
                print(f"mallory attach -> {exc.kind}: refused by the "
                      "OS before TERP is consulted")

            bob.detach("market-data")
            alice.detach("market-data")

        # A tenant that never detaches: the sweeper closes its window
        # once the 50ms session budget elapses.
        print("\nsloth attaches and goes to sleep...")
        with SyncTerpClient(port=port, user="sloth") as sloth:
            sloth.attach("market-data", access="r")
            while sloth.forced_detaches == 0:
                time.sleep(0.01)
                sloth.ping()            # events ride on responses
            event = sloth.events[-1]
            print(f"sweeper force-detached '{event['pmo']}' "
                  f"({event['reason']})")

        with SyncTerpClient(port=port, user="root") as probe:
            stats = probe.metrics()["global"]
            print(f"\ndaemon totals: {stats['requests']} requests, "
                  f"{stats['attaches']} attaches, "
                  f"{stats['forced_detaches']} forced detach(es), "
                  f"p99 request latency "
                  f"{stats['request_latency']['p99_us']:.1f}us")


if __name__ == "__main__":
    main()
