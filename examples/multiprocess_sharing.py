#!/usr/bin/env python3
"""Two processes share a PMO — the poset's upper tiers in action.

A server process owns a world-readable PMO; a client process of a
different user attaches it read-only.  Each process gets its own
randomized placement (learning one address reveals nothing about the
other process), OS mode bits gate who may attach at all, and exposure
is tracked per process.  A third, unauthorized user is refused by the
OS before TERP is even consulted — the user-permission level of the
TERP poset sitting above process attach/detach.
"""

from repro.core.errors import PmoError
from repro.core.multiprocess import SharedPmoSystem
from repro.core.permissions import Access
from repro.core.semantics import Outcome
from repro.core.units import MIB, us


def main() -> None:
    system = SharedPmoSystem(seed=11)
    server = system.create_process("server", user="alice")
    client = system.create_process("client", user="bob")
    intruder = system.create_process("intruder", user="mallory")

    pmo = system.create_pmo(server, "market-data", 16 * MIB,
                            mode=0o644)
    print("created 'market-data' (owner alice, mode 644)\n")

    system.attach(server, "market-data", Access.RW)
    system.attach(client, "market-data", Access.READ, now_ns=us(1))
    va_server = system.base_va(server, "market-data")
    va_client = system.base_va(client, "market-data")
    print(f"server maps it at  {va_server:#016x}")
    print(f"client maps it at  {va_client:#016x}  "
          "(independent randomization)")

    oid = pmo.pmalloc(64)
    pmo.write(oid.offset, b"price: 42.17")
    print(f"server writes, client reads: "
          f"{pmo.read(oid.offset, 12).decode()}")
    ok = system.access(client, "market-data", Access.READ,
                       now_ns=us(2))
    denied = system.access(client, "market-data", Access.WRITE,
                           now_ns=us(3))
    print(f"client read  -> {ok.outcome.value}")
    print(f"client write -> {denied.outcome.value} "
          "(mode 644: read-only for others)")

    try:
        system.attach(intruder, "market-data", Access.RW,
                      now_ns=us(4))
    except PmoError as exc:
        print(f"mallory attach(RW) -> refused by the OS: {exc}")

    # Server detaches after its EW target: unmapped for the server,
    # while the client's window is untouched.
    system.detach(server, "market-data", now_ns=us(41))
    print(f"\nafter server detach (41us): "
          f"server mapping = {system.base_va(server, 'market-data')}, "
          f"client mapping = "
          f"{system.base_va(client, 'market-data'):#016x}")

    rates = system.exposure_by_process("market-data",
                                       total_ns=us(100))
    print("\nper-process exposure of 'market-data' over 100us:")
    for name, rate in rates.items():
        print(f"  {name:9s} {100 * rate:5.1f}%")


if __name__ == "__main__":
    main()
