#!/usr/bin/env python3
"""The TERP formal framework: posets, lowering, and Theorem 6.

Walks the paper's Section III machinery directly:

1. build the standard TERP poset (Figure 2's levels) and render its
   Hasse diagram;
2. show *implicit lowering* — the mechanism EW-conscious semantics
   uses when a PMO is already attached;
3. check the temporal protection theorem against concrete exposure
   schedules, including a search for the largest attack a given
   TERP configuration still admits.
"""

from repro import TerpPoset
from repro.core.theorem import (
    attack_can_succeed, Schedule, terp_schedule, theorem_holds)
from repro.core.units import us


def main() -> None:
    # -- 1. the poset ------------------------------------------------------
    poset = TerpPoset.standard()
    print("The standard TERP poset (Figure 2):")
    print(poset.render_hasse())
    print()

    # -- 2. implicit lowering ------------------------------------------------
    attach = poset.get("process-attach")
    lowered = poset.lower(attach)
    print(f"lowering {attach.name!r} one step -> {lowered.name!r}")
    print(f"  cost drops {attach.engage_cost_cycles} -> "
          f"{lowered.engage_cost_cycles} cycles "
          "(the 'silent' conditional attach)")
    print()

    # -- 3. Theorem 6 on schedules ----------------------------------------------
    print("Theorem 6 against concrete schedules:")
    tight = terp_schedule(ew_ns=us(40), period_ns=us(100),
                          horizon_ns=us(2_000))
    print(f"  TERP 40us windows, randomized: "
          f"50us attack succeeds? "
          f"{attack_can_succeed(tight, us(50))}")
    loose = Schedule.of([(0, us(500))])      # one long static window
    print(f"  unprotected 500us window:     "
          f"50us attack succeeds? "
          f"{attack_can_succeed(loose, us(50))}")

    # The largest attack time each schedule still admits:
    for name, schedule in (("TERP 40us", tight), ("static", loose)):
        lo, hi = 1, us(1_000)
        while lo < hi:
            mid = (lo + hi) // 2
            if attack_can_succeed(schedule, mid):
                lo = mid + 1
            else:
                hi = mid
        print(f"  {name}: attacks needing >= {lo / 1000:.0f}us "
              "are prevented")
    print(f"\n  theorem verified on both: "
          f"{theorem_holds(tight, us(41)) and theorem_holds(loose, us(501))}")


if __name__ == "__main__":
    main()
