#!/usr/bin/env python3
"""Visualize exposure windows as an ASCII timeline.

Replays a short three-thread session against the TERP architecture
engine with full tracing, then renders the Figure 4-style picture:
when the PMO was mapped (and relocated), and when each thread held
permission.  The contrast between the long mapped bar and the short
per-thread bars *is* TERP's contribution.
"""

import numpy as np

from repro import Access, TerpArchEngine
from repro.core.events import Trace
from repro.core.runtime import TerpRuntime
from repro.core.units import MIB, us
from repro.eval.timeline import ExposureTimeline
from repro.pmo.pool import PmoManager


def main() -> None:
    trace = Trace()
    manager = PmoManager()
    engine = TerpArchEngine(us(40))
    rt = TerpRuntime(engine, manager=manager, trace=trace,
                     rng=np.random.default_rng(3))
    pmo = manager.create("shared", 8 * MIB)

    # Three threads take turns in short windows; the hardware combines
    # them and the sweeper randomizes/detaches at the 40us boundary.
    t = 0
    for round_ in range(6):
        for thread in (1, 2, 3):
            rt.attach(thread, pmo, Access.RW, t)
            t += us(2)
            rt.detach(thread, pmo, t)
            t += us(3)
        # Hardware sweep between rounds.
        for decision in engine.sweep(t):
            rt._apply(decision, pmo, t)
        t += us(5)
    rt.finish(t)

    timeline = ExposureTimeline(trace, end_ns=t)
    print(timeline.render())
    print()
    print(f"PMO mapped {100 * timeline.mapped_fraction(pmo.pmo_id):.0f}% "
          "of the run; per-thread permission:")
    for thread in (1, 2, 3):
        frac = timeline.permission_fraction(thread, pmo.pmo_id)
        print(f"  thread {thread}: {100 * frac:.0f}%")
    print(f"\nsilent call rate: {rt.counters.silent_percent:.0f}%  "
          f"randomizations: {rt.counters.randomizations}")


if __name__ == "__main__":
    main()
