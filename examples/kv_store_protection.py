#!/usr/bin/env python3
"""A Redis-style KV service protected by TERP vs MERR.

The scenario the paper's introduction motivates: a long-running
service keeps a versioned key-value store in a 1GB PMO and processes
a stream of requests.  This example runs the same service under three
protection schemes and prints the trade-off that is the paper's whole
point — exposure (how long an attacker can reach the data) versus
overhead (how much slower the service gets):

* MERR (MM): manual attach/detach per request, all syscalls;
* TERP on MERR hardware (TM): automatic insertion, but every
  conditional call traps;
* TERP (TT): automatic insertion + circular buffer + MPK windows.
"""

from repro.eval.configs import config
from repro.eval.runner import run_whisper


def main() -> None:
    print("Redis-style KV service, 1GB PMO, 8000 transactions")
    print(f"{'scheme':28s} {'overhead':>9s} {'EW avg/max':>13s} "
          f"{'ER':>6s} {'TEW':>6s} {'TER':>6s} {'silent':>7s}")
    for key in ("MM", "TM", "TT"):
        cfg = config(key)
        result = run_whisper("redis", cfg, n_transactions=8_000)
        pmo = result.per_pmo[0]
        print(f"{cfg.label[:28]:28s} "
              f"{result.overhead_percent:8.2f}% "
              f"{pmo.ew_avg_us:5.1f}/{pmo.ew_max_us:5.1f}us "
              f"{pmo.er_percent:5.1f}% "
              f"{pmo.tew_avg_us:5.2f}us "
              f"{pmo.ter_percent:5.1f}% "
              f"{result.silent_percent:6.1f}%")

    print()
    tt = run_whisper("redis", config("TT"), n_transactions=8_000)
    cases = tt.arch_cases
    print("TERP hardware case counts (Figure 7):")
    print(f"  case 1 (first attach, syscall):   "
          f"{cases.case1_first_attach}")
    print(f"  case 2 (subsequent attach):        "
          f"{cases.case2_subsequent_attach}")
    print(f"  case 3 (silent attach, combined):  "
          f"{cases.case3_silent_attach}")
    print(f"  case 4 (partial detach):           "
          f"{cases.case4_partial_detach}")
    print(f"  case 5 (full detach, syscall):     "
          f"{cases.case5_full_detach}")
    print(f"  case 6 (delayed detach):           "
          f"{cases.case6_delayed_detach}")
    print(f"  sweeper detaches / randomizes:     "
          f"{cases.sweep_detaches} / {cases.sweep_randomizes}")
    print(f"  syscall pairs elided by combining: "
          f"{cases.elided_syscall_pairs}")


if __name__ == "__main__":
    main()
