"""The semantics design-space experiment (Section IV as data)."""

import pytest

from repro.eval.experiments import semantics_space


@pytest.fixture(scope="module")
def scores():
    return {s.name: s for s in semantics_space.run()}


class TestSemanticsSpace:
    def test_all_four_semantics_scored(self, scores):
        assert set(scores) == {"basic", "outermost", "fcfs",
                               "ew-conscious"}

    def test_basic_fails_nesting(self, scores):
        # Figure 3: the third attach returns an error under Basic.
        assert scores["basic"].nested_errors > 0

    def test_basic_fails_threads(self, scores):
        assert not scores["basic"].thread_composable

    def test_outermost_window_unbounded(self, scores):
        # "This semantics cannot offer needed temporal protections as
        # the actual attached time can be arbitrarily long."
        assert not scores["outermost"].window_bounded

    def test_fcfs_has_reattach_hole(self, scores):
        # "it is hard to distinguish a benign access ... from an
        # invalid access (that may be triggered by the attacker)".
        assert scores["fcfs"].reattach_holes > 0

    def test_ew_conscious_gets_everything(self, scores):
        s = scores["ew-conscious"]
        assert s.thread_composable
        assert s.window_bounded
        assert s.reattach_holes == 0
        # Compiler-style composition produces no errors...
        assert s.sequential_errors == 0
        # ...while raw same-thread nesting is (correctly) rejected.
        assert s.nested_errors > 0

    def test_only_ew_conscious_is_fully_satisfactory(self, scores):
        def satisfactory(s):
            return (s.thread_composable and s.window_bounded
                    and s.reattach_holes == 0
                    and s.sequential_errors == 0)
        winners = [name for name, s in scores.items()
                   if satisfactory(s)]
        assert winners == ["ew-conscious"]

    def test_render(self, scores):
        text = semantics_space.render(list(scores.values()))
        assert "UNBOUNDED" in text
        assert "ew-conscious" in text
