"""The ``python -m repro.eval`` command-line entry point."""

import pytest

from repro.eval.__main__ import build_parser, main


class TestCli:
    def test_single_artifact(self, capsys):
        assert main(["table5"]) == 0
        out = capsys.readouterr().out
        assert "Table V" in out
        assert "[table5" in out

    def test_semantics_artifact(self, capsys):
        assert main(["semantics"]) == 0
        assert "design space" in capsys.readouterr().out

    def test_multiple_artifacts(self, capsys):
        assert main(["table5", "semantics"]) == 0
        out = capsys.readouterr().out
        assert "Table V" in out and "design space" in out

    def test_unknown_artifact_fails(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown artifacts" in capsys.readouterr().err

    def test_scaled_run(self, capsys):
        assert main(["fig8", "--scale", "0.2"]) == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_parser_defaults(self):
        args = build_parser().parse_args(["all"])
        assert args.txs == 6_000
        assert args.iters == 4_000
        assert args.threads == 4
