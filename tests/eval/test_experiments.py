"""The experiment drivers, at reduced scale (shape assertions only).

The full-scale shape checks live in benchmarks/; here each driver is
exercised end to end with small inputs to pin its structure and the
relationships that must hold at any scale.
"""

import pytest

from repro.eval.configs import config, DEFAULT_EW_US, DEFAULT_TEW_US
from repro.eval.experiments import (
    fig9, fig10, fig11, fig8, table3, table4, table5, table6)
from repro.core.errors import ConfigurationError

TXS = 800
ITERS = 600


class TestConfigs:
    def test_all_keys_buildable(self):
        from repro.core.units import MIB
        sizes = {"p": 8 * MIB}
        for key in ("MM", "TM", "TT", "TT_BASIC", "TT_COND"):
            machine = config(key).build(sizes)
            assert machine.engine is not None

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError):
            config("XX")

    def test_defaults_match_paper(self):
        assert DEFAULT_EW_US == 40.0
        assert DEFAULT_TEW_US == 2.0

    def test_ew_target_parameterized(self):
        cfg = config("TT", ew_target_us=160.0)
        assert "160" in cfg.label


@pytest.fixture(scope="module")
def t3():
    return table3.run(n_transactions=TXS, names=["echo", "redis"])


class TestTable3:
    def test_rows_and_render(self, t3):
        assert [r.name for r in t3.rows] == ["echo", "redis"]
        text = t3.render()
        assert "Table III" in text and "echo" in text

    def test_terp_ews_stable_at_target(self, t3):
        for row in t3.rows:
            assert row.tt_ew_avg_us == pytest.approx(40.0, abs=4.0)
            assert row.tt_ew_max_us <= 45.0

    def test_merr_ews_unstable(self, t3):
        for row in t3.rows:
            assert row.mm_ew_max_us > row.mm_ew_avg_us * 1.3

    def test_tew_below_target(self, t3):
        for row in t3.rows:
            assert row.tt_tew_us <= 2.5

    def test_ter_below_er(self, t3):
        for row in t3.rows:
            assert row.tt_ter_percent < row.tt_er_percent

    def test_most_calls_silent(self, t3):
        for row in t3.rows:
            assert row.tt_silent_percent > 70.0

    def test_averages_row(self, t3):
        avg = t3.averages()
        assert avg.name == "Avg."
        expected = (t3.rows[0].tt_silent_percent
                    + t3.rows[1].tt_silent_percent) / 2
        assert avg.tt_silent_percent == pytest.approx(expected)


class TestFig9:
    def test_config_ordering(self):
        result = fig9.run(n_transactions=TXS, names=["redis"])
        bars = {b.label: b.total_percent for b in result.bars["redis"]}
        # TT < MM < TM, and TT overhead falls as the EW target grows.
        assert bars["TT (40us)"] < bars["MM (40us)"]
        assert bars["MM (40us)"] < bars["TM (40us)"]
        assert bars["TT (160us)"] <= bars["TT (40us)"] + 0.5

    def test_breakdown_categories(self):
        result = fig9.run(n_transactions=TXS, names=["redis"])
        breakdown = result.bars["redis"][0].breakdown_percent
        assert set(breakdown) == {"attach", "detach", "rand", "cond",
                                  "other"}

    def test_render(self):
        result = fig9.run(n_transactions=TXS, names=["redis"])
        assert "Figure 9" in result.render()


@pytest.fixture(scope="module")
def t4():
    return table4.run(n_iterations=ITERS, names=["lbm", "xz"])


class TestTable4:
    def test_pmo_counts_from_paper(self, t4):
        counts = {r.name: r.n_pmos for r in t4.rows}
        assert counts == {"lbm": 2, "xz": 6}

    def test_more_pmos_lower_exposure(self, t4):
        by_name = {r.name: r for r in t4.rows}
        assert by_name["xz"].tt_er_percent < by_name["lbm"].tt_er_percent

    def test_silent_above_85(self, t4):
        for row in t4.rows:
            assert row.tt_silent_percent > 85.0

    def test_render(self, t4):
        assert "Table IV" in t4.render()


class TestFig10:
    def test_spec_overheads_ordering(self):
        result = fig10.run(n_iterations=ITERS, names=["lbm"])
        bars = {b.label: b.total_percent for b in result.bars["lbm"]}
        assert bars["TT (40us)"] < bars["MM (40us)"]
        assert bars["MM (40us)"] > 100.0   # SPEC MM blows up

    def test_render_mentions_spec(self):
        result = fig10.run(n_iterations=200, names=["xz"])
        assert "Figure 10" in result.render()


class TestFig11:
    def test_basic_worst_cb_best(self):
        result = fig11.run(n_iterations=ITERS, names=["lbm"],
                           num_threads=4)
        bars = {b.label: b.total_percent for b in result.bars["lbm"]}
        assert bars["Basic semantics"] > bars["+Cond (40us)"]
        assert bars["+CB (40us)"] <= bars["+Cond (40us)"]

    def test_blocking_recorded_for_basic(self):
        result = fig11.run(n_iterations=400, names=["lbm"],
                           num_threads=4)
        assert result.blocked_ns["lbm"] > 0


class TestFig8:
    def test_headline(self):
        result = fig8.run(n_objects_per_profile=300)
        assert 0.90 <= result.surface_reduction_at_2us <= 0.99
        assert "Figure 8" in result.render()


class TestTable5:
    def test_paper_values(self):
        result = table5.run()
        assert result.merr_1us == pytest.approx(0.0153, abs=0.001)
        assert result.terp_1us == pytest.approx(0.00051, abs=0.0001)
        assert result.reduction == pytest.approx(30.0, rel=0.05)
        assert "Table V" in result.render()

    def test_entropy_is_18_bits(self):
        assert table5.run().entropy_bits == 18


class TestTable6:
    def test_census_shape(self):
        result = table6.run(n_transactions=500, n_iterations=400)
        assert result.whisper.terp_disarmed_percent > 85.0
        assert result.spec.terp_disarmed_percent > 80.0
        assert result.whisper.terp_disarmed_percent > \
            result.whisper.merr_disarmed_percent
        assert len(result.scenarios) == 6
        assert "Table VI" in result.render()
