"""The experiment runner's suite helpers."""

import pytest

from repro.eval.configs import config
from repro.eval.runner import (
    run_spec, run_spec_suite, run_whisper, run_whisper_suite)


class TestRunner:
    def test_run_whisper_returns_result(self):
        result = run_whisper("echo", config("TT"), n_transactions=300)
        assert result.wall_ns > 0
        assert len(result.per_pmo) == 1

    def test_run_spec_has_all_pmos(self):
        result = run_spec("xz", config("TT"), n_iterations=300)
        assert len(result.per_pmo) == 6

    def test_whisper_suite_subset(self):
        results = run_whisper_suite(config("TT"),
                                    names=["echo", "redis"],
                                    n_transactions=200)
        assert set(results) == {"echo", "redis"}

    def test_spec_suite_subset(self):
        results = run_spec_suite(config("TT"), names=["lbm"],
                                 n_iterations=200)
        assert set(results) == {"lbm"}

    def test_seed_changes_results(self):
        a = run_whisper("redis", config("TT"), n_transactions=300,
                        seed=1)
        b = run_whisper("redis", config("TT"), n_transactions=300,
                        seed=2)
        assert a.wall_ns != b.wall_ns

    def test_same_seed_reproduces(self):
        a = run_whisper("redis", config("TT"), n_transactions=300,
                        seed=9)
        b = run_whisper("redis", config("TT"), n_transactions=300,
                        seed=9)
        assert a.wall_ns == b.wall_ns
        assert a.to_dict() == b.to_dict()

    def test_multithread_whisper(self):
        result = run_whisper("ycsb", config("TT"), n_transactions=400,
                             num_threads=2)
        assert result.num_threads == 2
        assert result.counters.errors == 0
