"""Exposure timeline rendering from runtime traces."""

import numpy as np
import pytest

from repro.core.events import Trace
from repro.core.permissions import Access
from repro.core.runtime import TerpRuntime
from repro.core.semantics import EwConsciousSemantics
from repro.core.units import MIB, us
from repro.eval.timeline import ExposureTimeline
from repro.pmo.pool import PmoManager


def traced_run():
    trace = Trace()
    manager = PmoManager()
    rt = TerpRuntime(EwConsciousSemantics(us(40)), manager=manager,
                     trace=trace, rng=np.random.default_rng(1))
    pmo = manager.create("p", 8 * MIB)
    rt.attach(1, pmo, Access.RW, 0)
    rt.detach(1, pmo, us(10))          # lowered: stays mapped
    rt.attach(2, pmo, Access.RW, us(20))
    rt.detach(2, pmo, us(50))          # real detach (past target)
    rt.finish(us(100))
    return trace, pmo


class TestTimeline:
    def test_mapped_fraction_matches_windows(self):
        trace, pmo = traced_run()
        timeline = ExposureTimeline(trace, end_ns=us(100))
        # Mapped 0..50us out of 100us.
        assert timeline.mapped_fraction(pmo.pmo_id) == \
            pytest.approx(0.5, abs=0.02)

    def test_thread_permission_fractions(self):
        trace, pmo = traced_run()
        timeline = ExposureTimeline(trace, end_ns=us(100))
        # Thread 1 held 0..10us; thread 2 held 20..50us.
        assert timeline.permission_fraction(1, pmo.pmo_id) == \
            pytest.approx(0.10, abs=0.02)
        assert timeline.permission_fraction(2, pmo.pmo_id) == \
            pytest.approx(0.30, abs=0.02)

    def test_render_shows_lanes(self):
        trace, pmo = traced_run()
        text = ExposureTimeline(trace, end_ns=us(100)).render()
        assert "pmo" in text and "thread 1" in text
        assert "=" in text and "#" in text

    def test_randomization_marked(self):
        trace = Trace()
        manager = PmoManager()
        rt = TerpRuntime(EwConsciousSemantics(us(40)),
                         manager=manager, trace=trace,
                         rng=np.random.default_rng(2))
        pmo = manager.create("p", 8 * MIB)
        rt.attach(1, pmo, Access.RW, 0)
        rt.attach(2, pmo, Access.RW, us(1))
        rt.detach(1, pmo, us(41))      # randomize: t2 still holds
        rt.finish(us(80))
        timeline = ExposureTimeline(trace, end_ns=us(80))
        assert "R" in timeline.render()
        # The relocation splits the mapped interval but total mapped
        # time is unchanged (still mapped throughout).
        assert timeline.mapped_fraction(pmo.pmo_id) == \
            pytest.approx(1.0, abs=0.02)

    def test_empty_trace(self):
        timeline = ExposureTimeline(Trace())
        assert timeline.mapped_fraction("ghost") == 0.0
        assert "timeline" in timeline.render()

    def test_unknown_thread_fraction_zero(self):
        trace, pmo = traced_run()
        timeline = ExposureTimeline(trace, end_ns=us(100))
        assert timeline.permission_fraction(99, pmo.pmo_id) == 0.0
