"""Table/figure text rendering helpers."""

import pytest

from repro.eval.tables import render_grouped_bars, render_table


class TestRenderTable:
    def test_alignment_and_rule(self):
        text = render_table(["name", "value"],
                            [["a", 1.5], ["longer-name", 20]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert set(lines[2]) <= {"-", " "}
        # Columns aligned: the header and rows share column offsets.
        value_col = lines[1].index("value")
        assert lines[3][value_col:].strip().startswith("1.50")

    def test_float_formatting(self):
        text = render_table(["x"], [[3.14159], [12345.6]])
        assert "3.14" in text
        assert "12346" in text   # large floats drop decimals

    def test_no_title(self):
        text = render_table(["h"], [["v"]])
        assert text.splitlines()[0] == "h"


class TestRenderGroupedBars:
    def test_groups_and_bars(self):
        text = render_grouped_bars(
            {"bench1": {"MM": 20.0, "TT": 5.0}},
            title="Overheads")
        assert "Overheads" in text
        assert "bench1:" in text
        assert "MM" in text and "TT" in text
        # Bars scale with values.
        mm_line = next(l for l in text.splitlines() if "MM" in l)
        tt_line = next(l for l in text.splitlines() if "TT" in l)
        assert mm_line.count("#") > tt_line.count("#")

    def test_bar_scale(self):
        text = render_grouped_bars({"g": {"a": 100.0}}, bar_scale=0.1)
        line = next(l for l in text.splitlines() if "a" in l)
        assert line.count("#") == 10

    def test_minimum_one_hash(self):
        text = render_grouped_bars({"g": {"tiny": 0.01}})
        line = next(l for l in text.splitlines() if "tiny" in l)
        assert line.count("#") == 1
