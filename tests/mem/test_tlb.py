"""TLB models (Table II geometry and shootdown behaviour)."""

import pytest

from repro.core.units import PAGE_SIZE
from repro.mem.tlb import Tlb, TlbHierarchy


class TestTlb:
    def test_miss_then_hit(self):
        tlb = Tlb(entries=64, ways=4)
        assert not tlb.lookup(0x1000)
        tlb.fill(0x1000, "pmo")
        assert tlb.lookup(0x1000)
        assert tlb.stats.hits == 1 and tlb.stats.misses == 1

    def test_entries_must_divide_by_ways(self):
        with pytest.raises(ValueError):
            Tlb(entries=65, ways=4)

    def test_lru_eviction_within_set(self):
        tlb = Tlb(entries=8, ways=2)  # 4 sets
        # Pages 0, 4, 8 all map to set 0 (page % 4 == 0).
        tlb.fill(0 * PAGE_SIZE)
        tlb.fill(4 * PAGE_SIZE)
        tlb.fill(8 * PAGE_SIZE)  # evicts page 0 (LRU)
        assert not tlb.lookup(0 * PAGE_SIZE)
        assert tlb.lookup(4 * PAGE_SIZE)
        assert tlb.lookup(8 * PAGE_SIZE)

    def test_lookup_refreshes_lru(self):
        tlb = Tlb(entries=8, ways=2)
        tlb.fill(0 * PAGE_SIZE)
        tlb.fill(4 * PAGE_SIZE)
        tlb.lookup(0 * PAGE_SIZE)          # page 0 now MRU
        tlb.fill(8 * PAGE_SIZE)            # evicts page 4
        assert tlb.lookup(0 * PAGE_SIZE)
        assert not tlb.lookup(4 * PAGE_SIZE)

    def test_invalidate_page(self):
        tlb = Tlb(entries=64, ways=4)
        tlb.fill(0x1000)
        assert tlb.invalidate_page(0x1000)
        assert not tlb.invalidate_page(0x1000)
        assert not tlb.lookup(0x1000)

    def test_invalidate_owner_removes_only_that_pmo(self):
        """The per-PMO shootdown used by detach and randomization."""
        tlb = Tlb(entries=64, ways=4)
        for page in range(8):
            tlb.fill(page * PAGE_SIZE, "pmo1")
        tlb.fill(100 * PAGE_SIZE, "pmo2")
        removed = tlb.invalidate_owner("pmo1")
        assert removed == 8
        assert tlb.lookup(100 * PAGE_SIZE)
        assert not tlb.lookup(0)
        assert tlb.stats.shootdowns == 1

    def test_flush(self):
        tlb = Tlb(entries=64, ways=4)
        for page in range(10):
            tlb.fill(page * PAGE_SIZE)
        assert tlb.flush() == 10
        assert tlb.occupancy() == 0

    def test_double_fill_is_idempotent(self):
        tlb = Tlb(entries=64, ways=4)
        tlb.fill(0x1000)
        tlb.fill(0x1000)
        assert tlb.occupancy() == 1


class TestTlbHierarchy:
    def test_cold_access_pays_walk(self):
        h = TlbHierarchy()
        latency = h.access(0x1000)
        assert latency == 1 + 4 + 30

    def test_warm_access_is_one_cycle(self):
        h = TlbHierarchy()
        h.access(0x1000)
        assert h.access(0x1000) == 1

    def test_l2_hit_after_l1_eviction(self):
        h = TlbHierarchy()
        h.access(0x1000)
        # Thrash L1 set of page 1 with conflicting pages (same set,
        # stride = num_sets pages), enough to evict page 1 from L1 but
        # not from the much larger L2.
        sets = h.l1.num_sets
        for i in range(1, 6):
            h.access((1 + i * sets) * PAGE_SIZE)
        assert h.access(1 * PAGE_SIZE) == 1 + 4

    def test_invalidate_owner_hits_both_levels(self):
        h = TlbHierarchy()
        h.access(0x1000, owner="pmo")
        assert h.invalidate_owner("pmo") == 2  # L1 + L2 entries
        assert h.access(0x1000, owner="pmo") == 35
