"""Address space: attach/detach/randomize + full MMU access checks."""

import numpy as np
import pytest

from repro.core.errors import SegmentationFault, TerpError
from repro.core.permissions import Access
from repro.core.units import GIB, MIB, PAGE_SIZE
from repro.mem.address_space import AddressSpace
from repro.mem.page_table import build_subtree


class FakePmo:
    """Minimal PMO-like object for substrate tests."""

    def __init__(self, pmo_id, size_bytes):
        self.pmo_id = pmo_id
        self.size_bytes = size_bytes
        self.subtree = build_subtree(str(pmo_id), size_bytes)


@pytest.fixture
def space():
    return AddressSpace(rng=np.random.default_rng(42))


@pytest.fixture
def pmo():
    return FakePmo("pmo1", GIB)


class TestAttachDetach:
    def test_attach_maps_and_registers(self, space, pmo):
        mapping = space.attach(pmo, Access.RW)
        assert space.is_attached("pmo1")
        assert space.page_table.walk(mapping.base_va) is not None
        assert space.matrix.entry_for("pmo1") is not None
        assert space.domains.key_of("pmo1") is not None

    def test_base_is_aligned(self, space, pmo):
        mapping = space.attach(pmo, Access.RW)
        assert mapping.base_va % space.alignment_for(2) == 0

    def test_double_attach_rejected(self, space, pmo):
        space.attach(pmo, Access.RW)
        with pytest.raises(TerpError):
            space.attach(pmo, Access.RW)

    def test_detach_clears_everything(self, space, pmo):
        mapping = space.attach(pmo, Access.RW)
        space.detach("pmo1")
        assert not space.is_attached("pmo1")
        assert space.page_table.walk(mapping.base_va) is None
        assert space.matrix.entry_for("pmo1") is None
        assert space.domains.key_of("pmo1") is None

    def test_detach_unattached_rejected(self, space):
        with pytest.raises(TerpError):
            space.detach("ghost")

    def test_multiple_pmos_disjoint(self, space):
        maps = [space.attach(FakePmo(f"p{i}", 64 * MIB), Access.RW)
                for i in range(6)]
        for i, a in enumerate(maps):
            for b in maps[i + 1:]:
                assert (a.base_va + a.size_bytes <= b.base_va
                        or b.base_va + b.size_bytes <= a.base_va)


class TestRandomization:
    def test_randomize_moves_base(self, space, pmo):
        m = space.attach(pmo, Access.RW)
        old = m.base_va
        space.randomize("pmo1")
        # With thousands of slots a same-slot redraw is astronomically
        # unlikely under this seed; assert it moved.
        assert space.mapping_of("pmo1").base_va != old

    def test_old_address_dead_after_randomize(self, space, pmo):
        m = space.attach(pmo, Access.RW)
        old = m.base_va
        space.randomize("pmo1")
        assert space.page_table.walk(old) is None
        new = space.mapping_of("pmo1").base_va
        assert space.page_table.walk(new) is not None

    def test_randomize_preserves_contents_mapping(self, space, pmo):
        """Same subtree: offset k still reaches frame k after the move."""
        space.attach(pmo, Access.RW)
        space.randomize("pmo1")
        base = space.mapping_of("pmo1").base_va
        frame = space.page_table.walk(base + 5 * PAGE_SIZE)
        assert frame.page_index == 5

    def test_randomize_detached_rejected(self, space):
        with pytest.raises(TerpError):
            space.randomize("ghost")

    def test_slots_for_1gb_pmo(self, space):
        # 256TB region / 1GB alignment = 256K candidate slots (18 bits),
        # matching the paper's 18-bit entropy for a 1GB PMO.
        assert space.slots_for(2) == 256 * 1024

    def test_deterministic_under_seed(self):
        s1 = AddressSpace(rng=np.random.default_rng(7))
        s2 = AddressSpace(rng=np.random.default_rng(7))
        m1 = s1.attach(FakePmo("p", GIB), Access.RW)
        m2 = s2.attach(FakePmo("p", GIB), Access.RW)
        assert m1.base_va == m2.base_va


class TestAccessPath:
    def test_va_of_translates_offsets(self, space, pmo):
        m = space.attach(pmo, Access.RW)
        assert space.va_of("pmo1", 0) == m.base_va
        assert space.va_of("pmo1", 12345) == m.base_va + 12345

    def test_va_of_detached_segfaults(self, space):
        with pytest.raises(SegmentationFault):
            space.va_of("pmo1", 0)

    def test_va_of_out_of_bounds(self, space, pmo):
        space.attach(pmo, Access.RW)
        with pytest.raises(TerpError):
            space.va_of("pmo1", GIB)

    def test_check_access_needs_thread_grant(self, space, pmo):
        m = space.attach(pmo, Access.RW)
        va = m.base_va
        assert not space.check_access(1, va, Access.READ)
        space.domains.grant(1, "pmo1", Access.READ)
        assert space.check_access(1, va, Access.READ)
        assert not space.check_access(1, va, Access.WRITE)

    def test_check_access_caps_at_matrix_permission(self, space):
        pmo = FakePmo("ro", GIB)
        m = space.attach(pmo, Access.READ)
        space.domains.grant(1, "ro", Access.RW)
        assert not space.check_access(1, m.base_va, Access.WRITE)

    def test_check_access_unmapped_false(self, space):
        assert not space.check_access(1, 0x1234000, Access.READ)

    def test_translate_segfault(self, space):
        with pytest.raises(SegmentationFault):
            space.translate(0x1234000)
