"""Page tables and embedded PMO subtrees (Figure 1a)."""

import pytest

from repro.core.errors import TerpError
from repro.core.units import GIB, KIB, MIB, PAGE_SIZE
from repro.mem.page_table import (
    ENTRIES_PER_NODE, ENTRY_SPAN, Frame, PageTable, PageTableNode,
    build_subtree, index_at_level, subtree_level_for, VA_SPAN)


class TestIndexing:
    def test_level1_index_uses_low_bits(self):
        assert index_at_level(0, 1) == 0
        assert index_at_level(PAGE_SIZE, 1) == 1
        assert index_at_level(511 * PAGE_SIZE, 1) == 511
        assert index_at_level(512 * PAGE_SIZE, 1) == 0

    def test_level2_index(self):
        assert index_at_level(2 * MIB, 2) == 1
        assert index_at_level(GIB - 1, 2) == 511

    def test_root_span_is_256_tib(self):
        assert VA_SPAN == 256 * 1024 * GIB


class TestSubtreeLevel:
    def test_small_pmo_level1(self):
        assert subtree_level_for(128 * KIB) == 1
        assert subtree_level_for(2 * MIB) == 1

    def test_medium_pmo_level2(self):
        assert subtree_level_for(2 * MIB + 1) == 2
        assert subtree_level_for(GIB) == 2

    def test_large_pmo_level3(self):
        assert subtree_level_for(GIB + 1) == 3
        assert subtree_level_for(512 * GIB) == 3

    def test_zero_size_rejected(self):
        with pytest.raises(TerpError):
            subtree_level_for(0)

    def test_too_large_rejected(self):
        with pytest.raises(TerpError):
            subtree_level_for(513 * GIB)


class TestBuildSubtree:
    def test_1gb_pmo_fully_populated(self):
        tree = build_subtree("pmo1", GIB)
        assert tree.level == 2
        assert tree.populated() == 512  # 512 x 2MB children

    def test_leaf_frames_cover_all_pages(self):
        tree = build_subtree("p", 16 * PAGE_SIZE)
        assert tree.level == 1
        frames = [tree.lookup(i) for i in range(16)]
        assert all(isinstance(f, Frame) for f in frames)
        assert [f.page_index for f in frames] == list(range(16))
        assert tree.lookup(16) is None

    def test_partial_last_node(self):
        # 3MB = 768 pages: one full level-1 child + one half-full.
        tree = build_subtree("p", 3 * MIB)
        assert tree.level == 2
        assert tree.populated() == 2
        assert tree.lookup(1).populated() == 256


class TestConventionalMapping:
    def test_map_and_walk(self):
        pt = PageTable()
        pt.map_pages(0x10000, "pmo", 4)
        frame = pt.walk(0x10000 + 2 * PAGE_SIZE)
        assert frame == Frame("pmo", 2)

    def test_walk_unmapped_returns_none(self):
        assert PageTable().walk(0x5000) is None

    def test_unaligned_base_rejected(self):
        with pytest.raises(TerpError):
            PageTable().map_pages(0x10001, "pmo", 1)

    def test_double_map_rejected(self):
        pt = PageTable()
        pt.map_pages(0, "a", 1)
        with pytest.raises(TerpError):
            pt.map_pages(0, "b", 1)

    def test_unmap(self):
        pt = PageTable()
        pt.map_pages(0, "a", 2)
        pt.unmap_pages(0, 2)
        assert not pt.is_mapped(0)
        assert not pt.is_mapped(PAGE_SIZE)

    def test_pte_writes_grow_linearly_with_size(self):
        """The overhead MERR's embedding removes: O(pages) PTE writes."""
        small, large = PageTable(), PageTable()
        small.map_pages(0, "a", 16)
        large.map_pages(0, "a", 256)
        assert large.pte_writes > small.pte_writes
        # At least one write per page.
        assert large.pte_writes >= 256

    def test_walk_out_of_range(self):
        assert PageTable().walk(VA_SPAN + PAGE_SIZE) is None
        assert PageTable().walk(-1) is None


class TestEmbeddedSubtree:
    def test_install_is_constant_pte_writes(self):
        """The headline property: attach cost independent of PMO size."""
        span = ENTRY_SPAN[2] * ENTRIES_PER_NODE  # 1GB alignment
        small_pt, large_pt = PageTable(), PageTable()
        small_tree = build_subtree("small", 3 * MIB)   # level-2, 2 children
        large_tree = build_subtree("large", GIB)       # level-2, 512 children
        small_pt.install_subtree(span, small_tree)
        large_pt.install_subtree(span, large_tree)
        # Identical number of process-side PTE writes despite the 300x
        # size difference (path creation + 1 entry).
        assert small_pt.pte_writes == large_pt.pte_writes

    def test_walk_through_subtree(self):
        pt = PageTable()
        tree = build_subtree("pmo", GIB)
        base = ENTRY_SPAN[2] * ENTRIES_PER_NODE * 3
        pt.install_subtree(base, tree)
        assert pt.walk(base) == Frame("pmo", 0)
        offset = 123 * PAGE_SIZE
        assert pt.walk(base + offset) == Frame("pmo", 123)
        last = GIB - PAGE_SIZE
        assert pt.walk(base + last) == Frame("pmo", last // PAGE_SIZE)

    def test_unaligned_install_rejected(self):
        pt = PageTable()
        tree = build_subtree("pmo", GIB)
        with pytest.raises(TerpError):
            pt.install_subtree(PAGE_SIZE, tree)

    def test_double_install_rejected(self):
        pt = PageTable()
        base = ENTRY_SPAN[2] * ENTRIES_PER_NODE
        pt.install_subtree(base, build_subtree("a", GIB))
        with pytest.raises(TerpError):
            pt.install_subtree(base, build_subtree("b", GIB))

    def test_remove_subtree(self):
        pt = PageTable()
        base = ENTRY_SPAN[2] * ENTRIES_PER_NODE
        pt.install_subtree(base, build_subtree("a", GIB))
        pt.remove_subtree(base, 2)
        assert pt.walk(base) is None

    def test_remove_missing_subtree_rejected(self):
        with pytest.raises(TerpError):
            PageTable().remove_subtree(0, 2)

    def test_reinstall_after_remove_at_new_base(self):
        """Randomization: same subtree, new base, old VA dead."""
        pt = PageTable()
        align = ENTRY_SPAN[2] * ENTRIES_PER_NODE
        tree = build_subtree("pmo", GIB)
        pt.install_subtree(align, tree)
        pt.remove_subtree(align, 2)
        pt.install_subtree(7 * align, tree)
        assert pt.walk(align) is None
        assert pt.walk(7 * align) == Frame("pmo", 0)

    def test_mapped_pages_iterates(self):
        pt = PageTable()
        pt.map_pages(0, "a", 3)
        pages = list(pt.mapped_pages())
        assert len(pages) == 3
        assert pages[0] == (0, Frame("a", 0))
