"""MERR permission matrix (Figure 1b)."""

import pytest

from repro.core.errors import TerpError
from repro.core.permissions import Access
from repro.mem.permission_matrix import PermissionMatrix


@pytest.fixture
def matrix():
    return PermissionMatrix()


def test_add_and_check(matrix):
    matrix.add("pmo1", 0x1000_0000, 0x1000, Access.RW)
    assert matrix.check(0x1000_0000, Access.READ)
    assert matrix.check(0x1000_0fff, Access.WRITE)


def test_check_outside_range_denied(matrix):
    matrix.add("pmo1", 0x1000_0000, 0x1000, Access.RW)
    assert not matrix.check(0x1000_1000, Access.READ)
    assert not matrix.check(0x0fff_ffff, Access.READ)


def test_permission_kind_enforced(matrix):
    matrix.add("pmo1", 0, 0x1000, Access.READ)
    assert matrix.check(0, Access.READ)
    assert not matrix.check(0, Access.WRITE)


def test_duplicate_pmo_rejected(matrix):
    matrix.add("pmo1", 0, 0x1000, Access.RW)
    with pytest.raises(TerpError):
        matrix.add("pmo1", 0x2000, 0x1000, Access.RW)


def test_overlapping_ranges_rejected(matrix):
    matrix.add("pmo1", 0, 0x2000, Access.RW)
    with pytest.raises(TerpError):
        matrix.add("pmo2", 0x1000, 0x2000, Access.RW)


def test_capacity_limit():
    matrix = PermissionMatrix(capacity=2)
    matrix.add("a", 0, 0x1000, Access.RW)
    matrix.add("b", 0x10000, 0x1000, Access.RW)
    with pytest.raises(TerpError):
        matrix.add("c", 0x20000, 0x1000, Access.RW)


def test_remove(matrix):
    matrix.add("pmo1", 0, 0x1000, Access.RW)
    entry = matrix.remove("pmo1")
    assert entry.pmo_id == "pmo1"
    assert not matrix.check(0, Access.READ)
    with pytest.raises(TerpError):
        matrix.remove("pmo1")


def test_relocate_moves_range(matrix):
    matrix.add("pmo1", 0, 0x1000, Access.RW)
    matrix.relocate("pmo1", 0x5000)
    assert not matrix.check(0, Access.READ)
    assert matrix.check(0x5000, Access.READ)


def test_relocate_missing_rejected(matrix):
    with pytest.raises(TerpError):
        matrix.relocate("nope", 0x5000)


def test_counters(matrix):
    matrix.add("pmo1", 0, 0x1000, Access.RW)
    matrix.check(0, Access.READ)
    matrix.check(0x800, Access.READ)
    assert matrix.updates == 1
    assert matrix.checks == 2


def test_lookup_va_identifies_pmo(matrix):
    matrix.add("a", 0, 0x1000, Access.RW)
    matrix.add("b", 0x10000, 0x1000, Access.READ)
    assert matrix.lookup_va(0x10800).pmo_id == "b"
    assert matrix.lookup_va(0x5000) is None
