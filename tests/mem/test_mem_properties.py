"""Property-based tests of the memory substrate against models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.permissions import Access
from repro.core.units import PAGE_SIZE
from repro.mem.mpk import NUM_KEYS, Pkru
from repro.mem.page_table import PageTable
from repro.mem.permission_matrix import PermissionMatrix
from repro.mem.tlb import Tlb


class TestPageTableModel:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 40)),
                    max_size=60))
    def test_map_unmap_matches_dict_model(self, ops):
        """Random page map/unmap mirrors a simple dict."""
        pt = PageTable()
        model = {}
        for do_map, slot in ops:
            va = slot * PAGE_SIZE
            if do_map and slot not in model:
                pt.map_pages(va, f"o{slot}", 1)
                model[slot] = f"o{slot}"
            elif not do_map and slot in model:
                pt.unmap_pages(va, 1)
                del model[slot]
        for slot in range(41):
            frame = pt.walk(slot * PAGE_SIZE)
            if slot in model:
                assert frame is not None and frame.owner == model[slot]
            else:
                assert frame is None

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 500))
    def test_pte_writes_at_least_pages(self, n_pages):
        pt = PageTable()
        pt.map_pages(0, "x", n_pages)
        assert pt.pte_writes >= n_pages


class TestPermissionMatrixModel:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 7), st.booleans()),
                    max_size=40))
    def test_add_remove_matches_model(self, ops):
        matrix = PermissionMatrix(capacity=16)
        model = {}
        for slot, add in ops:
            pmo = f"p{slot}"
            base = slot * 0x10000
            if add and pmo not in model:
                matrix.add(pmo, base, 0x1000, Access.RW)
                model[pmo] = base
            elif not add and pmo in model:
                matrix.remove(pmo)
                del model[pmo]
        for slot in range(8):
            pmo = f"p{slot}"
            covered = matrix.check(slot * 0x10000, Access.READ)
            assert covered == (pmo in model)


class TestPkruModel:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(1, NUM_KEYS - 1),
                              st.sampled_from(["r", "rw", "revoke"])),
                    max_size=40))
    def test_set_revoke_matches_model(self, ops):
        pkru = Pkru()
        model = {}
        for key, mode in ops:
            if mode == "revoke":
                pkru.revoke(key)
                model[key] = ""
            else:
                pkru.set(key, Access.parse(mode))
                model[key] = mode
        for key, mode in model.items():
            assert pkru.allows(key, Access.READ) == ("r" in mode)
            assert pkru.allows(key, Access.WRITE) == ("w" in mode)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, NUM_KEYS - 1), st.integers(1, NUM_KEYS - 1))
    def test_keys_do_not_interfere(self, a, b):
        if a == b:
            return
        pkru = Pkru()
        pkru.set(a, Access.RW)
        pkru.revoke(b)
        assert pkru.allows(a, Access.RW)
        assert not pkru.allows(b, Access.READ)


class TestTlbModel:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 200), min_size=1, max_size=120))
    def test_hits_only_for_recent_fills(self, pages):
        """Anything the TLB reports as a hit must have been filled
        and not evicted; a model of per-set recency predicts hits."""
        tlb = Tlb(entries=16, ways=2)
        from collections import OrderedDict
        model_sets = [OrderedDict() for _ in range(tlb.num_sets)]
        for page in pages:
            va = page * PAGE_SIZE
            hit = tlb.lookup(va)
            entries = model_sets[page % tlb.num_sets]
            assert hit == (page in entries)
            if page in entries:
                entries.move_to_end(page)
            else:
                if len(entries) >= 2:
                    entries.popitem(last=False)
                entries[page] = True
            tlb.fill(va)
