"""MPK-style protection domains and per-thread PKRUs."""

import pytest

from repro.core.errors import TerpError
from repro.core.permissions import Access
from repro.mem.mpk import DEFAULT_KEY, NUM_KEYS, Pkru, ProtectionDomains


class TestPkru:
    def test_fresh_pkru_allows_default_key(self):
        assert Pkru().allows(DEFAULT_KEY, Access.RW)

    def test_set_read_only(self):
        pkru = Pkru()
        pkru.set(3, Access.READ)
        assert pkru.allows(3, Access.READ)
        assert not pkru.allows(3, Access.WRITE)

    def test_set_rw(self):
        pkru = Pkru()
        pkru.set(3, Access.RW)
        assert pkru.allows(3, Access.RW)

    def test_revoke(self):
        pkru = Pkru()
        pkru.set(3, Access.RW)
        pkru.revoke(3)
        assert not pkru.allows(3, Access.READ)

    def test_keys_independent(self):
        pkru = Pkru()
        pkru.set(1, Access.RW)
        pkru.revoke(2)
        assert pkru.allows(1, Access.WRITE)
        assert not pkru.allows(2, Access.READ)

    def test_granted_roundtrip(self):
        pkru = Pkru()
        pkru.set(5, Access.READ)
        assert pkru.granted(5) is Access.READ
        pkru.set(5, Access.RW)
        assert pkru.granted(5) is Access.RW

    def test_key_out_of_range(self):
        with pytest.raises(TerpError):
            Pkru().set(NUM_KEYS, Access.READ)
        with pytest.raises(TerpError):
            Pkru().allows(-1, Access.READ)


class TestProtectionDomains:
    def test_assign_is_stable(self):
        d = ProtectionDomains()
        k1 = d.assign("pmo1")
        assert d.assign("pmo1") == k1
        assert d.key_of("pmo1") == k1

    def test_distinct_pmos_distinct_keys(self):
        d = ProtectionDomains()
        assert d.assign("a") != d.assign("b")

    def test_key_exhaustion(self):
        d = ProtectionDomains()
        for i in range(NUM_KEYS - 1):  # key 0 reserved
            d.assign(f"pmo{i}")
        with pytest.raises(TerpError):
            d.assign("one-too-many")

    def test_release_recycles_key(self):
        d = ProtectionDomains()
        k = d.assign("a")
        d.release("a")
        assert d.assign("b") == k

    def test_new_thread_denied_by_default(self):
        """Figure 4 thread 3: no attach call, all accesses denied."""
        d = ProtectionDomains()
        d.assign("pmo1")
        assert not d.allows(thread_id=3, pmo_id="pmo1", requested=Access.READ)

    def test_grant_and_revoke(self):
        d = ProtectionDomains()
        d.assign("pmo1")
        d.grant(1, "pmo1", Access.READ)
        assert d.allows(1, "pmo1", Access.READ)
        assert not d.allows(1, "pmo1", Access.WRITE)
        d.revoke(1, "pmo1")
        assert not d.allows(1, "pmo1", Access.READ)

    def test_grants_are_per_thread(self):
        d = ProtectionDomains()
        d.assign("pmo1")
        d.grant(1, "pmo1", Access.RW)
        assert d.allows(1, "pmo1", Access.WRITE)
        assert not d.allows(2, "pmo1", Access.READ)

    def test_release_revokes_all_threads(self):
        """A recycled key must not leak access to its next owner."""
        d = ProtectionDomains()
        d.assign("old")
        d.grant(1, "old", Access.RW)
        d.release("old")
        d.assign("new")  # gets the same key
        assert not d.allows(1, "new", Access.READ)

    def test_allows_unassigned_pmo_false(self):
        assert not ProtectionDomains().allows(1, "ghost", Access.READ)

    def test_grant_unassigned_pmo_rejected(self):
        with pytest.raises(TerpError):
            ProtectionDomains().grant(1, "ghost", Access.READ)

    def test_pkru_write_counter(self):
        d = ProtectionDomains()
        d.assign("p")
        d.grant(1, "p", Access.RW)
        d.revoke(1, "p")
        assert d.pkru_writes == 2

    def test_release_unknown_is_noop(self):
        ProtectionDomains().release("ghost")  # must not raise
