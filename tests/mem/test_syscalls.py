"""Syscall-path cost composition vs Table II."""

import pytest

from repro.arch.params import DEFAULT_PARAMS
from repro.core.units import GIB, MIB
from repro.mem.syscalls import (
    attach_cost, detach_cost, page_based_attach_penalty,
    randomize_cost, STEP_COSTS)


class TestComposedTotals:
    def test_attach_matches_table2(self):
        assert attach_cost().total_cycles == pytest.approx(
            DEFAULT_PARAMS.attach_syscall, rel=0.05)

    def test_detach_matches_table2(self):
        assert detach_cost().total_cycles == pytest.approx(
            DEFAULT_PARAMS.detach_syscall, rel=0.05)

    def test_randomize_matches_table2(self):
        assert randomize_cost().total_cycles == pytest.approx(
            DEFAULT_PARAMS.randomization, rel=0.05)

    def test_breakdown_sums_to_total(self):
        cost = attach_cost()
        assert sum(cost.breakdown().values()) == cost.total_cycles


class TestSensitivity:
    def test_embedded_subtree_is_size_independent(self):
        small = attach_cost(embedded_subtree=True, pmo_pages=1)
        large = attach_cost(embedded_subtree=True, pmo_pages=262_144)
        assert small.total_cycles == large.total_cycles

    def test_page_based_attach_scales_with_size(self):
        small = attach_cost(embedded_subtree=False, pmo_pages=16)
        large = attach_cost(embedded_subtree=False, pmo_pages=1024)
        assert large.total_cycles > small.total_cycles

    def test_1gb_pmo_penalty_is_enormous(self):
        """The motivation for embedding the subtree: a conventional
        attach of a 1GB PMO costs thousands of times more."""
        assert page_based_attach_penalty(GIB) > 1_000
        assert page_based_attach_penalty(2 * MIB) > 3

    def test_randomize_scales_with_core_count(self):
        few = randomize_cost(remote_cores=1)
        many = randomize_cost(remote_cores=15)
        assert many.total_cycles > few.total_cycles
        assert (many.total_cycles - few.total_cycles) == \
            14 * STEP_COSTS["tlb_shootdown_ipi"]

    def test_mode_switch_dominates_fast_attach(self):
        """With O(1) mapping, the syscall mechanics (mode switch,
        state save) are the cost — the argument for making silent
        conditional ops user-level (27 cycles)."""
        breakdown = attach_cost().breakdown()
        mechanics = breakdown["mode_switch"] + \
            breakdown["state_save_restore"]
        assert mechanics > breakdown["pte_write"] * 10
        assert DEFAULT_PARAMS.silent_cond < mechanics / 40
