"""FaultPlan determinism, rule matching, and replay records."""

import pytest

from repro.core.errors import TerpError
from repro.faults.plan import NO_FAULTS, SITES, FaultPlan, FaultRule


class TestFaultRule:
    def test_unknown_site_rejected(self):
        with pytest.raises(TerpError, match="unknown injection site"):
            FaultRule("nope.nope")

    def test_bad_probability_rejected(self):
        with pytest.raises(TerpError):
            FaultRule("lib.storage_write", probability=1.5)

    def test_roundtrip_dict(self):
        rule = FaultRule("server.conn_drop", "before",
                         probability=0.25, count=3, after=2,
                         delay_ns=500)
        assert FaultRule.from_dict(rule.to_dict()) == rule


class TestFireSemantics:
    def test_no_rules_is_a_miss(self):
        plan = FaultPlan(seed=1, rules=[])
        assert plan.fire("lib.storage_write") is None
        assert plan.fired() == []

    def test_count_limits_fires(self):
        plan = FaultPlan(seed=1, rules=[
            FaultRule("lib.storage_write", count=2)])
        fires = [plan.fire("lib.storage_write") for _ in range(5)]
        assert [f is not None for f in fires] == \
            [True, True, False, False, False]

    def test_after_skips_arrivals(self):
        plan = FaultPlan(seed=1, rules=[
            FaultRule("lib.storage_write", after=3, count=1)])
        fires = [plan.fire("lib.storage_write") for _ in range(5)]
        assert [f is not None for f in fires] == \
            [False, False, False, True, False]

    def test_sites_are_independent(self):
        plan = FaultPlan(seed=1, rules=[
            FaultRule("lib.storage_write", count=1)])
        assert plan.fire("lib.psync_stall") is None
        assert plan.fire("lib.storage_write") is not None

    def test_first_matching_rule_wins(self):
        first = FaultRule("lib.storage_write", kind="error", count=1)
        second = FaultRule("lib.storage_write", kind="crash")
        plan = FaultPlan(seed=1, rules=[first, second])
        assert plan.fire("lib.storage_write") is first
        # first is exhausted; the second rule takes over.
        assert plan.fire("lib.storage_write") is second

    def test_disarm_suspends_even_arrival_counting(self):
        plan = FaultPlan(seed=1, rules=[
            FaultRule("lib.storage_write", after=1, count=1)])
        plan.disarm()
        for _ in range(10):
            assert plan.fire("lib.storage_write") is None
        plan.arm()
        assert plan.fire("lib.storage_write") is None   # arrival 1
        assert plan.fire("lib.storage_write") is not None

    def test_duplicate_rules_keep_their_own_index(self):
        rule = FaultRule("lib.storage_write", count=1)
        plan = FaultPlan(seed=1, rules=[rule, rule])
        plan.fire("lib.storage_write")
        plan.fire("lib.storage_write")
        assert [inj.rule_index for inj in plan.fired()] == [0, 1]


class TestDeterminism:
    def make(self, seed):
        return FaultPlan(seed=seed, rules=[
            FaultRule("lib.storage_write", probability=0.3),
            FaultRule("server.conn_drop", probability=0.3)])

    def test_same_seed_same_schedule(self):
        a, b = self.make(99), self.make(99)
        pattern_a = [a.fire("lib.storage_write") is not None
                     for _ in range(50)]
        pattern_b = [b.fire("lib.storage_write") is not None
                     for _ in range(50)]
        assert pattern_a == pattern_b
        assert any(pattern_a) and not all(pattern_a)

    def test_different_seed_different_schedule(self):
        patterns = set()
        for seed in range(8):
            plan = self.make(seed)
            patterns.add(tuple(
                plan.fire("lib.storage_write") is not None
                for _ in range(50)))
        assert len(patterns) > 1

    def test_traffic_at_other_sites_does_not_shift_schedule(self):
        a, b = self.make(5), self.make(5)
        pattern_a = []
        for i in range(40):
            if i % 2:
                a.fire("server.conn_drop")   # interleaved traffic
            pattern_a.append(a.fire("lib.storage_write") is not None)
        pattern_b = [b.fire("lib.storage_write") is not None
                     for _ in range(40)]
        assert pattern_a == pattern_b


class TestReporting:
    def test_injections_recorded_with_sequence(self):
        plan = FaultPlan(seed=1, rules=[
            FaultRule("lib.storage_write", count=2)])
        plan.fire("lib.storage_write")
        plan.fire("lib.storage_write")
        records = plan.fired("lib.storage_write")
        assert [r.seq for r in records] == [1, 2]
        assert [r.arrival for r in records] == [1, 2]

    def test_minimal_plan_is_only_fired_rules(self):
        never = FaultRule("server.conn_drop", probability=0.0)
        always = FaultRule("lib.storage_write", count=1)
        plan = FaultPlan(seed=1, rules=[never, always])
        plan.fire("server.conn_drop")
        plan.fire("lib.storage_write")
        assert plan.minimal() == [always]

    def test_describe_mentions_seed(self):
        plan = FaultPlan(seed=123, rules=[
            FaultRule("lib.storage_write", count=1)])
        plan.fire("lib.storage_write")
        assert '"seed": 123' in plan.describe()

    def test_on_fire_hook_sees_each_injection(self):
        seen = []
        plan = FaultPlan(seed=1, rules=[
            FaultRule("lib.storage_write", count=2)],
            on_fire=seen.append)
        plan.fire("lib.storage_write")
        plan.fire("lib.storage_write")
        plan.fire("lib.storage_write")
        assert [inj.seq for inj in seen] == [1, 2]

    def test_no_faults_singleton_is_inert(self):
        for site in SITES:
            assert NO_FAULTS.fire(site) is None
