"""Failover chaos: SIGKILL the primary, promote, check I1-I7.

One seeded run (the same one CI's replication-smoke executes): a real
two-process primary/standby pair, writers committing monotone
counters, the primary SIGKILLed mid-group-commit, the standby
promoted onto the primary's port, and the verdict requiring the
merged audit timeline to satisfy I1-I6 plus I7 — every acknowledged
write served back by the promoted daemon.
"""

from repro.faults.failover_chaos import run_failover_chaos


def test_failover_chaos_seed_42():
    result = run_failover_chaos(42)
    assert result.ok, "\n" + result.describe()
    assert result.unexpected == []
    assert result.promoted
    assert result.restart_seen
    assert result.outage_attributed
    # The run actually exercised both phases of the failover.
    assert result.acks_before_kill > 0
    assert result.acks_after_promote > 0
    # I7: nothing the dead primary acknowledged is below the promoted
    # daemon's read-back.
    assert result.i7_report.ok, result.i7_report.describe()
    for idx, promised in result.acked.items():
        assert result.observed[idx] is not None
        assert result.observed[idx] >= promised
    assert result.report.ok, result.report.describe()
