"""The temporal-protection theorem, property-tested under chaos.

Each case draws a seeded random fault plan (connection drops, partial
frames, injected crashes, storage faults, sweeper stalls, ...), runs a
multi-session terpd workload through it, and replays the audit
timeline against invariants I1-I5.  Any failure message carries the
seed and the minimal fault plan:

    python -m repro.faults.chaos --seed <N>

reproduces the run outside pytest.
"""

import pytest

from repro.faults.chaos import (
    ChaosResult, RestartChaosResult, random_plan, restart_plan,
    run_chaos, run_restart_chaos)
from repro.faults.plan import FaultPlan, FaultRule

#: The property quantifies over this many seeded fault plans.
SEEDS = range(200)

#: The kill-and-restart leg spins up two real daemons per seed, so it
#: quantifies over fewer plans than the in-process property above.
RESTART_SEEDS = range(40)


@pytest.mark.parametrize("seed", SEEDS)
def test_theorem_holds_under_chaos(seed):
    result = run_chaos(seed, sessions=2, requests=2)
    assert result.ok, "\n" + result.describe()


class TestAcceptanceRun:
    """One demonstrably-faulted run: every fault class visibly fired,
    every request was acked or typed-failed, zero EW violations."""

    PLAN_RULES = [
        FaultRule("lib.storage_write", "error", after=1, count=1),
        FaultRule("engine.sweep_stall", "stall", after=2, count=2),
        FaultRule("server.conn_drop", "before", after=4, count=1),
    ]

    @pytest.fixture(scope="class")
    def result(self) -> ChaosResult:
        plan = FaultPlan(seed=4242, rules=list(self.PLAN_RULES))
        return run_chaos(4242, plan=plan, sessions=2, requests=3)

    def test_run_is_clean(self, result):
        assert result.ok, "\n" + result.describe()
        assert result.requests_ok > 0
        assert not result.unexpected

    def test_all_three_fault_classes_fired(self, result):
        for site in ("lib.storage_write", "engine.sweep_stall",
                     "server.conn_drop"):
            assert result.faults_by_site.get(site, 0) >= 1, \
                f"{site} never fired: {result.faults_by_site}"

    def test_faults_are_on_the_audit_timeline(self, result):
        for site in ("lib.storage_write", "engine.sweep_stall",
                     "server.conn_drop"):
            assert result.faults_in_audit.get(site, 0) >= 1, \
                f"{site} missing from audit: {result.faults_in_audit}"

    def test_dropped_connection_was_survived(self, result):
        # The conn drop forces a reconnect+resume (or, at worst, a
        # typed failure) — never a hang or an untyped exception.
        assert result.resumes >= 1 or result.requests_failed >= 1

    def test_verdict_serializes(self, result):
        verdict = result.to_dict()
        assert verdict["seed"] == 4242
        assert verdict["ok"] is True
        assert verdict["plan"]["rules"]


@pytest.mark.parametrize("seed", RESTART_SEEDS)
def test_theorem_holds_across_restart(seed):
    """I6: kill -9 the daemon mid-workload, recover the pool, and the
    merged pre/post-crash timeline still bounds every exposure."""
    result = run_restart_chaos(seed)
    assert result.ok, "\n" + result.describe()


class TestRestartAcceptanceRun:
    """One kill-and-restart run with a guaranteed torn page: the fault
    visibly fired, the journal repaired it, and every restart property
    (data, resume, attribution, I1-I6) held."""

    @pytest.fixture(scope="class")
    def result(self) -> RestartChaosResult:
        # Tear every home-page write; the long sweep period keeps the
        # live scrubber from healing the final tear before the kill,
        # so the repair demonstrably comes from the recovery journal
        # replay.
        plan = FaultPlan(seed=777, rules=[
            FaultRule("store.torn_page", "torn", probability=1.0,
                      count=1000),
        ])
        return run_restart_chaos(777, plan=plan,
                                 sweep_period_ns=60_000_000_000)

    def test_run_is_clean(self, result):
        assert result.ok, "\n" + result.describe()

    def test_torn_page_fired_and_was_repaired(self, result):
        assert result.faults_by_site.get("store.torn_page", 0) >= 1
        assert result.pages_repaired >= 1

    def test_recovery_report_restored_the_session(self, result):
        assert result.recovery.get("sessions_restored", 0) >= 1
        assert result.session_resumed

    def test_verdict_serializes(self, result):
        verdict = result.to_dict()
        assert verdict["seed"] == 777
        assert verdict["ok"] is True


class TestPlanGeneration:
    def test_random_plan_is_seed_deterministic(self):
        a, b = random_plan(17), random_plan(17)
        assert [r.to_dict() for r in a.rules] == \
            [r.to_dict() for r in b.rules]

    def test_random_plans_vary_across_seeds(self):
        shapes = {tuple(r.site for r in random_plan(s).rules)
                  for s in range(20)}
        assert len(shapes) > 1

    def test_restart_plan_is_seed_deterministic(self):
        a, b = restart_plan(23), restart_plan(23)
        assert [r.to_dict() for r in a.rules] == \
            [r.to_dict() for r in b.rules]

    def test_restart_plan_never_injects_bit_rot(self):
        # Rot quarantines the workload PMO; the restart leg's property
        # is that committed data survives intact, so rot is excluded.
        for seed in range(50):
            assert all(r.site != "store.bit_rot"
                       for r in restart_plan(seed).rules)
