"""The temporal-protection theorem, property-tested under chaos.

Each case draws a seeded random fault plan (connection drops, partial
frames, injected crashes, storage faults, sweeper stalls, ...), runs a
multi-session terpd workload through it, and replays the audit
timeline against invariants I1-I5.  Any failure message carries the
seed and the minimal fault plan:

    python -m repro.faults.chaos --seed <N>

reproduces the run outside pytest.
"""

import pytest

from repro.faults.chaos import ChaosResult, random_plan, run_chaos
from repro.faults.plan import FaultPlan, FaultRule

#: The property quantifies over this many seeded fault plans.
SEEDS = range(200)


@pytest.mark.parametrize("seed", SEEDS)
def test_theorem_holds_under_chaos(seed):
    result = run_chaos(seed, sessions=2, requests=2)
    assert result.ok, "\n" + result.describe()


class TestAcceptanceRun:
    """One demonstrably-faulted run: every fault class visibly fired,
    every request was acked or typed-failed, zero EW violations."""

    PLAN_RULES = [
        FaultRule("lib.storage_write", "error", after=1, count=1),
        FaultRule("engine.sweep_stall", "stall", after=2, count=2),
        FaultRule("server.conn_drop", "before", after=4, count=1),
    ]

    @pytest.fixture(scope="class")
    def result(self) -> ChaosResult:
        plan = FaultPlan(seed=4242, rules=list(self.PLAN_RULES))
        return run_chaos(4242, plan=plan, sessions=2, requests=3)

    def test_run_is_clean(self, result):
        assert result.ok, "\n" + result.describe()
        assert result.requests_ok > 0
        assert not result.unexpected

    def test_all_three_fault_classes_fired(self, result):
        for site in ("lib.storage_write", "engine.sweep_stall",
                     "server.conn_drop"):
            assert result.faults_by_site.get(site, 0) >= 1, \
                f"{site} never fired: {result.faults_by_site}"

    def test_faults_are_on_the_audit_timeline(self, result):
        for site in ("lib.storage_write", "engine.sweep_stall",
                     "server.conn_drop"):
            assert result.faults_in_audit.get(site, 0) >= 1, \
                f"{site} missing from audit: {result.faults_in_audit}"

    def test_dropped_connection_was_survived(self, result):
        # The conn drop forces a reconnect+resume (or, at worst, a
        # typed failure) — never a hang or an untyped exception.
        assert result.resumes >= 1 or result.requests_failed >= 1

    def test_verdict_serializes(self, result):
        verdict = result.to_dict()
        assert verdict["seed"] == 4242
        assert verdict["ok"] is True
        assert verdict["plan"]["rules"]


class TestPlanGeneration:
    def test_random_plan_is_seed_deterministic(self):
        a, b = random_plan(17), random_plan(17)
        assert [r.to_dict() for r in a.rules] == \
            [r.to_dict() for r in b.rules]

    def test_random_plans_vary_across_seeds(self):
        shapes = {tuple(r.site for r in random_plan(s).rules)
                  for s in range(20)}
        assert len(shapes) > 1
