"""The invariant checker: clean timelines pass, each breach is caught."""

from repro.faults.invariants import check_events, check_timeline
from repro.obs.audit import AuditTimeline


def attach(entity, pmo_id, at, name="data"):
    return {"kind": "attach", "entity": entity, "pmo_id": pmo_id,
            "pmo": name, "at_ns": at, "duration_ns": None,
            "reason": "performed"}


def detach(entity, pmo_id, at, duration, *, forced=False,
           reason="performed", name="data"):
    return {"kind": "forced-detach" if forced else "detach",
            "entity": entity, "pmo_id": pmo_id, "pmo": name,
            "at_ns": at, "duration_ns": duration, "reason": reason}


class TestCleanTimelines:
    def test_empty_is_ok(self):
        report = check_events([])
        assert report.ok
        assert report.windows_checked == 0

    def test_simple_pair_is_ok(self):
        report = check_events(
            [attach(1, 10, 0), detach(1, 10, 50, 50)],
            ew_budget_ns=100)
        assert report.ok
        assert report.windows_checked == 1
        assert report.max_held_ns == 50

    def test_forced_close_with_reason_is_ok(self):
        report = check_events(
            [attach(1, 10, 0),
             detach(1, 10, 90, 90, forced=True, reason="budget")],
            ew_budget_ns=100)
        assert report.ok

    def test_silent_noop_detach_is_ok(self):
        # A detach closing nothing with duration None is the defined
        # silent outcome (racing the sweeper), not a pairing breach.
        report = check_events(
            [attach(1, 10, 0),
             detach(1, 10, 50, 50, forced=True, reason="sweeper"),
             detach(1, 10, 60, None)])
        assert report.ok

    def test_sequential_windows_same_pair_ok(self):
        report = check_events(
            [attach(1, 10, 0), detach(1, 10, 40, 40),
             attach(1, 10, 50), detach(1, 10, 70, 20)],
            ew_budget_ns=100)
        assert report.ok
        assert report.windows_checked == 2

    def test_two_entities_may_hold_concurrently(self):
        # Per-thread EWs must not overlap; windows of *different*
        # entities on the same PMO legitimately do (window combining).
        report = check_events(
            [attach(1, 10, 0), attach(2, 10, 10),
             detach(1, 10, 40, 40), detach(2, 10, 50, 40)])
        assert report.ok


class TestEachInvariantCatches:
    def test_i1_bounded_exposure(self):
        report = check_events(
            [attach(1, 10, 0), detach(1, 10, 500, 500)],
            ew_budget_ns=100, slack_ns=50)
        assert not report.ok
        assert report.violations[0].invariant == "bounded-exposure"

    def test_i1_respects_slack(self):
        report = check_events(
            [attach(1, 10, 0), detach(1, 10, 140, 140)],
            ew_budget_ns=100, slack_ns=50)
        assert report.ok

    def test_i2_overlap(self):
        report = check_events(
            [attach(1, 10, 0), attach(1, 10, 10)])
        assert any(v.invariant == "overlap"
                   for v in report.violations)

    def test_i3_unattributed_force(self):
        report = check_events(
            [attach(1, 10, 0),
             detach(1, 10, 50, 50, forced=True, reason="")])
        assert any(v.invariant == "attributed-force"
                   for v in report.violations)

    def test_i4_duration_must_match_replay(self):
        report = check_events(
            [attach(1, 10, 0), detach(1, 10, 50, 999)])
        assert any(v.invariant == "pairing"
                   for v in report.violations)

    def test_i4_phantom_duration(self):
        report = check_events([detach(1, 10, 50, 50)])
        assert any(v.invariant == "pairing"
                   for v in report.violations)

    def test_i4_summary_drift(self):
        events = [attach(1, 10, 0), detach(1, 10, 50, 50)]
        summary = {"per_pmo": {"data": {
            "pmo": "data", "attaches": 2, "detaches": 1,
            "forced_detaches": 0, "windows": 1,
            "held_total_ns": 50, "held_max_ns": 50}}}
        report = check_events(events, summary=summary)
        assert any(v.invariant == "exact-pairing"
                   for v in report.violations)

    def test_i5_open_window_at_end(self):
        report = check_events(
            [attach(1, 10, 0)],
            open_windows=[{"entity": 1, "pmo_id": 10, "since_ns": 0}])
        assert any(v.invariant == "eventual-closure"
                   for v in report.violations)


class TestAgainstLiveTimeline:
    def test_real_timeline_roundtrip(self):
        audit = AuditTimeline()
        audit.record_attach(1, 10, "data", 0)
        audit.record_detach(1, 10, "data", 60, forced=False)
        audit.record_attach(2, 10, "data", 100)
        audit.record_detach(2, 10, "data", 180, forced=True,
                            reason="budget elapsed")
        audit.record_sweep(200, closed=1)
        report = check_timeline(audit, ew_budget_ns=100, slack_ns=0)
        assert report.ok, report.describe()
        assert report.windows_checked == 2

    def test_still_open_window_flagged(self):
        audit = AuditTimeline()
        audit.record_attach(1, 10, "data", 0)
        report = check_timeline(audit)
        assert any(v.invariant == "eventual-closure"
                   for v in report.violations)
        report = check_timeline(audit, at_end=False)
        assert report.ok

    def test_wrapped_ring_degrades_gracefully(self):
        audit = AuditTimeline(capacity=8)
        for i in range(20):
            audit.record_attach(1, 10, "data", i * 100)
            audit.record_detach(1, 10, "data", i * 100 + 50, forced=False)
        report = check_timeline(audit, ew_budget_ns=100)
        assert report.ok
        assert not report.pairing_checked

    def test_wrapped_ring_still_bounds_exposure(self):
        audit = AuditTimeline(capacity=4)
        for i in range(10):
            audit.record_attach(1, 10, "data", i * 1000)
            audit.record_detach(1, 10, "data", i * 1000 + 900,
                                forced=False)
        report = check_timeline(audit, ew_budget_ns=100, slack_ns=0)
        assert not report.ok
        assert any(v.invariant == "bounded-exposure"
                   for v in report.violations)


def restart(at, downtime):
    return {"kind": "restart", "entity": None, "pmo_id": None,
            "pmo": None, "at_ns": at, "duration_ns": downtime,
            "reason": "warm restart"}


class TestI6RestartExposure:
    """I6: exposure bounded across restart — the outage extends the
    allowance exactly once, and recovery must force-close, promptly,
    every window that was open across it."""

    def test_forced_close_at_restart_is_ok(self):
        # Attach at 0, crash, 400ns outage, recovery closes forced.
        report = check_events(
            [attach(1, 10, 0), restart(450, 400),
             detach(1, 10, 450, 450, forced=True,
                    reason="EW budget elapsed during daemon outage")],
            ew_budget_ns=100, slack_ns=50)
        assert report.ok, report.describe()

    def test_outage_extends_allowance_only_for_spanning_windows(self):
        # A window opened *after* the restart gets no outage credit.
        report = check_events(
            [restart(100, 400),
             attach(1, 10, 200), detach(1, 10, 700, 500)],
            ew_budget_ns=100, slack_ns=50)
        assert not report.ok
        assert report.violations[0].invariant == "bounded-exposure"

    def test_voluntary_close_across_restart_violates(self):
        # Recovery may never hand a pre-crash window back.
        report = check_events(
            [attach(1, 10, 0), restart(450, 400),
             detach(1, 10, 460, 460)],
            ew_budget_ns=100, slack_ns=50)
        assert not report.ok
        assert any(v.invariant == "restart-exposure"
                   for v in report.violations)

    def test_late_forced_close_after_restart_violates(self):
        # Forced, but long after the restart instant: enforcement
        # cannot lag recovery by more than the slack.
        report = check_events(
            [attach(1, 10, 0), restart(450, 400),
             detach(1, 10, 900, 900, forced=True, reason="late")],
            ew_budget_ns=100, slack_ns=50)
        assert not report.ok
        assert any(v.invariant == "restart-exposure"
                   for v in report.violations)

    def test_never_closed_after_restart_violates(self):
        report = check_events(
            [attach(1, 10, 0), restart(450, 400)],
            ew_budget_ns=100, slack_ns=50)
        assert not report.ok
        assert any(v.invariant == "restart-exposure"
                   for v in report.violations)

    def test_window_closed_before_restart_unaffected(self):
        report = check_events(
            [attach(1, 10, 0), detach(1, 10, 80, 80),
             restart(450, 400),
             attach(1, 10, 500), detach(1, 10, 560, 60)],
            ew_budget_ns=100, slack_ns=50)
        assert report.ok, report.describe()

    def test_two_restarts_both_credited(self):
        # A window spanning two outages gets both downtimes.
        report = check_events(
            [attach(1, 10, 0),
             restart(200, 150), restart(500, 250),
             detach(1, 10, 500, 500, forced=True, reason="outage")],
            ew_budget_ns=100, slack_ns=50)
        assert report.ok, report.describe()

    def test_wrapped_timeline_grants_total_downtime(self):
        # Degraded I6 on a wrapped ring: every window gets the total
        # retained downtime as extra slack.
        audit = AuditTimeline(capacity=4)
        audit.record_attach(1, 10, "data", 0)
        audit.record_restart(450, downtime_ns=400)
        audit.record_detach(1, 10, "data", 450, forced=True,
                            reason="outage")
        # Force the wrap accounting path.
        for i in range(6):
            audit.record_attach(2, 11, "x", 500 + i)
            audit.record_detach(2, 11, "x", 501 + i)
        assert audit.events_recorded > audit.capacity
        report = check_timeline(audit, ew_budget_ns=100, slack_ns=50)
        assert not report.pairing_checked
