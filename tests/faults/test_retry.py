"""Backoff determinism, breaker transitions, idempotent replay."""

import pytest

from repro.core.errors import TerpError
from repro.faults.plan import FaultPlan, FaultRule
from repro.service.client import (
    ConnectionLost, RemoteError, SyncTerpClient)
from repro.service.retry import (
    CircuitBreaker, CircuitOpenError, RetryPolicy)
from repro.service.server import ServiceThread, TerpService


class TestRetryPolicy:
    def test_zero_jitter_is_exact_exponential(self):
        policy = RetryPolicy(base_delay_s=0.001, multiplier=2.0,
                             max_delay_s=0.005, jitter=0.0)
        assert policy.sequence(5) == \
            [0.001, 0.002, 0.004, 0.005, 0.005]

    def test_seeded_sequence_is_deterministic(self):
        a = RetryPolicy(seed=5).sequence(8)
        b = RetryPolicy(seed=5).sequence(8)
        assert a == b
        assert RetryPolicy(seed=6).sequence(8) != a

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay_s=0.001, multiplier=2.0,
                             max_delay_s=1.0, jitter=0.5, seed=1)
        for attempt, delay in enumerate(policy.sequence(10)):
            ceiling = 0.001 * 2.0 ** attempt
            assert 0.5 * ceiling <= delay <= ceiling

    def test_backoff_uses_injected_sleep(self):
        slept = []
        policy = RetryPolicy(seed=1, sleep=slept.append)
        returned = policy.backoff(0)
        assert slept == [returned]

    def test_sequence_defaults_to_max_retries(self):
        assert len(RetryPolicy(max_retries=3, seed=1).sequence()) == 3

    def test_invalid_parameters_rejected(self):
        with pytest.raises(TerpError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(TerpError):
            RetryPolicy(jitter=1.5)


class TestCircuitBreaker:
    def make(self, threshold=2, timeout=1.0):
        now = [0.0]
        breaker = CircuitBreaker(failure_threshold=threshold,
                                 reset_timeout_s=timeout,
                                 clock=lambda: now[0])
        return breaker, now

    def test_starts_closed_and_allows(self):
        breaker, _ = self.make()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_opens_after_consecutive_failures(self):
        breaker, _ = self.make(threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 1

    def test_success_resets_the_failure_count(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_open_degrades_to_read_only(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        assert not breaker.allow(readonly=False)
        assert breaker.allow(readonly=True)

    def test_half_open_admits_one_probe(self):
        breaker, now = self.make(timeout=1.0)
        breaker.record_failure()
        breaker.record_failure()
        now[0] = 1.0
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()            # the probe
        assert not breaker.allow()        # no second probe
        assert breaker.allow(readonly=True)

    def test_probe_success_closes(self):
        breaker, now = self.make()
        breaker.record_failure()
        breaker.record_failure()
        now[0] = 1.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens(self):
        breaker, now = self.make()
        breaker.record_failure()
        breaker.record_failure()
        now[0] = 1.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 2
        assert not breaker.allow()
        now[0] = 2.0
        assert breaker.allow()            # next probe after timeout

    def test_circuit_open_error_is_typed(self):
        assert issubclass(CircuitOpenError, TerpError)

    def test_half_open_probe_busy_reopens(self):
        """Regression: a half-open probe answered ``Busy`` must
        re-open the circuit — the server is reachable but still
        shedding load, so the probe did not prove recovery."""
        breaker, now = self.make(timeout=1.0)
        breaker.record_failure()
        breaker.record_failure()
        now[0] = 1.0
        assert breaker.allow()            # the probe
        breaker.record_busy()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 2
        assert not breaker.allow()
        now[0] = 2.0
        assert breaker.allow()            # next probe after timeout

    def test_half_open_busy_does_not_double_count_failures(self):
        """The ``Busy`` that re-opened the circuit must not also
        count toward the closed-state failure threshold: after the
        re-open resolves, it takes a full run of *fresh* consecutive
        failures to open the circuit again."""
        breaker, now = self.make(threshold=2, timeout=1.0)
        breaker.record_failure()
        breaker.record_failure()          # open #1
        now[0] = 1.0
        assert breaker.allow()
        breaker.record_busy()             # open #2, no failure bump
        now[0] = 2.0
        assert breaker.allow()
        breaker.record_success()          # probe succeeds: closed
        assert breaker.state == CircuitBreaker.CLOSED
        # One failure is below the threshold — if the earlier Busy
        # had leaked into the count, this would open the circuit.
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.opens == 2

    def test_closed_state_busy_clears_failure_streak(self):
        """A ``Busy`` round trip proves the connection is alive: it
        resets the consecutive-failure count instead of opening."""
        breaker, _ = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_busy()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED


def service_with(plan, **kwargs):
    kwargs.setdefault("session_ew_ns", 1_000_000_000)
    return TerpService(port=0, seed=7, faults=plan, **kwargs)


class TestTypedDisconnect:
    def test_pipeline_surfaces_connection_lost(self):
        # Satellite fix: a server disconnect mid-pipeline is a typed
        # ConnectionLost (a RemoteError), not a bare wire error.
        assert issubclass(ConnectionLost, RemoteError)
        plan = FaultPlan(seed=1, rules=[
            FaultRule("server.conn_drop", "before", count=1)])
        plan.disarm()
        with ServiceThread(service_with(plan)) as svc:
            client = SyncTerpClient(port=svc.bound_port, user="alice")
            client.connect()
            plan.arm()
            with pytest.raises(ConnectionLost):
                client.pipeline([("ping", {}), ("ping", {})])
            plan.disarm()
            client.close()

    def test_retry_reconnects_and_resumes_after_drop(self):
        plan = FaultPlan(seed=1, rules=[
            FaultRule("server.conn_drop", "before", count=1)])
        plan.disarm()
        with ServiceThread(service_with(plan)) as svc:
            client = SyncTerpClient(
                port=svc.bound_port, user="alice",
                retry=RetryPolicy(base_delay_s=0.0001, seed=3))
            client.connect()
            session_id = client.session_id
            plan.arm()
            assert client.ping()["sessions"] == 1
            plan.disarm()
            assert client.resumes == 1
            assert client.session_id == session_id
            client.goodbye()
            client.close()


class TestReplayIdempotency:
    def test_lost_response_is_replayed_not_reexecuted(self):
        # The attach executes server-side, the response frame is cut
        # short, the client retries the same rid after resuming: the
        # replay cache answers and the attach does NOT run twice.
        plan = FaultPlan(seed=1, rules=[
            FaultRule("server.partial_frame", "after", count=1)])
        plan.disarm()
        service = service_with(plan)
        with ServiceThread(service) as svc:
            port = svc.bound_port
            with SyncTerpClient(port=port, user="admin") as admin:
                admin.create("idem", 1 << 20, mode=0o666)
            client = SyncTerpClient(
                port=port, user="alice",
                retry=RetryPolicy(base_delay_s=0.0001, seed=3))
            client.connect()
            plan.arm()
            client.attach("idem")
            plan.disarm()
            assert plan.fired("server.partial_frame")
            assert client.resumes == 1
            assert service.metrics.replays_served == 1
            # The disconnect force-released the window; the client's
            # own detach is the defined silent no-op.
            client.detach("idem")
            client.goodbye()
            client.close()
        summary = service.obs.audit.summary()
        stats = summary["per_pmo"]["idem"]
        assert stats["attaches"] == 1
        assert stats["forced_detaches"] == 1
        events = service.obs.audit.events()
        assert any(e["kind"] == "forced-detach"
                   and "connection lost" in e["reason"]
                   for e in events)
