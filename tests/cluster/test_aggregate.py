"""Cross-shard metric merging: counters add, buckets merge exactly."""

from repro.cluster.aggregate import (
    aggregate_metrics, label_prometheus, merge_histograms,
    merge_latency_summaries, sum_tree)
from repro.obs.registry import MetricsRegistry


class TestSumTree:
    def test_numbers_add_and_dicts_merge(self):
        merged = sum_tree([
            {"a": 1, "nested": {"x": 2}, "only_left": 5},
            {"a": 10, "nested": {"x": 20, "y": 1}},
        ])
        assert merged == {"a": 11, "nested": {"x": 22, "y": 1},
                          "only_left": 5}

    def test_non_numeric_keeps_first(self):
        assert sum_tree(["foo", "bar"]) == "foo"
        assert sum_tree([True, False]) is True
        assert sum_tree([None, 3]) == 3


class TestHistogramMerge:
    def _hist(self, values):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "test")
        for value in values:
            hist.observe(value)
        return hist.to_dict()

    def test_merged_percentiles_come_from_the_union(self):
        # Shard A saw fast requests, shard B slow ones: the merged
        # p99 must reflect B's tail, which no weighted average of
        # the two shards' p99s would produce for p50.
        a = self._hist([1_000] * 90)          # 90 x 1us
        b = self._hist([1_000_000] * 10)      # 10 x 1ms
        merged = merge_histograms([a, b])
        assert merged["count"] == 100
        # p50 lands in a's bucket, p99 reaches into b's.
        assert merged["p50_us"] <= 10.0
        assert merged["p99_us"] >= 500.0
        assert merged["max_us"] == 1_000.0

    def test_mean_and_max_are_exact(self):
        a = self._hist([2_000, 4_000])
        b = self._hist([6_000])
        merged = merge_histograms([a, b])
        assert merged["count"] == 3
        assert abs(merged["mean_us"] - 4.0) < 1e-9
        assert merged["max_us"] == 6.0

    def test_empty_merge(self):
        assert merge_histograms([])["count"] == 0
        assert merge_latency_summaries([])["count"] == 0

    def test_summary_fallback_weights_by_count(self):
        merged = merge_latency_summaries([
            {"count": 9, "mean_us": 1.0, "p50_us": 1.0,
             "p99_us": 2.0, "max_us": 2.0},
            {"count": 1, "mean_us": 11.0, "p50_us": 11.0,
             "p99_us": 11.0, "max_us": 11.0},
        ])
        assert merged["count"] == 10
        assert abs(merged["mean_us"] - 2.0) < 1e-9
        assert merged["max_us"] == 11.0


def _report(shard, requests, hist_values):
    registry = MetricsRegistry()
    hist = registry.histogram("terpd_request_latency_ns", "req")
    for value in hist_values:
        hist.observe(value)
    return {
        "shard": shard,
        "global": {"requests": requests, "errors": 0,
                   "request_latency": {"count": len(hist_values)},
                   "sweep_latency": {"count": 0}},
        "sessions": 1,
        "runtime": {"attach_calls": requests},
        "arch_cases": {"case1_first_attach": 1},
        "audit": {"attaches": 2, "windows": 2,
                  "held_mean_ns": 100.0, "held_max_ns": 150},
        "trace": {"started": 5, "recorded": 5},
        "registry": registry.to_dict(),
    }


class TestAggregateMetrics:
    def test_counters_add_and_shards_are_labelled(self):
        merged = aggregate_metrics(
            [_report(0, 10, [1_000]), _report(1, 32, [2_000])],
            sessions=3)
        assert merged["global"]["requests"] == 42
        assert merged["sessions"] == 3          # the router's truth
        assert merged["runtime"]["attach_calls"] == 42
        assert merged["cluster"]["shards"] == 2
        assert merged["cluster"]["per_shard_requests"] == \
            {"0": 10, "1": 32}
        assert merged["global"]["request_latency"]["count"] == 2

    def test_audit_held_stats_weighted_not_summed(self):
        a = _report(0, 1, [])
        b = _report(1, 1, [])
        a["audit"] = {"windows": 3, "held_mean_ns": 100.0,
                      "held_max_ns": 300}
        b["audit"] = {"windows": 1, "held_mean_ns": 500.0,
                      "held_max_ns": 500}
        merged = aggregate_metrics([a, b], sessions=0)
        assert merged["audit"]["windows"] == 4
        assert abs(merged["audit"]["held_mean_ns"] - 200.0) < 1e-9
        assert merged["audit"]["held_max_ns"] == 500

    def test_raw_less_shard_degrades_to_weighted_summaries(self):
        a = _report(0, 5, [1_000])
        b = _report(1, 5, [9_000])
        del b["registry"]            # a legacy shard: no buckets
        b["global"]["request_latency"] = {
            "count": 1, "mean_us": 9.0, "p50_us": 9.0,
            "p99_us": 9.0, "max_us": 9.0}
        a["global"]["request_latency"] = {
            "count": 1, "mean_us": 1.0, "p50_us": 1.0,
            "p99_us": 1.0, "max_us": 1.0}
        merged = aggregate_metrics([a, b], sessions=0)
        assert merged["global"]["request_latency"]["count"] == 2
        assert merged["global"]["request_latency"]["max_us"] == 9.0


class TestPrometheusLabels:
    def test_labels_injected_into_bare_and_labelled_samples(self):
        text = ("# HELP terpd_requests_total requests\n"
                "terpd_requests_total 41\n"
                'terpd_bucket{le="+Inf"} 7\n')
        out = label_prometheus(text, 3)
        assert 'terpd_requests_total{shard="3"} 41' in out
        assert 'terpd_bucket{shard="3",le="+Inf"} 7' in out
        assert out.startswith("# HELP")
