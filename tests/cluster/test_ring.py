"""The consistent-hash ring: determinism, balance, remap stability."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.ring import HashRing


class TestDeterminism:
    def test_same_seed_same_placement(self):
        a = HashRing(range(4), seed=2022)
        b = HashRing(range(4), seed=2022)
        keys = [f"pmo-{i}" for i in range(500)]
        assert [a.owner(k) for k in keys] == \
            [b.owner(k) for k in keys]

    def test_different_seed_different_placement(self):
        a = HashRing(range(4), seed=2022)
        b = HashRing(range(4), seed=2023)
        keys = [f"pmo-{i}" for i in range(500)]
        assert [a.owner(k) for k in keys] != \
            [b.owner(k) for k in keys]

    def test_build_order_is_irrelevant(self):
        a = HashRing([0, 1, 2, 3], seed=7)
        b = HashRing([3, 1, 0, 2], seed=7)
        keys = [f"k{i}" for i in range(200)]
        assert [a.owner(k) for k in keys] == \
            [b.owner(k) for k in keys]


class TestBalance:
    def test_load_spreads_across_shards(self):
        ring = HashRing(range(4), seed=2022)
        counts = {n: 0 for n in range(4)}
        for i in range(4000):
            counts[ring.owner(f"pmo-{i}")] += 1
        # With 96 vnodes the max/mean ratio stays modest.
        assert min(counts.values()) > 4000 / 4 * 0.5
        assert max(counts.values()) < 4000 / 4 * 1.7


class TestRemapStability:
    @settings(max_examples=30, deadline=None)
    @given(nodes=st.integers(min_value=2, max_value=8),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_removal_remaps_at_most_its_own_share(self, nodes, seed):
        """The consistent-hashing guarantee: removing one of N nodes
        moves only the keys that node owned — every key owned by a
        survivor keeps its owner.  (That is at most ~1/N of the
        keyspace in expectation, well under the 2/N acceptance
        bound.)"""
        ring = HashRing(range(nodes), seed=seed)
        keys = [f"key-{seed}-{i}" for i in range(600)]
        before = {k: ring.owner(k) for k in keys}
        victim = seed % nodes
        ring.remove_node(victim)
        moved = 0
        for k in keys:
            after = ring.owner(k)
            if before[k] != victim:
                assert after == before[k], \
                    "a survivor-owned key moved"
            else:
                moved += 1
                assert after != victim
        assert moved <= len(keys) * 2 / nodes

    @settings(max_examples=30, deadline=None)
    @given(nodes=st.integers(min_value=1, max_value=8),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_addition_steals_only_for_itself(self, nodes, seed):
        ring = HashRing(range(nodes), seed=seed)
        keys = [f"key-{seed}-{i}" for i in range(600)]
        before = {k: ring.owner(k) for k in keys}
        ring.add_node(nodes)
        moved = 0
        for k in keys:
            after = ring.owner(k)
            if after != before[k]:
                # A key only ever moves *to* the new node.
                assert after == nodes
                moved += 1
        assert moved <= len(keys) * 2 / (nodes + 1)

    def test_add_then_remove_restores_placement(self):
        ring = HashRing(range(3), seed=11)
        keys = [f"k{i}" for i in range(300)]
        before = {k: ring.owner(k) for k in keys}
        ring.add_node(3)
        ring.remove_node(3)
        assert {k: ring.owner(k) for k in keys} == before


class TestEdges:
    def test_duplicate_node_rejected(self):
        ring = HashRing(range(2))
        with pytest.raises(ValueError):
            ring.add_node(1)

    def test_missing_node_rejected(self):
        ring = HashRing(range(2))
        with pytest.raises(ValueError):
            ring.remove_node(9)

    def test_empty_ring_rejects_lookup(self):
        ring = HashRing([])
        with pytest.raises(ValueError):
            ring.owner("k")

    def test_len_and_nodes(self):
        ring = HashRing([2, 0, 1])
        assert len(ring) == 3
        assert ring.nodes == [0, 1, 2]
