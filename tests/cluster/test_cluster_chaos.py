"""Cluster chaos: kill a shard mid-traffic, check I1-I6 everywhere.

One seeded run (the same one CI's cluster-smoke executes): workers
hammer the router, shard 0 is SIGKILLed and warm-restarted, and the
exposure invariants must hold per shard *and* on the globally merged
timeline, with the victim's forced detaches outage-attributed and the
survivors untouched.
"""

from repro.faults.cluster_chaos import run_cluster_chaos


def test_cluster_chaos_seed_42_two_shards():
    result = run_cluster_chaos(
        42, shards=2, workers=4, rounds=5,
        session_ew_ns=400_000_000, sweep_period_ns=20_000_000)
    assert result.ok, "\n" + result.describe()
    assert result.requests_ok > 0
    assert result.unexpected == []
    assert result.victim_restarts >= 1
    assert result.victim_outage_attributed
    assert result.survivors_clean
    for shard, report in result.per_shard.items():
        assert report.ok, f"shard {shard}:\n{report.describe()}"
    assert result.global_report is not None
    assert result.global_report.ok, result.global_report.describe()
