"""End-to-end cluster: unmodified clients against N shards + router.

The module-scoped cluster serves the read-mostly tests; lifecycle
tests that assert exact counters or kill shards build their own.
"""

import tempfile
import time

import pytest

from repro.cluster import ClusterSupervisor
from repro.service import protocol
from repro.service.client import (
    RemoteError, SyncTerpClient)
from repro.service.retry import RetryPolicy

MIB = 1 << 20


@pytest.fixture(scope="module")
def cluster():
    supervisor = ClusterSupervisor(
        shards=2, session_ew_ns=2_000_000_000,
        sweep_period_ns=50_000_000)
    supervisor.start()
    yield supervisor
    supervisor.stop()


@pytest.fixture
def client(cluster):
    with SyncTerpClient(port=cluster.front_port) as cli:
        yield cli


def _detached_ok(exc: RemoteError) -> bool:
    return ("not attached" in str(exc)
            or "Access.NONE" in str(exc))


class TestShardedOps:
    def test_ops_span_both_shards(self, client):
        pools = set()
        for i in range(8):
            name = f"span-{i}"
            client.create(name, MIB)
            client.attach(name)
            oid = client.pmalloc(name, 64)
            pools.add(oid.pool_id)
            n = client.write(oid, b"payload-%d" % i)
            assert client.read(oid, n) == b"payload-%d" % i
            client.psync(name)
            client.detach(name)
        # pmo_id residue classes prove both shards served writes:
        # shard i of 2 only mints ids with (id - 1) % 2 == i.
        assert {(p - 1) % 2 for p in pools} == {0, 1}

    def test_name_ops_stay_on_one_shard(self, client):
        client.create("sticky", MIB)
        client.attach("sticky")
        first = client.pmalloc("sticky", 16)
        second = client.pmalloc("sticky", 16)
        assert first.pool_id == second.pool_id
        client.detach("sticky")

    def test_errors_relay_typed(self, client):
        with pytest.raises(RemoteError) as err:
            client.attach("never-created")
        assert "never-created" in str(err.value)

    def test_oid_routes_back_to_owner_without_name(self, client):
        client.create("roam", MIB)
        client.attach("roam")
        oid = client.pmalloc("roam", 8)
        client.write_u64(oid, 7171)
        # oid-addressed ops carry no name; the Oid's pool id alone
        # must find the owning shard.
        assert client.read_u64(oid) == 7171
        client.detach("roam")


class TestBatchSplitMerge:
    def test_batch_spanning_all_shards_keeps_item_order(self, client):
        oids = []
        for i in range(6):
            name = f"batch-{i}"
            client.create(name, MIB)
            client.attach(name)
            oid = client.pmalloc(name, 16)
            client.write(oid, bytes([i]) * 16)
            oids.append(oid)
        assert {(o.pool_id - 1) % 2 for o in oids} == {0, 1}
        # One batch, items interleaved across shards, binary
        # responses re-merged with their sidecar slices in order.
        results = client.batch([("read", {"oid": o.pack(), "n": 16})
                                for o in oids])
        for i, result in enumerate(results):
            data = result["data"]
            if not isinstance(data, bytes):   # v1 fallback: base64
                data = protocol.decode_bytes(data)
            assert data == bytes([i]) * 16, (i, data)
        for i in range(6):
            client.detach(f"batch-{i}")

    def test_one_item_failing_mid_batch_stays_in_its_slot(
            self, client):
        client.create("bat-ok", MIB)
        client.attach("bat-ok")
        oid = client.pmalloc("bat-ok", 8)
        client.write_u64(oid, 41)
        # The middle item attaches a PMO that does not exist: its
        # shard answers a typed error in that slot.  The client's
        # batch() raises at the bad slot, but the items around it
        # still executed — verified through their side effects.
        with pytest.raises(RemoteError) as err:
            client.batch([
                ("write_u64", {"oid": oid.pack(), "value": 42}),
                ("attach", {"name": "no-such-pmo"}),
                ("write_u64", {"oid": oid.pack(), "value": 43}),
            ])
        assert "no-such-pmo" in str(err.value)
        assert client.read_u64(oid) == 43
        client.detach("bat-ok")

    def test_hello_inside_batch_is_rejected_in_place(self, client):
        with pytest.raises(RemoteError) as err:
            client.batch([
                ("ping", {}),
                ("hello", {"user": "smuggled"}),
            ])
        assert "standalone" in str(err.value)


class TestObservabilityFanout:
    def test_metrics_aggregate_exact_counts(self):
        # Fresh cluster: the counters must add up across shards
        # exactly, which a shared module cluster cannot promise.
        with ClusterSupervisor(shards=2,
                               session_ew_ns=2_000_000_000,
                               sweep_period_ns=50_000_000) as sup:
            with SyncTerpClient(port=sup.front_port) as cli:
                for i in range(10):
                    name = f"m-{i}"
                    cli.create(name, MIB)
                    cli.attach(name)
                    cli.detach(name)
                merged = cli.metrics()
                assert merged["global"]["attaches"] == 10
                assert merged["global"]["detaches"] == 10
                assert merged["sessions"] == 1
                cluster_part = merged["cluster"]
                assert cluster_part["shards"] == 2
                per_shard = cluster_part["per_shard_requests"]
                assert set(per_shard) == {"0", "1"}
                assert all(v > 0 for v in per_shard.values())
                assert merged["global"]["request_latency"][
                    "count"] > 0

    def test_prometheus_is_labelled_per_shard(self, client):
        text = client.prometheus()
        assert 'shard="0"' in text
        assert 'shard="1"' in text

    def test_ping_and_trace(self, client):
        pong = client.ping()
        assert pong["sessions"] >= 1
        traced = client.trace(limit=5)
        assert isinstance(traced["spans"], list)
        # audit events are tagged with their source shard.
        assert all("shard" in e for e in traced["audit"])

    def test_metrics_shard_field_on_direct_dump(self, cluster):
        # Talking to a shard directly (not through the router) shows
        # its cluster identity.
        port = cluster.shard_ports[1]
        with SyncTerpClient(port=port) as direct:
            report = direct.call("metrics")
            assert report["shard"] == 1


class TestProtocolVersions:
    def test_v1_client_works_unmodified(self, cluster, monkeypatch):
        monkeypatch.setenv("TERP_PROTOCOL_VERSION", "1")
        with SyncTerpClient(port=cluster.front_port) as cli:
            assert cli.protocol_version == 1
            cli.create("v1-pmo", MIB)
            cli.attach("v1-pmo")
            oid = cli.pmalloc("v1-pmo", 32)
            cli.write(oid, b"legacy-wire")
            assert cli.read(oid, 11) == b"legacy-wire"
            cli.detach("v1-pmo")

    def test_v2_negotiated_through_router(self, client):
        assert client.protocol_version == 2


class TestSessionLifecycle:
    def test_goodbye_releases_across_shards(self, cluster):
        cli = SyncTerpClient(port=cluster.front_port).connect()
        held = []
        for i in range(4):
            name = f"bye-{i}"
            cli.create(name, MIB)
            cli.attach(name)
            held.append(cli.pmalloc(name, 8).pool_id)
        assert {(p - 1) % 2 for p in held} == {0, 1}
        result = cli.goodbye()
        assert result["released"] == 4
        cli.close()

    def test_second_hello_rejected(self, cluster):
        with SyncTerpClient(port=cluster.front_port) as cli:
            with pytest.raises(RemoteError) as err:
                cli.call("hello", user="again")
            assert "already has a session" in str(err.value)


class TestShardDeathAndRecovery:
    def test_kill_one_shard_retry_recovers(self):
        tmp = tempfile.mkdtemp(prefix="terpd-cluster-test-")
        retry = RetryPolicy(max_retries=10, base_delay_s=0.01,
                            max_delay_s=0.25, seed=3)
        with ClusterSupervisor(shards=2, pool_dir=tmp,
                               session_ew_ns=2_000_000_000,
                               sweep_period_ns=50_000_000) as sup:
            cli = SyncTerpClient(port=sup.front_port,
                                 retry=retry).connect()
            bystander = SyncTerpClient(port=sup.front_port,
                                       retry=retry).connect()
            oids = {}
            for i in range(6):
                name = f"kill-{i}"
                cli.create(name, MIB)
                cli.attach(name)
                oid = cli.pmalloc(name, 32)
                cli.write(oid, b"durable-%d" % i)
                cli.psync(name)
                oids[name] = oid
            victim = 0
            survivor = next(
                n for n, o in oids.items()
                if (o.pool_id - 1) % 2 != victim)
            bystander.open(survivor, access="r")
            bystander.attach(survivor, access="r")
            sup.kill_shard(victim)
            # The client rides the typed ConnectionLost retry path;
            # its windows were all force-closed (temporal protection
            # does not wait for a resume), so it re-attaches.
            reattached = 0
            for name, oid in oids.items():
                try:
                    cli.read(oid, 8)
                except RemoteError as exc:
                    assert _detached_ok(exc), exc
                    cli.attach(name)
                    reattached += 1
            assert reattached > 0
            assert cli.resumes >= 1
            # A client that never touched the victim keeps its
            # window: the survivor shard saw no restart.
            assert bystander.read(oids[survivor], 8) == b"durable-"
            assert sup.wait_for_shard(victim)
            time.sleep(0.1)
            # Durable warm restart: committed bytes survive SIGKILL.
            for i in range(6):
                assert cli.read(oids[f"kill-{i}"], 9) == \
                    b"durable-%d" % i
            merged = cli.metrics()
            assert merged["global"]["restarts_recovered"] >= 1
            assert sup.state()["shards"][victim]["restarts"] == 1
            cli.goodbye()
            bystander.goodbye()
            cli.close()
            bystander.close()
