"""RunResult summaries and JSON export."""

import json

import pytest

from repro.arch.params import CostBreakdown
from repro.core.runtime import RuntimeCounters
from repro.sim.stats import PmoExposure, RunResult


def make_result(**overrides):
    defaults = dict(
        wall_ns=1_100_000,
        baseline_ns=1_000_000,
        breakdown=CostBreakdown(),
        counters=RuntimeCounters(attach_calls=100, detach_calls=100,
                                 attach_syscalls=10, detach_syscalls=10,
                                 silent_attaches=90, silent_detaches=90),
        per_pmo=[PmoExposure("p1", 39.0, 40.0, 50.0, 1.0, 4.0),
                 PmoExposure("p2", 38.0, 41.0, 30.0, 1.5, 3.0)],
    )
    defaults.update(overrides)
    return RunResult(**defaults)


class TestRunResult:
    def test_overhead_percent(self):
        assert make_result().overhead_percent == pytest.approx(10.0)

    def test_zero_baseline(self):
        assert make_result(baseline_ns=0).overhead_percent == 0.0

    def test_silent_percent(self):
        assert make_result().silent_percent == pytest.approx(90.0)

    def test_cond_per_second(self):
        result = make_result()
        expected = 200 / (1_100_000 / 1e9)
        assert result.cond_per_second == pytest.approx(expected)

    def test_pmo_averages(self):
        result = make_result()
        assert result.ew_avg_us == pytest.approx(38.5)
        assert result.ew_max_us == pytest.approx(41.0)  # max, not avg
        assert result.er_percent == pytest.approx(40.0)
        assert result.ter_percent == pytest.approx(3.5)

    def test_empty_pmo_list(self):
        result = make_result(per_pmo=[])
        assert result.ew_avg_us == 0.0
        assert result.ew_max_us == 0.0

    def test_breakdown_percent(self):
        breakdown = CostBreakdown()
        breakdown.add("attach", 220_000)  # 100_000 ns at 2.2GHz
        result = make_result(breakdown=breakdown)
        pct = result.overhead_breakdown_percent()
        assert pct["attach"] == pytest.approx(10.0, rel=0.01)

    def test_to_dict_is_json_serializable(self):
        payload = make_result().to_dict()
        text = json.dumps(payload)
        back = json.loads(text)
        assert back["overhead_percent"] == pytest.approx(10.0)
        assert back["counters"]["attach_calls"] == 100
        assert len(back["per_pmo"]) == 2
        assert back["per_pmo"][0]["ew_avg_us"] == 39.0
