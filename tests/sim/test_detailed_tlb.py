"""The detailed-TLB machine mode vs the flat refill model."""

import pytest

from repro.arch.cond_engine import TerpArchEngine
from repro.core.units import MIB, us
from repro.sim.machine import Machine
from repro.sim.policy import CompilerTerpPolicy
from tests.sim.test_machine import tx_workload


def run(detailed, n_txs=400, seed=3):
    machine = Machine(engine=TerpArchEngine(us(40)),
                      policy_factory=lambda: CompilerTerpPolicy(us(2)),
                      pmo_sizes={"kv": 8 * MIB},
                      detailed_tlb=detailed, seed=seed)
    return machine.run({0: tx_workload(n_txs)})


class TestDetailedTlb:
    def test_runs_clean(self):
        result = run(detailed=True)
        assert result.counters.faults == 0
        assert result.counters.errors == 0

    def test_detailed_mode_charges_walk_penalties(self):
        flat = run(detailed=False)
        detailed = run(detailed=True)
        # Both models make the protected run slower than baseline;
        # the detailed model includes cold-start walks the flat model
        # ignores, so its "other" cycles are at least as large.
        assert detailed.breakdown.cycles["other"] >= \
            flat.breakdown.cycles["other"]
        assert detailed.wall_ns >= detailed.baseline_ns

    def test_exposure_statistics_unchanged_by_timing_model(self):
        """The TLB model affects timing only; window structure (which
        attach/detach happened) is identical."""
        flat = run(detailed=False)
        detailed = run(detailed=True)
        assert flat.counters.attach_syscalls == \
            detailed.counters.attach_syscalls
        assert flat.counters.silent_attaches == \
            detailed.counters.silent_attaches

    def test_shootdown_makes_next_burst_slower(self):
        """After a randomization, the detailed model re-walks."""
        detailed = run(detailed=True, n_txs=600)
        # Randomizations occurred and the run still accounts cleanly.
        assert detailed.wall_ns > detailed.baseline_ns
