"""Core-constrained scheduling (threads time-share Table II's cores)."""

import pytest

from repro.arch.cond_engine import TerpArchEngine
from repro.core.units import MIB, us
from repro.sim.events import Compute
from repro.sim.machine import Machine
from repro.sim.policy import CompilerTerpPolicy, NoProtectionPolicy
from tests.sim.test_machine import tx_workload


def make_machine(num_cores):
    return Machine(engine=TerpArchEngine(us(40)),
                   policy_factory=NoProtectionPolicy,
                   pmo_sizes={"kv": 8 * MIB},
                   num_cores=num_cores)


class TestScheduling:
    def test_default_core_count_from_table2(self):
        machine = make_machine(None)
        assert machine.num_cores == 4

    def test_compute_only_serializes_on_one_core(self):
        """8 threads of pure compute on 1 core take 8x the time."""
        machine = make_machine(1)
        threads = {tid: [Compute(us(100))] for tid in range(8)}
        result = machine.run(threads)
        assert result.wall_ns == pytest.approx(8 * us(100), rel=0.01)
        # The ideal baseline also packs onto one core: no false
        # overhead from contention alone.
        assert result.baseline_ns == pytest.approx(8 * us(100),
                                                   rel=0.01)
        assert result.overhead_percent == pytest.approx(0.0, abs=1.0)

    def test_enough_cores_run_in_parallel(self):
        machine = make_machine(8)
        threads = {tid: [Compute(us(100))] for tid in range(8)}
        result = machine.run(threads)
        assert result.wall_ns == pytest.approx(us(100), rel=0.01)

    def test_oversubscription_scales_wall_clock(self):
        two = make_machine(2).run(
            {tid: [Compute(us(100))] for tid in range(8)})
        four = make_machine(4).run(
            {tid: [Compute(us(100))] for tid in range(8)})
        assert two.wall_ns > four.wall_ns
        assert two.wall_ns == pytest.approx(2 * four.wall_ns, rel=0.05)

    def test_protected_oversubscribed_run_is_clean(self):
        machine = Machine(
            engine=TerpArchEngine(us(40)),
            policy_factory=lambda: CompilerTerpPolicy(us(2)),
            pmo_sizes={"kv": 8 * MIB}, num_cores=2)
        result = machine.run({tid: tx_workload(30)
                              for tid in range(6)})
        assert result.counters.errors == 0
        assert result.counters.faults == 0
        assert result.wall_ns >= result.baseline_ns
