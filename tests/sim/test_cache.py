"""Data-cache hierarchy (Table II caches and memory latencies)."""

import pytest

from repro.arch.params import DEFAULT_PARAMS
from repro.sim.cache import (
    Cache, CacheHierarchy, expected_access_cycles, LINE_SIZE)


class TestCache:
    def test_miss_then_hit(self):
        c = Cache(32 * 1024, 8)
        assert not c.lookup(0x1000)
        c.fill(0x1000)
        assert c.lookup(0x1000)

    def test_same_line_shares_entry(self):
        c = Cache(32 * 1024, 8)
        c.fill(0x1000)
        assert c.lookup(0x1000 + LINE_SIZE - 1)
        assert not c.lookup(0x1000 + LINE_SIZE)

    def test_lru_eviction(self):
        c = Cache(2 * LINE_SIZE, 2)   # one set, two ways
        c.fill(0 * LINE_SIZE)
        c.fill(1 * LINE_SIZE)
        evicted = c.fill(2 * LINE_SIZE)
        assert evicted == 0
        assert not c.lookup(0)
        assert c.lookup(1 * LINE_SIZE)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Cache(3 * LINE_SIZE, 2)

    def test_invalidate_all(self):
        c = Cache(32 * 1024, 8)
        for i in range(10):
            c.fill(i * LINE_SIZE)
        assert c.invalidate_all() == 10
        assert c.occupancy() == 0

    def test_stats(self):
        c = Cache(32 * 1024, 8)
        c.lookup(0)
        c.fill(0)
        c.lookup(0)
        assert c.stats.misses == 1
        assert c.stats.hits == 1
        assert c.stats.hit_rate == 0.5


class TestHierarchy:
    def test_cold_nvm_access(self):
        h = CacheHierarchy()
        p = DEFAULT_PARAMS
        assert h.access(0x1000, nvm=True) == \
            p.l1d_latency + p.l2_latency + p.nvm_latency

    def test_cold_dram_access_cheaper(self):
        h = CacheHierarchy()
        nvm = h.access(0x10000, nvm=True)
        dram = h.access(0x20000, nvm=False)
        assert nvm - dram == p_nvm_minus_dram()

    def test_warm_access_is_l1(self):
        h = CacheHierarchy()
        h.access(0x1000)
        assert h.access(0x1000) == DEFAULT_PARAMS.l1d_latency

    def test_l2_hit_after_l1_eviction(self):
        h = CacheHierarchy()
        h.access(0)
        # Thrash L1 set 0 (stride = num_sets lines).
        stride = h.l1.num_sets * LINE_SIZE
        for i in range(1, 10):
            h.access(i * stride)
        latency = h.access(0)
        assert latency == DEFAULT_PARAMS.l1d_latency + \
            DEFAULT_PARAMS.l2_latency


def p_nvm_minus_dram():
    return DEFAULT_PARAMS.nvm_latency - DEFAULT_PARAMS.dram_latency


class TestExpectedCycles:
    def test_l1_resident(self):
        assert expected_access_cycles(16 * 1024) == \
            DEFAULT_PARAMS.l1d_latency

    def test_grows_with_working_set(self):
        small = expected_access_cycles(64 * 1024)
        large = expected_access_cycles(64 * 1024 * 1024)
        assert large > small

    def test_nvm_penalty(self):
        nvm = expected_access_cycles(1 << 30, nvm=True)
        dram = expected_access_cycles(1 << 30, nvm=False)
        assert nvm > dram

    def test_invalid_working_set(self):
        with pytest.raises(ValueError):
            expected_access_cycles(0)

    def test_workload_base_cycles_justified(self):
        """The workload specs use ~8 cycles/access: that corresponds
        to an L2-resident hot set (~1MB) on this hierarchy."""
        value = expected_access_cycles(1024 * 1024)
        assert 5.0 <= value <= 15.0
