"""Property-based tests on the discrete-event machine's accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.cond_engine import TerpArchEngine
from repro.core.units import MIB, us
from repro.sim.events import Burst, Compute, RegionEnd, TxBegin, TxEnd
from repro.sim.machine import Machine
from repro.sim.policy import CompilerTerpPolicy, ManualMerrPolicy
from repro.core.semantics import BasicSemantics


@st.composite
def workloads(draw):
    """A random but well-formed single-PMO transaction stream."""
    n_txs = draw(st.integers(1, 25))
    events = []
    for _ in range(n_txs):
        events.append(TxBegin.of("p"))
        for _ in range(draw(st.integers(1, 3))):
            events.append(Burst("p",
                                n_accesses=draw(st.integers(1, 80)),
                                unique_pages=draw(st.integers(1, 8))))
            events.append(Compute(draw(st.integers(100, 3_000))))
        events.append(RegionEnd())
        events.append(Compute(draw(st.integers(0, 80_000))))
        events.append(TxEnd())
    return events


def run_tt(events, seed=1):
    machine = Machine(engine=TerpArchEngine(us(40)),
                      policy_factory=lambda: CompilerTerpPolicy(us(2)),
                      pmo_sizes={"p": 8 * MIB}, seed=seed)
    return machine.run({0: iter(events)})


class TestAccountingProperties:
    @settings(max_examples=40, deadline=None)
    @given(workloads())
    def test_wall_clock_never_below_baseline(self, events):
        result = run_tt(events)
        assert result.wall_ns >= result.baseline_ns

    @settings(max_examples=40, deadline=None)
    @given(workloads())
    def test_call_counters_are_consistent(self, events):
        result = run_tt(events)
        c = result.counters
        assert c.errors == 0
        assert c.faults == 0
        # Every attach call resolved to exactly one outcome.
        assert c.attach_calls == c.attach_syscalls + c.silent_attaches
        assert c.detach_calls >= c.silent_detaches
        assert c.attach_calls == c.detach_calls  # policy is balanced

    @settings(max_examples=40, deadline=None)
    @given(workloads())
    def test_exposure_windows_within_run(self, events):
        result = run_tt(events)
        for pmo in result.per_pmo:
            assert 0 <= pmo.er_percent <= 100.0
            assert 0 <= pmo.ter_percent <= pmo.er_percent + 1e-9
            assert pmo.ew_avg_us <= pmo.ew_max_us + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(workloads())
    def test_ew_target_respected(self, events):
        """Under the TERP architecture, no exposure window (per
        location) exceeds the target plus the sweep lag."""
        result = run_tt(events)
        for pmo in result.per_pmo:
            assert pmo.ew_max_us <= 40.0 + 2.0

    @settings(max_examples=30, deadline=None)
    @given(workloads(), st.integers(1, 5))
    def test_determinism(self, events, seed):
        events = list(events)
        a = run_tt(list(events), seed=seed)
        b = run_tt(list(events), seed=seed)
        assert a.wall_ns == b.wall_ns
        assert a.counters.attach_syscalls == b.counters.attach_syscalls

    @settings(max_examples=25, deadline=None)
    @given(workloads())
    def test_merr_policy_balanced_too(self, events):
        machine = Machine(engine=BasicSemantics(blocking=True),
                          policy_factory=lambda: ManualMerrPolicy(us(40)),
                          pmo_sizes={"p": 8 * MIB})
        result = machine.run({0: iter(events)})
        c = result.counters
        assert c.errors == 0
        assert c.attach_syscalls == c.detach_syscalls
        assert result.wall_ns >= result.baseline_ns
