"""The discrete-event machine end to end."""

import pytest

from repro.arch.cond_engine import TerpArchEngine
from repro.core.semantics import BasicSemantics, EwConsciousSemantics
from repro.core.units import MIB, us
from repro.sim.events import Burst, Compute, RegionEnd, TxBegin, TxEnd
from repro.sim.machine import Machine
from repro.sim.policy import (
    CompilerTerpPolicy, ManualMerrPolicy, NoProtectionPolicy)

PMOS = {"kv": 8 * MIB}
EW = us(40)
TEW = us(2)


def tx_workload(n_txs, tx_ns=us(10), pmo="kv", bursts_per_tx=2):
    """A WHISPER-shaped loop: each transaction is a short cluster of
    PMO bursts (one code region) followed by PMO-free computation."""
    for _ in range(n_txs):
        yield TxBegin.of(pmo)
        for _ in range(bursts_per_tx):
            yield Burst(pmo, n_accesses=50, unique_pages=4)
            yield Compute(us(1) // 2)
        yield RegionEnd()
        yield Compute(tx_ns - bursts_per_tx * (us(1) // 2))
        yield TxEnd()


def make_machine(engine, policy_factory, **kw):
    return Machine(engine=engine, policy_factory=policy_factory,
                   pmo_sizes=dict(PMOS), **kw)


class TestBaselineRun:
    def test_unprotected_run_has_zero_overhead(self):
        m = make_machine(EwConsciousSemantics(EW), NoProtectionPolicy)
        # No policy ops means no attaches; bursts would fault.  Use a
        # compute-only workload for the pure-baseline check.
        result = m.run({0: [Compute(us(100))]})
        assert result.wall_ns == us(100)
        assert result.baseline_ns == us(100)
        assert result.overhead_percent == 0.0


class TestMerrRun:
    def run_mm(self, n_txs=200):
        m = make_machine(BasicSemantics(blocking=True),
                         lambda: ManualMerrPolicy(EW),
                         randomize_on_reattach=True)
        return m.run({0: tx_workload(n_txs)})

    def test_completes_with_positive_overhead(self):
        result = self.run_mm()
        assert result.wall_ns > result.baseline_ns
        assert 0 < result.overhead_percent < 100

    def test_exposure_windows_near_target_but_unstable(self):
        result = self.run_mm()
        (pmo,) = result.per_pmo
        assert 0 < pmo.ew_avg_us <= 50
        # MERR detaches at tx boundaries: max exceeds avg noticeably.
        assert pmo.ew_max_us > pmo.ew_avg_us

    def test_all_ops_are_syscalls(self):
        result = self.run_mm()
        c = result.counters
        assert c.silent_attaches == 0
        assert c.silent_detaches == 0
        assert c.attach_syscalls > 0
        assert c.attach_syscalls == c.detach_syscalls

    def test_randomization_charged_on_reattach(self):
        result = self.run_mm()
        assert result.breakdown.cycles["rand"] > 0


class TestTerpSoftwareRun:  # TM
    def run_tm(self, n_txs=200):
        m = make_machine(EwConsciousSemantics(EW),
                         lambda: CompilerTerpPolicy(TEW),
                         silent_ops_are_syscalls=True)
        return m.run({0: tx_workload(n_txs)})

    def test_tm_overhead_exceeds_mm(self):
        mm = TestMerrRun().run_mm()
        tm = self.run_tm()
        assert tm.overhead_percent > mm.overhead_percent

    def test_tew_bounded_near_target(self):
        result = self.run_tm()
        (pmo,) = result.per_pmo
        assert pmo.tew_avg_us <= 3.0
        assert pmo.ter_percent < pmo.er_percent


class TestTerpArchRun:  # TT
    def run_tt(self, n_txs=200, **engine_kw):
        m = make_machine(TerpArchEngine(EW, **engine_kw),
                         lambda: CompilerTerpPolicy(TEW))
        return m.run({0: tx_workload(n_txs)})

    def test_tt_cheaper_than_tm_and_mm(self):
        tt = self.run_tt()
        tm = TestTerpSoftwareRun().run_tm()
        mm = TestMerrRun().run_mm()
        assert tt.overhead_percent < tm.overhead_percent
        assert tt.overhead_percent < mm.overhead_percent

    def test_most_calls_silent(self):
        result = self.run_tt()
        assert result.silent_percent > 80.0

    def test_ew_stable_near_target(self):
        result = self.run_tt()
        (pmo,) = result.per_pmo
        assert pmo.ew_avg_us == pytest.approx(40.0, rel=0.25)
        assert pmo.ew_max_us <= 45.0

    def test_tew_bounded(self):
        result = self.run_tt()
        (pmo,) = result.per_pmo
        assert 0 < pmo.tew_avg_us <= 3.0

    def test_window_combining_reduces_syscalls(self):
        with_cb = self.run_tt(window_combining=True)
        without_cb = self.run_tt(window_combining=False)
        assert with_cb.counters.attach_syscalls < \
            without_cb.counters.attach_syscalls
        assert with_cb.overhead_percent <= without_cb.overhead_percent

    def test_arch_cases_populated(self):
        result = self.run_tt()
        assert result.arch_cases is not None
        assert result.arch_cases.case3_silent_attach > 0


class TestMultiThread:
    def test_basic_semantics_blocks_threads(self):
        """Figure 11: under Basic semantics threads serialize on the
        PMO and blocked time shows up as overhead."""
        m = make_machine(BasicSemantics(blocking=True),
                         lambda: ManualMerrPolicy(EW))
        threads = {tid: tx_workload(50) for tid in range(4)}
        result = m.run(threads)
        assert result.blocked_ns > 0

    def test_arch_engine_no_blocking(self):
        m = make_machine(TerpArchEngine(EW),
                         lambda: CompilerTerpPolicy(TEW))
        threads = {tid: tx_workload(50) for tid in range(4)}
        result = m.run(threads)
        assert result.blocked_ns == 0
        assert result.num_threads == 4

    def test_multithread_overhead_basic_exceeds_arch(self):
        m1 = make_machine(BasicSemantics(blocking=True),
                          lambda: CompilerTerpPolicy(TEW))
        basic = m1.run({tid: tx_workload(50) for tid in range(4)})
        m2 = make_machine(TerpArchEngine(EW),
                          lambda: CompilerTerpPolicy(TEW))
        arch = m2.run({tid: tx_workload(50) for tid in range(4)})
        assert basic.overhead_percent > arch.overhead_percent


class TestDeterminism:
    def test_same_seed_same_result(self):
        def run():
            m = make_machine(TerpArchEngine(EW),
                             lambda: CompilerTerpPolicy(TEW), seed=7)
            return m.run({0: tx_workload(100)})
        a, b = run(), run()
        assert a.wall_ns == b.wall_ns
        assert a.counters.attach_syscalls == b.counters.attach_syscalls
