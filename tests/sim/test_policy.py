"""Insertion policies: MERR-manual vs TERP-compiler."""

import pytest

from repro.core.units import us
from repro.sim.events import Burst, Compute, TxBegin, TxEnd
from repro.sim.policy import (
    CompilerTerpPolicy, ManualMerrPolicy, NoProtectionPolicy, Op, OpKind)


class TestManualMerrPolicy:
    def test_attach_at_tx_begin(self):
        p = ManualMerrPolicy(us(40))
        ops = p.before_event(TxBegin.of("kv"), 0)
        assert ops == [Op(OpKind.ATTACH, "kv")]
        assert p.open_pmos() == {"kv"}

    def test_one_pair_per_transaction(self):
        """The programmer bookends each logical operation."""
        p = ManualMerrPolicy(us(40))
        p.before_event(TxBegin.of("kv"), 0)
        ops = p.before_event(TxEnd(), us(10))
        assert ops == [Op(OpKind.DETACH, "kv")]
        assert p.open_pmos() == set()
        # The next transaction re-attaches.
        ops = p.before_event(TxBegin.of("kv"), us(11))
        assert ops == [Op(OpKind.ATTACH, "kv")]

    def test_attach_on_stray_burst(self):
        p = ManualMerrPolicy(us(40))
        ops = p.before_event(Burst("kv", 10), 0)
        assert ops == [Op(OpKind.ATTACH, "kv")]

    def test_at_end_closes_all(self):
        p = ManualMerrPolicy(us(40))
        p.before_event(TxBegin.of("a", "b"), 0)
        ops = p.at_end(us(5))
        assert {op.pmo for op in ops} == {"a", "b"}
        assert all(op.kind is OpKind.DETACH for op in ops)

    def test_multi_pmo_tx(self):
        p = ManualMerrPolicy(us(40))
        ops = p.before_event(TxBegin.of("a", "b"), 0)
        assert len(ops) == 2


class TestCompilerTerpPolicy:
    def test_attach_before_first_burst(self):
        p = CompilerTerpPolicy(us(2))
        ops = p.before_event(Burst("kv", 10), 0)
        assert ops == [Op(OpKind.ATTACH, "kv")]

    def test_window_closed_at_tew_target(self):
        p = CompilerTerpPolicy(us(2))
        p.before_event(Burst("kv", 10), 0)
        # Next boundary after >= 2us: detach, then re-attach for the
        # new burst.
        ops = p.before_event(Burst("kv", 10), us(3))
        assert ops == [Op(OpKind.DETACH, "kv"), Op(OpKind.ATTACH, "kv")]

    def test_window_stays_open_below_target(self):
        p = CompilerTerpPolicy(us(2))
        p.before_event(Burst("kv", 10), 0)
        assert p.before_event(Burst("kv", 10), us(1)) == []

    def test_tx_end_closes_windows(self):
        p = CompilerTerpPolicy(us(2))
        p.before_event(Burst("kv", 10), 0)
        ops = p.before_event(TxEnd(), us(1))
        assert Op(OpKind.DETACH, "kv") in ops
        assert p.open_pmos() == set()

    def test_compute_boundary_can_close_window(self):
        p = CompilerTerpPolicy(us(2))
        p.before_event(Burst("kv", 10), 0)
        ops = p.before_event(Compute(100), us(5))
        assert ops == [Op(OpKind.DETACH, "kv")]

    def test_independent_windows_per_pmo(self):
        p = CompilerTerpPolicy(us(2))
        p.before_event(Burst("a", 1), 0)
        p.before_event(Burst("b", 1), us(1))
        assert p.open_pmos() == {"a", "b"}
        # At 2.5us only a's window (opened at 0) has expired.
        ops = p.before_event(Compute(1), us(2) + 500)
        assert ops == [Op(OpKind.DETACH, "a")]

    def test_at_end(self):
        p = CompilerTerpPolicy(us(2))
        p.before_event(Burst("kv", 1), 0)
        assert p.at_end(us(1)) == [Op(OpKind.DETACH, "kv")]


class TestNoProtectionPolicy:
    def test_emits_nothing(self):
        p = NoProtectionPolicy()
        assert p.before_event(TxBegin.of("kv"), 0) == []
        assert p.before_event(Burst("kv", 5), 0) == []
        assert p.at_end(10) == []
        assert p.open_pmos() == set()
