"""The replication wire format: framing, bounds, typed errors."""

import socket
import struct
import threading

import pytest

from repro.replication.wire import (
    MAX_FRAME_BYTES, ReplicationWireError, recv_msg, send_msg)


def pair():
    a, b = socket.socketpair()
    return a, b


class TestRoundTrip:
    def test_header_only(self):
        a, b = pair()
        send_msg(a, {"t": "hello", "version": 1})
        header, payload = recv_msg(b)
        assert header == {"t": "hello", "version": 1}
        assert payload == b""
        a.close(), b.close()

    def test_header_and_payload(self):
        a, b = pair()
        blob = bytes(range(256)) * 32
        send_msg(a, {"t": "batch", "seq": 7}, blob)
        header, payload = recv_msg(b)
        assert header["seq"] == 7
        assert payload == blob
        a.close(), b.close()

    def test_many_frames_in_order(self):
        a, b = pair()
        for i in range(20):
            send_msg(a, {"t": "ack", "seq": i}, b"x" * i)
        for i in range(20):
            header, payload = recv_msg(b)
            assert header["seq"] == i
            assert payload == b"x" * i
        a.close(), b.close()

    def test_large_payload_crosses_recv_chunks(self):
        a, b = pair()
        blob = b"\xab" * (1 << 20)
        done = threading.Thread(
            target=lambda: send_msg(a, {"t": "batch"}, blob))
        done.start()
        header, payload = recv_msg(b)
        done.join()
        assert payload == blob
        a.close(), b.close()


class TestEofAndErrors:
    def test_orderly_eof_at_boundary_is_none(self):
        a, b = pair()
        a.close()
        assert recv_msg(b) is None
        b.close()

    def test_eof_mid_frame_is_typed(self):
        a, b = pair()
        a.sendall(struct.pack(">I", 100) + b"short")
        a.close()
        with pytest.raises(ReplicationWireError):
            recv_msg(b)
        b.close()

    def test_oversized_send_refused(self):
        a, b = pair()
        with pytest.raises(ReplicationWireError):
            send_msg(a, {"t": "batch"},
                     bytearray(MAX_FRAME_BYTES + 1))
        a.close(), b.close()

    def test_oversized_length_prefix_refused(self):
        a, b = pair()
        a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(ReplicationWireError):
            recv_msg(b)
        a.close(), b.close()

    def test_garbage_header_is_typed(self):
        a, b = pair()
        head = b"not json"
        body = struct.pack(">I", len(head)) + head
        a.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(ReplicationWireError):
            recv_msg(b)
        a.close(), b.close()

    def test_header_without_type_is_typed(self):
        a, b = pair()
        head = b"{\"seq\": 1}"
        body = struct.pack(">I", len(head)) + head
        a.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(ReplicationWireError):
            recv_msg(b)
        a.close(), b.close()

    def test_header_length_beyond_body_is_typed(self):
        a, b = pair()
        body = struct.pack(">I", 999) + b"{}"
        a.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(ReplicationWireError):
            recv_msg(b)
        a.close(), b.close()
