"""Promotion: the standby becomes a live terpd, losslessly.

The semi-sync contract makes these tests deterministic: a psync the
client saw acked is fsynced in the standby's pool before the ack, so
a kill at *any* later moment leaves the promoted daemon serving that
value — the zero-acknowledged-write-loss invariant (I7) at unit
scale.  Promotion reuses the warm-restart RecoveryManager verbatim,
so the promoted daemon restores sessions, adopts the exposure epoch,
and force-detaches the windows that straddled the outage with the
outage attribution.
"""

import socket
import time

import pytest

from repro.core.units import MIB
from repro.obs.audit import RESTART
from repro.replication import (
    REPL_PROTOCOL_VERSION, StandbyDaemon, recv_msg, send_msg)
from repro.service.client import SyncTerpClient
from repro.service.server import ServiceThread, TerpService


@pytest.fixture
def pair(tmp_path):
    """A replicated primary (ServiceThread) + warm standby."""
    standby = StandbyDaemon(
        tmp_path / "standby",
        service_kwargs={"session_ew_ns": 2_000_000_000,
                        "sweep_period_ns": 50_000_000,
                        "session_linger_ns": 10_000_000_000})
    repl_port = standby.start()
    thread = ServiceThread(TerpService(
        port=0, session_ew_ns=2_000_000_000,
        sweep_period_ns=50_000_000,
        session_linger_ns=10_000_000_000,
        pool_dir=tmp_path / "primary",
        replicate_to=f"127.0.0.1:{repl_port}"))
    service = thread.start()
    yield service, thread, standby
    thread.stop()
    standby.stop()


class TestPromotion:
    def test_kill_promote_serves_every_acked_write(self, pair):
        service, thread, standby = pair
        client = SyncTerpClient(port=service.bound_port,
                                user="alice").connect()
        client.create("pmo", MIB, mode=0o666)
        client.attach("pmo")
        oid = client.pmalloc("pmo", 64)
        for i in range(5):
            client.write_u64(oid, 100 + i)
            client.psync("pmo")
        status = client.call("repl_status")
        assert status["enabled"] and status["connected"]
        assert status["lag"] == 0
        assert status["acked"] == status["shipped"] >= 1
        client.close()

        thread.kill()                 # in-process SIGKILL
        time.sleep(0.05)              # a visible outage on the clock
        port = standby.promote(0)
        with SyncTerpClient(port=port, user="bob") as bob:
            bob.attach("pmo")
            assert bob.read_u64(oid) == 104
            # The promoted daemon ran recovery verbatim: restart on
            # the timeline, straddling windows force-closed with the
            # outage attribution, exposure clock unbroken.
            trace = bob.call("trace", limit=65536)
        events = trace["audit"]
        assert any(e.get("kind") == RESTART for e in events)
        assert any(e.get("kind") == "forced-detach"
                   and ("outage" in str(e.get("reason", ""))
                        or "restart" in str(e.get("reason", "")))
                   for e in events)

    def test_session_resumes_across_promotion(self, pair):
        service, thread, standby = pair
        client = SyncTerpClient(port=service.bound_port,
                                user="alice").connect()
        client.create("pmo", MIB, mode=0o666)
        client.attach("pmo")
        oid = client.pmalloc("pmo", 64)
        client.write_u64(oid, 7)
        client.psync("pmo")
        sid = client.session_id
        token = client.resume_token
        thread.kill()
        port = standby.promote(0)
        # The session journal was mirrored record-by-record, so the
        # promoted daemon accepts the pre-crash resume token.
        client._port = port
        client._reconnect()
        assert client.session_id == sid
        assert client.resume_token == token
        assert client.resumes >= 1
        # The crash force-closed the attachment; re-attach and go on.
        client.attach("pmo")
        assert client.read_u64(oid) == 7
        client.goodbye()
        client.close()

    def test_promote_is_idempotent(self, pair):
        service, thread, standby = pair
        thread.kill()
        port = standby.promote(0)
        assert standby.promote(0) == port
        assert standby.promote(12345) == port

    def test_promoted_standby_refuses_apply_frames(self, pair):
        service, thread, standby = pair
        thread.kill()
        standby.promote(0)
        with socket.create_connection(
                ("127.0.0.1", standby.bound_port),
                timeout=5.0) as sock:
            send_msg(sock, {"t": "hello",
                            "version": REPL_PROTOCOL_VERSION})
            head, _ = recv_msg(sock)
            assert head["t"] == "hello-ack"
            # status still answers (control plane)...
            send_msg(sock, {"t": "status"})
            head, _ = recv_msg(sock)
            assert head["t"] == "status-ack"
            assert head["promoted"] is True
            # ...but an apply frame is refused: the promoted service
            # owns the pool directory now.
            send_msg(sock, {"t": "journal",
                            "line": {"kind": "noise"}})
            assert recv_msg(sock) is None

    def test_promoted_daemon_is_unreplicated_by_default(self, pair):
        service, thread, standby = pair
        thread.kill()
        port = standby.promote(0)
        with SyncTerpClient(port=port, user="carol") as carol:
            assert carol.call("repl_status") == {"enabled": False}
