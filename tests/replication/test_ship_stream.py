"""The shipped stream at the source: GroupCommitter batch boundaries.

A recording fake shipper stands in for the network: the contract
under test is the post-fsync ship hook — every committed group-commit
batch is handed over exactly once, per-PMO seqs are strictly monotone
(gapless as a chain of ``(prev, seq]`` ranges, with merged commits
legitimately skipping integers), the hook runs before the commit
ticket retires, and the abort/drain shutdown paths never corrupt the
stream.
"""

import threading
import time

import pytest

from repro.core.errors import PmoError
from repro.core.units import MIB
from repro.faults.plan import FaultPlan, FaultRule
from repro.pmo.api import PmoLibrary
from repro.pmo.store import PmoStore


class RecordingShipper:
    """Records every hook call the store makes, thread-safely."""

    def __init__(self):
        self.lock = threading.Lock()
        self.commits = []          # (name, pmo_id, seq, [indexes])
        self.headers = []          # names
        self.destroys = []         # names

    def ship_commit(self, name, pmo_id, seq, pages):
        with self.lock:
            self.commits.append(
                (name, pmo_id, seq, [i for i, _ in pages]))

    def ship_header(self, name, header):
        with self.lock:
            self.headers.append(name)

    def ship_destroy(self, name):
        with self.lock:
            self.destroys.append(name)

    def per_pmo(self, name):
        with self.lock:
            return [(seq, idxs) for n, _, seq, idxs in self.commits
                    if n == name]


def make(tmp_path, *, interval_us=0, rules=()):
    plan = FaultPlan(seed=1, rules=list(rules)) if rules else None
    store = PmoStore(tmp_path, faults=plan,
                     commit_interval_us=interval_us)
    shipper = RecordingShipper()
    store.shipper = shipper
    lib = PmoLibrary(store=store)
    return store, lib, shipper


def assert_monotone(stream):
    seqs = [seq for seq, _ in stream]
    assert seqs == sorted(seqs)
    assert len(seqs) == len(set(seqs)), f"duplicate seq in {seqs}"


class TestShipHook:
    def test_register_ships_header_before_first_batch(self, tmp_path):
        store, lib, shipper = make(tmp_path)
        pmo = lib.PMO_create("h", MIB)
        assert shipper.headers == ["h"]
        assert shipper.commits == []
        store.close()

    def test_commit_ships_once_before_psync_returns(self, tmp_path):
        store, lib, shipper = make(tmp_path)
        pmo = lib.PMO_create("one", MIB)
        with lib.thread(1):
            lib.attach(pmo)
            oid = lib.pmalloc(pmo, 64)
            lib.write(oid, b"payload")
            lib.psync(pmo)
            # The hook ran post-fsync but pre-ticket-retire: by the
            # time psync returned, the batch must be recorded.
            stream = shipper.per_pmo("one")
            assert len(stream) == 1
            _, _, flush_seq = store.committed_state("one")[0], \
                None, store.committed_state("one")[1]
            assert stream[0][0] == flush_seq
            lib.detach(pmo)
        store.close()

    def test_destroy_ships_destroy(self, tmp_path):
        store, lib, shipper = make(tmp_path)
        lib.PMO_create("gone", MIB)
        store.destroy("gone")
        assert shipper.destroys == ["gone"]
        store.close()


class TestConcurrentPsyncStream:
    def test_stream_monotone_and_complete_under_concurrency(
            self, tmp_path):
        """N writer threads psync two PMOs through a nonzero commit
        window: per-PMO shipped seqs stay strictly monotone, every
        final durable seq is shipped, and each batch's page set is
        sorted and non-empty."""
        store, lib, shipper = make(tmp_path, interval_us=500)
        pmos = {name: lib.PMO_create(name, MIB)
                for name in ("s-a", "s-b")}
        oids = {}
        with lib.thread(99):
            for name, pmo in pmos.items():
                lib.attach(pmo)
                oids[name] = [lib.pmalloc(pmo, 4096)
                              for _ in range(4)]

        def writer(tid, name, slot):
            pmo = pmos[name]
            with lib.thread(tid):
                lib.attach(pmo)
                for r in range(12):
                    lib.write(oids[name][slot],
                              bytes([tid]) * 64 + bytes([r]))
                    lib.psync(pmo)
                lib.detach(pmo)

        threads = [
            threading.Thread(target=writer,
                             args=(tid, name, slot))
            for tid, (name, slot) in enumerate(
                [("s-a", 0), ("s-a", 1), ("s-b", 0), ("s-b", 1)],
                start=1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not any(t.is_alive() for t in threads)
        for name in pmos:
            stream = shipper.per_pmo(name)
            assert stream, f"nothing shipped for {name}"
            assert_monotone(stream)
            for seq, idxs in stream:
                assert idxs == sorted(idxs) and idxs
            # The chain head equals the durable flush_seq: nothing
            # committed went unshipped.
            assert stream[-1][0] == store.committed_state(name)[1]
            # Merging (batch < submissions) is legal; losing commits
            # is not: every commit the committer performed for this
            # PMO shipped exactly once.
        assert store.committer.submitted >= len(shipper.commits)
        store.close()


class TestShutdownPaths:
    def test_drain_ships_everything_queued(self, tmp_path):
        """close() drains: every queued snapshot commits and ships
        before the flusher exits."""
        store, lib, shipper = make(tmp_path, interval_us=20_000)
        pmo = lib.PMO_create("drain", MIB)
        tickets = []
        with lib.thread(1):
            lib.attach(pmo)
            oid = lib.pmalloc(pmo, 4096)
            for r in range(5):
                lib.write(oid, bytes([r]) * 128)
                _, ticket = lib.psync_submit(pmo)
                if ticket is not None:
                    tickets.append(ticket)
        store.close()
        assert tickets
        for ticket in tickets:
            assert ticket.done
            ticket.wait(timeout=0.0)      # completed, not failed
        stream = shipper.per_pmo("drain")
        assert_monotone(stream)
        assert stream[-1][0] == store.committed_state("drain")[1]

    def test_abort_drops_unflushed_but_keeps_stream_consistent(
            self, tmp_path):
        """abort_commits() on the crash path: queued snapshots fail
        (their psyncs never promised durability), nothing ships after
        the abort, and what did ship is still a monotone prefix."""
        stall = FaultRule("store.commit_stall", "stall",
                          probability=1.0, count=1,
                          delay_ns=150_000_000)
        store, lib, shipper = make(tmp_path, rules=[stall])
        pmo = lib.PMO_create("abort", MIB)
        tickets = []
        with lib.thread(1):
            lib.attach(pmo)
            oid = lib.pmalloc(pmo, 4096)
            # First submission occupies the flusher inside the
            # injected stall; the rest queue up behind it.
            for r in range(4):
                lib.write(oid, bytes([r + 1]) * 128)
                _, ticket = lib.psync_submit(pmo)
                if ticket is not None:
                    tickets.append(ticket)
                time.sleep(0.01)
        store.abort_commits()
        shipped_at_abort = len(shipper.commits)
        failed = 0
        for ticket in tickets:
            try:
                ticket.wait(timeout=1.0)
            except PmoError:
                failed += 1
        # The stall guarantees at least one snapshot was still queued
        # when the abort landed: its psync must have typed-failed.
        assert failed >= 1
        stream = shipper.per_pmo("abort")
        assert_monotone(stream)
        time.sleep(0.05)
        assert len(shipper.commits) == shipped_at_abort
        # A post-abort submission is refused, not silently dropped.
        with lib.thread(2):
            lib.attach(pmo)
            lib.write(oid, b"late")
            with pytest.raises(PmoError):
                lib.psync(pmo)
