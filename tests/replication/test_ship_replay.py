"""Shipper -> standby applier: live replay, bootstrap, chain safety.

These tests run a real :class:`JournalShipper` against a real
:class:`StandbyDaemon` over localhost TCP.  Because the shipper runs
semi-synchronously (a commit ticket retires only after the standby
acks the fsynced batch), every assertion after a returned ``psync``
can inspect the standby's pool directory without sleeping.
"""

import socket
import struct
import threading
import time
import zlib

import pytest

from repro.core.units import MIB, PAGE_SIZE
from repro.pmo.api import PmoLibrary
from repro.pmo.store import PmoStore
from repro.replication import (
    JournalApplier, JournalShipper, ReplicationChainError,
    StandbyDaemon)


@pytest.fixture
def standby(tmp_path):
    daemon = StandbyDaemon(tmp_path / "standby")
    daemon.start()
    yield daemon
    daemon.stop()


def make_primary(tmp_path, standby, *, connect=True):
    store = PmoStore(tmp_path / "primary")
    shipper = JournalShipper("127.0.0.1", standby.bound_port,
                             store=store)
    store.shipper = shipper
    if connect:
        assert shipper.start()
    lib = PmoLibrary(store=store)
    return store, shipper, lib


def commit_rounds(lib, store, name, rounds=3):
    pmo = lib.PMO_create(name, MIB)
    with lib.thread(1):
        lib.attach(pmo)
        oid = lib.pmalloc(pmo, 4096)
        for r in range(rounds):
            lib.write(oid, bytes([r + 1]) * 512)
            lib.psync(pmo)
        lib.detach(pmo)
    return pmo, oid


class TestLiveReplay:
    def test_acked_batches_are_on_standby_media(self, tmp_path,
                                                standby):
        store, shipper, lib = make_primary(tmp_path, standby)
        commit_rounds(lib, store, "live", rounds=4)
        status = shipper.status()
        assert status["connected"]
        assert status["shipped"] >= 1
        assert status["acked"] == status["shipped"]
        assert status["lag"] == 0
        # The standby's pool holds byte-identical committed pages.
        _, primary_seq, primary_pages = store.committed_state("live")
        mirror = PmoStore(tmp_path / "standby")
        report = mirror.load_all()
        assert len(report.loaded) >= 1
        _, _, mirror_pages = mirror.committed_state("live")
        assert mirror_pages == primary_pages
        # The applier's chain head tracks the primary's flush_seq
        # (flush_seq itself is an in-memory counter that resets on a
        # fresh load, so compare at the applier).
        assert standby.applier.applied["live"] == primary_seq
        assert standby.applier.chain_errors == 0
        shipper.stop()
        store.close()

    def test_destroy_propagates(self, tmp_path, standby):
        store, shipper, lib = make_primary(tmp_path, standby)
        commit_rounds(lib, store, "victim")
        path = standby.applier.path_for("victim")
        assert path.exists()
        store.destroy("victim")
        deadline = time.monotonic() + 5.0
        while path.exists() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not path.exists()
        shipper.stop()
        store.close()

    def test_journal_records_are_mirrored(self, tmp_path, standby):
        store, shipper, lib = make_primary(tmp_path, standby)
        shipper.ship_journal({"kind": "session", "sid": 7,
                              "user": "alice"})
        deadline = time.monotonic() + 5.0
        while standby.applier.journal_records == 0 and \
                time.monotonic() < deadline:
            time.sleep(0.01)
        assert standby.applier.journal_records == 1
        shipper.stop()
        store.close()


class TestReconcilingBootstrap:
    def test_destroy_while_link_down_reconciles(self, tmp_path,
                                                standby):
        """A destroy the link was down for is unshippable — the
        reconnect bootstrap's reset frame must prune it from the
        mirror so a later promotion cannot resurrect it."""
        store = PmoStore(tmp_path / "primary")
        shipper = JournalShipper("127.0.0.1", standby.bound_port,
                                 store=store, reconnect_s=60.0)
        store.shipper = shipper
        assert shipper.start()
        lib = PmoLibrary(store=store)
        commit_rounds(lib, store, "victim")
        commit_rounds(lib, store, "keeper")
        victim = standby.applier.path_for("victim")
        assert victim.exists()
        shipper._drop_connection("test: link down")
        store.destroy("victim")
        assert victim.exists()          # the destroy was lost...
        assert shipper._connect_once()  # ...until the bootstrap
        deadline = time.monotonic() + 5.0
        while victim.exists() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not victim.exists()
        assert standby.applier.path_for("keeper").exists()
        assert "victim" not in standby.applier.applied
        shipper.stop()
        store.close()

    def test_register_vs_bootstrap_lock_order(self, tmp_path,
                                              standby):
        """Regression: register() used to call the shipper's hooks
        while holding the store lock; with the dialer's bootstrap
        holding the send lock across committed_state() (which takes
        the store lock) that was an ABBA deadlock."""
        store, shipper, lib = make_primary(tmp_path, standby)
        commit_rounds(lib, store, "existing")
        entered = threading.Event()
        registered = threading.Event()

        def bootstrap_side():
            with shipper._send_lock:     # exactly as the dialer does
                entered.set()
                time.sleep(0.1)          # let register reach its hook
                store.committed_state("existing")

        boot = threading.Thread(target=bootstrap_side, daemon=True)
        boot.start()
        assert entered.wait(2.0)
        reg = threading.Thread(
            target=lambda: (lib.PMO_create("fresh", MIB),
                            registered.set()),
            daemon=True)
        reg.start()
        assert registered.wait(5.0), \
            "register deadlocked against a concurrent bootstrap"
        boot.join(5.0)
        assert not boot.is_alive()
        shipper.stop()
        store.close()


class TestConnectionRobustness:
    def test_stale_socket_drop_is_noop(self, tmp_path, standby):
        """A stale ack-reader from a dropped link must not tear down
        the connection the dialer has since re-established."""
        store, shipper, lib = make_primary(tmp_path, standby)
        current = shipper._sock
        stale = socket.socket()
        shipper._drop_connection("stale reader", stale)
        assert shipper.connected
        assert shipper._sock is current
        stale.close()
        shipper._drop_connection("real", current)
        assert not shipper.connected
        shipper.stop()
        store.close()

    def test_send_timeout_is_bounded(self, tmp_path, standby):
        """The replication socket carries a kernel send timeout: a
        standby that stops reading degrades shipping instead of
        parking group commits in sendall()."""
        store, shipper, lib = make_primary(tmp_path, standby)
        raw = shipper._sock.getsockopt(
            socket.SOL_SOCKET, socket.SO_SNDTIMEO, 16)
        sec, usec = struct.unpack("ll", raw[:struct.calcsize("ll")])
        assert sec + usec / 1e6 == \
            pytest.approx(shipper.ack_timeout_s, abs=0.01)
        shipper.stop()
        store.close()


class TestBootstrap:
    def test_preexisting_commits_bootstrap_on_connect(self, tmp_path,
                                                      standby):
        """Data committed before the shipper ever connected reaches
        the standby through the bootstrap snapshot."""
        store, shipper, lib = make_primary(tmp_path, standby,
                                           connect=False)
        commit_rounds(lib, store, "early", rounds=2)
        assert shipper.status()["dropped"] >= 1     # degraded, not lost
        assert shipper.start()
        # Bootstrap ships under the send lock during connect; a live
        # commit afterwards must chain cleanly on top of it.
        commit_rounds(lib, store, "late", rounds=1)
        mirror = PmoStore(tmp_path / "standby")
        mirror.load_all()
        assert mirror.committed_state("early")[2] == \
            store.committed_state("early")[2]
        assert standby.applier.chain_errors == 0
        shipper.stop()
        store.close()


def page(fill):
    return bytes([fill]) * PAGE_SIZE


def batch_args(seq, prev, *indexed_pages):
    meta = [[idx, zlib.crc32(img)] for idx, img in indexed_pages]
    payload = b"".join(img for _, img in indexed_pages)
    return seq, prev, meta, payload


class TestApplierChain:
    def test_gap_raises_chain_error(self, tmp_path):
        applier = JournalApplier(tmp_path)
        applier.apply_header("p", bytes(PAGE_SIZE))
        applier.apply_batch("p", *batch_args(2, 0, (0, page(1))))
        with pytest.raises(ReplicationChainError):
            applier.apply_batch("p", *batch_args(7, 5,
                                                 (1, page(2))))
        assert applier.chain_errors == 1
        # The chain head is untouched by the refused batch.
        assert applier.applied["p"] == 2
        applier.close()

    def test_bootstrap_reset_restores_chain(self, tmp_path):
        applier = JournalApplier(tmp_path)
        applier.apply_header("p", bytes(PAGE_SIZE))
        applier.apply_batch("p", *batch_args(3, 0, (0, page(1))))
        # prev == -1 is the bootstrap reset: a reconnecting shipper
        # re-snapshots and the chain restarts from the snapshot seq.
        applier.apply_batch("p", *batch_args(9, -1, (0, page(2))))
        applier.apply_batch("p", *batch_args(11, 9, (1, page(3))))
        assert applier.applied["p"] == 11
        applier.close()

    def test_header_truncates_stale_generation(self, tmp_path):
        """A (re)shipped header drops the mirror to the bare header:
        stale pages from a prior generation never outlive the
        bootstrap snapshot that follows."""
        applier = JournalApplier(tmp_path)
        applier.apply_header("p", bytes(PAGE_SIZE))
        applier.apply_batch("p", *batch_args(4, 0, (0, page(1)),
                                             (1, page(2))))
        grown = applier.path_for("p").stat().st_size
        applier.apply_header("p", bytes(PAGE_SIZE))
        assert applier.path_for("p").stat().st_size < grown
        assert applier.applied["p"] == 0
        applier.apply_batch("p", *batch_args(9, -1, (0, page(3))))
        assert applier.applied["p"] == 9
        applier.close()

    def test_reset_prunes_unlisted_pmos(self, tmp_path):
        applier = JournalApplier(tmp_path)
        applier.apply_header("gone", bytes(PAGE_SIZE))
        applier.apply_header("kept", bytes(PAGE_SIZE))
        applier.apply_batch("kept", *batch_args(1, 0, (0, page(1))))
        applier.apply_journal({"rec": "epoch", "wall_ns": 1})
        applier.apply_reset(["kept"])
        assert not applier.path_for("gone").exists()
        assert applier.path_for("kept").exists()
        assert "gone" not in applier.applied
        assert applier.applied["kept"] == 1
        # The mirrored session journal restarts: the primary re-ships
        # it in full right after the reset.
        assert not applier._journal.path.exists()
        applier.close()

    def test_batch_before_header_raises(self, tmp_path):
        applier = JournalApplier(tmp_path)
        with pytest.raises(ReplicationChainError):
            applier.apply_batch("ghost", *batch_args(1, -1,
                                                     (0, page(1))))
        applier.close()

    def test_crc_mismatch_raises(self, tmp_path):
        applier = JournalApplier(tmp_path)
        applier.apply_header("p", bytes(PAGE_SIZE))
        seq, prev, meta, payload = batch_args(1, 0, (0, page(1)))
        meta[0][1] ^= 0xFF
        with pytest.raises(Exception):
            applier.apply_batch("p", seq, prev, meta, payload)
        applier.close()

    def test_short_payload_raises(self, tmp_path):
        applier = JournalApplier(tmp_path)
        applier.apply_header("p", bytes(PAGE_SIZE))
        seq, prev, meta, payload = batch_args(1, 0, (0, page(1)))
        with pytest.raises(Exception):
            applier.apply_batch("p", seq, prev, meta,
                                payload[:-1])
        applier.close()
