"""Relocatable pointers through randomization (the paper's footnote:
"accesses to a PMO are through relocatable PMO APIs").

Every address a program holds must survive the PMO moving: OIDs are
position-independent, ``oid_direct`` follows the current mapping, and
data structures keep working across arbitrary relocations — while raw
virtual addresses captured before a move become invalid, which is
precisely the security property randomization provides.
"""

import numpy as np
import pytest

from repro.core.errors import SegmentationFault
from repro.core.permissions import Access
from repro.core.runtime import TerpRuntime
from repro.core.semantics import EwConsciousSemantics
from repro.core.units import MIB, us
from repro.pmo.pool import PmoManager
from repro.workloads.structures import CritBitTree, PersistentHashMap


def make_runtime():
    manager = PmoManager()
    rt = TerpRuntime(EwConsciousSemantics(us(40)), manager=manager,
                     rng=np.random.default_rng(4))
    pmo = manager.create("reloc", 16 * MIB)
    return rt, pmo


class TestRelocatablePointers:
    def test_oid_direct_follows_randomization(self):
        rt, pmo = make_runtime()
        result = rt.attach(1, pmo, Access.RW, 0)
        handle = result.handle
        oid = pmo.pmalloc(64)
        va_before = handle.direct(oid)
        rt.space.randomize(pmo.pmo_id)
        va_after = handle.direct(oid)
        assert va_before != va_after
        # Both addresses resolve to the same frame content.
        assert va_after - rt.space.mapping_of(pmo.pmo_id).base_va == \
            oid.offset

    def test_old_va_invalid_after_randomization(self):
        rt, pmo = make_runtime()
        rt.attach(1, pmo, Access.RW, 0)
        oid = pmo.pmalloc(64)
        va_before = rt.space.va_of(pmo.pmo_id, oid.offset)
        rt.space.randomize(pmo.pmo_id)
        with pytest.raises(SegmentationFault):
            rt.space.translate(va_before)

    def test_handle_records_attach_time_va(self):
        rt, pmo = make_runtime()
        result = rt.attach(1, pmo, Access.RW, 0)
        recorded = result.handle.base_va_at_attach
        rt.space.randomize(pmo.pmo_id)
        # The immutable record does not follow the move (by design);
        # the live mapping does.
        assert result.handle.base_va_at_attach == recorded
        assert rt.space.mapping_of(pmo.pmo_id).base_va != recorded

    def test_structures_survive_many_randomizations(self):
        """Hash map and crit-bit tree are pure-OID structures: any
        number of relocations cannot break them."""
        rt, pmo = make_runtime()
        rt.attach(1, pmo, Access.RW, 0)
        table = PersistentHashMap.create(pmo, 32)
        for i in range(100):
            table.put(f"k{i}".encode(), f"v{i}".encode())
            if i % 10 == 0:
                rt.space.randomize(pmo.pmo_id)
        for i in range(100):
            assert table.get(f"k{i}".encode()) == f"v{i}".encode()

    def test_tree_traversal_across_relocation(self):
        manager = PmoManager()
        pmo = manager.create("t", 16 * MIB)
        rt = TerpRuntime(EwConsciousSemantics(us(40)), manager=manager,
                         rng=np.random.default_rng(6))
        rt.attach(1, pmo, Access.RW, 0)
        tree = CritBitTree.create(pmo)
        keys = [f"key-{i:03d}".encode() for i in range(64)]
        for key in keys:
            tree.insert(key, b"v" + key)
        rt.space.randomize(pmo.pmo_id)
        rt.space.randomize(pmo.pmo_id)
        assert [k for k, _ in tree.items()] == sorted(keys)
