"""Cross-module integration scenarios.

Each test exercises several subsystems together, the way a downstream
user would: real data structures under TERP protection, crashes in
the middle of protected runs, the compiler driving the hardware
engine, and consistency between the simulator's exposure accounting
and the analytic security model.
"""

import numpy as np
import pytest

from repro import (
    Access, EwConsciousSemantics, PmoLibrary, ProtectionFault,
    TerpArchEngine)
from repro.core.runtime import TerpRuntime
from repro.core.theorem import attack_can_succeed, Schedule
from repro.core.units import MIB, us
from repro.eval.configs import config
from repro.eval.runner import run_whisper
from repro.pmo.pool import PmoManager
from repro.workloads.structures import PersistentHashMap, TpccDatabase


class TestProtectedDataStructures:
    def test_hashmap_under_terp_protection(self):
        """A real hash map driven through the protected API."""
        lib = PmoLibrary(ew_target_us=40.0)
        pmo = lib.PMO_create("store", 16 * MIB)
        lib.attach(pmo, Access.RW)
        table = PersistentHashMap.create(pmo, 64)
        for i in range(200):
            table.put(f"k{i}".encode(), f"v{i}".encode())
            lib.tick(100)   # 20us total: below the 40us EW target
        # Early detach: mapping survives, thread access does not.
        lib.detach(pmo)
        assert lib.runtime.space.is_attached(pmo.pmo_id)
        with pytest.raises(ProtectionFault):
            lib.read(pmo.root_oid, 8)
        # Re-attach and keep going: the structure is intact.
        lib.attach(pmo, Access.RW)
        assert table.get(b"k137") == b"v137"

    def test_crash_during_protected_tpcc_run(self):
        """Committed TPCC transactions survive a crash that lands in
        the middle of an open (uncommitted) one."""
        lib = PmoLibrary(ew_target_us=40.0)
        pmo = lib.PMO_create("tpcc", 64 * MIB)
        lib.attach(pmo, Access.RW)
        db = TpccDatabase.create(pmo)
        for i in range(20):
            db.new_order(0, i % 10, i % 30, 1, 100)
        balance_before = db.total_balance()
        # Crash with a transaction open.
        pmo.begin_tx()
        pmo.write(db._customer_off(0, 0, 0), b"\xff" * 8)
        lib.manager.simulate_reboot()
        recovered = TpccDatabase.open(lib.PMO_open("tpcc"))
        assert recovered.total_balance() == balance_before
        assert recovered.order_count == 20

    def test_exposure_windows_from_real_usage(self):
        """The monitor's windows reflect the actual attach/detach
        pattern of a hand-driven session."""
        lib = PmoLibrary(ew_target_us=40.0)
        pmo = lib.PMO_create("w", 8 * MIB)
        for _ in range(5):
            lib.attach(pmo, Access.RW)
            lib.tick(us(50))
            lib.detach(pmo)   # past the target: real detach
            lib.tick(us(50))
        lib.runtime.finish(lib.clock_ns)
        stats = lib.runtime.monitor.ew.stats()
        assert stats.count == 5
        assert stats.avg_ns == pytest.approx(us(50), rel=0.01)


class TestCompilerToHardware:
    def test_pass_output_runs_on_arch_engine_with_runtime(self):
        """Compiler-instrumented IR drives the full runtime stack:
        arch engine + address space + MPK + exposure monitor."""
        from repro.compiler.insertion import TerpInsertionPass
        from repro.compiler.interp import Interpreter
        from repro.compiler.ir import Compute, Load, Program, Store

        prog = Program()
        prog.declare_pmo_handle("h", "data")
        fn = prog.function("main")
        fn.block("entry", [Compute(100)]).jump("work")
        fn.block("work", [Load("h"), Compute(2_000), Store("h")]) \
            .branch("work", "done")
        fn.block("done", [Compute(100)])
        TerpInsertionPass(let_threshold_cycles=50_000,
                          tew_cycles=3_000).run(prog)

        engine = TerpArchEngine(us(40))
        result = Interpreter(prog, engine, seed=2,
                             branch_bias=0.9).run("main")
        assert result.clean
        assert result.attaches >= 2
        # Window combining kicked in: some attaches were silent.
        assert engine.cases.case3_silent_attach + \
            engine.cases.case6_delayed_detach > 0


class TestSimulationVsAnalyticSecurity:
    def test_measured_windows_satisfy_theorem(self):
        """Windows measured from a simulated TT run, fed into the
        Theorem 6 checker: no stationary+accessible stretch can exceed
        the EW target (so any slower attack is prevented)."""
        result = run_whisper("echo", config("TT"), n_transactions=800)
        machine_windows = []
        # Rebuild the schedule from the per-PMO exposure report: the
        # run's windows are bounded by ew_max.
        ew_max_ns = int(result.per_pmo[0].ew_max_us * 1_000)
        # Regenerate an explicit schedule with the measured bound.
        schedule = Schedule.of([(i * 3 * ew_max_ns,
                                 i * 3 * ew_max_ns + ew_max_ns)
                                for i in range(50)],
                               relocations=[])
        attack_needs = ew_max_ns + 1
        assert not attack_can_succeed(schedule, attack_needs)
        # And the measured max is near the configured 40us target.
        assert result.per_pmo[0].ew_max_us <= 45.0

    def test_gadget_armed_fraction_matches_ter(self):
        """The Table VI derivation: a uniformly-placed gadget's
        probability of executing with PMO access equals TER."""
        result = run_whisper("ycsb", config("TT"), n_transactions=800)
        ter = result.per_pmo[0].ter_percent
        er = result.per_pmo[0].er_percent
        assert 0 < ter < er < 100


class TestSemanticsHardwareEquivalence:
    def test_arch_engine_equals_software_semantics_single_thread(self):
        """For single-threaded call patterns below the EW target, the
        hardware engine and EW-conscious software semantics must make
        identical access decisions."""
        from repro.core.semantics import Outcome
        rng = np.random.default_rng(11)
        soft = EwConsciousSemantics(us(40))
        hard = TerpArchEngine(us(40))
        t = 0
        open_soft = open_hard = False
        for _ in range(300):
            t += int(rng.integers(100, 3_000))
            action = rng.integers(0, 3)
            if action == 0 and not open_soft:
                a = soft.attach(1, "p", Access.RW, t)
                b = hard.attach(1, "p", Access.RW, t)
                open_soft = open_hard = True
            elif action == 1 and open_soft:
                soft.detach(1, "p", t)
                hard.detach(1, "p", t)
                open_soft = open_hard = False
            else:
                a = soft.access(1, "p", Access.READ, t)
                b = hard.access(1, "p", Access.READ, t)
                assert (a.outcome is Outcome.OK) == \
                    (b.outcome is Outcome.OK), f"diverged at t={t}"
