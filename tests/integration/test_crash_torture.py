"""Systematic crash injection against the persistent structures.

For every possible crash point (after the K-th storage write of an
operation), snapshot the PMO's bytes — exactly what the persistent
media would hold at a power failure there — recover from the
snapshot, and verify the structure is in a consistent state: either
the interrupted operation never happened, or it completed entirely.
This is the strongest check on the redo-log design: no crash point
may expose a torn structure.
"""

import pytest

from repro.core.units import MIB
from repro.faults.plan import FaultPlan, FaultRule
from repro.pmo.pmo import Pmo, SparseBytes
from repro.service.client import ConnectionLost, SyncTerpClient
from repro.service.server import ServiceThread, TerpService
from repro.workloads.structures import (
    CritBitTree, PersistentHashMap, TpccDatabase, VersionedKvStore)


class _CrashNow(Exception):
    pass


class CrashingStorage:
    """Forwards to a SparseBytes but crashes at the K-th write."""

    def __init__(self, inner: SparseBytes, crash_after: int) -> None:
        self._inner = inner
        self._remaining = crash_after
        self.snapshot_bytes = None

    def write(self, offset, data):
        if self._remaining <= 0:
            self.snapshot_bytes = self._inner.snapshot()
            raise _CrashNow()
        self._remaining -= 1
        self._inner.write(offset, data)

    def write_u64(self, offset, value):
        import struct
        self.write(offset, struct.pack("<Q", value & ((1 << 64) - 1)))

    def __getattr__(self, name):
        return getattr(self._inner, name)


def crash_points_for(build, committed_ops, crashing_op, reopen,
                     check, max_points=60):
    """Run ``crashing_op`` with a crash injected at every write index;
    after each crash, recover from the snapshot and run ``check``."""
    tested = 0
    for crash_after in range(max_points):
        pmo = Pmo(1, "torture", 16 * MIB)
        structure = build(pmo)
        committed_ops(structure)
        storage = CrashingStorage(pmo.storage, crash_after)
        pmo.storage = storage
        pmo.log.memory = storage
        pmo.heap.memory = storage
        try:
            crashing_op(structure)
        except _CrashNow:
            tested += 1
            recovered_pmo = Pmo.from_snapshot(
                1, "torture", storage.snapshot_bytes)
            check(reopen(recovered_pmo), completed=False)
            continue
        # No crash fired: the op has fewer writes than crash_after.
        # Final sanity check on the completed state, then stop.
        pmo.storage = storage._inner
        pmo.log.memory = storage._inner
        pmo.heap.memory = storage._inner
        check(reopen(pmo), completed=True)
        break
    assert tested > 0, "no crash point was ever reached"
    return tested


class TestHashMapTorture:
    def test_put_is_atomic_under_crash(self):
        def build(pmo):
            return PersistentHashMap.create(pmo, 16)

        def committed(table):
            for i in range(10):
                table.put(f"k{i}".encode(), f"v{i}".encode())

        def crashing(table):
            table.put(b"new-key", b"new-value")

        def check(table, completed):
            # Previously committed entries always intact.
            for i in range(10):
                assert table.get(f"k{i}".encode()) == f"v{i}".encode()
            # The interrupted put either fully happened or not at all.
            value = table.get(b"new-key")
            assert value in (None, b"new-value")
            if completed:
                assert value == b"new-value"
            # The map is structurally walkable.
            items = dict(table.items())
            assert len(items) == len(table)

        crash_points_for(build, committed, crashing,
                         PersistentHashMap.open, check)

    def test_delete_is_atomic_under_crash(self):
        def build(pmo):
            return PersistentHashMap.create(pmo, 4)

        def committed(table):
            for i in range(8):
                table.put(f"k{i}".encode(), b"x" * 8)

        def crashing(table):
            table.delete(b"k3")

        def check(table, completed):
            value = table.get(b"k3")
            assert value in (None, b"x" * 8)
            assert table.get(b"k2") == b"x" * 8
            assert len(dict(table.items())) == len(table)

        crash_points_for(build, committed, crashing,
                         PersistentHashMap.open, check)


class TestCritBitTorture:
    def test_insert_is_atomic_under_crash(self):
        def build(pmo):
            return CritBitTree.create(pmo)

        def committed(tree):
            for i in range(10):
                tree.insert(f"key{i:02d}".encode(), b"v")

        def crashing(tree):
            tree.insert(b"brand-new", b"value")

        def check(tree, completed):
            for i in range(10):
                assert tree.get(f"key{i:02d}".encode()) == b"v"
            assert tree.get(b"brand-new") in (None, b"value")
            keys = [k for k, _ in tree.items()]
            assert keys == sorted(keys)
            assert len(keys) == len(tree)

        crash_points_for(build, committed, crashing,
                         CritBitTree.open, check)


class TestTpccTorture:
    def test_new_order_is_atomic_under_crash(self):
        def build(pmo):
            return TpccDatabase.create(pmo)

        def committed(db):
            for i in range(5):
                db.new_order(0, i % 10, i % 30, 1, 100)

        def crashing(db):
            db.new_order(1, 2, 3, 4, 999)

        def check(db, completed):
            # Money conservation: balances equal committed orders
            # (500) plus the interrupted order only if it completed.
            total = db.total_balance()
            assert total in (500, 500 + 999)
            if completed:
                assert total == 500 + 999
            assert db.order_count in (5, 6)
            # Balance sum must agree with the order count.
            assert (total == 500) == (db.order_count == 5)

        crash_points_for(build, committed, crashing,
                         TpccDatabase.open, check)


class TestTerpdSessionCrashTorture:
    """The same every-crash-point discipline, against a live terpd.

    A session opens a transaction and writes N values; an injected
    crash kills the session at every K-th storage write.  The media
    snapshot at that instant goes through full recovery (header
    validation, redo-log replay) — the transaction must be invisible
    (all old values, never a mix), and the audit timeline must show a
    forced detach attributing the dead session's teardown.
    """

    N_WRITES = 4

    def run_crash_at(self, k):
        plan = FaultPlan(seed=k, rules=[
            FaultRule("lib.storage_write", "crash", after=k, count=1)])
        plan.disarm()
        service = TerpService(port=0, seed=9, faults=plan,
                              session_ew_ns=1_000_000_000)
        with ServiceThread(service) as svc:
            port = svc.bound_port
            with SyncTerpClient(port=port, user="admin") as admin:
                admin.create("txpmo", 1 << 20, mode=0o666)
                oids = [admin.pmalloc("txpmo", 8)
                        for _ in range(self.N_WRITES)]
                admin.attach("txpmo")
                for i, oid in enumerate(oids):
                    admin.write_u64(oid, 100 + i)   # committed base
                admin.detach("txpmo")
            client = SyncTerpClient(port=port, user="victim")
            client.connect()
            client.attach("txpmo")
            client.tx_begin("txpmo")
            plan.arm()
            crashed = False
            try:
                for i, oid in enumerate(oids):
                    client.write_u64(oid, 200 + i)
                client.psync("txpmo")
                client.detach("txpmo")
                client.goodbye()
            except ConnectionLost:
                crashed = True
            plan.disarm()
            client.close()
            with service.lib.lock:
                pmo = service.lib.manager.lookup("txpmo")
                snapshot = pmo.storage.snapshot()
            events = service.obs.audit.events()
        recovered = Pmo.from_snapshot(pmo.pmo_id, "txpmo", snapshot)
        values = [recovered.read_u64(oid.offset) for oid in oids]
        return crashed, values, events

    def test_every_crash_point_recovers_untorn(self):
        tested = 0
        for k in range(self.N_WRITES + 1):
            crashed, values, events = self.run_crash_at(k)
            if crashed:
                tested += 1
                # The uncommitted transaction is wholly invisible:
                # recovery yields the committed base, never a mix.
                assert values == [100 + i
                                  for i in range(self.N_WRITES)], \
                    f"torn recovery at crash point {k}: {values}"
                assert any(
                    e["kind"] == "forced-detach"
                    and "session crashed" in e["reason"]
                    for e in events), \
                    f"no attributed forced detach at crash point {k}"
                assert any(
                    e["kind"] == "fault"
                    and "lib.storage_write [crash]" in e["reason"]
                    for e in events)
            else:
                # K past the transaction's write count: it commits.
                assert k == self.N_WRITES
                assert values == [200 + i
                                  for i in range(self.N_WRITES)]
        assert tested == self.N_WRITES
