"""Table V's analytic success-probability model."""

import pytest

from repro.core.units import GIB, MIB
from repro.security.probability import (
    AttackScenario, merr_success_percent, placement_entropy_bits,
    reduction_factor, simulate_probing, terp_success_percent)


class TestEntropy:
    def test_1gb_pmo_has_18_bits(self):
        # 256TB region / 1GB slots = 2^18 placements.
        assert placement_entropy_bits(GIB) == 18

    def test_smaller_pmo_more_entropy(self):
        assert placement_entropy_bits(2 * MIB) > \
            placement_entropy_bits(GIB)

    def test_degenerate_region(self):
        assert placement_entropy_bits(GIB, region_size=GIB) == 0


class TestAnalyticModel:
    def test_merr_paper_value_1us(self):
        # Table V: 0.015% at x = 1us.
        assert merr_success_percent(1.0) == pytest.approx(0.01526,
                                                          rel=0.01)

    def test_merr_paper_value_01us(self):
        assert merr_success_percent(0.1) == pytest.approx(0.1526,
                                                          rel=0.01)

    def test_terp_paper_value_1us(self):
        # Table V: 0.0005% at x = 1us.
        assert terp_success_percent(1.0) == pytest.approx(0.000509,
                                                          rel=0.01)

    def test_terp_30x_reduction(self):
        assert reduction_factor(1.0) == pytest.approx(30.0, rel=0.02)

    def test_attack_slower_than_tew_impossible(self):
        # "each attack time must be smaller than the TEW ... as it
        # needs the permission to the PMO during the attack".
        assert terp_success_percent(5.0, tew_us=2.0) is None

    def test_probability_scales_with_window(self):
        small = AttackScenario(1.0, window_us=40.0)
        large = AttackScenario(1.0, window_us=160.0)
        assert large.success_probability == pytest.approx(
            4 * small.success_probability)

    def test_probability_capped_at_one(self):
        degenerate = AttackScenario(0.001, window_us=1e9,
                                    entropy_bits=4)
        assert degenerate.success_probability == 1.0

    def test_entropy_halves_probability_per_bit(self):
        a = AttackScenario(1.0, entropy_bits=10)
        b = AttackScenario(1.0, entropy_bits=11)
        assert a.success_probability == pytest.approx(
            2 * b.success_probability)


class TestMonteCarlo:
    def test_matches_analytic_model(self):
        analytic = merr_success_percent(1.0)
        simulated = simulate_probing(1.0, windows=400_000, seed=7)
        assert simulated == pytest.approx(analytic, rel=0.25)

    def test_zero_probes(self):
        assert simulate_probing(100.0, window_us=40.0,
                                access_fraction=0.01) == 0.0

    def test_access_fraction_shrinks_success(self):
        full = simulate_probing(1.0, windows=300_000, seed=3)
        slice_ = simulate_probing(1.0, access_fraction=1 / 30,
                                  windows=300_000, seed=3)
        assert slice_ < full
