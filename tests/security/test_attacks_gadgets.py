"""Data-only attack case study and the gadget census."""

import pytest

from repro.security.attacks import (
    AttackConfig, AttackOutcome, compare_protections, DataOnlyAttack,
    Protection, VictimList)
from repro.security.gadgets import (
    AttackCapability, census_from_runs, GadgetCensus, GadgetRelation,
    scenario_table)
from repro.security.threat_model import (
    Assumption, AttackClass, DEFAULT_THREAT_MODEL, PmoState)
from repro.core.units import MIB
from repro.pmo.pmo import Pmo


class TestThreatModel:
    def test_detached_blocks_everything(self):
        for attack in AttackClass:
            assert DEFAULT_THREAT_MODEL.protects_against(
                attack, PmoState.DETACHED)

    def test_spectre_not_blocked_when_attached(self):
        assert not DEFAULT_THREAT_MODEL.protects_against(
            AttackClass.SPECTRE, PmoState.ATTACHED_NO_PERMISSION)

    def test_permission_state_blocks_data_only(self):
        assert DEFAULT_THREAT_MODEL.protects_against(
            AttackClass.HEAP_OVERFLOW, PmoState.ATTACHED_NO_PERMISSION)

    def test_attached_with_permission_is_probabilistic(self):
        assert not DEFAULT_THREAT_MODEL.protects_against(
            AttackClass.HEAP_OVERFLOW,
            PmoState.ATTACHED_WITH_PERMISSION)

    def test_assumptions_enumerated(self):
        assert Assumption.TRUSTED_OS in DEFAULT_THREAT_MODEL.assumptions


class TestVictimList:
    def test_list_structure(self):
        pmo = Pmo(1, "v", 4 * MIB)
        victim = VictimList(pmo, 8)
        assert victim.props() == [100 + i for i in range(8)]
        assert pmo.root_oid == victim.nodes[-1]


class TestDataOnlyAttack:
    def test_unprotected_attack_succeeds(self):
        config = AttackConfig(Protection.NONE, max_rounds=50_000)
        outcome = DataOnlyAttack(config, n_nodes=8, seed=1).run()
        assert outcome.succeeded

    def test_unprotected_attack_corrupts_data(self):
        config = AttackConfig(Protection.NONE, max_rounds=50_000)
        attack = DataOnlyAttack(config, n_nodes=4, seed=1)
        attack.run()
        # Every node's prop was incremented by the attacker's value.
        assert attack.victim.props() == [100 + i + 7777 for i in range(4)]

    def test_terp_blocks_attack_within_budget(self):
        config = AttackConfig(Protection.TERP, max_rounds=30_000)
        outcome = DataOnlyAttack(config, n_nodes=8, seed=1).run()
        assert not outcome.succeeded
        assert outcome.faults > 0   # detectable permission faults

    def test_terp_harder_than_merr(self):
        merr = DataOnlyAttack(AttackConfig(Protection.MERR,
                                           max_rounds=30_000),
                              n_nodes=8, seed=1).run()
        terp = DataOnlyAttack(AttackConfig(Protection.TERP,
                                           max_rounds=30_000),
                              n_nodes=8, seed=1).run()
        assert terp.progress <= merr.progress

    def test_randomization_forces_reprobing(self):
        config = AttackConfig(Protection.MERR, max_rounds=50_000)
        outcome = DataOnlyAttack(config, n_nodes=8, seed=1).run()
        assert outcome.stale_addresses > 0

    def test_interactive_attack_impossible_under_merr_and_terp(self):
        """Table VI: network RTT (ms) >> EW (40us): by the time a
        probe's answer arrives, the PMO has been re-randomized, so
        interactive attacks never learn a usable address."""
        for protection in (Protection.MERR, Protection.TERP):
            config = AttackConfig(protection=protection,
                                  interactive=True,
                                  max_rounds=20_000)
            outcome = DataOnlyAttack(config, n_nodes=6, seed=3).run()
            assert outcome.corrupted_nodes == 0
            assert outcome.reprobes == 0

    def test_interactive_attack_still_works_unprotected(self):
        """Without randomization there is no epoch to go stale."""
        config = AttackConfig(Protection.NONE, interactive=True,
                              max_rounds=50_000)
        outcome = DataOnlyAttack(config, n_nodes=6, seed=3).run()
        assert outcome.succeeded

    def test_compare_protections_shape(self):
        results = compare_protections(n_nodes=6, max_rounds=20_000,
                                      seed=2)
        assert set(results) == {"none", "merr", "terp"}
        assert results["none"].succeeded
        assert results["terp"].progress <= results["none"].progress


class TestGadgetCensus:
    def _census(self, merr_er, terp_ter):
        return GadgetCensus("X", merr_armed_percent=merr_er,
                            terp_armed_percent=terp_ter)

    def test_disarmed_complements_armed(self):
        census = self._census(24.5, 3.4)
        assert census.merr_disarmed_percent == pytest.approx(75.5)
        assert census.terp_disarmed_percent == pytest.approx(96.6)

    def test_improvement_factor(self):
        census = self._census(24.5, 3.4)
        assert census.improvement_factor == pytest.approx(7.2, rel=0.01)

    def test_census_from_runs_uses_er_and_ter(self):
        class FakeRun:
            def __init__(self, er, ter):
                self.er_percent = er
                self.ter_percent = ter
        census = census_from_runs(
            "S", {"a": FakeRun(20.0, 99.0), "b": FakeRun(30.0, 99.0)},
            {"a": FakeRun(99.0, 3.0), "b": FakeRun(99.0, 5.0)})
        assert census.merr_armed_percent == pytest.approx(25.0)
        assert census.terp_armed_percent == pytest.approx(4.0)

    def test_scenario_table_covers_grid(self):
        census = self._census(24.5, 3.4)
        rows = scenario_table(census, census)
        assert len(rows) == 6
        relations = {r.relation for r in rows}
        capabilities = {r.capability for r in rows}
        assert relations == set(GadgetRelation)
        assert capabilities == set(AttackCapability)

    def test_scenario_quantitative_mentions_disarm_rate(self):
        census = self._census(24.5, 3.4)
        rows = scenario_table(census, census)
        quantified = [r for r in rows if r.quantitative]
        assert any("96.6" in r.quantitative for r in quantified)
