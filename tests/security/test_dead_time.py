"""Dead-time tracking and the Figure 8 distribution."""

import numpy as np
import pytest

from repro.security.dead_time import (
    DeadTimeDistribution, DeadTimeTracker, FIG8_BIN_EDGES_US,
    ObjectLifetime)
from repro.workloads.heaplayers import PROFILES, run_profile


class TestTracker:
    def test_lifecycle(self):
        t = DeadTimeTracker()
        t.on_alloc(1, 100)
        t.on_write(1, 500)
        t.on_write(1, 2_000)
        t.on_free(1, 10_000)
        (obj,) = t.completed
        assert obj.dead_time_ns == 8_000

    def test_dead_time_without_writes_counts_from_alloc(self):
        t = DeadTimeTracker()
        t.on_alloc(1, 100)
        t.on_free(1, 400)
        assert t.completed[0].dead_time_ns == 300

    def test_unknown_object_ignored(self):
        t = DeadTimeTracker()
        t.on_write(99, 10)
        t.on_free(99, 20)
        assert t.completed == []

    def test_dead_times_us(self):
        t = DeadTimeTracker()
        t.on_alloc(1, 0)
        t.on_free(1, 2_000)
        assert t.dead_times_us() == pytest.approx([2.0])


class TestDistribution:
    def test_requires_samples(self):
        with pytest.raises(ValueError):
            DeadTimeDistribution.from_dead_times([])

    def test_percentages_sum_to_100(self):
        d = DeadTimeDistribution.from_dead_times([0.1, 1.5, 3.0, 100.0])
        assert sum(d.percentages) == pytest.approx(100.0)

    def test_binning(self):
        d = DeadTimeDistribution.from_dead_times([0.1, 0.3, 5.0])
        # 0.1 -> bin (0, 0.2]; 0.3 -> (0.2, 0.4]; 5.0 -> (4, 8].
        assert d.percentages[0] == pytest.approx(100 / 3)
        assert d.percentages[1] == pytest.approx(100 / 3)

    def test_fraction_at_least_excludes_below_threshold(self):
        d = DeadTimeDistribution.from_dead_times([1.5, 3.0, 5.0, 10.0])
        assert d.fraction_at_least(2.0) == pytest.approx(0.75)

    def test_fraction_at_least_monotone(self):
        d = DeadTimeDistribution.from_dead_times(
            list(np.geomspace(0.1, 1000, 200)))
        f2 = d.fraction_at_least(2.0)
        f8 = d.fraction_at_least(8.0)
        assert f8 <= f2

    def test_render_contains_bins(self):
        d = DeadTimeDistribution.from_dead_times([1.0, 10.0])
        text = d.render()
        assert "us" in text and "%" in text


class TestHeapLayersProfiles:
    def test_thirteen_profiles(self):
        # Eight SPEC + five Heap Layers, as in the paper.
        assert len(PROFILES) == 13
        assert sum(1 for p in PROFILES if p.name.startswith("hl-")) == 5

    def test_run_profile_completes_all_objects(self):
        tracker = run_profile(PROFILES[0], n_objects=200, seed=1)
        assert len(tracker.completed) == 200

    def test_profile_is_deterministic(self):
        a = run_profile(PROFILES[0], n_objects=100, seed=1)
        b = run_profile(PROFILES[0], n_objects=100, seed=1)
        assert list(a.dead_times_us()) == list(b.dead_times_us())

    def test_dead_times_positive(self):
        tracker = run_profile(PROFILES[3], n_objects=150, seed=2)
        assert (tracker.dead_times_us() > 0).all()

    def test_headline_95_percent(self):
        """The Figure 8 claim: ~95% of dead times are >= 2us."""
        from repro.eval.experiments import fig8
        result = fig8.run(n_objects_per_profile=400)
        assert 0.90 <= result.surface_reduction_at_2us <= 0.99
