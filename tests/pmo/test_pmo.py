"""The PMO object: storage, layout, pointers, crash simulation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import PmoError
from repro.core.units import KIB, MIB, PAGE_SIZE
from repro.pmo.object_id import Oid
from repro.pmo.pmo import MAGIC, Pmo, SparseBytes


class TestSparseBytes:
    def test_zero_initialized(self):
        mem = SparseBytes(1 * MIB)
        assert mem.read(12345, 10) == b"\x00" * 10

    def test_write_read_roundtrip(self):
        mem = SparseBytes(1 * MIB)
        mem.write(100, b"payload")
        assert mem.read(100, 7) == b"payload"

    def test_cross_page_write(self):
        mem = SparseBytes(1 * MIB)
        data = bytes(range(200))
        mem.write(PAGE_SIZE - 100, data)
        assert mem.read(PAGE_SIZE - 100, 200) == data

    def test_out_of_bounds_rejected(self):
        mem = SparseBytes(1024)
        with pytest.raises(PmoError):
            mem.read(1020, 8)
        with pytest.raises(PmoError):
            mem.write(1020, b"12345678")
        with pytest.raises(PmoError):
            mem.read(-1, 4)

    def test_u64_helpers(self):
        mem = SparseBytes(1024)
        mem.write_u64(8, 0xDEADBEEF12345678)
        assert mem.read_u64(8) == 0xDEADBEEF12345678

    def test_sparse_residency(self):
        mem = SparseBytes(1024 * MIB)
        mem.write(512 * MIB, b"x")
        assert mem.resident_bytes() == PAGE_SIZE

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 8000), st.binary(min_size=1, max_size=3 * PAGE_SIZE))
    def test_roundtrip_property(self, offset, data):
        mem = SparseBytes(32 * PAGE_SIZE)
        mem.write(offset, data)
        assert mem.read(offset, len(data)) == data


@pytest.fixture
def pmo():
    return Pmo(pmo_id=1, name="test", size_bytes=8 * MIB)


class TestPmoBasics:
    def test_header_written(self, pmo):
        assert pmo.read(0, len(MAGIC)) == MAGIC
        assert pmo.storage.read_u64(8) == 8 * MIB

    def test_too_small_rejected(self):
        with pytest.raises(PmoError):
            Pmo(1, "tiny", 1024)

    def test_pmalloc_returns_oid_in_pool(self, pmo):
        oid = pmo.pmalloc(128)
        assert oid.pool_id == 1
        assert 0 < oid.offset < pmo.size_bytes

    def test_pmalloc_data_roundtrip(self, pmo):
        oid = pmo.pmalloc(64)
        pmo.write(oid.offset, b"persistent!")
        assert pmo.read(oid.offset, 11) == b"persistent!"

    def test_pfree_then_reuse(self, pmo):
        oid = pmo.pmalloc(64)
        pmo.pfree(oid)
        oid2 = pmo.pmalloc(64)
        assert oid2.offset == oid.offset  # first fit reuses the slot

    def test_pfree_foreign_oid_rejected(self, pmo):
        with pytest.raises(PmoError):
            pmo.pfree(Oid(99, 4096))

    def test_root_oid_roundtrip(self, pmo):
        oid = pmo.pmalloc(64)
        pmo.root_oid = oid
        assert pmo.root_oid == oid

    def test_root_oid_defaults_null(self, pmo):
        assert pmo.root_oid.is_null()

    def test_oid_of_bounds(self, pmo):
        with pytest.raises(PmoError):
            pmo.oid_of(pmo.size_bytes)

    def test_subtree_cached_and_correct_level(self, pmo):
        tree = pmo.subtree
        assert tree is pmo.subtree
        assert tree.level == 2  # 8MB needs a level-2 subtree


class TestPmoTransactions:
    def test_transactional_write_applies_on_commit(self, pmo):
        oid = pmo.pmalloc(64)
        pmo.begin_tx()
        pmo.write(oid.offset, b"txdata")
        pmo.commit_tx()
        assert pmo.read(oid.offset, 6) == b"txdata"

    def test_read_your_writes_inside_tx(self, pmo):
        oid = pmo.pmalloc(64)
        pmo.begin_tx()
        pmo.write(oid.offset, b"pending")
        assert pmo.read(oid.offset, 7) == b"pending"
        pmo.commit_tx()

    def test_abort_discards(self, pmo):
        oid = pmo.pmalloc(64)
        pmo.write(oid.offset, b"original")
        pmo.begin_tx()
        pmo.write(oid.offset, b"scribble")
        pmo.abort_tx()
        assert pmo.read(oid.offset, 8) == b"original"

    def test_u64_write_respects_tx(self, pmo):
        oid = pmo.pmalloc(64)
        pmo.begin_tx()
        pmo.write_u64(oid.offset, 777)
        assert pmo.read_u64(oid.offset) == 777  # read-your-writes
        pmo.abort_tx()
        assert pmo.read_u64(oid.offset) == 0


class TestCrashRecovery:
    def test_crash_recover_preserves_committed_data(self):
        pmo = Pmo(1, "crashy", 8 * MIB)
        oid = pmo.pmalloc(64)
        pmo.begin_tx()
        pmo.write(oid.offset, b"durable")
        pmo.commit_tx()
        pmo.crash()
        pmo.recover()
        assert pmo.read(oid.offset, 7) == b"durable"
        assert pmo.heap.is_allocated(oid.offset - pmo._heap_base)

    def test_crash_loses_open_tx(self):
        pmo = Pmo(1, "crashy", 8 * MIB)
        oid = pmo.pmalloc(64)
        pmo.begin_tx()
        pmo.write(oid.offset, b"gone")
        pmo.crash()
        pmo.recover()
        assert pmo.read(oid.offset, 4) == b"\x00" * 4

    def test_recover_validates_magic(self):
        pmo = Pmo(1, "corrupt", 8 * MIB)
        pmo.storage.write(0, b"XXXXXXXX")
        pmo.crash()
        with pytest.raises(PmoError):
            pmo.recover()

    def test_allocations_usable_after_recovery(self):
        pmo = Pmo(1, "alloc", 8 * MIB)
        pmo.pmalloc(64)
        pmo.crash()
        pmo.recover()
        oid = pmo.pmalloc(128)
        pmo.write(oid.offset, b"new")
        assert pmo.read(oid.offset, 3) == b"new"
