"""PMO namespace / lifecycle (PMO_create, PMO_open, PMO_close)."""

import pytest

from repro.core.errors import PmoError
from repro.core.permissions import Access
from repro.core.units import MIB
from repro.pmo.pool import mode_allows, PmoManager


@pytest.fixture
def mgr():
    return PmoManager()


class TestModeBits:
    def test_owner_rw(self):
        assert mode_allows(0o600, is_owner=True, requested=Access.RW)
        assert not mode_allows(0o600, is_owner=False, requested=Access.READ)

    def test_world_readable(self):
        assert mode_allows(0o644, is_owner=False, requested=Access.READ)
        assert not mode_allows(0o644, is_owner=False, requested=Access.WRITE)

    def test_read_only_owner(self):
        assert mode_allows(0o400, is_owner=True, requested=Access.READ)
        assert not mode_allows(0o400, is_owner=True, requested=Access.WRITE)


class TestLifecycle:
    def test_create_assigns_increasing_ids_from_one(self, mgr):
        a = mgr.create("a", 4 * MIB)
        b = mgr.create("b", 4 * MIB)
        assert a.pmo_id == 1 and b.pmo_id == 2  # id 0 reserved for NULL

    def test_duplicate_name_rejected(self, mgr):
        mgr.create("a", 4 * MIB)
        with pytest.raises(PmoError):
            mgr.create("a", 4 * MIB)

    def test_open_by_name(self, mgr):
        created = mgr.create("kv", 4 * MIB)
        opened = mgr.open("kv")
        assert opened is created

    def test_open_missing_rejected(self, mgr):
        with pytest.raises(PmoError):
            mgr.open("ghost")

    def test_open_checks_mode(self, mgr):
        mgr.create("private", 4 * MIB, owner="alice", mode=0o600)
        with pytest.raises(PmoError):
            mgr.open("private", user="bob", requested=Access.READ)
        assert mgr.open("private", user="alice") is not None

    def test_world_readable_open(self, mgr):
        mgr.create("shared", 4 * MIB, owner="alice", mode=0o644)
        pmo = mgr.open("shared", user="bob", requested=Access.READ)
        assert pmo.name == "shared"
        with pytest.raises(PmoError):
            mgr.open("shared", user="bob", requested=Access.RW)

    def test_close_and_destroy(self, mgr):
        pmo = mgr.create("t", 4 * MIB)
        with pytest.raises(PmoError):
            mgr.destroy("t")  # still open
        mgr.close(pmo)
        mgr.destroy("t")
        assert not mgr.exists("t")

    def test_close_unopened_rejected(self, mgr):
        pmo = mgr.create("t", 4 * MIB)
        mgr.close(pmo)
        with pytest.raises(PmoError):
            mgr.close(pmo)

    def test_destroy_missing_rejected(self, mgr):
        with pytest.raises(PmoError):
            mgr.destroy("ghost")

    def test_get_by_id(self, mgr):
        pmo = mgr.create("t", 4 * MIB)
        assert mgr.get(pmo.pmo_id) is pmo
        with pytest.raises(PmoError):
            mgr.get(99)

    def test_open_count_tracks_references(self, mgr):
        pmo = mgr.create("t", 4 * MIB)
        mgr.open("t")
        assert mgr.open_count(pmo) == 2
        mgr.close(pmo)
        mgr.close(pmo)
        assert mgr.open_count(pmo) == 0


class TestReboot:
    def test_data_survives_reboot(self, mgr):
        pmo = mgr.create("persist", 4 * MIB)
        oid = pmo.pmalloc(64)
        pmo.write(oid.offset, b"survivor")
        mgr.simulate_reboot()
        reopened = mgr.open("persist")
        assert reopened.read(oid.offset, 8) == b"survivor"

    def test_reboot_closes_all_references(self, mgr):
        pmo = mgr.create("t", 4 * MIB)
        mgr.simulate_reboot()
        assert mgr.open_count(pmo) == 0

    def test_namespace_survives_reboot(self, mgr):
        mgr.create("a", 4 * MIB)
        mgr.create("b", 4 * MIB)
        mgr.simulate_reboot()
        assert mgr.exists("a") and mgr.exists("b")
