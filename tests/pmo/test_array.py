"""PmoArray: typed views over PMO storage."""

import numpy as np
import pytest

from repro.core.errors import PmoError
from repro.core.units import MIB
from repro.pmo.array import PmoArray
from repro.pmo.pmo import Pmo


@pytest.fixture
def pmo():
    return Pmo(1, "arr", 16 * MIB)


class TestCreation:
    def test_create_zeroed(self, pmo):
        arr = PmoArray.create(pmo, (10,))
        assert (arr.load() == 0).all()

    def test_2d_shape(self, pmo):
        arr = PmoArray.create(pmo, (4, 8))
        assert arr.shape == (4, 8)
        assert arr.size == 32

    def test_3d_rejected(self, pmo):
        oid = pmo.pmalloc(1024)
        with pytest.raises(PmoError):
            PmoArray(pmo, oid, (2, 2, 2))

    def test_dtypes(self, pmo):
        for dtype in (np.float64, np.int64, np.uint8, np.float32):
            arr = PmoArray.create(pmo, (16,), dtype=dtype)
            assert arr.dtype == np.dtype(dtype)


class TestRoundtrip:
    def test_store_load_all(self, pmo):
        arr = PmoArray.create(pmo, (6, 5))
        data = np.arange(30, dtype=float).reshape(6, 5)
        arr.store_all(data)
        assert (arr.load_all() == data).all()

    def test_partial_store(self, pmo):
        arr = PmoArray.create(pmo, (20,))
        arr.store(np.array([1.0, 2.0, 3.0]), start=5)
        loaded = arr.load()
        assert (loaded[5:8] == [1.0, 2.0, 3.0]).all()
        assert (loaded[:5] == 0).all()

    def test_row_access(self, pmo):
        arr = PmoArray.create(pmo, (3, 4))
        arr.store_row(1, np.array([9.0, 8.0, 7.0, 6.0]))
        assert (arr.load_row(1) == [9.0, 8.0, 7.0, 6.0]).all()
        assert (arr.load_row(0) == 0).all()

    def test_scalar_get_set(self, pmo):
        arr = PmoArray.create(pmo, (10,))
        arr.set(3, 42.5)
        assert arr.get(3) == 42.5

    def test_integer_dtype_roundtrip(self, pmo):
        arr = PmoArray.create(pmo, (8,), dtype=np.int64)
        arr.store(np.array([-5, 0, 7, 2 ** 40], dtype=np.int64))
        assert arr.load(0, 4).tolist() == [-5, 0, 7, 2 ** 40]


class TestBounds:
    def test_load_out_of_range(self, pmo):
        arr = PmoArray.create(pmo, (10,))
        with pytest.raises(PmoError):
            arr.load(8, 5)

    def test_store_shape_mismatch(self, pmo):
        arr = PmoArray.create(pmo, (2, 2))
        with pytest.raises(PmoError):
            arr.store_all(np.zeros((3, 3)))

    def test_row_out_of_range(self, pmo):
        arr = PmoArray.create(pmo, (3, 4))
        with pytest.raises(PmoError):
            arr.load_row(3)

    def test_row_access_on_1d_rejected(self, pmo):
        arr = PmoArray.create(pmo, (10,))
        with pytest.raises(PmoError):
            arr.load_row(0)

    def test_row_length_mismatch(self, pmo):
        arr = PmoArray.create(pmo, (3, 4))
        with pytest.raises(PmoError):
            arr.store_row(0, np.zeros(5))


class TestPersistence:
    def test_data_survives_crash(self):
        pmo = Pmo(1, "arr", 16 * MIB)
        arr = PmoArray.create(pmo, (10,))
        arr.store_all(np.arange(10, dtype=float))
        oid, shape = arr.oid, arr.shape
        pmo.crash()
        pmo.recover()
        revived = PmoArray(pmo, oid, shape)
        assert (revived.load_all() == np.arange(10)).all()

    def test_transactional_store(self, pmo):
        arr = PmoArray.create(pmo, (4,))
        arr.store_all(np.ones(4))
        pmo.begin_tx()
        arr.store_all(np.full(4, 9.0))
        assert (arr.load_all() == 9.0).all()   # read-your-writes
        pmo.abort_tx()
        assert (arr.load_all() == 1.0).all()   # rolled back
