"""The Table I facade (PmoLibrary) end to end."""

import pytest

from repro.core.errors import PmoError, ProtectionFault, SegmentationFault
from repro.core.permissions import Access
from repro.core.semantics import BasicSemantics
from repro.core.units import MIB, us
from repro.pmo.api import PmoLibrary


@pytest.fixture
def lib():
    return PmoLibrary(ew_target_us=40.0)


class TestTableOneApi:
    def test_create_open_close(self, lib):
        pmo = lib.PMO_create("kv", 8 * MIB)
        assert lib.PMO_open("kv") is pmo
        lib.PMO_close(pmo)

    def test_attach_returns_handle_with_va(self, lib):
        pmo = lib.PMO_create("kv", 8 * MIB)
        handle = lib.attach(pmo, Access.RW)
        assert handle.base_va_at_attach >= 0
        oid = lib.pmalloc(pmo, 64)
        assert handle.direct(oid) == handle.base_va_at_attach + oid.offset

    def test_oid_direct_requires_attach(self, lib):
        pmo = lib.PMO_create("kv", 8 * MIB)
        oid = lib.pmalloc(pmo, 64)
        with pytest.raises(SegmentationFault):
            lib.oid_direct(oid)
        lib.attach(pmo, Access.RW)
        assert lib.oid_direct(oid) > 0

    def test_checked_read_write(self, lib):
        pmo = lib.PMO_create("kv", 8 * MIB)
        lib.attach(pmo, Access.RW)
        oid = lib.pmalloc(pmo, 64)
        lib.write(oid, b"hello world")
        lib.tick(100)
        assert lib.read(oid, 11) == b"hello world"

    def test_write_without_attach_faults(self, lib):
        pmo = lib.PMO_create("kv", 8 * MIB)
        oid = lib.pmalloc(pmo, 64)
        with pytest.raises(SegmentationFault):
            lib.write(oid, b"x")

    def test_write_with_read_permission_faults(self, lib):
        pmo = lib.PMO_create("kv", 8 * MIB)
        lib.attach(pmo, Access.READ)
        oid = lib.pmalloc(pmo, 64)
        with pytest.raises(ProtectionFault):
            lib.write(oid, b"x")

    def test_pfree_via_oid(self, lib):
        pmo = lib.PMO_create("kv", 8 * MIB)
        oid = lib.pmalloc(pmo, 64)
        lib.pfree(oid)
        assert not pmo.heap.is_allocated(oid.offset - pmo._heap_base)

    def test_u64_roundtrip(self, lib):
        pmo = lib.PMO_create("kv", 8 * MIB)
        lib.attach(pmo, Access.RW)
        oid = lib.pmalloc(pmo, 64)
        lib.write_u64(oid, 424242)
        lib.tick()
        assert lib.read_u64(oid) == 424242


class TestThreadsAndWindows:
    def test_thread_context(self, lib):
        pmo = lib.PMO_create("kv", 8 * MIB)
        oid = lib.pmalloc(pmo, 64)
        with lib.thread(1):
            lib.attach(pmo, Access.RW)
            lib.write(oid, b"from t1")
        # Thread 2 never attached: access denied even though mapped.
        with lib.thread(2), pytest.raises(ProtectionFault):
            lib.read(oid, 7)

    def test_detach_after_ew_target_unmaps(self, lib):
        pmo = lib.PMO_create("kv", 8 * MIB)
        lib.attach(pmo, Access.RW)
        lib.tick(us(41))
        lib.detach(pmo)
        assert not lib.runtime.space.is_attached(pmo.pmo_id)

    def test_detach_before_ew_target_keeps_mapping(self, lib):
        pmo = lib.PMO_create("kv", 8 * MIB)
        lib.attach(pmo, Access.RW)
        lib.tick(us(1))
        lib.detach(pmo)
        assert lib.runtime.space.is_attached(pmo.pmo_id)
        # ... but this thread's permission is gone.
        oid = lib.pmalloc(pmo, 8)
        with pytest.raises(ProtectionFault):
            lib.read(oid, 8)

    def test_custom_semantics(self):
        from repro.core.errors import TerpError
        lib = PmoLibrary(semantics=BasicSemantics())
        pmo = lib.PMO_create("kv", 8 * MIB)
        lib.attach(pmo, Access.RW)
        with pytest.raises(TerpError):
            lib.attach(pmo, Access.RW)  # basic: no nesting

    def test_tick_backwards_rejected(self, lib):
        from repro.core.errors import TerpError
        with pytest.raises(TerpError):
            lib.tick(-1)

    def test_exposure_recorded(self, lib):
        pmo = lib.PMO_create("kv", 8 * MIB)
        lib.attach(pmo, Access.RW)
        lib.tick(us(50))
        lib.detach(pmo)
        lib.runtime.finish(lib.clock_ns)
        stats = lib.runtime.monitor.ew.stats()
        assert stats.count == 1
        assert stats.total_ns == us(50)
