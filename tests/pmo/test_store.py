"""The durable pool backend: format, flush, repair, scrub, quarantine."""

import os

import pytest

from repro.core.errors import IntegrityError, PmoError, TornPageError
from repro.core.permissions import Access
from repro.core.units import MIB, PAGE_SIZE
from repro.faults.plan import FaultPlan, FaultRule
from repro.pmo.api import PmoLibrary
from repro.pmo.store import (
    DurablePages, PmoStore, SCRUB_PAGES_PER_PASS)


def make(tmp_path, *rules, seed=1):
    plan = FaultPlan(seed=seed, rules=list(rules)) if rules else None
    store = PmoStore(tmp_path, faults=plan)
    lib = PmoLibrary(store=store)
    return store, lib


def populate(lib, name, payload=b"A" * 4000):
    """Create, allocate, write, psync, detach: one committed PMO."""
    pmo = lib.PMO_create(name, MIB)
    with lib.thread(1):
        lib.attach(pmo)
        oid = lib.pmalloc(pmo, max(len(payload), 16))
        lib.write(oid, payload)
        lib.psync(pmo)
        lib.detach(pmo)
    return pmo, oid


def torn_data_page_rule():
    """Tear the second page of the flush batch — the heap data page,
    whose second half actually changed (a torn header page is
    indistinguishable from intact when its tail is still zeros)."""
    return FaultRule(site="store.torn_page", kind="torn",
                     count=1, after=1)


class TestDurablePages:
    def test_write_marks_touched_pages(self):
        pages = DurablePages(MIB)
        pages.write(0, b"x")
        pages.write(PAGE_SIZE - 1, b"ab")        # straddles 0/1
        pages.write(5 * PAGE_SIZE + 7, b"y" * PAGE_SIZE)
        assert pages.dirty == {0, 1, 5, 6}

    def test_empty_write_marks_nothing_extra(self):
        pages = DurablePages(MIB)
        pages.write(3 * PAGE_SIZE, b"")
        assert pages.dirty == {3}  # a degenerate touch, single page

    def test_reads_do_not_dirty(self):
        pages = DurablePages(MIB)
        pages.read(0, PAGE_SIZE)
        assert pages.dirty == set()


class TestFormatAndLifecycle:
    def test_create_writes_header_file(self, tmp_path):
        store, lib = make(tmp_path)
        lib.PMO_create("alpha", MIB)
        path = store.path_for("alpha")
        assert path.exists()
        assert path.read_bytes()[:8] == b"TERPDUR1"

    def test_filenames_safe_and_collision_free(self, tmp_path):
        store, _ = make(tmp_path)
        a = store.path_for("a/b c")
        b = store.path_for("a_b_c")
        assert a.name != b.name          # sha1 suffix disambiguates
        assert "/" not in a.name and " " not in a.name

    def test_reload_preserves_identity(self, tmp_path):
        store, lib = make(tmp_path)
        pmo, oid = populate(lib, "ident")
        fresh = PmoStore(tmp_path)
        report = fresh.load_all()
        assert report.to_dict()["loaded"] == ["ident"]
        loaded = report.loaded[0]
        assert loaded.pmo_id == pmo.pmo_id
        assert loaded.owner == pmo.owner
        assert loaded.mode == pmo.mode
        assert loaded.size_bytes == pmo.size_bytes

    def test_reload_preserves_data(self, tmp_path):
        store, lib = make(tmp_path)
        _, oid = populate(lib, "data", b"B" * 4000)
        fresh = PmoStore(tmp_path)
        report = fresh.load_all()
        lib2 = PmoLibrary(store=fresh)
        lib2.manager.adopt(report.loaded[0])
        with lib2.thread(1):
            lib2.attach(report.loaded[0])
            assert lib2.read(oid, 4000) == b"B" * 4000
            lib2.detach(report.loaded[0])

    def test_destroy_removes_files(self, tmp_path):
        store, lib = make(tmp_path)
        lib.PMO_create("gone", MIB)
        assert store.path_for("gone").exists()
        lib.PMO_destroy("gone")
        assert not store.path_for("gone").exists()
        assert not store.journal_path_for("gone").exists()

    def test_register_requires_durable_storage(self, tmp_path):
        from repro.pmo.pmo import Pmo
        store, _ = make(tmp_path)
        plain = Pmo(1, "plain", MIB)     # default SparseBytes
        with pytest.raises(PmoError):
            store.register(plain)


class TestFlushAndPsync:
    def test_psync_returns_true_flushed_count(self, tmp_path):
        store, lib = make(tmp_path)
        pmo = lib.PMO_create("count", MIB)
        with lib.thread(1):
            lib.attach(pmo)
            oid = lib.pmalloc(pmo, 2 * PAGE_SIZE)
            lib.write(oid, b"C" * (2 * PAGE_SIZE))
            flushed = lib.psync(pmo)
            # header/heap-metadata page + log pages + 2-3 data pages
            # (the payload may straddle a page boundary)
            assert flushed >= 3
            # Everything clean now: nothing left to flush.
            assert lib.psync(pmo) == 0
            lib.write(oid, b"D")
            assert lib.psync(pmo) == 1
            lib.detach(pmo)

    def test_memory_backend_psync_still_zero(self):
        lib = PmoLibrary()               # no store: PR-1 behavior
        pmo = lib.PMO_create("mem", MIB)
        with lib.thread(1):
            lib.attach(pmo)
            oid = lib.pmalloc(pmo, 64)
            lib.write(oid, b"x" * 64)
            assert lib.psync(pmo) == 0
            lib.detach(pmo)

    def test_flush_is_idempotent_per_batch(self, tmp_path):
        store, lib = make(tmp_path)
        pmo, _ = populate(lib, "idem")
        assert store.flush(pmo) == 0     # dirty set cleared by psync
        assert not store.journal_path_for("idem").exists()

    def test_unregistered_flush_rejected(self, tmp_path):
        store, lib = make(tmp_path)
        pmo, _ = populate(lib, "x")
        store.unregister("x")
        with pytest.raises(PmoError):
            store.flush(pmo)


class TestJournalRepair:
    def test_torn_page_repaired_at_load(self, tmp_path):
        store, lib = make(tmp_path, torn_data_page_rule())
        _, oid = populate(lib, "torn")
        assert store.journal_path_for("torn").exists()
        fresh = PmoStore(tmp_path)
        report = fresh.load_all()
        assert report.pages_repaired >= 1
        assert report.journals_applied == 1
        assert not report.quarantined and not report.denied
        # The journal is retired once applied.
        assert not fresh.journal_path_for("torn").exists()
        lib2 = PmoLibrary(store=fresh)
        lib2.manager.adopt(report.loaded[0])
        with lib2.thread(1):
            lib2.attach(report.loaded[0])
            assert lib2.read(oid, 4000) == b"A" * 4000
            lib2.detach(report.loaded[0])

    def test_pending_journal_healed_before_next_flush(self, tmp_path):
        """A kept journal (torn flush) must be applied before the next
        flush replaces it, or the torn page loses its repair source."""
        store, lib = make(tmp_path, torn_data_page_rule())
        pmo = lib.PMO_create("heal", MIB)
        with lib.thread(1):
            lib.attach(pmo)
            oid = lib.pmalloc(pmo, 4096)
            lib.write(oid, b"E" * 4000)
            lib.psync(pmo)               # torn: journal kept
            assert store.journal_path_for("heal").exists()
            oid2 = lib.pmalloc(pmo, 4096)
            lib.write(oid2, b"F" * 4000)
            lib.psync(pmo)               # clean: journal retired
            lib.detach(pmo)
        assert not store.journal_path_for("heal").exists()
        fresh = PmoStore(tmp_path)
        report = fresh.load_all()
        assert not report.quarantined and not report.denied
        lib2 = PmoLibrary(store=fresh)
        lib2.manager.adopt(report.loaded[0])
        with lib2.thread(1):
            lib2.attach(report.loaded[0])
            assert lib2.read(oid, 4000) == b"E" * 4000
            assert lib2.read(oid2, 4000) == b"F" * 4000
            lib2.detach(report.loaded[0])

    def test_truncated_journal_never_applied(self, tmp_path):
        """A journal torn before its commit record is unusable; the
        home file (untouched by that batch) stays authoritative."""
        store, lib = make(tmp_path)
        populate(lib, "trunc")
        jp = store.journal_path_for("trunc")
        jp.write_bytes(b"TERPJRN1" + b"\x00" * 40)  # headerish garbage
        fresh = PmoStore(tmp_path)
        report = fresh.load_all()
        assert report.journals_applied == 0
        assert not report.quarantined and not report.denied

    def test_verify_page_norepair_raises_torn(self, tmp_path):
        store, lib = make(tmp_path, torn_data_page_rule())
        populate(lib, "typed")
        # Find the torn page: the one whose CRC fails.
        torn = None
        for index in store.present_pages("typed"):
            try:
                store.verify_page("typed", index, repair=False)
            except TornPageError as exc:
                torn = index
                assert exc.pmo == "typed"
                assert exc.page_index == index
        assert torn is not None


class TestBitRotQuarantine:
    def test_rot_quarantined_at_load(self, tmp_path):
        store, lib = make(
            tmp_path, FaultRule(site="store.bit_rot", kind="rot",
                                count=1, after=1))
        _, oid = populate(lib, "rot")
        fresh = PmoStore(tmp_path)
        report = fresh.load_all()
        assert len(report.quarantined) == 1
        name, reason = report.quarantined[0]
        assert name == "rot" and "bit rot" in reason
        pmo = report.loaded[0]
        assert pmo.quarantined
        lib2 = PmoLibrary(store=fresh)
        lib2.manager.adopt(pmo)
        with lib2.thread(1):
            with pytest.raises(IntegrityError):
                lib2.attach(pmo)                 # write access denied
            lib2.attach(pmo, Access.READ)        # read-only allowed
            with pytest.raises(IntegrityError):
                lib2.psync(pmo)                  # flush denied too
            lib2.detach(pmo)

    def test_rotted_header_page_becomes_readonly_shell(self, tmp_path):
        """Rot on page 0 breaks even log replay: the PMO loads as a
        quarantined shell (bytes readable, recovery skipped)."""
        store, lib = make(
            tmp_path, FaultRule(site="store.bit_rot", kind="rot",
                                count=1))        # first page = page 0
        populate(lib, "shell")
        fresh = PmoStore(tmp_path)
        report = fresh.load_all()
        assert len(report.quarantined) == 1
        pmo = report.loaded[0]
        assert pmo.quarantined
        assert "recovery skipped" in pmo.quarantine_reason

    def test_live_scrub_quarantines_rot(self, tmp_path):
        store, lib = make(
            tmp_path, FaultRule(site="store.bit_rot", kind="rot",
                                count=1, after=1))
        pmo, _ = populate(lib, "decay")
        pmo.storage._pages.clear()       # no resident copy to heal from
        result = store.scrub(64)
        assert result["quarantined"] == 1
        assert pmo.quarantined

    def test_live_scrub_heals_rot_from_memory(self, tmp_path):
        """While the PMO is resident its in-memory pages are a valid
        repair source — rot under a live daemon self-heals."""
        store, lib = make(
            tmp_path, FaultRule(site="store.bit_rot", kind="rot",
                                count=1, after=1))
        pmo, _ = populate(lib, "selfheal")
        result = store.scrub(64)
        assert result["repaired"] == 1
        assert not pmo.quarantined
        assert store.scrub(64)["repaired"] == 0


class TestScrub:
    def test_scrub_repairs_torn_page(self, tmp_path):
        store, lib = make(tmp_path, torn_data_page_rule())
        populate(lib, "scrubme")
        result = store.scrub(64)
        assert result["repaired"] == 1
        again = store.scrub(64)
        assert again["repaired"] == 0 and again["quarantined"] == 0

    def test_scrub_budget_bounded(self, tmp_path):
        store, lib = make(tmp_path)
        populate(lib, "big", b"G" * (20 * PAGE_SIZE))
        result = store.scrub(4)
        assert result["verified"] <= 4

    def test_scrub_round_robins_over_pmos(self, tmp_path):
        store, lib = make(tmp_path)
        populate(lib, "one")
        populate(lib, "two")
        verified = []
        orig = store.verify_page
        store.verify_page = (            # type: ignore[method-assign]
            lambda name, index, **kw: (verified.append(name),
                                       orig(name, index, **kw))[1])
        store.scrub(2)
        store.scrub(2)
        assert {"one", "two"} <= set(verified)

    def test_scrub_default_budget(self, tmp_path):
        store, lib = make(tmp_path)
        populate(lib, "def", b"H" * (20 * PAGE_SIZE))
        assert store.scrub()["verified"] <= SCRUB_PAGES_PER_PASS

    def test_empty_store_scrub_is_noop(self, tmp_path):
        store = PmoStore(tmp_path)
        assert store.scrub() == {"verified": 0, "repaired": 0,
                                 "quarantined": 0}


class TestTransactionalPsync:
    def test_tx_commit_then_flush_counts_both(self, tmp_path):
        store, lib = make(tmp_path)
        pmo = lib.PMO_create("tx", MIB)
        with lib.thread(1):
            lib.attach(pmo)
            oid = lib.pmalloc(pmo, 64)
            lib.psync(pmo)               # settle allocation metadata
            pmo.begin_tx()
            lib.write(oid, b"I" * 64)
            flushed = lib.psync(pmo)     # commits + flushes
            assert flushed >= 1
            lib.detach(pmo)
        fresh = PmoStore(tmp_path)
        report = fresh.load_all()
        lib2 = PmoLibrary(store=fresh)
        lib2.manager.adopt(report.loaded[0])
        with lib2.thread(1):
            lib2.attach(report.loaded[0])
            assert lib2.read(oid, 64) == b"I" * 64
            lib2.detach(report.loaded[0])


class TestGroupCommit:
    def test_zero_dirty_psync_never_touches_the_store(self, tmp_path):
        store, lib = make(tmp_path)
        pmo, _ = populate(lib, "zero")
        path = store.path_for("zero")
        before = (path.stat().st_mtime_ns,
                  store.committer.submitted)
        with lib.thread(1):
            lib.attach(pmo)
            # Nothing dirty: the fast path returns without a journal
            # round-trip, a file write, or a committer submission.
            assert lib.psync(pmo) == 0
            lib.detach(pmo)
        assert (path.stat().st_mtime_ns,
                store.committer.submitted) == before
        assert not store.journal_path_for("zero").exists()

    def test_concurrent_psyncs_share_one_commit_batch(self, tmp_path):
        # A wide commit window: the first snapshot's leader waits for
        # the second before paying the fsyncs, so both psyncs retire
        # from a single merged batch (one journal write per PMO).
        store = PmoStore(tmp_path, commit_interval_us=200_000)
        lib = PmoLibrary(store=store)
        pmo = lib.PMO_create("merge", MIB)
        with lib.thread(1):
            lib.attach(pmo)
            oid = lib.pmalloc(pmo, 2 * PAGE_SIZE)
            lib.write(oid, b"A" * PAGE_SIZE)
            first = store.flush_async(pmo)
            pmo.storage.write(oid.offset, b"B" * PAGE_SIZE)
            second = store.flush_async(pmo)
            assert first.wait() >= 1
            assert second.wait() >= 1
            lib.detach(pmo)
        assert store.committer.submitted == 2
        assert store.committer.batches == 1
        # The later snapshot supersedes within the merged batch.
        fresh = PmoStore(tmp_path)
        report = fresh.load_all()
        lib2 = PmoLibrary(store=fresh)
        lib2.manager.adopt(report.loaded[0])
        with lib2.thread(1):
            lib2.attach(report.loaded[0])
            assert lib2.read(oid, PAGE_SIZE) == b"B" * PAGE_SIZE
            lib2.detach(report.loaded[0])

    def test_sync_flush_routes_through_the_committer(self, tmp_path):
        store, lib = make(tmp_path)
        populate(lib, "route")
        assert store.committer.submitted >= 1
        assert store.committer.batches >= 1

    def test_closed_committer_fails_flushes_typed(self, tmp_path):
        store, lib = make(tmp_path)
        pmo, oid = populate(lib, "closed")
        store.close()
        pmo.storage.write(oid.offset, b"late")
        with pytest.raises(PmoError, match="stopped"):
            store.flush(pmo)

    def test_abort_fails_flushes_like_a_crash(self, tmp_path):
        store, lib = make(tmp_path)
        pmo, oid = populate(lib, "dead")
        store.abort_commits()
        pmo.storage.write(oid.offset, b"lost")
        with pytest.raises(PmoError):
            store.flush(pmo)
