"""Persistent heap allocator (pmalloc/pfree substrate)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import OutOfPersistentMemory, PmoError
from repro.pmo.allocator import ALIGNMENT, HEADER_SIZE, HeapAllocator
from repro.pmo.pmo import SparseBytes


def make_heap(size=64 * 1024):
    mem = SparseBytes(size)
    return HeapAllocator(mem, base=0, size=size), mem


class TestAllocate:
    def test_returns_distinct_offsets(self):
        heap, _ = make_heap()
        a = heap.allocate(100)
        b = heap.allocate(100)
        assert a != b

    def test_allocations_do_not_overlap(self):
        heap, _ = make_heap()
        offsets = [(heap.allocate(n), n) for n in (10, 200, 33, 64, 128)]
        spans = sorted((off, off + n) for off, n in offsets)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start

    def test_payload_alignment(self):
        heap, _ = make_heap()
        for n in (1, 7, 100):
            off = heap.allocate(n)
            assert off % ALIGNMENT == 0

    def test_zero_size_rejected(self):
        heap, _ = make_heap()
        with pytest.raises(PmoError):
            heap.allocate(0)

    def test_exhaustion(self):
        heap, _ = make_heap(1024)
        with pytest.raises(OutOfPersistentMemory):
            for _ in range(100):
                heap.allocate(64)

    def test_counters(self):
        heap, _ = make_heap()
        a = heap.allocate(10)
        heap.free(a)
        assert heap.alloc_count == 1
        assert heap.free_count == 1


class TestFree:
    def test_free_makes_space_reusable(self):
        heap, _ = make_heap(2048)
        offsets = []
        while True:
            try:
                offsets.append(heap.allocate(100))
            except OutOfPersistentMemory:
                break
        for off in offsets:
            heap.free(off)
        # Everything freed and coalesced: the big allocation now fits.
        big = heap.allocate(1024)
        assert big > 0

    def test_double_free_rejected(self):
        heap, _ = make_heap()
        off = heap.allocate(10)
        heap.free(off)
        with pytest.raises(PmoError):
            heap.free(off)

    def test_free_bad_offset_rejected(self):
        heap, _ = make_heap()
        with pytest.raises(PmoError):
            heap.free(10 ** 9)

    def test_coalescing_merges_neighbours(self):
        heap, _ = make_heap(4096)
        a = heap.allocate(500)
        b = heap.allocate(500)
        c = heap.allocate(500)
        heap.free(a)
        heap.free(c)
        heap.free(b)  # b bridges a and c: one big free block results
        _, free_blocks = heap.block_count()
        assert free_blocks == 1

    def test_is_allocated(self):
        heap, _ = make_heap()
        off = heap.allocate(10)
        assert heap.is_allocated(off)
        heap.free(off)
        assert not heap.is_allocated(off)
        assert not heap.is_allocated(123456789)


class TestRecovery:
    def test_allocated_blocks_survive_recovery(self):
        mem = SparseBytes(8192)
        heap = HeapAllocator(mem, base=0, size=8192)
        keep = heap.allocate(100)
        drop = heap.allocate(100)
        heap.free(drop)
        # Simulate restart: new allocator over the same bytes.
        heap2 = HeapAllocator(mem, base=0, size=8192, recover=True)
        assert heap2.is_allocated(keep)
        assert not heap2.is_allocated(drop)
        assert heap2.allocated_bytes == heap.allocated_bytes

    def test_recovered_heap_can_allocate(self):
        mem = SparseBytes(8192)
        heap = HeapAllocator(mem, base=0, size=8192)
        heap.allocate(100)
        heap2 = HeapAllocator(mem, base=0, size=8192, recover=True)
        off = heap2.allocate(50)
        assert heap2.is_allocated(off)

    def test_too_small_heap_rejected(self):
        with pytest.raises(PmoError):
            HeapAllocator(SparseBytes(16), base=0, size=16)


class TestAllocatorProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(1, 400), min_size=1, max_size=40))
    def test_alloc_free_all_restores_capacity(self, sizes):
        """Allocate a batch, free it all: one free block remains."""
        heap, _ = make_heap(64 * 1024)
        offsets = [heap.allocate(n) for n in sizes]
        for off in offsets:
            heap.free(off)
        allocated, free_blocks = heap.block_count()
        assert allocated == 0
        assert free_blocks == 1

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_interleaved_alloc_free_never_overlaps(self, data):
        heap, _ = make_heap(64 * 1024)
        live = {}
        for _ in range(40):
            if live and data.draw(st.booleans()):
                off = data.draw(st.sampled_from(sorted(live)))
                heap.free(off)
                del live[off]
            else:
                size = data.draw(st.integers(1, 300))
                off = heap.allocate(size)
                live[off] = size
            spans = sorted((o, o + max(n, 16)) for o, n in live.items())
            for (_, end), (start, _) in zip(spans, spans[1:]):
                assert end <= start
