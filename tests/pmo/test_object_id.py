"""Relocatable persistent pointers (OIDs)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import PmoError
from repro.pmo.object_id import MAX_OFFSET, MAX_POOL_ID, Oid


def test_null_oid():
    assert Oid.NULL.is_null()
    assert Oid.NULL.pack() == 0
    assert not Oid(1, 0).is_null()
    assert not Oid(0, 1).is_null()


def test_pack_layout():
    oid = Oid(pool_id=2, offset=0x10)
    assert oid.pack() == (2 << 48) | 0x10


def test_unpack_roundtrip():
    oid = Oid(123, 0xDEADBEEF)
    assert Oid.unpack(oid.pack()) == oid


def test_out_of_range_pool():
    with pytest.raises(PmoError):
        Oid(MAX_POOL_ID + 1, 0)
    with pytest.raises(PmoError):
        Oid(-1, 0)


def test_out_of_range_offset():
    with pytest.raises(PmoError):
        Oid(1, MAX_OFFSET + 1)


def test_unpack_rejects_non_u64():
    with pytest.raises(PmoError):
        Oid.unpack(1 << 64)
    with pytest.raises(PmoError):
        Oid.unpack(-1)


def test_add_moves_offset_within_pool():
    oid = Oid(3, 100)
    assert oid.add(28) == Oid(3, 128)


def test_ordering_is_pool_then_offset():
    assert Oid(1, 999) < Oid(2, 0)
    assert Oid(1, 5) < Oid(1, 6)


def test_repr():
    assert repr(Oid.NULL) == "Oid.NULL"
    assert "pool=3" in repr(Oid(3, 16))


@given(st.integers(0, MAX_POOL_ID), st.integers(0, MAX_OFFSET))
def test_pack_unpack_roundtrip_property(pool_id, offset):
    oid = Oid(pool_id, offset)
    assert Oid.unpack(oid.pack()) == oid
    assert 0 <= oid.pack() < (1 << 64)
