"""PmoLibrary save/load and PmoManager.adopt."""

import pytest

from repro.core.errors import PmoError
from repro.core.permissions import Access
from repro.core.units import MIB
from repro.pmo.api import PmoLibrary
from repro.workloads.structures import PersistentHashMap


class TestLibrarySaveLoad:
    def test_roundtrip_through_two_libraries(self, tmp_path):
        """A PMO written by one 'process run' loads in another."""
        path = tmp_path / "store.pmo"
        first = PmoLibrary()
        pmo = first.PMO_create("store", 8 * MIB)
        first.attach(pmo, Access.RW)
        table = PersistentHashMap.create(pmo, 32)
        table.put(b"survives", b"processes")
        first.save(pmo, path)

        second = PmoLibrary()
        loaded = second.load(path)
        assert loaded.name == "store"
        assert loaded.pmo_id == pmo.pmo_id   # OIDs stay valid
        reopened = PersistentHashMap.open(loaded)
        assert reopened.get(b"survives") == b"processes"

    def test_loaded_pmo_attachable_and_usable(self, tmp_path):
        path = tmp_path / "p.pmo"
        first = PmoLibrary()
        pmo = first.PMO_create("p", 8 * MIB)
        oid = first.pmalloc(pmo, 64)
        first.save(pmo, path)

        second = PmoLibrary()
        loaded = second.load(path)
        second.attach(loaded, Access.RW)
        second.write(oid, b"written after load")
        second.tick(10)
        assert second.read(oid, 18) == b"written after load"

    def test_pfree_works_after_load(self, tmp_path):
        """The acid test for id preservation: stored OIDs still free."""
        path = tmp_path / "p.pmo"
        first = PmoLibrary()
        pmo = first.PMO_create("p", 8 * MIB)
        oid = first.pmalloc(pmo, 64)
        first.save(pmo, path)
        second = PmoLibrary()
        loaded = second.load(path)
        second.pfree(oid)   # must not raise
        assert not loaded.heap.is_allocated(
            oid.offset - loaded._heap_base)

    def test_name_collision_rejected(self, tmp_path):
        path = tmp_path / "p.pmo"
        lib = PmoLibrary()
        pmo = lib.PMO_create("p", 8 * MIB)
        lib.save(pmo, path)
        with pytest.raises(PmoError):
            lib.load(path)   # "p" already exists here

    def test_id_collision_rejected(self, tmp_path):
        path = tmp_path / "p.pmo"
        first = PmoLibrary()
        pmo = first.PMO_create("p", 8 * MIB)
        first.save(pmo, path)
        second = PmoLibrary()
        second.PMO_create("other", 8 * MIB)  # takes id 1
        with pytest.raises(PmoError):
            second.load(path)

    def test_adopt_advances_id_allocator(self, tmp_path):
        path = tmp_path / "p.pmo"
        first = PmoLibrary()
        for _ in range(3):
            pmo = first.PMO_create(f"p{_}", 8 * MIB)
        first.save(pmo, path)   # id 3
        second = PmoLibrary()
        second.load(path)
        fresh = second.PMO_create("fresh", 8 * MIB)
        assert fresh.pmo_id > 3
