"""PMO file persistence (save/load across process boundaries)."""

import pytest

from repro.core.errors import PmoError
from repro.core.units import MIB
from repro.pmo.pmo import Pmo
from repro.pmo.serialize import FILE_MAGIC, load_pmo, save_pmo
from repro.workloads.structures import PersistentHashMap


class TestSaveLoad:
    def test_roundtrip_preserves_data(self, tmp_path):
        pmo = Pmo(3, "persist", 8 * MIB)
        oid = pmo.pmalloc(64)
        pmo.write(oid.offset, b"across processes")
        path = tmp_path / "persist.pmo"
        save_pmo(pmo, path)
        loaded = load_pmo(path)
        assert loaded.pmo_id == 3
        assert loaded.name == "persist"
        assert loaded.size_bytes == 8 * MIB
        assert loaded.read(oid.offset, 16) == b"across processes"

    def test_sparse_file_is_compact(self, tmp_path):
        # A 64MB PMO with only a few pages touched must serialize to
        # far less than its logical size.
        pmo = Pmo(1, "big", 64 * MIB)
        path = tmp_path / "big.pmo"
        written = save_pmo(pmo, path)
        assert written < 4 * MIB

    def test_structure_survives_roundtrip(self, tmp_path):
        pmo = Pmo(1, "hm", 8 * MIB)
        table = PersistentHashMap.create(pmo, 32)
        for i in range(50):
            table.put(f"k{i}".encode(), f"v{i}".encode())
        path = tmp_path / "hm.pmo"
        save_pmo(pmo, path)
        reopened = PersistentHashMap.open(load_pmo(path))
        assert len(reopened) == 50
        assert reopened.get(b"k31") == b"v31"

    def test_open_transaction_discarded_on_load(self, tmp_path):
        """Saving mid-transaction equals crashing there: the redo log
        has no commit record, so recovery drops the writes."""
        pmo = Pmo(1, "tx", 8 * MIB)
        oid = pmo.pmalloc(32)
        pmo.begin_tx()
        pmo.write(oid.offset, b"uncommitted")
        path = tmp_path / "tx.pmo"
        save_pmo(pmo, path)
        loaded = load_pmo(path)
        assert loaded.read(oid.offset, 11) == b"\x00" * 11

    def test_allocator_usable_after_load(self, tmp_path):
        pmo = Pmo(1, "alloc", 8 * MIB)
        pmo.pmalloc(128)
        path = tmp_path / "a.pmo"
        save_pmo(pmo, path)
        loaded = load_pmo(path)
        oid = loaded.pmalloc(64)
        loaded.write(oid.offset, b"new data")
        assert loaded.read(oid.offset, 8) == b"new data"


class TestFormatValidation:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.pmo"
        path.write_bytes(b"NOTAPMO!" + b"\x00" * 64)
        with pytest.raises(PmoError):
            load_pmo(path)

    def test_truncated_file_rejected(self, tmp_path):
        pmo = Pmo(1, "t", 8 * MIB)
        path = tmp_path / "t.pmo"
        save_pmo(pmo, path)
        path.write_bytes(path.read_bytes()[:-100])
        with pytest.raises(PmoError):
            load_pmo(path)

    def test_trailing_garbage_rejected(self, tmp_path):
        pmo = Pmo(1, "t", 8 * MIB)
        path = tmp_path / "t.pmo"
        save_pmo(pmo, path)
        path.write_bytes(path.read_bytes() + b"xx")
        with pytest.raises(PmoError):
            load_pmo(path)

    def test_magic_constant(self):
        assert FILE_MAGIC == b"TERPPMO1"
