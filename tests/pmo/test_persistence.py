"""Redo-log crash consistency."""

import pytest

from repro.core.errors import CrashConsistencyError
from repro.pmo.persistence import RedoLog
from repro.pmo.pmo import SparseBytes


def make_log(log_size=4096, mem_size=64 * 1024):
    mem = SparseBytes(mem_size)
    log = RedoLog(mem, base=mem_size - log_size, size=log_size)
    return log, mem


class TestTransactions:
    def test_commit_applies_writes(self):
        log, mem = make_log()
        log.begin()
        log.log_write(100, b"hello")
        assert mem.read(100, 5) == b"\x00" * 5  # not yet applied
        log.commit()
        assert mem.read(100, 5) == b"hello"

    def test_abort_discards_writes(self):
        log, mem = make_log()
        log.begin()
        log.log_write(100, b"hello")
        log.abort()
        assert mem.read(100, 5) == b"\x00" * 5

    def test_nested_begin_rejected(self):
        log, _ = make_log()
        log.begin()
        with pytest.raises(CrashConsistencyError):
            log.begin()

    def test_write_outside_tx_rejected(self):
        log, _ = make_log()
        with pytest.raises(CrashConsistencyError):
            log.log_write(0, b"x")

    def test_commit_outside_tx_rejected(self):
        log, _ = make_log()
        with pytest.raises(CrashConsistencyError):
            log.commit()

    def test_abort_outside_tx_rejected(self):
        log, _ = make_log()
        with pytest.raises(CrashConsistencyError):
            log.abort()

    def test_tx_ids_increase(self):
        log, _ = make_log()
        t1 = log.begin()
        log.commit()
        t2 = log.begin()
        log.commit()
        assert t2 > t1


class TestCrashRecovery:
    def test_uncommitted_tx_lost_on_crash(self):
        """Crash mid-transaction: home locations untouched."""
        log, mem = make_log()
        log.begin()
        log.log_write(100, b"junk!")
        # Crash: volatile log object is dropped, bytes remain.
        recovered = RedoLog(mem, base=log.base, size=log.size, recover=True)
        assert mem.read(100, 5) == b"\x00" * 5
        assert not recovered.in_transaction

    def test_committed_tx_survives_crash(self):
        log, mem = make_log()
        log.begin()
        log.log_write(100, b"hello")
        log.commit()
        RedoLog(mem, base=log.base, size=log.size, recover=True)
        assert mem.read(100, 5) == b"hello"

    def test_committed_but_unapplied_tx_replayed(self):
        """Crash between the commit record and the home writes."""
        log, mem = make_log()
        log.begin()
        log.log_write(100, b"hello")
        # Write the commit record manually without applying (simulates
        # a crash exactly after commit durability, before apply).
        import struct
        from repro.pmo import persistence as P
        record = struct.pack("<BQ", P.TAG_COMMIT, log._open_tx)
        mem.write(log.base + log._tail, record)
        mem.write(log.base + log._tail + len(record), bytes([P.TAG_END]))
        assert mem.read(100, 5) == b"\x00" * 5
        RedoLog(mem, base=log.base, size=log.size, recover=True)
        # Recovery replayed the committed transaction.
        assert mem.read(100, 5) == b"hello"

    def test_recovery_is_idempotent(self):
        log, mem = make_log()
        log.begin()
        log.log_write(50, b"abc")
        log.commit()
        for _ in range(3):
            RedoLog(mem, base=log.base, size=log.size, recover=True)
        assert mem.read(50, 3) == b"abc"

    def test_tx_ids_continue_after_recovery(self):
        log, mem = make_log()
        log.begin()
        log.commit()
        recovered = RedoLog(mem, base=log.base, size=log.size, recover=True)
        assert recovered.begin() >= 1


class TestLogSpace:
    def test_checkpoint_reclaims_space(self):
        log, _ = make_log(log_size=2048)
        # Many small committed transactions must not exhaust the log.
        for i in range(200):
            log.begin()
            log.log_write(i, bytes([i % 256]))
            log.commit()
        assert log.utilization() < 1.0

    def test_oversized_tx_rejected(self):
        log, _ = make_log(log_size=256)
        log.begin()
        with pytest.raises(CrashConsistencyError):
            log.log_write(0, b"x" * 1024)

    def test_multiple_writes_one_tx(self):
        log, mem = make_log()
        log.begin()
        for i in range(10):
            log.log_write(i * 16, bytes([i]) * 4)
        log.commit()
        for i in range(10):
            assert mem.read(i * 16, 4) == bytes([i]) * 4

    def test_last_write_wins_within_tx(self):
        log, mem = make_log()
        log.begin()
        log.log_write(0, b"AAAA")
        log.log_write(0, b"BBBB")
        log.commit()
        assert mem.read(0, 4) == b"BBBB"


class TestTornCommitRecord:
    """A crash can tear the commit record itself: the tag byte (or the
    tx id behind it) lands garbled.  Recovery must treat everything
    from the torn header on as an unsealed tail — the transaction is
    discarded, never an exception."""

    def _torn_log(self, garbage_tag):
        """An open tx whose commit record's tag byte landed as
        ``garbage_tag`` (the rest of the record never made it)."""
        log, mem = make_log()
        log.begin()
        log.log_write(100, b"doomed")
        mem.write(log.base + log._tail, bytes([garbage_tag]))
        return log, mem

    @pytest.mark.parametrize("garbage_tag", [4, 5, 0x7F, 0xFF])
    def test_garbled_tag_discards_tx(self, garbage_tag):
        log, mem = self._torn_log(garbage_tag)
        recovered = RedoLog(mem, base=log.base, size=log.size,
                            recover=True)
        assert mem.read(100, 6) == b"\x00" * 6
        assert not recovered.in_transaction

    def test_earlier_committed_tx_survives_torn_tail(self):
        log, mem = make_log()
        log.begin()
        log.log_write(50, b"keep")
        log.commit()
        log.begin()
        log.log_write(100, b"doomed")
        mem.write(log.base + log._tail, bytes([0x7F]))
        RedoLog(mem, base=log.base, size=log.size, recover=True)
        assert mem.read(50, 4) == b"keep"
        assert mem.read(100, 6) == b"\x00" * 6

    def test_log_usable_after_torn_recovery(self):
        log, mem = self._torn_log(0xFF)
        recovered = RedoLog(mem, base=log.base, size=log.size,
                            recover=True)
        recovered.begin()
        recovered.log_write(200, b"fresh")
        recovered.commit()
        assert mem.read(200, 5) == b"fresh"

    def test_torn_write_record_header_discarded(self):
        """Even a WRITE record whose header was cut by the region end
        is an unsealed tail, not an error."""
        log, mem = make_log(log_size=256)
        log.begin()
        log.log_write(0, b"x" * 200)
        # Overwrite the end marker with a WRITE tag whose header runs
        # off the end of the region.
        mem.write(log.base + log._tail, bytes([1]))
        recovered = RedoLog(mem, base=log.base, size=log.size,
                            recover=True)
        assert not recovered.in_transaction
