"""Cross-checks between the cost model, syscall composition, and the
simulator's charged totals."""

import pytest

from repro.arch.cond_engine import TerpArchEngine
from repro.arch.params import CostBreakdown, CostModel, DEFAULT_PARAMS
from repro.core.units import cycles_to_ns, MIB, us
from repro.mem.syscalls import attach_cost, detach_cost, randomize_cost
from repro.sim.machine import Machine
from repro.sim.policy import CompilerTerpPolicy
from tests.sim.test_machine import tx_workload


class TestCostConsistency:
    def test_cost_model_matches_syscall_composition(self):
        """Table II constants and the composed syscall paths agree
        (both are cross-checked against the paper)."""
        model = CostModel()
        assert model.attach_performed() == pytest.approx(
            attach_cost().total_cycles, rel=0.05)
        assert model.detach_performed() == pytest.approx(
            detach_cost().total_cycles
            + DEFAULT_PARAMS.tlb_invalidation, rel=0.20)
        assert model.randomize() == pytest.approx(
            randomize_cost().total_cycles, rel=0.20)

    def test_machine_charges_match_counters(self):
        """Total charged attach cycles == performed * syscall cost +
        silent * 27 (TT configuration)."""
        machine = Machine(
            engine=TerpArchEngine(us(40)),
            policy_factory=lambda: CompilerTerpPolicy(us(2)),
            pmo_sizes={"kv": 8 * MIB})
        result = machine.run({0: tx_workload(300)})
        c = result.counters
        expected_attach = c.attach_syscalls * \
            DEFAULT_PARAMS.attach_syscall
        assert result.breakdown.cycles["attach"] == \
            pytest.approx(expected_attach)
        expected_cond = (c.silent_attaches + c.silent_detaches) * \
            DEFAULT_PARAMS.silent_cond
        assert result.breakdown.cycles["cond"] == \
            pytest.approx(expected_cond)

    def test_overhead_equals_breakdown_sum(self):
        """Wall-clock slowdown is fully explained by the charged
        categories (single thread: no blocking, no contention)."""
        machine = Machine(
            engine=TerpArchEngine(us(40)),
            policy_factory=lambda: CompilerTerpPolicy(us(2)),
            pmo_sizes={"kv": 8 * MIB})
        result = machine.run({0: tx_workload(300)})
        charged_ns = sum(
            cycles_to_ns(cy) for cy in result.breakdown.cycles.values())
        slowdown_ns = result.wall_ns - result.baseline_ns
        # Rounding per-charge (cycles -> ns) introduces small drift.
        assert slowdown_ns == pytest.approx(charged_ns, rel=0.02)
