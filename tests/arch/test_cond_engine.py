"""CONDAT/CONDDT cases 1-6 and the sweeper (Figures 6 and 7)."""

import pytest

from repro.core.permissions import Access
from repro.core.semantics import ActionKind, Outcome
from repro.core.units import us
from repro.arch.cond_engine import TerpArchEngine

PMO = "pmo1"
RW = Access.RW
EW = us(40)


def kinds(decision):
    return [a.kind for a in decision.actions]


@pytest.fixture
def eng():
    return TerpArchEngine(EW)


class TestCondat:
    def test_case1_first_attach_performs_syscall(self, eng):
        d = eng.attach(1, PMO, RW, 0)
        assert d.performed
        assert ActionKind.MAP in kinds(d)
        assert eng.cases.case1_first_attach == 1
        assert eng.cb.lookup(PMO).ctr == 1

    def test_case2_subsequent_attach_increments_ctr(self, eng):
        eng.attach(1, PMO, RW, 0)
        d = eng.attach(2, PMO, RW, us(1))
        assert d.silent
        assert kinds(d) == [ActionKind.GRANT]
        assert eng.cases.case2_subsequent_attach == 1
        assert eng.cb.lookup(PMO).ctr == 2

    def test_case3_silent_attach_elides_pair(self, eng):
        """Window combining (Figure 6a): detach then attach soon after
        elides both system calls."""
        eng.attach(1, PMO, RW, 0)
        eng.detach(1, PMO, us(5))          # case 6: delayed
        d = eng.attach(2, PMO, RW, us(10))
        assert d.silent
        entry = eng.cb.lookup(PMO)
        assert not entry.dd and entry.ctr == 1
        assert eng.cases.case3_silent_attach == 1
        assert eng.cases.elided_syscall_pairs == 1

    def test_within_thread_overlap_is_error(self, eng):
        eng.attach(1, PMO, RW, 0)
        assert eng.attach(1, PMO, RW, 1).outcome is Outcome.ERROR


class TestConddt:
    def test_case4_partial_detach(self, eng):
        eng.attach(1, PMO, RW, 0)
        eng.attach(2, PMO, RW, 1)
        d = eng.detach(1, PMO, us(1))
        assert d.silent
        assert kinds(d) == [ActionKind.REVOKE]
        assert eng.cb.lookup(PMO).ctr == 1
        assert eng.cases.case4_partial_detach == 1

    def test_case5_full_detach_when_ew_met(self, eng):
        eng.attach(1, PMO, RW, 0)
        d = eng.detach(1, PMO, EW + 1)
        assert d.performed
        assert ActionKind.UNMAP in kinds(d)
        assert eng.cb.lookup(PMO) is None
        assert eng.cases.case5_full_detach == 1

    def test_case6_delayed_detach(self, eng):
        eng.attach(1, PMO, RW, 0)
        d = eng.detach(1, PMO, us(5))
        assert d.silent
        entry = eng.cb.lookup(PMO)
        assert entry.dd and entry.ctr == 0
        assert eng.cases.case6_delayed_detach == 1
        # Window still open: the PMO remains mapped.
        assert eng.is_mapped(PMO)

    def test_detach_without_attach_is_error(self, eng):
        assert eng.detach(1, PMO, 0).outcome is Outcome.ERROR

    def test_detach_after_detach_is_error(self, eng):
        eng.attach(1, PMO, RW, 0)
        eng.detach(1, PMO, 1)
        assert eng.detach(1, PMO, 2).outcome is Outcome.ERROR


class TestSweep:
    def test_full_combining_then_sweep_detach(self, eng):
        """Figure 6b: long computation after a silent detach; the
        sweeper closes the window when max EW is reached."""
        eng.attach(1, PMO, RW, 0)
        eng.detach(1, PMO, us(5))       # case 6: delayed
        assert eng.sweep(us(10)) == []  # not yet expired
        decisions = eng.sweep(EW + 1)
        assert len(decisions) == 1
        assert decisions[0].performed
        assert kinds(decisions[0]) == [ActionKind.UNMAP]
        assert eng.cb.lookup(PMO) is None
        assert not eng.is_mapped(PMO)

    def test_partial_combining_randomizes_held_pmo(self, eng):
        """Figure 6c: EW expires while threads still hold the PMO —
        randomize in place instead of detaching."""
        eng.attach(1, PMO, RW, 0)
        decisions = eng.sweep(EW + 1)
        assert len(decisions) == 1
        assert kinds(decisions[0]) == [ActionKind.RANDOMIZE]
        assert eng.cb.lookup(PMO).ts_ns == EW + 1  # clock reset
        assert eng.is_mapped(PMO)
        assert eng.cases.sweep_randomizes == 1

    def test_sweep_due_period(self, eng):
        assert eng.sweep_due(eng.sweep_period_ns)
        eng.sweep(eng.sweep_period_ns)
        assert not eng.sweep_due(eng.sweep_period_ns + 1)

    def test_ew_never_exceeded_without_holder(self, eng):
        """After the EW target, a swept unheld PMO must be unmapped."""
        eng.attach(1, PMO, RW, 0)
        eng.detach(1, PMO, us(30))
        eng.sweep(us(39))
        assert eng.is_mapped(PMO)
        eng.sweep(us(40))
        assert not eng.is_mapped(PMO)


class TestAccess:
    def test_access_respects_thread_permission(self, eng):
        eng.attach(1, PMO, Access.READ, 0)
        assert eng.access(1, PMO, Access.READ, 1).outcome is Outcome.OK
        assert eng.access(1, PMO, Access.WRITE, 2).outcome is \
            Outcome.FAULT_PERM
        assert eng.access(2, PMO, Access.READ, 3).outcome is \
            Outcome.FAULT_PERM

    def test_access_after_full_detach_segfaults(self, eng):
        eng.attach(1, PMO, RW, 0)
        eng.detach(1, PMO, EW + 1)
        assert eng.access(1, PMO, Access.READ, EW + 2).outcome is \
            Outcome.FAULT_SEGV

    def test_access_during_delayed_detach_needs_permission(self, eng):
        """After a case-6 detach the PMO is mapped but the thread's
        permission was revoked — the TEW is closed."""
        eng.attach(1, PMO, RW, 0)
        eng.detach(1, PMO, us(5))
        assert eng.access(1, PMO, Access.READ, us(6)).outcome is \
            Outcome.FAULT_PERM


class TestEviction:
    def test_full_buffer_evicts_delayed_entry(self):
        eng = TerpArchEngine(EW, capacity=2)
        eng.attach(1, "a", RW, 0)
        eng.attach(1, "b", RW, 1)
        eng.detach(1, "a", 2)  # delayed: evictable
        d = eng.attach(1, "c", RW, 3)
        assert d.performed
        assert ActionKind.UNMAP in kinds(d)  # a force-detached
        assert eng.cb.lookup("a") is None
        assert eng.cb.lookup("c") is not None

    def test_full_buffer_no_victim_is_error(self):
        eng = TerpArchEngine(EW, capacity=2)
        eng.attach(1, "a", RW, 0)
        eng.attach(1, "b", RW, 1)
        assert eng.attach(1, "c", RW, 2).outcome is Outcome.ERROR


class TestRuntimeIntegration:
    def test_arch_engine_drives_runtime(self):
        """The hardware engine is drop-in for TerpRuntime."""
        import numpy as np
        from repro.core.runtime import TerpRuntime
        from repro.core.units import MIB
        from repro.pmo.pool import PmoManager

        manager = PmoManager()
        eng = TerpArchEngine(EW)
        rt = TerpRuntime(eng, manager=manager,
                         rng=np.random.default_rng(5))
        pmo = manager.create("p", 8 * MIB)
        rt.attach(1, pmo, RW, 0)
        rt.detach(1, pmo, us(5))               # case 6
        assert rt.space.is_attached(pmo.pmo_id)
        rt.attach(2, pmo, RW, us(10))          # case 3
        assert rt.counters.silent_percent > 0
        for d in eng.sweep(us(60)):
            rt._apply(d, pmo, us(60))
        # PMO still held by thread 2 -> randomized, not detached.
        assert rt.counters.randomizations == 1
        assert rt.space.is_attached(pmo.pmo_id)
