"""Table II parameters, the cost model, and the die-area estimate."""

import pytest

from repro.arch.area import circular_buffer_area, sram_array_area_um2
from repro.arch.params import (
    CATEGORIES, CostBreakdown, CostModel, DEFAULT_PARAMS, SimParams)


class TestParams:
    def test_table2_values(self):
        p = DEFAULT_PARAMS
        assert p.num_cores == 4
        assert p.freq_ghz == 2.2
        assert p.dram_latency == 120
        assert p.nvm_latency == 360
        assert p.attach_syscall == 4422
        assert p.detach_syscall == 3058
        assert p.randomization == 3718
        assert p.tlb_invalidation == 550
        assert p.silent_cond == 27
        assert p.matrix_check == 1

    def test_params_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_PARAMS.num_cores = 8


class TestCostBreakdown:
    def test_add_and_total(self):
        b = CostBreakdown()
        b.add("attach", 100)
        b.add("cond", 27)
        assert b.total_cycles == 127

    def test_unknown_category_rejected(self):
        with pytest.raises(KeyError):
            CostBreakdown().add("bogus", 1)

    def test_merge(self):
        a, b = CostBreakdown(), CostBreakdown()
        a.add("attach", 10)
        b.add("attach", 5)
        b.add("rand", 7)
        a.merge(b)
        assert a.cycles["attach"] == 15
        assert a.cycles["rand"] == 7

    def test_fractions_sum_to_one(self):
        b = CostBreakdown()
        for i, c in enumerate(CATEGORIES):
            b.add(c, i + 1)
        assert sum(b.fractions().values()) == pytest.approx(1.0)

    def test_fractions_empty(self):
        assert all(v == 0 for v in CostBreakdown().fractions().values())


class TestCostModel:
    def test_silent_attach_is_27_cycles(self):
        model = CostModel()
        b = CostBreakdown()
        cycles = model.charge_attach(b, performed=False)
        assert cycles == 27
        assert b.cycles["cond"] == 27
        assert b.cycles["attach"] == 0

    def test_performed_attach_is_syscall_cost(self):
        model = CostModel()
        b = CostBreakdown()
        assert model.charge_attach(b, performed=True) == 4422
        assert b.cycles["attach"] == 4422

    def test_performed_detach_includes_shootdown(self):
        model = CostModel()
        b = CostBreakdown()
        assert model.charge_detach(b, performed=True) == 3058 + 550

    def test_randomize_scales_with_threads(self):
        model = CostModel()
        b = CostBreakdown()
        single = model.charge_randomize(b, num_threads_suspended=1)
        multi = model.charge_randomize(b, num_threads_suspended=4)
        assert multi > single
        assert b.cycles["rand"] == single + multi

    def test_silent_path_is_two_orders_cheaper(self):
        """The core performance claim: a silent op is ~160x cheaper
        than an attach syscall."""
        model = CostModel()
        assert model.attach_performed() / model.silent_op() > 100


class TestAreaModel:
    def test_paper_configuration_reproduced(self):
        """Section V-B: 140 bytes, ~0.006% of a 45nm Nehalem die."""
        est = circular_buffer_area()
        assert est.bytes == 140
        assert est.die_fraction_percent == pytest.approx(0.006, rel=0.15)

    def test_area_monotone_in_capacity(self):
        assert circular_buffer_area(64).area_um2 > \
            circular_buffer_area(32).area_um2

    def test_small_arrays_dominated_by_periphery(self):
        per_bit_small = sram_array_area_um2(128) / 128
        per_bit_large = sram_array_area_um2(1 << 20) / (1 << 20)
        assert per_bit_small > 10 * per_bit_large

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            sram_array_area_um2(0)
