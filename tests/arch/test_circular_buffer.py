"""Circular buffer data structure (Figure 7a)."""

import pytest

from repro.core.errors import SimulationError
from repro.arch.circular_buffer import (
    CircularBuffer, ENTRY_BITS, NUM_ENTRIES, TIMER_BITS)


class TestEntries:
    def test_add_and_lookup(self):
        cb = CircularBuffer()
        entry = cb.add("pmo1", 1000)
        assert cb.lookup("pmo1") is entry
        assert entry.ctr == 1 and not entry.dd

    def test_duplicate_add_rejected(self):
        cb = CircularBuffer()
        cb.add("pmo1", 0)
        with pytest.raises(SimulationError):
            cb.add("pmo1", 10)

    def test_capacity_limit(self):
        cb = CircularBuffer(capacity=2)
        cb.add("a", 0)
        cb.add("b", 0)
        assert cb.is_full()
        with pytest.raises(SimulationError):
            cb.add("c", 0)

    def test_remove(self):
        cb = CircularBuffer()
        cb.add("pmo1", 0)
        cb.remove("pmo1")
        assert cb.lookup("pmo1") is None
        with pytest.raises(SimulationError):
            cb.remove("pmo1")

    def test_age(self):
        cb = CircularBuffer()
        e = cb.add("p", 1_000)
        assert e.age_ns(41_000) == 40_000


class TestSweep:
    def test_sweep_finds_expired_only(self):
        """The Figure 7a example: time 15, max EW 10 -> PMO1 and PMO2
        expired, PMO3 and PMO4 left alone."""
        cb = CircularBuffer()
        e1 = cb.add("pmo1", 3)
        e1.ctr, e1.dd = 0, True
        e2 = cb.add("pmo2", 5)
        e2.ctr = 3
        cb.add("pmo3", 12)
        cb.add("pmo4", 15)
        expired = cb.sweep(now_ns=15, max_ew_ns=10)
        assert {e.pmo_id for e in expired} == {"pmo1", "pmo2"}
        # Caller policy: ctr==0 -> detach, ctr>0 -> randomize.
        assert [e for e in expired if e.ctr == 0][0].pmo_id == "pmo1"
        assert [e for e in expired if e.ctr > 0][0].pmo_id == "pmo2"

    def test_sweep_counts(self):
        cb = CircularBuffer()
        cb.sweep(0, 10)
        cb.sweep(5, 10)
        assert cb.sweeps == 2


class TestEviction:
    def test_evictable_requires_dd_and_no_holders(self):
        cb = CircularBuffer()
        a = cb.add("a", 0)
        b = cb.add("b", 0)
        assert cb.evictable() is None
        b.dd, b.ctr = True, 2
        assert cb.evictable() is None
        a.dd, a.ctr = True, 0
        assert cb.evictable() is a


class TestHardwareSizing:
    def test_entry_is_34_bits(self):
        assert ENTRY_BITS == 34

    def test_total_storage_140_bytes(self):
        """Section V-B: 'The total on-chip space introduced is 140
        bytes' — 32 entries x 34 bits + a 32-bit timer."""
        assert CircularBuffer.storage_bits() == 32 * 34 + TIMER_BITS
        assert CircularBuffer.storage_bytes() == 140

    def test_default_capacity(self):
        assert NUM_ENTRIES == 32
