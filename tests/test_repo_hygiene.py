"""Repository hygiene: no bytecode in git, no source-less bytecode.

Two failure modes this guards against, both of which have bitten
real checkouts:

* a ``__pycache__`` entry (or any ``.pyc``) committed to git — stale
  bytecode shadows source edits and churns every diff;
* *orphaned* bytecode on disk: a ``.pyc`` whose source module was
  deleted or renamed.  Python happily keeps importing the ghost
  module, so refactors appear to work locally while every fresh
  clone breaks.
"""

import os
import subprocess

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_no_bytecode_tracked_by_git():
    tracked = subprocess.run(
        ["git", "ls-files"], cwd=REPO_ROOT, capture_output=True,
        text=True, check=True).stdout.splitlines()
    offenders = [path for path in tracked
                 if "__pycache__" in path.split("/")
                 or path.endswith((".pyc", ".pyo"))]
    assert not offenders, (
        f"bytecode tracked by git (git rm --cached them): "
        f"{offenders}")


def test_no_sourceless_bytecode_on_disk():
    """Every ``__pycache__/*.pyc`` must shadow a live ``.py`` next to
    its cache directory; a ghost pyc means a deleted module is still
    importable locally."""
    orphans = []
    for root, dirs, files in os.walk(REPO_ROOT):
        dirs[:] = [d for d in dirs if d != ".git"]
        if os.path.basename(root) != "__pycache__":
            continue
        source_dir = os.path.dirname(root)
        for name in files:
            if not name.endswith((".pyc", ".pyo")):
                continue
            # cpython tag form: "module.cpython-311.pyc"
            module = name.split(".", 1)[0]
            if not os.path.exists(
                    os.path.join(source_dir, module + ".py")):
                orphans.append(
                    os.path.relpath(os.path.join(root, name),
                                    REPO_ROOT))
    assert not orphans, (
        f"source-less bytecode on disk (delete it): {orphans}")
