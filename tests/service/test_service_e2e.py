"""End-to-end terpd: concurrent sessions, enforcement, lifecycle.

The acceptance path: start the daemon, run >= 2 concurrent client
sessions doing attach/write/psync/detach on one shared PMO, and show
(a) the sweeper force-detaches a session that exceeds its EW budget
and (b) the daemon emits a coherent metrics report.
"""

import os
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.core.units import MIB
from repro.service.client import RemoteError, SyncTerpClient
from repro.service.protocol import HEADER
from repro.service.server import ServiceThread, TerpService

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


class TestConcurrentSessions:
    def test_two_sessions_share_one_pmo(self, terpd):
        port = terpd.bound_port
        with SyncTerpClient(port=port, user="alice") as alice, \
                SyncTerpClient(port=port, user="bob") as bob:
            alice.create("shared", 4 * MIB, mode=0o666)
            assert alice.attach("shared")["outcome"] == "performed"
            # Second session's attach lowers to a grant (case 2):
            # EW-conscious sharing across clients, not just threads.
            assert bob.open("shared")["pmo"] >= 1
            assert bob.attach("shared")["outcome"] == "silent"
            oid = alice.pmalloc("shared", 64)
            alice.tx_begin("shared")
            alice.write(oid, b"cross-session payload")
            flushed = alice.psync("shared")
            # In-memory: exactly the one dirty data page.  Durable
            # replica mode also flushes header/allocator metadata.
            if os.environ.get("TERP_REPLICA") == "1":
                assert flushed >= 1
            else:
                assert flushed == 1
            assert bob.read(oid, 21) == b"cross-session payload"
            assert alice.detach("shared")["outcome"] == "silent"
            assert bob.detach("shared")["outcome"] in ("performed",
                                                       "silent")

    def test_concurrent_attach_write_psync_detach_loops(self, terpd):
        port = terpd.bound_port
        with SyncTerpClient(port=port) as setup:
            setup.create("loop", 4 * MIB, mode=0o666)
            oids = [setup.pmalloc("loop", 64) for _ in range(4)]
        errors = []

        def worker(idx: int) -> None:
            try:
                with SyncTerpClient(port=port,
                                    user=f"tenant{idx}") as client:
                    for round_no in range(25):
                        client.attach("loop")
                        payload = bytes([idx]) * 32
                        client.write(oids[idx], payload)
                        client.psync("loop")
                        assert client.read(oids[idx], 32) == payload
                        client.detach("loop")
            except Exception as exc:    # propagate to the test thread
                errors.append((idx, exc))

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert errors == []
        with SyncTerpClient(port=port) as checker:
            report = checker.metrics()
            assert report["global"]["attaches"] == 100
            assert report["global"]["detaches"] == 100
            assert report["runtime"]["accesses"] == 200
            # No session still holds anything.
            for idx, oid in enumerate(oids):
                with pytest.raises(RemoteError):
                    checker.read(oid, 1)

    def test_pipelining_and_batching(self, terpd):
        with SyncTerpClient(port=terpd.bound_port) as client:
            client.create("pipe", MIB)
            client.attach("pipe")
            oid = client.pmalloc("pipe", 256)
            from repro.service import protocol
            requests = [("write", {"oid": oid.pack(),
                                   "data": protocol.encode_bytes(
                                       bytes([i]) * 8)})
                        for i in range(16)]
            results = client.pipeline(requests)
            assert [r["n"] for r in results] == [8] * 16
            batched = client.batch([("read", {"oid": oid.pack(),
                                              "n": 8}),
                                    ("ping", {}),
                                    ("psync", {"name": "pipe"})])
            data = batched[0]["data"]
            if not isinstance(data, bytes):   # a v1 wire base64s it
                data = protocol.decode_bytes(data)
            assert data == bytes([15]) * 8
            assert "now_ns" in batched[1]
            client.detach("pipe")

    def test_batch_error_isolated_to_its_slot(self, terpd):
        with SyncTerpClient(port=terpd.bound_port) as client:
            client.create("iso", MIB)
            responses = client.batch([("attach", {"name": "iso"}),
                                      ("ping", {})])
            assert len(responses) == 2
            with pytest.raises(RemoteError):
                client.batch([("attach", {"name": "iso"}),  # double
                              ("ping", {})])
            # The second op of the failing batch still executed: the
            # session remains usable.
            assert client.detach("iso")["outcome"] in ("performed",
                                                       "silent")


class TestPermissions:
    def test_mode_bits_gate_foreign_users(self, terpd):
        port = terpd.bound_port
        with SyncTerpClient(port=port, user="alice") as alice, \
                SyncTerpClient(port=port, user="mallory") as mallory:
            alice.create("private", MIB, mode=0o600)
            with pytest.raises(RemoteError) as err:
                mallory.attach("private")
            assert err.value.kind == "PmoError"

    def test_read_only_grant_blocks_writes(self, terpd):
        port = terpd.bound_port
        with SyncTerpClient(port=port, user="alice") as alice, \
                SyncTerpClient(port=port, user="bob") as bob:
            alice.create("ro", MIB, mode=0o644)
            alice.attach("ro")
            oid = alice.pmalloc("ro", 16)
            bob.attach("ro", access="r")
            assert bob.read(oid, 4) == b"\x00" * 4
            with pytest.raises(RemoteError) as err:
                bob.write(oid, b"nope")
            assert err.value.kind == "ProtectionFault"

    def test_destroy_requires_ownership(self, terpd):
        port = terpd.bound_port
        with SyncTerpClient(port=port, user="alice") as alice, \
                SyncTerpClient(port=port, user="bob") as bob:
            alice.create("mine", MIB, mode=0o666)
            with pytest.raises(RemoteError):
                bob.destroy("mine")
            alice.destroy("mine")
            with pytest.raises(RemoteError):
                alice.open("mine")


class TestSweeperEnforcement:
    def test_sweeper_force_detaches_expired_session(self):
        service = TerpService(port=0, session_ew_ns=30_000_000,
                              sweep_period_ns=5_000_000)
        with ServiceThread(service) as svc:
            port = svc.bound_port
            with SyncTerpClient(port=port, user="slow") as slow, \
                    SyncTerpClient(port=port, user="fast") as fast:
                slow.create("guarded", MIB, mode=0o666)
                slow.attach("guarded")
                oid = slow.pmalloc("guarded", 16)
                slow.write(oid, b"still here")
                # fast keeps cycling within budget; slow just sits on
                # its exposure window until the sweeper closes it.
                deadline = time.monotonic() + 5.0
                while slow.forced_detaches == 0:
                    assert time.monotonic() < deadline, \
                        "sweeper never force-detached"
                    fast.attach("guarded")
                    fast.detach("guarded")
                    time.sleep(0.01)
                    slow.ping()
                event = [e for e in slow.events
                         if e["event"] == "forced-detach"][0]
                assert event["pmo"] == "guarded"
                assert "budget" in event["reason"]
                # slow's grant is gone: further access faults.
                with pytest.raises(RemoteError):
                    slow.read(oid, 10)
                report = fast.metrics()
                assert report["global"]["forced_detaches"] >= 1
                assert report["global"]["sweep_runs"] >= 1
                assert report["global"]["sweep_latency"]["count"] >= 1

    def test_negotiated_budget_is_clamped_to_server_max(self, terpd):
        with SyncTerpClient(port=terpd.bound_port,
                            ew_budget_us=10 ** 12) as client:
            assert client.ew_budget_us <= 2_000_000_000 / 1_000

    def test_disconnect_mid_attach_is_cleaned_up(self):
        service = TerpService(port=0, session_ew_ns=2_000_000_000,
                              sweep_period_ns=10_000_000)
        with ServiceThread(service) as svc:
            client = SyncTerpClient(port=svc.bound_port).connect()
            client.create("orphan", MIB)
            client.attach("orphan")
            entity = client.entity_id
            client.close()            # vanish without goodbye/detach
            deadline = time.monotonic() + 5.0
            while service.lib.runtime.entity_holdings(entity):
                assert time.monotonic() < deadline, \
                    "disconnect cleanup never ran"
                time.sleep(0.01)
            assert service.metrics.disconnect_detaches >= 1
            with SyncTerpClient(port=svc.bound_port) as probe:
                assert probe.ping()["sessions"] == 1  # only the probe


class TestLifecycleAndCli:
    def test_graceful_shutdown_detaches_all_sessions(self):
        service = TerpService(port=0, session_ew_ns=2_000_000_000,
                              sweep_period_ns=50_000_000)
        thread = ServiceThread(service)
        svc = thread.start()
        client = SyncTerpClient(port=svc.bound_port).connect()
        client.create("held", MIB)
        client.attach("held")
        entity = client.entity_id
        thread.stop()
        assert service.lib.runtime.entity_holdings(entity) == []
        assert not service.engine.is_mapped(1)
        client.close()

    def test_hello_required_before_table1_ops(self, terpd):
        sock = socket.create_connection(("127.0.0.1",
                                         terpd.bound_port), timeout=10)
        try:
            from repro.service import protocol
            protocol.send_frame(sock, protocol.request(1, "create",
                                                       {"name": "x",
                                                        "size": MIB}))
            response = protocol.recv_frame(sock)
            assert response["ok"] is False
            assert "hello" in response["error"]["message"]
        finally:
            sock.close()

    def test_malformed_frame_disconnects_without_crash(self, terpd):
        sock = socket.create_connection(("127.0.0.1",
                                         terpd.bound_port), timeout=10)
        try:
            sock.sendall(HEADER.pack(64) + b"\xff" * 64)
            # Server drops the connection on an undecodable frame.
            assert sock.recv(1) == b""
        finally:
            sock.close()
        # ...but keeps serving everyone else.
        with SyncTerpClient(port=terpd.bound_port) as client:
            assert "now_ns" in client.ping()

    def test_cli_help(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + \
            os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.service", "--help"],
            capture_output=True, text=True, env=env, timeout=60)
        assert proc.returncode == 0
        assert "terpd" in proc.stdout
        assert "--session-ew-ms" in proc.stdout

    def test_metrics_report_shape(self, terpd):
        with SyncTerpClient(port=terpd.bound_port) as client:
            client.create("shape", MIB)
            client.attach("shape")
            client.detach("shape")
            report = client.metrics()
            for key in ("requests", "sessions_opened", "ops",
                        "request_latency", "sweep_latency"):
                assert key in report["global"]
            for key in ("p50_us", "p99_us", "mean_us", "count"):
                assert key in report["global"]["request_latency"]
            assert report["session"]["attaches"] == 1
            assert report["runtime"]["attach_calls"] >= 1
            assert "case1_first_attach" in report["arch_cases"]
