"""Shared fixtures: a live terpd on an ephemeral TCP port.

Set ``TERP_CLUSTER=N`` to run every test in this suite against an
N-shard cluster behind a router instead of a single in-process
daemon — the client-facing contract must be identical, so the same
e2e suite is the cluster's conformance suite.  Each test gets a
fresh cluster (exact-count assertions need per-test isolation).

Set ``TERP_REPLICA=1`` to run every test against a durable primary
shipping each committed journal batch semi-synchronously to a warm
in-process standby — replication must be invisible to clients, so
the same suite is the replicated daemon's conformance suite too.
"""

import os
import tempfile
import time
import types

import pytest

from repro.service.server import ServiceThread, TerpService


@pytest.fixture
def terpd():
    """A running daemon with test-friendly timing: generous session
    budget (tests that need expiry build their own tighter service)."""
    shards = int(os.environ.get("TERP_CLUSTER", "0"))
    if shards > 0:
        from repro.cluster import ClusterSupervisor
        supervisor = ClusterSupervisor(
            shards=shards, session_ew_ns=2_000_000_000,
            sweep_period_ns=50_000_000)
        supervisor.start()
        # The shards sweep on their own; run_sweep just waits out a
        # couple of periods for tests that nudge the sweeper by hand.
        yield types.SimpleNamespace(
            bound_port=supervisor.front_port,
            run_sweep=lambda: time.sleep(0.12),
            supervisor=supervisor)
        supervisor.stop()
        return
    if os.environ.get("TERP_REPLICA") == "1":
        from repro.replication import StandbyDaemon
        with tempfile.TemporaryDirectory(prefix="terp-repl-") as root:
            standby = StandbyDaemon(os.path.join(root, "standby"))
            repl_port = standby.start()
            thread = ServiceThread(TerpService(
                port=0, session_ew_ns=2_000_000_000,
                sweep_period_ns=50_000_000,
                pool_dir=os.path.join(root, "primary"),
                replicate_to=f"127.0.0.1:{repl_port}"))
            service = thread.start()
            yield service
            thread.stop()
            standby.stop()
        return
    thread = ServiceThread(TerpService(port=0,
                                       session_ew_ns=2_000_000_000,
                                       sweep_period_ns=50_000_000))
    service = thread.start()
    yield service
    thread.stop()
