"""Shared fixtures: a live terpd on an ephemeral TCP port."""

import pytest

from repro.service.server import ServiceThread, TerpService


@pytest.fixture
def terpd():
    """A running daemon with test-friendly timing: generous session
    budget (tests that need expiry build their own tighter service)."""
    thread = ServiceThread(TerpService(port=0,
                                       session_ew_ns=2_000_000_000,
                                       sweep_period_ns=50_000_000))
    service = thread.start()
    yield service
    thread.stop()
