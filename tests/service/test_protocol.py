"""Wire protocol: framing, shapes, payload encoding."""

import asyncio
import socket
import struct
import threading

import pytest

from repro.service import protocol
from repro.service.protocol import (
    HEADER, MAX_FRAME_BYTES, WireError, decode_frame, encode_frame)


class TestFraming:
    def test_roundtrip(self):
        payload = {"id": 1, "op": "ping", "args": {"x": [1, 2, 3]}}
        frame = encode_frame(payload)
        (length,) = HEADER.unpack(frame[:HEADER.size])
        assert length == len(frame) - HEADER.size
        assert decode_frame(frame[HEADER.size:]) == payload

    def test_batch_is_an_array(self):
        batch = [protocol.request(1, "ping"), protocol.request(2, "ping")]
        frame = encode_frame(batch)
        decoded = decode_frame(frame[HEADER.size:])
        assert isinstance(decoded, list) and len(decoded) == 2

    def test_undecodable_body_raises(self):
        with pytest.raises(WireError):
            decode_frame(b"\xff\xfe not json")

    def test_oversized_frame_rejected_on_encode(self):
        huge = {"data": "x" * (MAX_FRAME_BYTES + 1)}
        with pytest.raises(WireError):
            encode_frame(huge)


class TestAsyncStreamFraming:
    def _read(self, *chunks):
        # StreamReader must be built inside the running loop.
        async def go():
            reader = asyncio.StreamReader()
            for chunk in chunks:
                reader.feed_data(chunk)
            reader.feed_eof()
            return await protocol.read_frame(reader)
        return asyncio.run(go())

    def test_read_frame_handles_split_delivery(self):
        frame = encode_frame({"op": "ping"})
        # Byte-at-a-time delivery must still reassemble the frame.
        result = self._read(*[frame[i:i + 1] for i in range(len(frame))])
        assert result == {"op": "ping"}

    def test_read_frame_eof_is_none(self):
        assert self._read() is None

    def test_read_frame_truncated_mid_frame(self):
        frame = encode_frame({"op": "ping"})
        with pytest.raises(WireError):
            self._read(frame[:-2])

    def test_read_frame_hostile_length(self):
        with pytest.raises(WireError):
            self._read(struct.pack(">I", MAX_FRAME_BYTES + 1))


class TestBlockingSocketFraming:
    def test_send_recv_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            payload = {"id": 9, "ok": True, "result": {"v": 1}}

            def sender():
                protocol.send_frame(left, payload)
                left.close()

            thread = threading.Thread(target=sender)
            thread.start()
            assert protocol.recv_frame(right) == payload
            assert protocol.recv_frame(right) is None   # clean EOF
            thread.join()
        finally:
            right.close()


class TestShapes:
    def test_ok_response_carries_events_only_when_present(self):
        assert "events" not in protocol.ok_response(1, {})
        response = protocol.ok_response(1, {}, [{"event": "forced-detach"}])
        assert response["events"][0]["event"] == "forced-detach"

    def test_error_response(self):
        response = protocol.error_response(3, "PmoError", "nope")
        assert response["ok"] is False
        assert response["error"]["kind"] == "PmoError"

    def test_bytes_codec_roundtrip(self):
        data = bytes(range(256))
        assert protocol.decode_bytes(protocol.encode_bytes(data)) == data

    def test_bad_base64_raises(self):
        with pytest.raises(WireError):
            protocol.decode_bytes("!!not-base64!!")
