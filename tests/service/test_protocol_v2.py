"""Protocol v2: negotiation, the binary sidecar, and v1 coexistence.

The contract under test: a v2 client and a v2 server move PMO data as
raw bytes in a frame sidecar (zero base64); every other pairing —
old client, old server, or a forced ``TERP_PROTOCOL_VERSION=1`` —
degrades to the bit-identical v1 JSON wire; and a truncated or
short-counted sidecar is a typed :class:`WireError`, never a hang.
"""

import asyncio
import socket

import pytest

from repro.core.units import MIB
from repro.service import protocol
from repro.service.client import (
    ConnectionLost, SyncTerpClient, TerpClient)
from repro.service.protocol import (
    HEADER, PROTOCOL_V1, PROTOCOL_VERSION, SIDECAR_FLAG, WireError)
from repro.service.server import ServiceThread, TerpService


@pytest.fixture(autouse=True)
def _default_wire(monkeypatch):
    """These tests pin wire versions themselves; a CI leg's forced
    ``TERP_PROTOCOL_VERSION`` must not leak in."""
    monkeypatch.delenv("TERP_PROTOCOL_VERSION", raising=False)


@pytest.fixture
def terpd_v1():
    """A legacy daemon: speaks (and strictly insists on) protocol v1."""
    thread = ServiceThread(TerpService(port=0,
                                       session_ew_ns=2_000_000_000,
                                       protocol_version=PROTOCOL_V1))
    service = thread.start()
    yield service
    thread.stop()


def roundtrip(client, payload=b"\x00\xffbinary\x00 payload\xfe" * 40):
    client.create("v2rt", MIB)
    client.attach("v2rt")
    oid = client.pmalloc("v2rt", len(payload))
    assert client.write(oid, payload) == len(payload)
    assert client.read(oid, len(payload)) == payload
    client.detach("v2rt")


class TestNegotiation:
    def test_default_is_v2_both_ways(self, terpd):
        with SyncTerpClient(port=terpd.bound_port) as client:
            assert client.protocol_version == PROTOCOL_VERSION
            roundtrip(client)

    def test_env_forces_v1(self, terpd, monkeypatch):
        monkeypatch.setenv("TERP_PROTOCOL_VERSION", "1")
        with SyncTerpClient(port=terpd.bound_port) as client:
            assert client.protocol_version == PROTOCOL_V1
            roundtrip(client)

    def test_v2_client_falls_back_to_v1_server(self, terpd_v1):
        # The old server rejects the version offer outright; the
        # client downgrades, re-hellos, and the session works.
        with SyncTerpClient(port=terpd_v1.bound_port) as client:
            assert client.protocol_version == PROTOCOL_V1
            roundtrip(client)

    def test_v1_client_on_v2_server_stays_v1(self, terpd):
        # An old client omits "version" entirely: the server must
        # treat it as v1 and never emit a sidecar at it.
        with socket.create_connection(
                ("127.0.0.1", terpd.bound_port), timeout=10) as sock:
            protocol.send_frame(sock, protocol.request(
                1, "hello", {"user": "old"}))
            response = protocol.recv_frame(sock)   # raises on sidecar
            assert response["ok"]
            assert response["result"]["version"] == PROTOCOL_V1
            protocol.send_frame(sock, protocol.request(
                2, "create", {"name": "old", "size": MIB}))
            assert protocol.recv_frame(sock)["ok"]
            protocol.send_frame(sock, protocol.request(
                3, "attach", {"name": "old"}))
            assert protocol.recv_frame(sock)["ok"]
            protocol.send_frame(sock, protocol.request(
                4, "pmalloc", {"name": "old", "size": 64}))
            oid = protocol.recv_frame(sock)["result"]["oid"]
            protocol.send_frame(sock, protocol.request(
                5, "write", {"oid": oid,
                             "data": protocol.encode_bytes(b"x" * 64)}))
            assert protocol.recv_frame(sock)["result"]["n"] == 64
            protocol.send_frame(sock, protocol.request(
                6, "read", {"oid": oid, "n": 64}))
            result = protocol.recv_frame(sock)["result"]
            # v1 wire: base64 text, no "bin" marker, no sidecar.
            assert protocol.decode_bytes(result["data"]) == b"x" * 64

    def test_async_client_negotiates_and_falls_back(self, terpd,
                                                    terpd_v1):
        async def drive():
            async with TerpClient(port=terpd.bound_port) as new:
                assert new.protocol_version == PROTOCOL_VERSION
                await new.create("anew", MIB)
                await new.attach("anew")
                oid = await new.pmalloc("anew", 32)
                await new.write(oid, b"y" * 32)
                assert await new.read(oid, 32) == b"y" * 32
            async with TerpClient(port=terpd_v1.bound_port) as old:
                assert old.protocol_version == PROTOCOL_V1
                await old.create("aold", MIB)
                await old.attach("aold")
                oid = await old.pmalloc("aold", 32)
                await old.write(oid, b"z" * 32)
                assert await old.read(oid, 32) == b"z" * 32
        asyncio.run(drive())


class TestMixedVersionTraffic:
    def test_mixed_version_pipelining(self, terpd, monkeypatch):
        """A v1 and a v2 session pipeline against the same daemon and
        the same PMO, interleaved, each on its own wire dialect."""
        port = terpd.bound_port
        with SyncTerpClient(port=port) as v2:
            assert v2.protocol_version == PROTOCOL_VERSION
            monkeypatch.setenv("TERP_PROTOCOL_VERSION", "1")
            with SyncTerpClient(port=port) as v1:
                assert v1.protocol_version == PROTOCOL_V1
                v2.create("mix", MIB, mode=0o666)
                v2.attach("mix")
                v1.attach("mix")
                oids = [v2.pmalloc("mix", 16) for _ in range(4)]
                payloads = [bytes([i + 1]) * 16 for i in range(4)]
                v2.pipeline([("write", {"oid": oid.pack(),
                                        "data": data})
                             for oid, data in zip(oids, payloads)])
                reads = v1.pipeline([("read", {"oid": oid.pack(),
                                               "n": 16})
                                     for oid in oids])
                for result, expected in zip(reads, payloads):
                    assert protocol.decode_bytes(
                        result["data"]) == expected
                reads = v2.pipeline([("read", {"oid": oid.pack(),
                                               "n": 16})
                                     for oid in oids])
                for result, expected in zip(reads, payloads):
                    assert result["data"] == expected

    def test_batch_sidecar_orders_chunks_per_item(self, terpd):
        with SyncTerpClient(port=terpd.bound_port) as client:
            client.create("bat", MIB)
            client.attach("bat")
            oids = [client.pmalloc("bat", 8) for _ in range(3)]
            payloads = [bytes([0x10 * (i + 1)]) * 8 for i in range(3)]
            # One batch frame, one combined request sidecar.
            client.batch([("write", {"oid": oid.pack(), "data": data})
                          for oid, data in zip(oids, payloads)])
            # One batch frame back with a combined response sidecar,
            # including a non-binary item wedged between reads.
            results = client.batch(
                [("read", {"oid": oids[0].pack(), "n": 8}),
                 ("ping", {}),
                 ("read", {"oid": oids[2].pack(), "n": 8})])
            assert results[0]["data"] == payloads[0]
            assert "now_ns" in results[1]
            assert results[2]["data"] == payloads[2]

    def test_replay_cache_spans_versions(self, terpd, monkeypatch):
        """A response first served on the v2 wire replays correctly
        onto a v1 connection after a resume-downgrade."""
        port = terpd.bound_port
        client = SyncTerpClient(port=port).connect()
        try:
            client.create("rep", MIB)
            client.attach("rep")
            oid = client.pmalloc("rep", 16)
            client.write(oid, b"R" * 16)
            rid = client._next_id + 1
            assert client.read(oid, 16) == b"R" * 16   # cached at rid
            # Same session, same request id, now over a v1 socket.
            with socket.create_connection(("127.0.0.1", port),
                                          timeout=10) as sock:
                client._drop_socket()   # free the session binding
                terpd.run_sweep()       # let the daemon notice
                protocol.send_frame(sock, protocol.request(
                    99, "hello", {"user": "root",
                                  "resume": client.session_id,
                                  "token": client.resume_token}))
                hello = protocol.recv_frame(sock)
                assert hello["ok"], hello
                protocol.send_frame(sock, protocol.request(
                    rid, "read", {"oid": oid.pack(), "n": 16}))
                replayed = protocol.recv_frame(sock)
                assert protocol.decode_bytes(
                    replayed["result"]["data"]) == b"R" * 16
        finally:
            client.close()


class TestTruncationAndHostileFrames:
    def _hello_frame(self) -> bytes:
        body = protocol.encode_body(protocol.request(
            1, "hello", {"user": "fuzz", "version": 2}))
        return protocol.frame_from_body(body)

    def _write_frame_with_sidecar(self) -> bytes:
        body = protocol.encode_body(protocol.request(
            2, "write", {"oid": 12345, "data": {"bin": 64}}))
        return protocol.frame_from_body(body, b"\xab" * 64)

    def test_truncated_sidecar_is_wire_error_not_hang(self, terpd):
        frame = self._write_frame_with_sidecar()
        assert HEADER.unpack(frame[:4])[0] & SIDECAR_FLAG
        # Cut everywhere interesting: mid-header, mid-body, at the
        # sidecar length word, and mid-sidecar.
        body_len = HEADER.unpack(frame[:4])[0] & protocol.LEN_MASK
        cuts = [2, 4 + body_len // 2, 4 + body_len,
                4 + body_len + 2, 4 + body_len + 4,
                4 + body_len + 4 + 32]
        for cut in cuts:
            with socket.create_connection(
                    ("127.0.0.1", terpd.bound_port),
                    timeout=10) as sock:
                sock.sendall(self._hello_frame())
                assert protocol.recv_frame_ex(sock)[0]["ok"]
                sock.sendall(frame[:cut])
                sock.shutdown(socket.SHUT_WR)
                # The server must close the connection (clean EOF or
                # reset), not stall waiting for the missing bytes.
                sock.settimeout(5.0)
                try:
                    got = protocol.recv_frame_ex(sock)
                except (WireError, ConnectionError):
                    got = None
                assert got is None

    def test_sidecar_underrun_is_typed_error(self):
        # A {"bin": n} marker claiming more bytes than the sidecar
        # holds must fail the request, not desync the stream.
        bins = protocol.BinReader(b"abc")
        assert bins.take(2) == b"ab"
        with pytest.raises(WireError, match="underrun"):
            bins.take(10)
        with pytest.raises(WireError):
            bins.take(-1)

    def test_server_rejects_sidecar_underrun_request(self, terpd):
        with socket.create_connection(
                ("127.0.0.1", terpd.bound_port), timeout=10) as sock:
            sock.sendall(self._hello_frame())
            assert protocol.recv_frame_ex(sock)[0]["ok"]
            body = protocol.encode_body(protocol.request(
                7, "write", {"oid": 1, "data": {"bin": 4096}}))
            sock.sendall(protocol.frame_from_body(body, b"short"))
            response, sidecar = protocol.recv_frame_ex(sock)
            assert not response["ok"]
            assert sidecar == b""
            assert "underrun" in response["error"]["message"]

    def test_flagged_length_on_v1_reader_is_wire_error(self):
        # What an old client sees if a sidecar frame ever reached it:
        # the flagged word decodes to an impossible length, a typed
        # failure rather than a 2-GiB read or a hang.
        server, client = socket.socketpair()
        try:
            client.sendall(HEADER.pack(SIDECAR_FLAG | 0x7FFFFFFF))
            client.close()
            with pytest.raises(WireError):
                protocol.recv_frame(server)
        finally:
            server.close()

    def test_client_absorbs_clean_eof_mid_pipeline(self, terpd):
        # Sanity: ConnectionLost (not a hang) when the server dies
        # between pipelined sidecar frames.
        client = SyncTerpClient(port=terpd.bound_port).connect()
        try:
            client.create("eof", MIB)
            client._drop_socket()
            with pytest.raises(ConnectionLost):
                client.ping()
        finally:
            client.close()


class TestOversizeGuards:
    def test_oversized_batch_fails_before_join(self):
        item = {"id": 1, "op": "write",
                "args": {"data": "x" * (6 * 1024 * 1024)}}
        with pytest.raises(WireError, match="batch frame exceeds"):
            protocol.encode_body([item, item, item])

    def test_oversized_sidecar_rejected(self):
        with pytest.raises(WireError, match="sidecar"):
            protocol.frame_from_body(
                b"{}", b"\x00" * (protocol.MAX_SIDECAR_BYTES + 1))
