"""terpd warm restart: the PR's end-to-end crash/recovery property.

Populate a durable pool through a live daemon, kill it in-process
(``ServiceThread.kill`` — no shutdown path runs), then start a second
daemon on the same ``--pool-dir`` and check the whole restart story:
committed data intact, torn pages repaired from the journal, bit-rot
quarantined with a typed error, surviving sessions resumable by their
original token, and any holding whose EW budget elapsed during the
outage force-detached — attributed on the audit timeline — before the
first request is served.
"""

import time

import pytest

from repro.faults.plan import FaultPlan, FaultRule
from repro.obs.audit import FORCED_DETACH, RESTART
from repro.service.client import RemoteError, SyncTerpClient
from repro.service.server import ServiceThread, TerpService
from repro.service.__main__ import build_parser, make_service

BUDGET_NS = 60_000_000           # 60ms session EW budget
SWEEP_NS = 5_000_000
LINGER_NS = 10_000_000_000


def make_daemon(pool_dir, *, faults=None, linger_ns=LINGER_NS,
                sweep_ns=SWEEP_NS):
    service = TerpService(
        port=0, session_ew_ns=BUDGET_NS, sweep_period_ns=sweep_ns,
        session_linger_ns=linger_ns, seed=7,
        pool_dir=str(pool_dir), faults=faults)
    thread = ServiceThread(service)
    thread.start()
    return thread, service


class TestWarmRestart:
    def test_committed_data_survives_kill(self, tmp_path):
        thread, _ = make_daemon(tmp_path)
        with SyncTerpClient(port=thread.service.bound_port,
                            user="w") as client:
            client.create("pool", 1 << 20, mode=0o666)
            client.attach("pool")
            oid = client.pmalloc("pool", 64)
            client.write_u64(oid, 0xDEAD)
            assert client.psync("pool") >= 1
            client.detach("pool")
        thread.kill()

        thread2, service2 = make_daemon(tmp_path)
        report = service2.recovery_report
        assert report is not None and report.pmos_loaded == 1
        with SyncTerpClient(port=thread2.service.bound_port,
                            user="r") as client:
            client.attach("pool")
            assert client.read_u64(oid) == 0xDEAD
            client.detach("pool")
        thread2.stop()

    def test_unsynced_writes_do_not_survive(self, tmp_path):
        """The durability point is psync — nothing else is promised."""
        thread, _ = make_daemon(tmp_path)
        with SyncTerpClient(port=thread.service.bound_port,
                            user="w") as client:
            client.create("pool", 1 << 20, mode=0o666)
            client.attach("pool")
            oid = client.pmalloc("pool", 64)
            client.write_u64(oid, 1)
            client.psync("pool")
            client.write_u64(oid, 2)     # never psync'd
            client.detach("pool")
        thread.kill()

        thread2, _ = make_daemon(tmp_path)
        with SyncTerpClient(port=thread2.service.bound_port,
                            user="r") as client:
            client.attach("pool")
            assert client.read_u64(oid) == 1
            client.detach("pool")
        thread2.stop()

    def test_torn_page_repaired_across_restart(self, tmp_path):
        plan = FaultPlan(seed=3, rules=[
            FaultRule(site="store.torn_page", kind="torn",
                      count=1, after=1)])
        # Long sweep period so the restart (not the live scrubber)
        # performs the repair.
        thread, _ = make_daemon(tmp_path, faults=plan,
                                sweep_ns=60_000_000_000)
        with SyncTerpClient(port=thread.service.bound_port,
                            user="w") as client:
            client.create("pool", 1 << 20, mode=0o666)
            client.attach("pool")
            oid = client.pmalloc("pool", 4096)
            client.write(oid, b"T" * 4000)
            client.psync("pool")
            client.detach("pool")
        assert plan.fired("store.torn_page")
        thread.kill()

        thread2, service2 = make_daemon(tmp_path)
        report = service2.recovery_report
        assert report.pages_repaired >= 1
        assert not report.pmos_quarantined
        with SyncTerpClient(port=thread2.service.bound_port,
                            user="r") as client:
            client.attach("pool")
            assert client.read(oid, 4000) == b"T" * 4000
            client.detach("pool")
        thread2.stop()

    def test_bit_rot_quarantined_across_restart(self, tmp_path):
        plan = FaultPlan(seed=3, rules=[
            FaultRule(site="store.bit_rot", kind="rot",
                      count=1, after=1)])
        # Long sweep period: the live scrubber would otherwise heal
        # the rot from the resident copy before the kill.
        thread, _ = make_daemon(tmp_path, faults=plan,
                                sweep_ns=60_000_000_000)
        with SyncTerpClient(port=thread.service.bound_port,
                            user="w") as client:
            client.create("pool", 1 << 20, mode=0o666)
            client.attach("pool")
            oid = client.pmalloc("pool", 4096)
            client.write(oid, b"R" * 4000)
            client.psync("pool")
            client.detach("pool")
        assert plan.fired("store.bit_rot")
        thread.kill()

        thread2, service2 = make_daemon(tmp_path)
        report = service2.recovery_report
        assert len(report.pmos_quarantined) == 1
        name, reason = report.pmos_quarantined[0]
        assert name == "pool" and "bit rot" in reason
        assert service2.metrics.pmos_quarantined == 1
        # Quarantine surfaces on the audit timeline too.
        assert any(e["kind"] == "quarantine"
                   for e in service2.obs.audit.events())
        with SyncTerpClient(port=thread2.service.bound_port,
                            user="r") as client:
            # Write attach denied with a typed error...
            with pytest.raises(RemoteError) as exc_info:
                client.attach("pool")
            assert exc_info.value.kind == "IntegrityError"
            # ...read attach still allowed (forensics).
            client.attach("pool", access="r")
            client.detach("pool")
        thread2.stop()

    def test_session_resumes_by_original_token(self, tmp_path):
        thread, _ = make_daemon(tmp_path)
        client = SyncTerpClient(port=thread.service.bound_port,
                                user="holder")
        client.connect()
        client.create("pool", 1 << 20, mode=0o666)
        sid, token = client.session_id, client.resume_token
        thread.kill()
        client.close()

        thread2, service2 = make_daemon(tmp_path)
        assert service2.recovery_report.sessions_restored == 1
        client._port = thread2.service.bound_port
        client._reconnect()
        assert client.resumes == 1
        assert client.session_id == sid
        assert client.resume_token == token
        client.goodbye()
        client.close()
        thread2.stop()

    def test_overdue_holding_forced_detached_at_recovery(self, tmp_path):
        """A window whose EW budget elapsed while the daemon was down
        is closed at recovery — before any request — and the timeline
        attributes the force to the outage."""
        thread, service = make_daemon(tmp_path)
        client = SyncTerpClient(port=service.bound_port, user="holder")
        client.connect()
        client.create("pool", 1 << 20, mode=0o666)
        client.attach("pool")
        entity = service.registry.FIRST_ENTITY_ID + client.session_id
        thread.kill()
        client.close()
        time.sleep(BUDGET_NS / 1e9 * 1.5)    # outage outlasts budget

        thread2, service2 = make_daemon(tmp_path)
        report = service2.recovery_report
        assert report.forced_detaches == 1
        assert report.overdue_detaches == 1
        assert report.downtime_ns >= BUDGET_NS
        events = service2.obs.audit.events()
        forced = [e for e in events if e["kind"] == FORCED_DETACH]
        assert len(forced) == 1
        assert forced[0]["entity"] == entity
        assert forced[0]["reason"] == \
            "EW budget elapsed during daemon outage"
        # The restart itself is on the record, with the downtime.
        restarts = [e for e in events if e["kind"] == RESTART]
        assert len(restarts) == 1
        assert restarts[0]["duration_ns"] == report.downtime_ns
        # The forced close happened at recovery, before any request:
        # the attach replayed from the journal precedes it, and the
        # held duration spans the outage on the unbroken clock.
        assert forced[0]["duration_ns"] >= BUDGET_NS
        thread2.stop()

    def test_quick_restart_forces_detach_without_overdue(self, tmp_path):
        """Access never survives a crash, even inside budget — but the
        attribution then names the restart, not the outage."""
        thread, service = make_daemon(tmp_path)
        client = SyncTerpClient(port=service.bound_port, user="holder")
        client.connect()
        client.create("pool", 1 << 20, mode=0o666)
        client.attach("pool")
        thread.kill()
        client.close()

        thread2, service2 = make_daemon(tmp_path)
        report = service2.recovery_report
        assert report.forced_detaches == 1
        assert report.overdue_detaches == 0
        forced = [e for e in service2.obs.audit.events()
                  if e["kind"] == FORCED_DETACH]
        assert forced[0]["reason"] == "daemon restart"
        thread2.stop()

    def test_exposure_clock_counts_through_outage(self, tmp_path):
        """now_ns is anchored to the persisted epoch: the restarted
        daemon's clock reads pre-crash time plus real downtime."""
        thread, service = make_daemon(tmp_path)
        before = service.now_ns()
        thread.kill()
        time.sleep(0.05)
        thread2, service2 = make_daemon(tmp_path)
        after = service2.now_ns()
        assert after >= before + 50_000_000
        assert service2.recovery_report.epoch_wall_ns == \
            service.recovery_report.epoch_wall_ns
        thread2.stop()

    def test_graceful_stop_closes_sessions_in_journal(self, tmp_path):
        """After a *clean* stop, restart restores no sessions."""
        thread, _ = make_daemon(tmp_path)
        with SyncTerpClient(port=thread.service.bound_port,
                            user="w") as client:
            client.create("pool", 1 << 20, mode=0o666)
        thread.stop()
        thread2, service2 = make_daemon(tmp_path)
        report = service2.recovery_report
        assert report.sessions_restored == 0
        assert report.forced_detaches == 0
        thread2.stop()

    def test_recovery_report_in_metrics_op(self, tmp_path):
        thread, _ = make_daemon(tmp_path)
        with SyncTerpClient(port=thread.service.bound_port,
                            user="w") as client:
            client.create("pool", 1 << 20, mode=0o666)
        thread.kill()
        thread2, _ = make_daemon(tmp_path)
        with SyncTerpClient(port=thread2.service.bound_port,
                            user="r") as client:
            out = client.metrics()
            assert out["recovery"]["pmos_loaded"] == 1
        thread2.stop()


class TestScrubOnSweep:
    def test_sweeper_drives_scrub_and_repairs(self, tmp_path):
        plan = FaultPlan(seed=3, rules=[
            FaultRule(site="store.torn_page", kind="torn",
                      count=1, after=1)])
        thread, service = make_daemon(tmp_path, faults=plan)
        with SyncTerpClient(port=service.bound_port, user="w") as client:
            client.create("pool", 1 << 20, mode=0o666)
            client.attach("pool")
            oid = client.pmalloc("pool", 4096)
            client.write(oid, b"S" * 4000)
            client.psync("pool")
            client.detach("pool")
            assert plan.fired("store.torn_page")
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and \
                    service.metrics.scrub_pages_repaired == 0:
                time.sleep(0.02)
            assert service.metrics.scrub_pages_repaired >= 1
            assert service.metrics.scrub_pages_verified >= 1
        # The repair is durable: a restart finds nothing to fix.
        thread.kill()
        thread2, service2 = make_daemon(tmp_path)
        assert service2.recovery_report.pages_repaired == 0
        assert not service2.recovery_report.pmos_quarantined
        thread2.stop()


class TestResumeLingerFlag:
    """S1: the resume-linger window is configurable end to end."""

    def test_cli_flag_reaches_service(self):
        args = build_parser().parse_args(
            ["--resume-linger-ms", "123.5", "--port", "0"])
        service = make_service(args)
        assert service.session_linger_ns == 123_500_000

    def test_cli_flag_default(self):
        from repro.service.server import DEFAULT_SESSION_LINGER_NS
        args = build_parser().parse_args(["--port", "0"])
        service = make_service(args)
        assert service.session_linger_ns == DEFAULT_SESSION_LINGER_NS

    def test_short_linger_expires_session(self, tmp_path):
        """With a tiny linger a dropped session is purged by the
        sweeper and cannot be resumed; a long linger (other tests)
        supports resume across a restart."""
        thread, service = make_daemon(tmp_path, linger_ns=1)
        client = SyncTerpClient(port=service.bound_port, user="u",
                                strict_resume=True)
        client.connect()
        sid = client.session_id
        client.close()                   # drop: session starts linger
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and \
                any(s.session_id == sid
                    for s in service.registry.lingering()):
            time.sleep(0.02)
        assert not any(s.session_id == sid
                       for s in service.registry.lingering())
        thread.stop()
