"""EW-Conscious edge cases the service layer leans on.

Three families, each exercised at the engine level (where the rule
lives) and, where it matters, through a running terpd:

* double-attach from the same entity/session — a semantics violation;
* a detach racing the sweeper's forced detach — a defined silent
  outcome, never a spurious error;
* circular-buffer wraparound with more than 32 live PMOIDs —
  evictions keep the buffer bounded, and a full buffer of held PMOs
  refuses further attaches rather than corrupting state.
"""

import time

import pytest

from repro.arch.cond_engine import TerpArchEngine
from repro.core.errors import TerpError
from repro.core.permissions import Access
from repro.core.semantics import EwConsciousSemantics, Outcome
from repro.core.units import MIB
from repro.pmo.api import PmoLibrary
from repro.service.client import RemoteError, SyncTerpClient
from repro.service.server import ServiceThread, TerpService

EW = 40_000   # 40us target for engine-level tests


class TestDoubleAttach:
    def test_software_engine_rejects_same_thread_overlap(self):
        engine = EwConsciousSemantics(EW)
        assert engine.attach(0, 1, Access.RW, 0).performed
        decision = engine.attach(0, 1, Access.RW, 10)
        assert decision.outcome is Outcome.ERROR

    def test_arch_engine_rejects_same_thread_overlap(self):
        engine = TerpArchEngine(EW)
        assert engine.attach(0, 1, Access.RW, 0).performed
        decision = engine.attach(0, 1, Access.RW, 10)
        assert decision.outcome is Outcome.ERROR
        # Other entities still attach fine (case 2).
        assert engine.attach(1, 1, Access.RW, 20).silent

    def test_service_surfaces_double_attach_as_error(self, terpd):
        with SyncTerpClient(port=terpd.bound_port) as client:
            client.create("dbl", MIB)
            client.attach("dbl")
            with pytest.raises(RemoteError) as err:
                client.attach("dbl")
            assert "overlapping attach" in str(err.value)
            # The session is intact and can keep operating.
            client.detach("dbl")


class TestDetachSweeperRace:
    def test_forced_detach_makes_thread_detach_silent(self):
        engine = TerpArchEngine(EW)
        engine.attach(0, 1, Access.RW, 0)
        seen = []
        engine.on_forced_detach = lambda pmo, threads: \
            seen.append((pmo, threads))
        engine._force_detach(1)
        engine.cb.remove(1)
        assert seen == [(1, (0,))]
        # The thread's own detach lost the race: silent, not an error.
        decision = engine.detach(0, 1, 10)
        assert decision.outcome is Outcome.SILENT
        assert "forced" in decision.reason
        # Exactly once — a second detach is a genuine violation.
        assert engine.detach(0, 1, 20).outcome is Outcome.ERROR

    def test_reattach_supersedes_forced_marker(self):
        engine = TerpArchEngine(EW)
        engine.attach(0, 1, Access.RW, 0)
        engine._force_detach(1)
        engine.cb.remove(1)
        # Re-attach revives the pair: its detach must be real again.
        assert engine.attach(0, 1, Access.RW, 10).performed
        assert engine.detach(0, 1, 10 + EW).performed

    def test_service_detach_after_sweeper_force_detach(self):
        service = TerpService(port=0, session_ew_ns=20_000_000,
                              sweep_period_ns=5_000_000)
        with ServiceThread(service) as svc:
            with SyncTerpClient(port=svc.bound_port) as client:
                client.create("race", MIB)
                client.attach("race")
                deadline = time.monotonic() + 5.0
                while client.forced_detaches == 0:
                    assert time.monotonic() < deadline, \
                        "sweeper never fired"
                    time.sleep(0.01)
                    client.ping()
                # The client's own detach raced the sweeper and lost:
                # silent outcome, no error.
                result = client.detach("race")
                assert result["outcome"] == "silent"
                assert "force-detached" in result["reason"]


class TestCircularBufferWraparound:
    def _library(self, **kwargs):
        # The library's address space has a 15-key MPK pool; the engine
        # must evict before exhausting it (domain_capacity).
        kwargs.setdefault("domain_capacity", 15)
        return PmoLibrary(semantics=TerpArchEngine(EW, **kwargs),
                          strict=True)

    def test_more_than_32_live_pmoids_wrap_via_eviction(self):
        lib = self._library()
        engine = lib.runtime.semantics
        pmos = [lib.PMO_create(f"pmo{i}", MIB) for i in range(40)]
        # Attach + immediate detach: the detach is early (EW not met),
        # so every entry parks as delayed-detach (case 6, evictable).
        for i, pmo in enumerate(pmos):
            lib.tick(10)
            lib.attach(pmo, Access.RW)
            lib.tick(10)
            lib.detach(pmo)
        # 40 live PMOIDs went through the buffer: the overflow was
        # absorbed by evicting delayed-detach entries, and the mapped
        # population never outgrew the MPK key pool.
        assert len(engine.cb) <= 15
        assert engine.cases.case1_first_attach == 40
        assert engine.cases.sweep_detaches >= 25
        assert engine.cases.case6_delayed_detach == 40

    def test_engine_without_domain_bound_fills_all_32_entries(self):
        engine = TerpArchEngine(EW)     # pure engine, no substrates
        for i in range(32):
            assert engine.attach(0, i, Access.RW, i).performed
        assert len(engine.cb) == 32
        decision = engine.attach(0, 99, Access.RW, 99)
        assert decision.outcome is Outcome.ERROR

    def test_full_buffer_of_held_pmos_refuses_attach(self):
        lib = self._library()
        pmos = [lib.PMO_create(f"pmo{i}", MIB) for i in range(16)]
        for pmo in pmos[:15]:
            lib.tick(10)
            lib.attach(pmo, Access.RW)
        # Every mapped slot is held (ctr=1): nothing is evictable, the
        # next attach must refuse, not evict a live window.
        with pytest.raises(TerpError, match="no evictable entry"):
            lib.attach(pmos[15], Access.RW)

    def test_forced_detach_during_eviction_closes_victims_pair(self):
        lib = self._library(capacity=2)
        engine = lib.runtime.semantics
        a = lib.PMO_create("a", MIB)
        b = lib.PMO_create("b", MIB)
        c = lib.PMO_create("c", MIB)
        lib.attach(a, Access.RW)
        lib.tick(10)
        lib.detach(a)                      # case 6: delayed, evictable
        lib.attach(b, Access.RW)
        lib.tick(10)
        lib.attach(c, Access.RW)           # evicts a
        assert engine.cb.lookup(a.pmo_id) is None
        assert len(engine.cb) == 2

    def test_wraparound_through_the_service(self, terpd):
        with SyncTerpClient(port=terpd.bound_port) as client:
            for i in range(36):
                name = f"wrap{i}"
                client.create(name, MIB)
                client.attach(name)
                client.detach(name)
            arch = client.metrics()["arch_cases"]
            assert arch["case1_first_attach"] >= 36
