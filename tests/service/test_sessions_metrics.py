"""Session registry (session -> entity mapping) and metrics math."""

import pytest

from repro.core.errors import TerpError
from repro.service.metrics import LatencyRecorder, ServiceMetrics
from repro.service.sessions import SessionRegistry


class TestSessionRegistry:
    def test_entities_are_unique_and_out_of_thread_range(self):
        registry = SessionRegistry(default_ew_budget_ns=1_000_000)
        a = registry.create(user="alice")
        b = registry.create(user="bob")
        assert a.entity_id != b.entity_id
        assert min(a.entity_id, b.entity_id) >= \
            SessionRegistry.FIRST_ENTITY_ID
        assert registry.by_entity(a.entity_id) is a

    def test_budget_can_tighten_but_not_widen(self):
        registry = SessionRegistry(default_ew_budget_ns=1_000_000)
        tight = registry.create(ew_budget_ns=10_000)
        loose = registry.create(ew_budget_ns=9_999_999_999)
        assert tight.ew_budget_ns == 10_000
        assert loose.ew_budget_ns == 1_000_000
        with pytest.raises(TerpError):
            registry.create(ew_budget_ns=0)

    def test_expiry_selection(self):
        registry = SessionRegistry(default_ew_budget_ns=100)
        session = registry.create()
        session.note_attach(1, now_ns=0)
        session.note_attach(2, now_ns=80)
        assert session.expired(now_ns=120) == [1]
        assert sorted(session.expired(now_ns=500)) == [1, 2]

    def test_forced_detach_queues_event_and_clears_holding(self):
        registry = SessionRegistry(default_ew_budget_ns=100)
        session = registry.create()
        session.note_attach(7, now_ns=0)
        session.note_forced_detach(7, "data", 200, "budget elapsed")
        assert session.attached_at == {}
        events = session.drain_events()
        assert events[0]["event"] == "forced-detach"
        assert events[0]["pmo"] == "data"
        assert session.drain_events() == []   # drained exactly once

    def test_remove_marks_closed(self):
        registry = SessionRegistry(default_ew_budget_ns=100)
        session = registry.create()
        assert registry.remove(session.session_id) is session
        assert session.closed
        with pytest.raises(TerpError):
            registry.get(session.session_id)


class TestLatencyRecorder:
    def test_percentiles_exact_below_capacity(self):
        recorder = LatencyRecorder(capacity=1000)
        for v in range(1, 101):
            recorder.record(v)
        assert recorder.count == 100
        assert recorder.percentile(0) == 1
        assert recorder.percentile(100) == 100
        assert 49 <= recorder.percentile(50) <= 51
        assert recorder.max_ns == 100
        assert recorder.mean_ns == pytest.approx(50.5)

    def test_reservoir_stays_bounded_and_representative(self):
        recorder = LatencyRecorder(capacity=64, seed=3)
        for v in range(10_000):
            recorder.record(v)
        assert recorder.count == 10_000
        assert len(recorder._samples) == 64
        # A uniform 0..10k population: the sampled median should not
        # collapse to either extreme.
        assert 1_000 < recorder.percentile(50) < 9_000

    def test_empty_percentile_is_none(self):
        assert LatencyRecorder().percentile(99) is None

    def test_to_dict_units(self):
        recorder = LatencyRecorder()
        recorder.record(2_000)     # 2us
        report = recorder.to_dict()
        assert report["p50_us"] == pytest.approx(2.0)
        assert report["count"] == 1


class TestServiceMetrics:
    def test_note_request_tallies(self):
        metrics = ServiceMetrics()
        metrics.note_request("attach", 1_000, ok=True)
        metrics.note_request("attach", 3_000, ok=False)
        assert metrics.requests == 2
        assert metrics.errors == 1
        assert metrics.ops["attach"] == 2
        report = metrics.to_dict()
        assert report["request_latency"]["count"] == 2

    def test_note_sweep(self):
        metrics = ServiceMetrics()
        metrics.note_sweep(5_000)
        assert metrics.sweep_runs == 1
        assert metrics.to_dict()["sweep_latency"]["max_us"] == \
            pytest.approx(5.0)
