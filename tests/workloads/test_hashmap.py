"""Persistent hash map."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import PmoError
from repro.core.units import MIB
from repro.pmo.pmo import Pmo
from repro.workloads.structures import CountingPmo, PersistentHashMap


@pytest.fixture
def pmo():
    return Pmo(1, "hm", 16 * MIB)


@pytest.fixture
def hm(pmo):
    return PersistentHashMap.create(pmo, nbuckets=64)


class TestBasics:
    def test_put_get(self, hm):
        hm.put(b"key", b"value")
        assert hm.get(b"key") == b"value"

    def test_missing_key(self, hm):
        assert hm.get(b"nope") is None
        assert b"nope" not in hm

    def test_update_same_size_in_place(self, hm):
        hm.put(b"k", b"aaaa")
        hm.put(b"k", b"bbbb")
        assert hm.get(b"k") == b"bbbb"
        assert len(hm) == 1

    def test_update_different_size(self, hm):
        hm.put(b"k", b"short")
        hm.put(b"k", b"a much longer value than before")
        assert hm.get(b"k") == b"a much longer value than before"
        assert len(hm) == 1

    def test_delete(self, hm):
        hm.put(b"k", b"v")
        assert hm.delete(b"k")
        assert hm.get(b"k") is None
        assert not hm.delete(b"k")
        assert len(hm) == 0

    def test_collisions_chain(self, hm):
        # 64 buckets, 500 keys: heavy chaining by construction.
        for i in range(500):
            hm.put(f"key-{i}".encode(), f"val-{i}".encode())
        assert len(hm) == 500
        for i in range(0, 500, 37):
            assert hm.get(f"key-{i}".encode()) == f"val-{i}".encode()

    def test_items_iterates_all(self, hm):
        expected = {}
        for i in range(50):
            key, value = f"k{i}".encode(), f"v{i}".encode()
            hm.put(key, value)
            expected[key] = value
        assert dict(hm.items()) == expected

    def test_delete_middle_of_chain(self, hm):
        for i in range(100):
            hm.put(f"k{i}".encode(), b"x")
        assert hm.delete(b"k50")
        assert hm.get(b"k50") is None
        assert hm.get(b"k49") == b"x"
        assert hm.get(b"k51") == b"x"


class TestPersistence:
    def test_reopen_after_reboot(self):
        pmo = Pmo(1, "hm", 16 * MIB)
        hm = PersistentHashMap.create(pmo, 64)
        hm.put(b"persist", b"me")
        pmo.crash()
        pmo.recover()
        reopened = PersistentHashMap.open(pmo)
        assert reopened.get(b"persist") == b"me"
        assert len(reopened) == 1

    def test_crash_mid_put_leaves_map_consistent(self):
        pmo = Pmo(1, "hm", 16 * MIB)
        hm = PersistentHashMap.create(pmo, 64)
        hm.put(b"safe", b"old")
        # Start a put but crash before commit: simulate by opening a
        # transaction, writing, and crashing.
        pmo.begin_tx()
        pmo.write(pmo.root_oid.offset + 16, b"\xff" * 8)  # scribble size
        pmo.crash()
        pmo.recover()
        reopened = PersistentHashMap.open(pmo)
        assert reopened.get(b"safe") == b"old"
        assert len(reopened) == 1

    def test_open_requires_root(self):
        pmo = Pmo(1, "empty", 16 * MIB)
        with pytest.raises(PmoError):
            PersistentHashMap.open(pmo)

    def test_open_validates_magic(self):
        pmo = Pmo(1, "junk", 16 * MIB)
        oid = pmo.pmalloc(64)
        pmo.root_oid = oid
        with pytest.raises(PmoError):
            PersistentHashMap.open(pmo)


class TestCounting:
    def test_counting_pmo_measures_accesses(self):
        pmo = CountingPmo(Pmo(1, "hm", 16 * MIB))
        hm = PersistentHashMap.create(pmo, 64)
        pmo.counts.reset()
        hm.put(b"key", b"value")
        put_counts = pmo.counts.reset()
        hm.get(b"key")
        get_counts = pmo.counts.reset()
        assert put_counts.writes > 0
        assert put_counts.reads > 0
        assert get_counts.writes == 0
        assert get_counts.reads >= 2  # bucket head + entry

    def test_write_fraction(self):
        pmo = CountingPmo(Pmo(1, "hm", 16 * MIB))
        hm = PersistentHashMap.create(pmo, 64)
        pmo.counts.reset()
        hm.get(b"missing")
        assert pmo.counts.write_fraction == 0.0


class TestHashMapProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.dictionaries(st.binary(min_size=1, max_size=24),
                           st.binary(max_size=48), max_size=40))
    def test_matches_dict_semantics(self, model):
        pmo = Pmo(1, "hm", 16 * MIB)
        hm = PersistentHashMap.create(pmo, 16)
        for key, value in model.items():
            hm.put(key, value)
        assert len(hm) == len(model)
        for key, value in model.items():
            assert hm.get(key) == value
        assert dict(hm.items()) == model

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from([b"a", b"b", b"c", b"d"]),
                              st.binary(max_size=16)),
                    max_size=30))
    def test_interleaved_put_delete(self, ops):
        pmo = Pmo(1, "hm", 16 * MIB)
        hm = PersistentHashMap.create(pmo, 4)
        model = {}
        for key, value in ops:
            if value == b"":   # treat empty as delete
                assert hm.delete(key) == (key in model)
                model.pop(key, None)
            else:
                hm.put(key, value)
                model[key] = value
            assert len(hm) == len(model)
        assert dict(hm.items()) == model
