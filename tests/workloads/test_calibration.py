"""Generated streams honour their specs' calibration targets."""

import numpy as np
import pytest

from repro.core.units import ns_to_us, us
from repro.sim.events import Burst, Compute, RegionEnd, TxBegin, TxEnd
from repro.workloads.spec.base import get_benchmark as get_spec
from repro.workloads.whisper.benchmarks import get_benchmark


def window_lengths_us(events):
    """Per-transaction window spans (TxBegin to TxEnd — where MERR's
    manual attach/detach pair goes)."""
    spans = []
    t = 0
    tx_start = None
    for event in events:
        if isinstance(event, TxBegin):
            tx_start = t
        elif isinstance(event, TxEnd):
            if tx_start is not None:
                spans.append(ns_to_us(t - tx_start))
            tx_start = None
        elif isinstance(event, Compute):
            t += event.ns
    return np.array(spans), ns_to_us(t)


class TestWhisperCalibration:
    @pytest.mark.parametrize("name", ["echo", "redis", "tpcc"])
    def test_window_mean_near_spec(self, name):
        bench = get_benchmark(name)
        events = list(bench.thread_stream(n_transactions=800, seed=3))
        spans, _ = window_lengths_us(events)
        target = bench.spec.window_avg_us
        assert spans.mean() == pytest.approx(target, rel=0.35)

    @pytest.mark.parametrize("name", ["echo", "redis"])
    def test_window_max_bounded_by_spec(self, name):
        bench = get_benchmark(name)
        events = list(bench.thread_stream(n_transactions=800, seed=3))
        spans, _ = window_lengths_us(events)
        assert spans.max() <= bench.spec.window_max_us * 1.05

    @pytest.mark.parametrize("name", ["echo", "ycsb"])
    def test_duty_cycle_matches_exposure_rate(self, name):
        """Window time over total time tracks the spec's ER."""
        bench = get_benchmark(name)
        events = list(bench.thread_stream(n_transactions=1_000,
                                          seed=5))
        spans, total_us = window_lengths_us(events)
        duty = spans.sum() / total_us
        assert duty == pytest.approx(bench.spec.exposure_rate,
                                     rel=0.35)

    def test_burst_contents_from_measurement(self):
        bench = get_benchmark("hashmap")
        stats = bench.measure(samples=60)
        bursts = [e for e in bench.thread_stream(n_transactions=100,
                                                 seed=2)
                  if isinstance(e, Burst)]
        mean_accesses = np.mean([b.n_accesses for b in bursts])
        assert mean_accesses == pytest.approx(stats.accesses, rel=0.3)
        assert all(b.write_fraction == stats.write_fraction
                   for b in bursts)


class TestSpecCalibration:
    @pytest.mark.parametrize("name", ["lbm", "xz"])
    def test_window_mean_near_spec(self, name):
        bench = get_spec(name)
        events = list(bench.thread_stream(n_iterations=800, seed=3))
        spans, _ = window_lengths_us(events)
        assert spans.mean() == pytest.approx(
            bench.spec.window_avg_us, rel=0.4)

    def test_stage_rotation_produces_low_per_pmo_duty(self):
        """xz's staged PMO use: each PMO is active only in its own
        stages, so per-PMO window time is a small slice of the run."""
        bench = get_spec("xz")
        events = list(bench.thread_stream(n_iterations=1_200, seed=4))
        t = 0
        per_pmo_burst_times = {}
        for event in events:
            if isinstance(event, Compute):
                t += event.ns
            elif isinstance(event, Burst):
                per_pmo_burst_times.setdefault(event.pmo, set()).add(t)
        assert len(per_pmo_burst_times) == 6
        # Every PMO saw traffic, in disjoint stage intervals.
        firsts = sorted(min(ts) for ts in per_pmo_burst_times.values())
        assert firsts == sorted(set(firsts))
