"""The executable SPEC-style kernels."""

import numpy as np
import pytest

from repro.pmo.pool import PmoManager
from repro.workloads.spec.base import SPEC_SPECS
from repro.workloads.spec.kernels import (
    ALL_KERNELS, ImagickKernel, LbmKernel, make_kernel, McfKernel,
    NabKernel, XzKernel)


def build(name, **kwargs):
    mgr = PmoManager()
    kernel = make_kernel(name, **kwargs)
    kernel.setup(mgr)
    return kernel, mgr


class TestKernelRoster:
    def test_five_kernels_matching_trace_specs(self):
        assert set(ALL_KERNELS) == set(SPEC_SPECS)

    def test_pmo_counts_match_table4(self):
        for name, spec in SPEC_SPECS.items():
            kernel, _ = build(name)
            assert len(kernel.pmo_names()) == spec.n_pmos, name

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            make_kernel("doom3")

    def test_all_pmos_registered(self):
        for name in ALL_KERNELS:
            kernel, mgr = build(name)
            registered = {p.name for p in mgr.all_pmos()}
            assert set(kernel.pmo_names()) <= registered


class TestMcf:
    def test_augmentation_makes_progress(self):
        kernel, _ = build("mcf")
        pushed = kernel.step()
        assert pushed > 0
        assert kernel.total_flow == pushed

    def test_flow_feasible_throughout(self):
        kernel, _ = build("mcf")
        for _ in range(8):
            kernel.step()
            assert kernel.verify()

    def test_terminates_at_max_flow(self):
        kernel, _ = build("mcf", n_nodes=16, n_arcs=40)
        for _ in range(200):
            if kernel.step() == 0.0:
                break
        assert kernel.step() == 0.0    # saturated
        assert kernel.total_flow > 0
        assert kernel.verify()

    def test_cost_accumulates(self):
        kernel, _ = build("mcf")
        kernel.step()
        kernel.step()
        assert kernel.total_cost > 0


class TestLbm:
    def test_mass_conserved(self):
        kernel, _ = build("lbm")
        masses = [kernel.step() for _ in range(5)]
        assert np.allclose(masses, masses[0], rtol=1e-9)
        assert kernel.verify()

    def test_lattices_alternate(self):
        kernel, _ = build("lbm")
        a0 = kernel.lattice_a.load_all().copy()
        kernel.step()   # writes into lattice B
        assert (kernel.lattice_a.load_all() == a0).all()
        kernel.step()   # writes back into lattice A
        assert not (kernel.lattice_a.load_all() == a0).all()

    def test_flow_develops(self):
        kernel, _ = build("lbm")
        before = kernel.lattice_a.load_all().copy()
        for _ in range(4):
            kernel.step()
        after = kernel.lattice_a.load_all()
        assert not np.allclose(before, after)


class TestImagick:
    def test_brightness_preserved(self):
        kernel, _ = build("imagick")
        for _ in range(kernel.height - 2):
            kernel.step()
        assert kernel.verify()

    def test_blur_reduces_variance(self):
        kernel, _ = build("imagick")
        src_var = kernel.src.load_all()[1:-1, 1:-1].var()
        for _ in range(kernel.height - 2):
            kernel.step()
        dst_var = kernel.dst.load_all()[1:-1, 1:-1].var()
        assert dst_var < src_var

    def test_row_cursor_wraps(self):
        kernel, _ = build("imagick", width=16, height=6)
        for _ in range(10):
            kernel.step()
        assert 1 <= kernel._row < kernel.height - 1


class TestNab:
    def test_momentum_conserved(self):
        kernel, _ = build("nab")
        for _ in range(10):
            kernel.step()
        assert kernel.verify()

    def test_particles_stay_in_box(self):
        kernel, _ = build("nab")
        for _ in range(10):
            kernel.step()
        pos = kernel.pos.load_all()
        assert (pos >= 0).all() and (pos < kernel.box).all()

    def test_kinetic_energy_finite(self):
        kernel, _ = build("nab")
        energies = [kernel.step() for _ in range(10)]
        assert all(np.isfinite(e) for e in energies)


class TestXz:
    def test_roundtrip(self):
        kernel, _ = build("xz", total=4096, chunk=1024)
        while kernel._cursor < kernel.total:
            kernel.step()
        assert kernel.verify()

    def test_compresses_redundant_input(self):
        kernel, _ = build("xz", total=8192, chunk=2048)
        while kernel._cursor < kernel.total:
            kernel.step()
        assert kernel.ratio() < 0.9

    def test_partial_roundtrip_after_each_chunk(self):
        kernel, _ = build("xz", total=3072, chunk=1024)
        while kernel._cursor < kernel.total:
            kernel.step()
            assert kernel.verify()

    def test_six_pmos_in_stages(self):
        kernel, _ = build("xz")
        assert len(kernel.pmo_names()) == 6


class TestKernelPersistence:
    def test_lbm_state_survives_reboot(self):
        mgr = PmoManager()
        kernel = make_kernel("lbm")
        kernel.setup(mgr)
        kernel.step()
        snapshot = kernel.lattice_b.load_all().copy()
        mgr.simulate_reboot()
        assert (kernel.lattice_b.load_all() == snapshot).all()
