"""Persistent crit-bit tree."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import PmoError
from repro.core.units import MIB
from repro.pmo.pmo import Pmo
from repro.workloads.structures import CritBitTree


@pytest.fixture
def pmo():
    return Pmo(1, "ct", 16 * MIB)


@pytest.fixture
def tree(pmo):
    return CritBitTree.create(pmo)


class TestBasics:
    def test_insert_get(self, tree):
        tree.insert(b"hello", b"world")
        assert tree.get(b"hello") == b"world"

    def test_missing(self, tree):
        assert tree.get(b"nope") is None
        tree.insert(b"a", b"1")
        assert tree.get(b"b") is None
        assert tree.get(b"aa") is None

    def test_update_same_size(self, tree):
        tree.insert(b"k", b"aaa")
        tree.insert(b"k", b"bbb")
        assert tree.get(b"k") == b"bbb"
        assert len(tree) == 1

    def test_update_different_size(self, tree):
        tree.insert(b"k", b"aaa")
        tree.insert(b"k", b"a-longer-value")
        assert tree.get(b"k") == b"a-longer-value"
        assert len(tree) == 1

    def test_prefix_keys(self, tree):
        """Crit-bit's classic edge case: one key a prefix of another."""
        tree.insert(b"a", b"1")
        tree.insert(b"ab", b"2")
        tree.insert(b"abc", b"3")
        assert tree.get(b"a") == b"1"
        assert tree.get(b"ab") == b"2"
        assert tree.get(b"abc") == b"3"

    def test_items_sorted(self, tree):
        import random
        rng = random.Random(7)
        keys = [f"{rng.randrange(10**6):06d}".encode() for _ in range(100)]
        keys = list(dict.fromkeys(keys))
        for key in keys:
            tree.insert(key, b"v")
        assert [k for k, _ in tree.items()] == sorted(keys)

    def test_delete(self, tree):
        tree.insert(b"a", b"1")
        tree.insert(b"b", b"2")
        assert tree.delete(b"a")
        assert tree.get(b"a") is None
        assert tree.get(b"b") == b"2"
        assert not tree.delete(b"a")
        assert len(tree) == 1

    def test_delete_to_empty_and_reinsert(self, tree):
        tree.insert(b"x", b"1")
        assert tree.delete(b"x")
        assert len(tree) == 0
        tree.insert(b"y", b"2")
        assert tree.get(b"y") == b"2"

    def test_delete_frees_nodes(self, pmo, tree):
        tree.insert(b"a", b"1")
        tree.insert(b"b", b"2")
        frees_before = pmo.heap.free_count
        tree.delete(b"a")
        assert pmo.heap.free_count >= frees_before + 1


class TestPersistence:
    def test_reopen_after_reboot(self):
        pmo = Pmo(1, "ct", 16 * MIB)
        tree = CritBitTree.create(pmo)
        tree.insert(b"persist", b"me")
        tree.insert(b"and", b"me too")
        pmo.crash()
        pmo.recover()
        reopened = CritBitTree.open(pmo)
        assert reopened.get(b"persist") == b"me"
        assert len(reopened) == 2

    def test_open_requires_root(self):
        with pytest.raises(PmoError):
            CritBitTree.open(Pmo(1, "e", 16 * MIB))


class TestCritBitProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.dictionaries(st.binary(min_size=1, max_size=12),
                           st.binary(min_size=1, max_size=24), max_size=40))
    def test_matches_dict(self, model):
        pmo = Pmo(1, "ct", 16 * MIB)
        tree = CritBitTree.create(pmo)
        for key, value in model.items():
            tree.insert(key, value)
        assert len(tree) == len(model)
        for key, value in model.items():
            assert tree.get(key) == value
        assert [k for k, _ in tree.items()] == sorted(model)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=8), min_size=1,
                    max_size=30, unique=True))
    def test_insert_then_delete_all(self, keys):
        pmo = Pmo(1, "ct", 16 * MIB)
        tree = CritBitTree.create(pmo)
        for key in keys:
            tree.insert(key, b"v" + key)
        for key in keys:
            assert tree.delete(key), key
        assert len(tree) == 0
        assert list(tree.items()) == []
