"""Versioned KV store (Echo) and TPC-C tables."""

import pytest

from repro.core.errors import PmoError
from repro.core.units import MIB
from repro.pmo.pmo import Pmo
from repro.workloads.structures import TpccDatabase, VersionedKvStore
from repro.workloads.structures.tpcc import TpccConfig


@pytest.fixture
def kv():
    return VersionedKvStore.create(Pmo(1, "kv", 16 * MIB), 64)


class TestVersionedKv:
    def test_put_get_newest(self, kv):
        kv.put(b"k", b"v1")
        kv.put(b"k", b"v2")
        assert kv.get(b"k") == b"v2"

    def test_missing(self, kv):
        assert kv.get(b"ghost") is None
        assert kv.get_version(b"ghost", 1) is None

    def test_version_history(self, kv):
        v1 = kv.put(b"k", b"one")
        v2 = kv.put(b"k", b"two")
        assert kv.get_version(b"k", v1) == b"one"
        assert kv.get_version(b"k", v2) == b"two"
        assert kv.versions(b"k") == [v2, v1]

    def test_versions_monotonic_across_keys(self, kv):
        v1 = kv.put(b"a", b"x")
        v2 = kv.put(b"b", b"y")
        assert v2 > v1

    def test_gc_keeps_newest(self, kv):
        for i in range(5):
            kv.put(b"k", f"v{i}".encode())
        freed = kv.gc(b"k", keep=2)
        assert freed == 3
        assert len(kv.versions(b"k")) == 2
        assert kv.get(b"k") == b"v4"

    def test_gc_noop_when_few_versions(self, kv):
        kv.put(b"k", b"only")
        assert kv.gc(b"k", keep=3) == 0

    def test_gc_requires_keep(self, kv):
        with pytest.raises(PmoError):
            kv.gc(b"k", keep=0)

    def test_delete_frees_chain(self, kv):
        pmo = kv.pmo
        for i in range(3):
            kv.put(b"k", f"v{i}".encode())
        frees_before = pmo.heap.free_count
        assert kv.delete(b"k")
        # Three version nodes freed, plus the index entry itself.
        assert pmo.heap.free_count >= frees_before + 3
        assert kv.get(b"k") is None

    def test_reserved_keys_rejected(self, kv):
        with pytest.raises(PmoError):
            kv.put(b"\x00secret", b"v")

    def test_keys_hides_internals(self, kv):
        kv.put(b"visible", b"v")
        assert set(kv.keys()) == {b"visible"}

    def test_reopen_after_reboot(self):
        pmo = Pmo(1, "kv", 16 * MIB)
        kv = VersionedKvStore.create(pmo, 64)
        v1 = kv.put(b"k", b"v1")
        pmo.crash()
        pmo.recover()
        reopened = VersionedKvStore.open(pmo)
        assert reopened.get(b"k") == b"v1"
        v2 = reopened.put(b"k", b"v2")
        assert v2 > v1   # version counter survived


@pytest.fixture
def db():
    return TpccDatabase.create(Pmo(1, "tpcc", 64 * MIB))


class TestTpcc:
    def test_new_order_updates_balance(self, db):
        order_id = db.new_order(0, 1, 2, item_count=3, amount_cents=999)
        assert db.customer_balance(0, 1, 2) == 999
        w, d, c, items, amount = db.order(order_id)
        assert (w, d, c, items, amount) == (0, 1, 2, 3, 999)

    def test_order_ids_increase(self, db):
        a = db.new_order(0, 0, 0, 1, 100)
        b = db.new_order(0, 0, 1, 1, 100)
        assert b == a + 1
        assert db.order_count == 2

    def test_payment_moves_money(self, db):
        db.new_order(1, 2, 3, 1, 5000)
        db.payment(1, 2, 3, 1500)
        assert db.customer_balance(1, 2, 3) == 3500
        assert db.warehouse_ytd(1) == 1500
        assert db.district_ytd(1, 2) == 1500

    def test_payment_insufficient_balance_aborts(self, db):
        db.new_order(0, 0, 0, 1, 100)
        with pytest.raises(PmoError):
            db.payment(0, 0, 0, 5000)
        # The aborted transaction left no partial state.
        assert db.customer_balance(0, 0, 0) == 100
        assert db.warehouse_ytd(0) == 0

    def test_bad_indices_rejected(self, db):
        with pytest.raises(PmoError):
            db.new_order(99, 0, 0, 1, 100)
        with pytest.raises(PmoError):
            db.payment(0, 99, 0, 100)

    def test_money_conservation_invariant(self, db):
        """Sum of balances equals sum of orders minus payments."""
        import random
        rng = random.Random(3)
        placed = paid = 0
        for _ in range(100):
            w = rng.randrange(2)
            d = rng.randrange(10)
            c = rng.randrange(30)
            amount = rng.randrange(1, 1000)
            if rng.random() < 0.7:
                db.new_order(w, d, c, 1, amount)
                placed += amount
            else:
                try:
                    db.payment(w, d, c, amount)
                    paid += amount
                except PmoError:
                    pass  # insufficient balance: aborted cleanly
        assert db.total_balance() == placed - paid

    def test_reopen_after_reboot(self):
        pmo = Pmo(1, "tpcc", 64 * MIB)
        db = TpccDatabase.create(pmo, TpccConfig(warehouses=1))
        db.new_order(0, 1, 2, 1, 777)
        pmo.crash()
        pmo.recover()
        reopened = TpccDatabase.open(pmo)
        assert reopened.customer_balance(0, 1, 2) == 777
        assert reopened.order_count == 1
        assert reopened.config.warehouses == 1

    def test_order_table_full(self):
        pmo = Pmo(1, "tpcc", 64 * MIB)
        db = TpccDatabase.create(pmo, TpccConfig(max_orders=2))
        db.new_order(0, 0, 0, 1, 1)
        db.new_order(0, 0, 0, 1, 1)
        with pytest.raises(PmoError):
            db.new_order(0, 0, 0, 1, 1)
