"""WHISPER and SPEC trace generators."""

import pytest

from repro.core.units import GIB, us
from repro.sim.events import Burst, Compute, RegionEnd, TxBegin, TxEnd
from repro.workloads.spec.base import (
    get_benchmark as get_spec, SPEC_NAMES, SPEC_SPECS, SpecBenchmark)
from repro.workloads.whisper.benchmarks import (
    all_benchmarks, get_benchmark, SPECS, WHISPER_NAMES)


class TestWhisperSpecs:
    def test_six_benchmarks(self):
        assert len(WHISPER_NAMES) == 6
        assert set(SPECS) == set(WHISPER_NAMES)

    def test_one_gigabyte_pmo(self):
        for spec in SPECS.values():
            assert spec.pmo_size == GIB

    def test_100k_default_transactions(self):
        for spec in SPECS.values():
            assert spec.n_transactions == 100_000

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            get_benchmark("doom")

    def test_cycle_derived_from_er(self):
        spec = SPECS["echo"]
        assert spec.cycle_us == pytest.approx(
            spec.window_avg_us / spec.exposure_rate)


class TestWhisperMeasurement:
    def test_measured_stats_plausible(self):
        bench = get_benchmark("hashmap")
        stats = bench.measure(samples=50)
        assert stats.accesses > 1
        assert 0.0 <= stats.write_fraction <= 1.0
        assert stats.unique_pages >= 1

    def test_measurement_cached(self):
        bench = get_benchmark("ycsb")
        assert bench.measure(samples=30) is bench.measure(samples=30)

    def test_readonly_mix_has_lower_write_fraction(self):
        echo = get_benchmark("echo").measure(samples=60)
        # Echo's mix is 60% put: writes present but not universal.
        assert 0.05 < echo.write_fraction < 0.95


class TestWhisperStreams:
    def test_stream_structure(self):
        bench = get_benchmark("echo")
        events = list(bench.thread_stream(n_transactions=10))
        kinds = [type(e) for e in events]
        assert kinds.count(TxBegin) == 10
        assert kinds.count(TxEnd) == 10
        assert kinds.count(RegionEnd) >= 10
        assert any(k is Burst for k in kinds)

    def test_bursts_reference_the_benchmark_pmo(self):
        bench = get_benchmark("tpcc")
        for event in bench.thread_stream(n_transactions=5):
            if isinstance(event, Burst):
                assert event.pmo == "tpcc"

    def test_deterministic_under_seed(self):
        bench = get_benchmark("redis")
        a = list(bench.thread_stream(n_transactions=20, seed=5))
        b = list(bench.thread_stream(n_transactions=20, seed=5))
        assert a == b

    def test_threads_split_transactions(self):
        bench = get_benchmark("ctree")
        streams = bench.threads(4, n_transactions=40)
        assert set(streams) == {0, 1, 2, 3}
        for stream in streams.values():
            events = list(stream)
            assert sum(1 for e in events
                       if isinstance(e, TxBegin)) == 10

    def test_all_benchmarks_constructible(self):
        assert set(all_benchmarks()) == set(WHISPER_NAMES)


class TestSpecStreams:
    def test_five_benchmarks_with_paper_pmo_counts(self):
        assert len(SPEC_NAMES) == 5
        counts = {name: SPEC_SPECS[name].n_pmos for name in SPEC_NAMES}
        assert counts == {"mcf": 4, "lbm": 2, "imagick": 3, "nab": 3,
                          "xz": 6}

    def test_stage_rotation_covers_all_pmos(self):
        bench = get_spec("xz")
        seen = set()
        for stage in range(bench.spec.n_stages):
            seen.update(bench._stage_pmos(stage))
        assert seen == set(bench.spec.pmo_names())

    def test_lbm_uses_both_pmos_every_stage(self):
        bench = get_spec("lbm")
        for stage in range(4):
            assert set(bench._stage_pmos(stage)) == \
                set(bench.spec.pmo_names())

    def test_stream_bursts_touch_active_pmos_only(self):
        bench = get_spec("mcf")
        active = None
        for event in bench.thread_stream(n_iterations=16, seed=3):
            if isinstance(event, TxBegin):
                active = set(event.pmos)
            elif isinstance(event, Burst):
                assert event.pmo in active

    def test_pmos_larger_than_128kb(self):
        # The paper's PMO threshold: heap objects > 128KB.
        for name in SPEC_NAMES:
            for size in get_spec(name).pmo_sizes().values():
                assert size > 128 * 1024

    def test_unknown_spec_rejected(self):
        with pytest.raises(KeyError):
            get_spec("fortran_dreams")
