"""Exposure-window tracking (Definition 5, Table III metrics)."""

import pytest

from repro.core.errors import TerpError
from repro.core.exposure import ExposureMonitor, Window, WindowStats, WindowTracker


class TestWindow:
    def test_length(self):
        assert Window(100, 350).length_ns == 250


class TestWindowStats:
    def test_empty(self):
        s = WindowStats.of([])
        assert s.count == 0 and s.total_ns == 0 and s.avg_ns == 0.0

    def test_aggregates(self):
        s = WindowStats.of([Window(0, 10), Window(20, 50)])
        assert s.count == 2
        assert s.total_ns == 40
        assert s.avg_ns == pytest.approx(20.0)
        assert s.max_ns == 30
        assert s.min_ns == 10


class TestWindowTracker:
    def test_open_close_records_window(self):
        t = WindowTracker()
        t.open("pmo", 100)
        w = t.close("pmo", 400)
        assert w == Window(100, 400)
        assert t.windows("pmo") == [Window(100, 400)]

    def test_double_open_rejected(self):
        t = WindowTracker()
        t.open("pmo", 0)
        with pytest.raises(TerpError):
            t.open("pmo", 10)

    def test_close_unopened_rejected(self):
        t = WindowTracker()
        with pytest.raises(TerpError):
            t.close("pmo", 10)

    def test_close_before_open_rejected(self):
        t = WindowTracker()
        t.open("pmo", 100)
        with pytest.raises(TerpError):
            t.close("pmo", 50)

    def test_current_length(self):
        t = WindowTracker()
        t.open("pmo", 100)
        assert t.current_length("pmo", 250) == 150
        assert t.current_length("other", 250) == 0

    def test_finish_closes_all(self):
        t = WindowTracker()
        t.open("a", 0)
        t.open("b", 10)
        t.finish(100)
        assert not t.is_open("a") and not t.is_open("b")
        assert t.stats().count == 2

    def test_exposure_rate(self):
        t = WindowTracker()
        t.open("pmo", 0)
        t.close("pmo", 250)
        assert t.exposure_rate(1000) == pytest.approx(0.25)

    def test_exposure_rate_zero_total(self):
        assert WindowTracker().exposure_rate(0) == 0.0

    def test_windows_across_keys(self):
        t = WindowTracker()
        t.open("a", 0)
        t.close("a", 10)
        t.open("b", 5)
        t.close("b", 25)
        assert len(t.windows()) == 2
        assert t.stats().total_ns == 30


class TestExposureMonitor:
    def test_ew_and_tew_report(self):
        mon = ExposureMonitor()
        mon.pmo_mapped("pmo1", 0)
        mon.thread_granted(1, "pmo1", 0)
        mon.thread_revoked(1, "pmo1", 2_000)      # 2us TEW
        mon.thread_granted(2, "pmo1", 10_000)
        mon.thread_revoked(2, "pmo1", 12_000)     # 2us TEW
        mon.pmo_unmapped("pmo1", 40_000)          # 40us EW
        report = mon.report(total_ns=100_000)
        assert report.ew_avg_us == pytest.approx(40.0)
        assert report.ew_max_us == pytest.approx(40.0)
        assert report.er_percent == pytest.approx(40.0)
        assert report.tew_avg_us == pytest.approx(2.0)
        assert report.ter_percent == pytest.approx(4.0)

    def test_ter_below_er_when_grants_are_short(self):
        # The core TERP claim: thread windows are much smaller than
        # the process window that contains them.
        mon = ExposureMonitor()
        mon.pmo_mapped("p", 0)
        for i in range(5):
            mon.thread_granted(1, "p", i * 8_000)
            mon.thread_revoked(1, "p", i * 8_000 + 1_000)
        mon.pmo_unmapped("p", 40_000)
        report = mon.report(total_ns=40_000)
        assert report.ter_percent < report.er_percent

    def test_finish_closes_both_levels(self):
        mon = ExposureMonitor()
        mon.pmo_mapped("p", 0)
        mon.thread_granted(7, "p", 10)
        mon.finish(1_000)
        assert mon.ew.stats().count == 1
        assert mon.tew.stats().count == 1
