"""Theorem 6 (temporal protection), including property-based search
for counterexamples."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import TerpError
from repro.core.theorem import (
    attack_can_succeed, Schedule, terp_schedule, theorem_holds)


class TestSchedule:
    def test_windows_must_be_sorted_disjoint(self):
        with pytest.raises(TerpError):
            Schedule.of([(0, 10), (5, 15)])

    def test_max_exposure(self):
        s = Schedule.of([(0, 10), (20, 50)])
        assert s.max_exposure_ns() == 30

    def test_relocation_cuts_stretches(self):
        s = Schedule.of([(0, 100)], relocations=[40])
        stretches = s.stationary_accessible_stretches()
        assert [(w.start_ns, w.end_ns) for w in stretches] == \
            [(0, 40), (40, 100)]
        assert s.longest_stationary_accessible_ns() == 60

    def test_relocation_outside_window_ignored(self):
        s = Schedule.of([(0, 10)], relocations=[50])
        assert s.longest_stationary_accessible_ns() == 10

    def test_empty_schedule(self):
        s = Schedule.of([])
        assert s.max_exposure_ns() == 0
        assert not attack_can_succeed(s, 1)


class TestAttackPredicate:
    def test_attack_needs_contiguous_stretch(self):
        # Two 30ns windows do not help a 40ns attack.
        s = Schedule.of([(0, 30), (100, 130)])
        assert not attack_can_succeed(s, 40)
        assert attack_can_succeed(s, 30)

    def test_relocation_defeats_long_window(self):
        # A 100ns window re-randomized every 40ns blocks a 50ns attack.
        s = Schedule.of([(0, 100)], relocations=[40, 80])
        assert not attack_can_succeed(s, 50)
        assert attack_can_succeed(s, 40)

    def test_invalid_attack_time(self):
        with pytest.raises(TerpError):
            attack_can_succeed(Schedule.of([]), 0)


class TestTheorem:
    def test_holds_on_terp_schedule(self):
        # EW 40us out of each 100us, randomized at window ends:
        # any attack needing > 40us is prevented.
        s = terp_schedule(ew_ns=40_000, period_ns=100_000,
                          horizon_ns=1_000_000)
        assert theorem_holds(s, 40_001)
        assert not attack_can_succeed(s, 40_001)

    def test_vacuous_when_premise_fails(self):
        # Windows of 100 >= t=50 and no relocation: premise fails, the
        # implication is vacuously true even though the attack works.
        s = Schedule.of([(0, 100)])
        assert attack_can_succeed(s, 50)
        assert theorem_holds(s, 50)

    def test_window_longer_than_period_rejected(self):
        with pytest.raises(TerpError):
            terp_schedule(ew_ns=200, period_ns=100, horizon_ns=1000)

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 10_000),
                              st.integers(1, 500)), max_size=12),
           st.lists(st.integers(0, 11_000), max_size=12),
           st.integers(1, 2_000))
    def test_no_counterexample_exists(self, raw_windows, relocations,
                                      attack_time):
        """Property: the theorem's implication holds on every valid
        schedule hypothesis can construct."""
        windows = []
        cursor = 0
        for gap, length in raw_windows:
            start = cursor + gap
            windows.append((start, start + length))
            cursor = start + length
        schedule = Schedule.of(windows, relocations)
        assert theorem_holds(schedule, attack_time)

    @settings(max_examples=100, deadline=None)
    @given(st.integers(1_000, 50_000), st.integers(1, 3))
    def test_terp_schedule_blocks_attacks_beyond_ew(self, ew_ns, k):
        schedule = terp_schedule(ew_ns=ew_ns, period_ns=2 * ew_ns,
                                 horizon_ns=20 * ew_ns)
        assert not attack_can_succeed(schedule, ew_ns + k)
