"""Multi-process PMO sharing (the poset's process/user tiers)."""

import pytest

from repro.core.errors import PmoError, TerpError
from repro.core.multiprocess import SharedPmoSystem
from repro.core.permissions import Access
from repro.core.semantics import Outcome
from repro.core.units import MIB, us


@pytest.fixture
def system():
    return SharedPmoSystem(seed=5)


@pytest.fixture
def two_procs(system):
    alice = system.create_process("server", user="alice")
    bob = system.create_process("client", user="bob")
    return alice, bob


class TestProcessManagement:
    def test_duplicate_process_rejected(self, system):
        system.create_process("p")
        with pytest.raises(TerpError):
            system.create_process("p")

    def test_lookup(self, system):
        p = system.create_process("p")
        assert system.process("p") is p
        with pytest.raises(TerpError):
            system.process("ghost")


class TestModeChecks:
    def test_owner_can_attach(self, system, two_procs):
        alice, _ = two_procs
        system.create_pmo(alice, "data", 8 * MIB, mode=0o600)
        result = system.attach(alice, "data", Access.RW)
        assert result.ok

    def test_other_user_denied_by_mode(self, system, two_procs):
        alice, bob = two_procs
        system.create_pmo(alice, "data", 8 * MIB, mode=0o600)
        with pytest.raises(PmoError):
            system.attach(bob, "data", Access.READ)

    def test_world_readable_allows_read_only(self, system, two_procs):
        alice, bob = two_procs
        system.create_pmo(alice, "pub", 8 * MIB, mode=0o644)
        assert system.attach(bob, "pub", Access.READ).ok
        with pytest.raises(PmoError):
            system.attach(bob, "pub", Access.RW, now_ns=10)


class TestIndependentMappings:
    def test_processes_get_different_random_bases(self, system,
                                                  two_procs):
        alice, bob = two_procs
        system.create_pmo(alice, "shared", 8 * MIB, mode=0o666)
        system.attach(alice, "shared", Access.RW)
        system.attach(bob, "shared", Access.RW)
        va_alice = system.base_va(alice, "shared")
        va_bob = system.base_va(bob, "shared")
        assert va_alice is not None and va_bob is not None
        assert va_alice != va_bob

    def test_detach_in_one_process_only(self, system, two_procs):
        alice, bob = two_procs
        system.create_pmo(alice, "shared", 8 * MIB, mode=0o666)
        system.attach(alice, "shared", Access.RW)
        system.attach(bob, "shared", Access.RW)
        # Alice detaches past her EW target: unmapped for her only.
        system.detach(alice, "shared", now_ns=us(41))
        assert system.base_va(alice, "shared") is None
        assert system.base_va(bob, "shared") is not None

    def test_access_isolated_per_process(self, system, two_procs):
        alice, bob = two_procs
        system.create_pmo(alice, "shared", 8 * MIB, mode=0o666)
        system.attach(alice, "shared", Access.RW)
        # Bob never attached: his access segfaults even though the
        # PMO is mapped in Alice's process.
        decision = system.access(bob, "shared", Access.READ)
        assert decision.outcome is Outcome.FAULT_SEGV
        assert system.access(alice, "shared",
                             Access.READ).outcome is Outcome.OK

    def test_shared_data_visible_to_both(self, system, two_procs):
        """The PMO's bytes are shared even though mappings differ."""
        alice, bob = two_procs
        pmo = system.create_pmo(alice, "shared", 8 * MIB, mode=0o666)
        system.attach(alice, "shared", Access.RW)
        system.attach(bob, "shared", Access.READ)
        oid = pmo.pmalloc(64)
        pmo.write(oid.offset, b"from alice")
        assert pmo.read(oid.offset, 10) == b"from alice"


class TestExposureByProcess:
    def test_per_process_exposure_rates(self, system, two_procs):
        alice, bob = two_procs
        system.create_pmo(alice, "shared", 8 * MIB, mode=0o666)
        system.attach(alice, "shared", Access.RW)
        system.detach(alice, "shared", now_ns=us(50))   # real detach
        system.attach(bob, "shared", Access.READ, now_ns=us(60))
        # Bob still attached at the end of the horizon.
        rates = system.exposure_by_process("shared", total_ns=us(100))
        assert rates["server"] == pytest.approx(0.5, abs=0.01)
        assert rates["client"] == pytest.approx(0.4, abs=0.01)
