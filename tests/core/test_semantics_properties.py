"""Property-based tests of the semantics engines' core guarantees.

The paper's composability claim, stated as properties:

* any interleaving of *well-formed* threads (alternating attach →
  detach per thread) produces no semantics errors under EW-conscious
  semantics or the hardware engine;
* a thread that detached cannot access until it re-attaches;
* the hardware engine's circular buffer never leaks entries (every
  PMO with holders is mapped; counters never go negative).
"""

from hypothesis import given, settings, strategies as st

from repro.arch.cond_engine import TerpArchEngine
from repro.core.permissions import Access
from repro.core.semantics import EwConsciousSemantics, Outcome
from repro.core.units import us

N_THREADS = 3
PMOS = ["p0", "p1"]


@st.composite
def interleavings(draw):
    """A time-ordered event list where each thread alternates
    attach/detach per PMO (well-formed threads)."""
    n_events = draw(st.integers(5, 60))
    open_state = {}
    events = []
    t = 0
    for _ in range(n_events):
        t += draw(st.integers(100, 30_000))
        thread = draw(st.integers(0, N_THREADS - 1))
        pmo = draw(st.sampled_from(PMOS))
        key = (thread, pmo)
        kind = draw(st.sampled_from(["attach", "detach", "access"]))
        if kind == "attach" and not open_state.get(key):
            open_state[key] = True
            events.append(("attach", thread, pmo, t))
        elif kind == "detach" and open_state.get(key):
            open_state[key] = False
            events.append(("detach", thread, pmo, t))
        else:
            events.append(("access", thread, pmo, t))
    return events


def run_events(engine, events):
    outcomes = []
    for kind, thread, pmo, t in events:
        if kind == "attach":
            outcomes.append(engine.attach(thread, pmo, Access.RW, t))
        elif kind == "detach":
            outcomes.append(engine.detach(thread, pmo, t))
        else:
            outcomes.append(engine.access(thread, pmo, Access.READ, t))
    return outcomes


class TestComposabilityProperties:
    @settings(max_examples=80, deadline=None)
    @given(interleavings())
    def test_ew_conscious_never_errors_on_well_formed_threads(self, events):
        engine = EwConsciousSemantics(us(40))
        for decision in run_events(engine, events):
            assert decision.outcome is not Outcome.ERROR

    @settings(max_examples=80, deadline=None)
    @given(interleavings())
    def test_arch_engine_never_errors_on_well_formed_threads(self, events):
        engine = TerpArchEngine(us(40))
        for decision in run_events(engine, events):
            assert decision.outcome is not Outcome.ERROR

    @settings(max_examples=60, deadline=None)
    @given(interleavings())
    def test_access_inside_own_window_always_ok(self, events):
        """If a thread is between its attach and detach, its reads
        succeed (EW-conscious thread composability)."""
        engine = EwConsciousSemantics(us(40))
        open_state = {}
        for kind, thread, pmo, t in events:
            if kind == "attach":
                engine.attach(thread, pmo, Access.RW, t)
                open_state[(thread, pmo)] = True
            elif kind == "detach":
                engine.detach(thread, pmo, t)
                open_state[(thread, pmo)] = False
            else:
                decision = engine.access(thread, pmo, Access.READ, t)
                if open_state.get((thread, pmo)):
                    assert decision.outcome is Outcome.OK

    @settings(max_examples=60, deadline=None)
    @given(interleavings())
    def test_access_after_detach_always_denied(self, events):
        engine = EwConsciousSemantics(us(40))
        open_state = {}
        for kind, thread, pmo, t in events:
            if kind == "attach":
                engine.attach(thread, pmo, Access.RW, t)
                open_state[(thread, pmo)] = True
            elif kind == "detach":
                engine.detach(thread, pmo, t)
                open_state[(thread, pmo)] = False
            else:
                decision = engine.access(thread, pmo, Access.READ, t)
                if not open_state.get((thread, pmo)):
                    assert decision.outcome is not Outcome.OK


class TestArchEngineInvariants:
    @settings(max_examples=80, deadline=None)
    @given(interleavings(), st.integers(0, 3))
    def test_circular_buffer_consistency(self, events, sweep_mod):
        """CB invariants hold at every step, with sweeps mixed in."""
        engine = TerpArchEngine(us(40))
        for i, (kind, thread, pmo, t) in enumerate(events):
            if kind == "attach":
                engine.attach(thread, pmo, Access.RW, t)
            elif kind == "detach":
                engine.detach(thread, pmo, t)
            else:
                engine.access(thread, pmo, Access.READ, t)
            if sweep_mod and i % (sweep_mod + 1) == 0:
                engine.sweep(t)
            for entry in engine.cb.entries():
                assert entry.ctr >= 0
                assert entry.ctr == len(engine.holders(entry.pmo_id))
                # An entry with holders is never in delayed-detach.
                if entry.ctr > 0:
                    assert not entry.dd
                # Buffered PMOs are mapped.
                assert engine.is_mapped(entry.pmo_id)

    @settings(max_examples=50, deadline=None)
    @given(interleavings())
    def test_sweep_enforces_ew_bound(self, events):
        """After a sweep at time T, no unheld PMO has been mapped at
        one address longer than the EW target."""
        engine = TerpArchEngine(us(40))
        last_t = 0
        for kind, thread, pmo, t in events:
            if kind == "attach":
                engine.attach(thread, pmo, Access.RW, t)
            elif kind == "detach":
                engine.detach(thread, pmo, t)
            last_t = t
        engine.sweep(last_t + us(41))
        for entry in engine.cb.entries():
            age = entry.age_ns(last_t + us(41))
            assert age < us(41)
