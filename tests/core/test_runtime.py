"""TerpRuntime: semantics decisions applied to real substrates."""

import numpy as np
import pytest

from repro.core.errors import TerpError
from repro.core.events import EventKind, Trace
from repro.core.permissions import Access
from repro.core.runtime import TerpRuntime
from repro.core.semantics import (
    BasicSemantics, EwConsciousSemantics, FcfsSemantics, Outcome)
from repro.core.units import MIB, us
from repro.pmo.pool import PmoManager


def make_runtime(semantics=None, trace=None):
    semantics = semantics or EwConsciousSemantics(us(40))
    manager = PmoManager()
    rt = TerpRuntime(semantics, manager=manager, trace=trace,
                     rng=np.random.default_rng(1))
    pmo = manager.create("p", 8 * MIB)
    return rt, pmo


class TestAttachDetachFlow:
    def test_attach_maps_and_grants(self):
        rt, pmo = make_runtime()
        res = rt.attach(1, pmo, Access.RW, 0)
        assert res.ok
        assert rt.space.is_attached(pmo.pmo_id)
        assert rt.space.domains.allows(1, pmo.pmo_id, Access.RW)
        assert rt.monitor.ew.is_open(pmo.pmo_id)
        assert rt.monitor.tew.is_open((1, pmo.pmo_id))

    def test_lowered_detach_keeps_mapping_revokes_thread(self):
        rt, pmo = make_runtime()
        rt.attach(1, pmo, Access.RW, 0)
        rt.detach(1, pmo, us(1))
        assert rt.space.is_attached(pmo.pmo_id)
        assert not rt.space.domains.allows(1, pmo.pmo_id, Access.READ)
        assert not rt.monitor.tew.is_open((1, pmo.pmo_id))
        assert rt.monitor.ew.is_open(pmo.pmo_id)

    def test_real_detach_unmaps(self):
        rt, pmo = make_runtime()
        rt.attach(1, pmo, Access.RW, 0)
        rt.detach(1, pmo, us(41))
        assert not rt.space.is_attached(pmo.pmo_id)
        assert not rt.monitor.ew.is_open(pmo.pmo_id)

    def test_randomize_on_partial_detach(self):
        rt, pmo = make_runtime()
        rt.attach(1, pmo, Access.RW, 0)
        rt.attach(2, pmo, Access.RW, us(1))
        base_before = rt.space.mapping_of(pmo.pmo_id).base_va
        rt.detach(1, pmo, us(41))
        assert rt.counters.randomizations == 1
        assert rt.space.mapping_of(pmo.pmo_id).base_va != base_before

    def test_counters_silent_vs_syscall(self):
        rt, pmo = make_runtime()
        rt.attach(1, pmo, Access.RW, 0)          # performed
        rt.attach(2, pmo, Access.RW, us(1))      # silent (lowered)
        rt.detach(1, pmo, us(2))                 # silent
        rt.detach(2, pmo, us(41))                # performed
        c = rt.counters
        assert c.attach_syscalls == 1
        assert c.silent_attaches == 1
        assert c.detach_syscalls == 1
        assert c.silent_detaches == 1
        assert c.silent_percent == pytest.approx(50.0)

    def test_error_decision_counted_not_applied(self):
        rt, pmo = make_runtime()
        rt.attach(1, pmo, Access.RW, 0)
        res = rt.attach(1, pmo, Access.RW, 10)  # within-thread overlap
        assert res.decision.outcome is Outcome.ERROR
        assert rt.counters.errors == 1

    def test_strict_mode_raises(self):
        rt, pmo = make_runtime()
        rt.strict = True
        rt.attach(1, pmo, Access.RW, 0)
        with pytest.raises(TerpError):
            rt.attach(1, pmo, Access.RW, 10)

    def test_time_monotonicity_enforced(self):
        rt, pmo = make_runtime()
        rt.attach(1, pmo, Access.RW, 100)
        with pytest.raises(TerpError):
            rt.detach(1, pmo, 50)


class TestAccessFlow:
    def test_granted_access_ok(self):
        rt, pmo = make_runtime()
        rt.attach(1, pmo, Access.RW, 0)
        d = rt.access(1, pmo, 0, Access.WRITE, 10)
        assert d.outcome is Outcome.OK

    def test_fault_counted(self):
        rt, pmo = make_runtime()
        d = rt.access(1, pmo, 0, Access.READ, 0)
        assert d.outcome is Outcome.FAULT_SEGV
        assert rt.counters.faults == 1

    def test_fcfs_reattach_applies_map(self):
        rt, pmo = make_runtime(FcfsSemantics())
        rt.attach(1, pmo, Access.RW, 0)
        rt.attach(1, pmo, Access.RW, 10)
        rt.detach(1, pmo, 20)  # performed: unmapped
        assert not rt.space.is_attached(pmo.pmo_id)
        d = rt.access(1, pmo, 0, Access.READ, 30)
        assert d.outcome is Outcome.REATTACH
        assert rt.space.is_attached(pmo.pmo_id)

    def test_hardware_agrees_with_engine_for_ew_conscious(self):
        """Cross-validation: the MPK+matrix path and the semantics
        engine must agree on every access for the chosen semantics."""
        rt, pmo = make_runtime()
        rng = np.random.default_rng(3)
        t = 0
        for step in range(200):
            t += int(rng.integers(1, 2000))
            thread = int(rng.integers(1, 4))
            action = rng.integers(0, 4)
            if action == 0:
                rt.attach(thread, pmo, Access.RW, t)
            elif action == 1:
                rt.detach(thread, pmo, t)
            else:
                decision = rt.semantics.access(thread, pmo.pmo_id,
                                               Access.READ, t)
                mapping = rt.space.mapping_of(pmo.pmo_id)
                if mapping is None:
                    hw_ok = False
                else:
                    hw_ok = rt.space.check_access(thread, mapping.base_va,
                                                  Access.READ)
                assert (decision.outcome is Outcome.OK) == hw_ok, \
                    f"divergence at step {step}"


class TestTracing:
    def test_trace_records_lifecycle(self):
        trace = Trace()
        rt, pmo = make_runtime(trace=trace)
        rt.attach(1, pmo, Access.RW, 0)
        rt.access(1, pmo, 0, Access.READ, 10)
        rt.detach(1, pmo, us(41))
        kinds = [e.kind for e in trace]
        assert EventKind.ATTACH in kinds
        assert EventKind.MAP in kinds
        assert EventKind.GRANT in kinds
        assert EventKind.ACCESS in kinds
        assert EventKind.DETACH in kinds
        assert EventKind.UNMAP in kinds

    def test_trace_capacity(self):
        trace = Trace(capacity=2)
        rt, pmo = make_runtime(trace=trace)
        rt.attach(1, pmo, Access.RW, 0)
        rt.detach(1, pmo, 10)
        assert len(trace) == 2
        assert trace.dropped > 0

    def test_finish_closes_windows(self):
        rt, pmo = make_runtime()
        rt.attach(1, pmo, Access.RW, 0)
        rt.finish(us(100))
        assert not rt.monitor.ew.is_open(pmo.pmo_id)
        report = rt.monitor.report(us(100))
        assert report.ew_avg_us == pytest.approx(100.0)
