"""Unit-conversion helpers."""

import pytest

from repro.core import units


def test_us_is_integral_nanoseconds():
    assert units.us(40) == 40_000
    assert units.us(2) == 2_000
    assert isinstance(units.us(1.5), int)


def test_us_rounds_fractional_values():
    assert units.us(0.1) == 100
    assert units.us(0.0004) == 0


def test_ms_and_seconds():
    assert units.ms(1) == 1_000_000
    assert units.seconds(1) == 1_000_000_000
    assert units.seconds(0.000001) == units.us(1)


def test_ns_to_us_roundtrip():
    assert units.ns_to_us(units.us(40)) == pytest.approx(40.0)


def test_cycles_to_ns_at_core_frequency():
    # 2200 cycles at 2.2 GHz is exactly 1000 ns.
    assert units.cycles_to_ns(2200) == 1000


def test_cycles_to_ns_minimum_one_ns():
    assert units.cycles_to_ns(1) == 1
    assert units.cycles_to_ns(0) == 0
    assert units.cycles_to_ns(-5) == 0


def test_ns_to_cycles_inverse():
    assert units.ns_to_cycles(1000) == pytest.approx(2200)


def test_table2_attach_cost_in_ns():
    # Attach() is 4422 cycles in Table II -> ~2010 ns at 2.2 GHz.
    assert units.cycles_to_ns(4422) == pytest.approx(2010, abs=1)


def test_sizes():
    assert units.GIB == 1024 ** 3
    assert units.PAGE_SIZE == 4096
