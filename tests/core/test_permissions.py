"""Permission sets and groups (Definitions 1-2)."""

import pytest

from repro.core.permissions import (
    Access, Entity, EntityKind, PermissionGroup, PermissionSet)


class TestAccess:
    def test_parse_rw(self):
        assert Access.parse("rw") is Access.RW

    def test_parse_is_case_insensitive(self):
        assert Access.parse("RW") is Access.RW

    def test_parse_empty_is_none(self):
        assert Access.parse("") is Access.NONE

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            Access.parse("q")

    def test_rw_allows_read(self):
        assert Access.RW.allows(Access.READ)

    def test_read_does_not_allow_write(self):
        assert not Access.READ.allows(Access.WRITE)

    def test_none_allows_none_only(self):
        assert Access.NONE.allows(Access.NONE)
        assert not Access.NONE.allows(Access.READ)

    def test_short_form(self):
        assert Access.RW.short() == "rw-"
        assert Access.READ.short() == "r--"
        assert Access.RWX.short() == "rwx"


class TestPermissionSet:
    def test_of_and_access_to(self):
        p = PermissionSet.of(pmo1="rw", pmo2="r")
        assert p.access_to("pmo1") is Access.RW
        assert p.access_to("pmo2") is Access.READ
        assert p.access_to("pmo3") is Access.NONE

    def test_subset_reflexive(self):
        p = PermissionSet.of(pmo1="rw")
        assert p.is_subset_of(p)

    def test_subset_weaker_below_stronger(self):
        weak = PermissionSet.of(pmo1="r")
        strong = PermissionSet.of(pmo1="rw")
        assert weak.is_subset_of(strong)
        assert not strong.is_subset_of(weak)

    def test_subset_requires_all_objects(self):
        p1 = PermissionSet.of(pmo1="r", pmo2="r")
        p2 = PermissionSet.of(pmo1="rw")
        assert not p1.is_subset_of(p2)

    def test_intersect(self):
        p1 = PermissionSet.of(pmo1="rw", pmo2="r")
        p2 = PermissionSet.of(pmo1="r", pmo3="w")
        inter = p1.intersect(p2)
        assert inter.access_to("pmo1") is Access.READ
        assert inter.access_to("pmo2") is Access.NONE

    def test_union(self):
        p1 = PermissionSet.of(pmo1="r")
        p2 = PermissionSet.of(pmo1="w", pmo2="r")
        u = p1.union(p2)
        assert u.access_to("pmo1") is Access.RW
        assert u.access_to("pmo2") is Access.READ

    def test_empty_set_is_falsy(self):
        assert not PermissionSet()
        assert PermissionSet.of(pmo1="r")

    def test_intersection_is_lower_bound(self):
        p1 = PermissionSet.of(a="rw", b="r")
        p2 = PermissionSet.of(a="r", b="rw")
        inter = p1.intersect(p2)
        assert inter.is_subset_of(p1)
        assert inter.is_subset_of(p2)


class TestPermissionGroup:
    def _threads(self, n):
        return [Entity(EntityKind.THREAD, f"t{i}") for i in range(n)]

    def test_validate_accepts_contained_permission(self):
        t1, t2 = self._threads(2)
        shared = PermissionSet.of(pmo1="r")
        group = PermissionGroup.of([t1, t2], shared)
        perms = {t1: PermissionSet.of(pmo1="rw"),
                 t2: PermissionSet.of(pmo1="r")}
        assert group.validate(perms)

    def test_validate_rejects_overclaiming_group(self):
        (t1,) = self._threads(1)
        group = PermissionGroup.of([t1], PermissionSet.of(pmo1="rw"))
        assert not group.validate({t1: PermissionSet.of(pmo1="r")})

    def test_validate_rejects_unknown_member(self):
        t1, t2 = self._threads(2)
        group = PermissionGroup.of([t1, t2], PermissionSet.of(pmo1="r"))
        assert not group.validate({t1: PermissionSet.of(pmo1="r")})

    def test_subgroup_order(self):
        t1, t2 = self._threads(2)
        small = PermissionGroup.of([t1], PermissionSet.of(pmo1="r"))
        big = PermissionGroup.of([t1, t2], PermissionSet.of(pmo1="rw"))
        assert small.is_subgroup_of(big)
        assert not big.is_subgroup_of(small)
