"""TERP poset (Definition 4) and Hasse-diagram utilities."""

import pytest

from repro.core.errors import TerpError
from repro.core.poset import Mechanism, ProtectionLevel, TerpPoset


@pytest.fixture
def standard():
    return TerpPoset.standard()


class TestConstruction:
    def test_duplicate_element_rejected(self):
        poset = TerpPoset()
        poset.add(Mechanism("a", ProtectionLevel.THREAD_PERMISSION))
        with pytest.raises(TerpError):
            poset.add(Mechanism("a", ProtectionLevel.PROCESS_ATTACH))

    def test_order_requires_membership(self):
        poset = TerpPoset()
        a = poset.add(Mechanism("a", ProtectionLevel.THREAD_PERMISSION))
        b = Mechanism("b", ProtectionLevel.PROCESS_ATTACH)
        with pytest.raises(TerpError):
            poset.order(a, b)

    def test_cycle_rejected(self):
        poset = TerpPoset()
        a = poset.add(Mechanism("a", ProtectionLevel.THREAD_PERMISSION))
        b = poset.add(Mechanism("b", ProtectionLevel.PROCESS_ATTACH))
        poset.order(a, b)
        with pytest.raises(TerpError):
            poset.order(b, a)

    def test_self_order_rejected(self):
        poset = TerpPoset()
        a = poset.add(Mechanism("a", ProtectionLevel.THREAD_PERMISSION))
        with pytest.raises(TerpError):
            poset.order(a, a)


class TestStandardPoset:
    def test_has_four_levels(self, standard):
        assert len(standard.elements()) == 4

    def test_thread_permission_below_attach(self, standard):
        thread = standard.get("thread-permission")
        attach = standard.get("process-attach")
        assert standard.leq(thread, attach)
        assert not standard.leq(attach, thread)

    def test_transitivity(self, standard):
        thread = standard.get("thread-permission")
        group = standard.get("user-group-permission")
        assert standard.leq(thread, group)

    def test_leq_reflexive(self, standard):
        for m in standard.elements():
            assert standard.leq(m, m)

    def test_minimal_and_maximal(self, standard):
        assert [m.name for m in standard.minimal_elements()] == \
            ["thread-permission"]
        assert [m.name for m in standard.maximal_elements()] == \
            ["user-group-permission"]

    def test_hasse_edges_are_covers_only(self, standard):
        edges = {(lo.name, hi.name) for lo, hi in standard.hasse_edges()}
        # A chain of 4 has exactly 3 covering pairs; the transitive
        # pairs (thread < user etc.) must not appear.
        assert edges == {
            ("thread-permission", "process-attach"),
            ("process-attach", "user-permission"),
            ("user-permission", "user-group-permission"),
        }

    def test_lowering_step(self, standard):
        attach = standard.get("process-attach")
        lowered = standard.lower(attach)
        assert lowered is not None
        assert lowered.name == "thread-permission"

    def test_lowering_bottoms_out(self, standard):
        thread = standard.get("thread-permission")
        assert standard.lower(thread) is None

    def test_render_hasse_mentions_all(self, standard):
        text = standard.render_hasse()
        for m in standard.elements():
            assert m.name in text


class TestDiamondPoset:
    """Figure 2 shows incomparable elements (user A vs user B)."""

    def _diamond(self):
        poset = TerpPoset()
        bottom = poset.add(Mechanism("t", ProtectionLevel.THREAD_PERMISSION))
        a = poset.add(Mechanism("userA", ProtectionLevel.USER_PERMISSION))
        b = poset.add(Mechanism("userB", ProtectionLevel.USER_PERMISSION))
        top = poset.add(Mechanism("g", ProtectionLevel.USER_GROUP_PERMISSION))
        poset.order(bottom, a)
        poset.order(bottom, b)
        poset.order(a, top)
        poset.order(b, top)
        return poset, bottom, a, b, top

    def test_incomparable_middle(self):
        poset, _, a, b, _ = self._diamond()
        assert not poset.comparable(a, b)

    def test_transitive_through_diamond(self):
        poset, bottom, _, _, top = self._diamond()
        assert poset.leq(bottom, top)

    def test_lower_from_top_is_deterministic(self):
        poset, _, a, b, top = self._diamond()
        lowered = poset.lower(top)
        assert lowered in (a, b)
        # Tie broken by name: userA < userB lexicographically, and max()
        # picks the largest key, so "userB" wins.
        assert lowered.name == "userB"

    def test_four_hasse_edges(self):
        poset, *_ = self._diamond()
        assert len(poset.hasse_edges()) == 4
