"""The four attach/detach semantics of Section IV (Figure 3, Figure 4)."""

import pytest

from repro.core.permissions import Access
from repro.core.semantics import (
    ActionKind, BasicSemantics, Decision, EwConsciousSemantics,
    FcfsSemantics, make_semantics, Outcome, OutermostSemantics)

PMO = "pmo1"
R, W, RW = Access.READ, Access.WRITE, Access.RW


def kinds(decision: Decision):
    return [a.kind for a in decision.actions]


class TestBasicSemantics:
    def test_attach_then_access_then_detach(self):
        s = BasicSemantics()
        assert s.attach(1, PMO, RW, 0).outcome is Outcome.PERFORMED
        assert s.access(1, PMO, R, 10).outcome is Outcome.OK
        assert s.detach(1, PMO, 20).outcome is Outcome.PERFORMED

    def test_access_outside_window_faults(self):
        s = BasicSemantics()
        s.attach(1, PMO, RW, 0)
        s.detach(1, PMO, 10)
        assert s.access(1, PMO, R, 20).outcome is Outcome.FAULT_SEGV

    def test_nested_attach_is_error(self):
        # Figure 3: third attach (line 7) returns an error under Basic.
        s = BasicSemantics()
        s.attach(1, PMO, RW, 0)
        assert s.attach(1, PMO, RW, 5).outcome is Outcome.ERROR

    def test_double_detach_is_error(self):
        s = BasicSemantics()
        s.attach(1, PMO, RW, 0)
        s.detach(1, PMO, 5)
        assert s.detach(1, PMO, 10).outcome is Outcome.ERROR

    def test_detach_before_attach_is_error(self):
        assert BasicSemantics().detach(1, PMO, 0).outcome is Outcome.ERROR

    def test_concurrent_attach_from_other_thread_is_error(self):
        s = BasicSemantics()
        s.attach(1, PMO, RW, 0)
        assert s.attach(2, PMO, RW, 5).outcome is Outcome.ERROR

    def test_blocking_mode_blocks_other_thread(self):
        # Figure 11 "basic semantics": other threads wait.
        s = BasicSemantics(blocking=True)
        s.attach(1, PMO, RW, 0)
        assert s.attach(2, PMO, RW, 5).outcome is Outcome.BLOCKED
        s.detach(1, PMO, 10)
        assert s.attach(2, PMO, RW, 15).outcome is Outcome.PERFORMED

    def test_blocking_mode_same_thread_reattach_still_error(self):
        s = BasicSemantics(blocking=True)
        s.attach(1, PMO, RW, 0)
        assert s.attach(1, PMO, RW, 5).outcome is Outcome.ERROR

    def test_permission_enforced(self):
        s = BasicSemantics()
        s.attach(1, PMO, R, 0)
        assert s.access(1, PMO, W, 5).outcome is Outcome.FAULT_PERM

    def test_detach_by_other_thread_is_error(self):
        s = BasicSemantics()
        s.attach(1, PMO, RW, 0)
        assert s.detach(2, PMO, 5).outcome is Outcome.ERROR


class TestOutermostSemantics:
    def test_inner_pairs_silent(self):
        s = OutermostSemantics()
        assert s.attach(1, PMO, RW, 0).outcome is Outcome.PERFORMED
        assert s.attach(1, PMO, RW, 5).outcome is Outcome.SILENT
        assert s.detach(1, PMO, 10).outcome is Outcome.SILENT
        assert s.detach(1, PMO, 15).outcome is Outcome.PERFORMED
        assert not s.is_mapped(PMO)

    def test_access_valid_between_inner_pairs(self):
        # Figure 3: under Outermost, the access between the inner
        # detach and outer detach is valid (the window never closed).
        s = OutermostSemantics()
        s.attach(1, PMO, RW, 0)
        s.attach(1, PMO, RW, 2)
        s.detach(1, PMO, 4)
        assert s.access(1, PMO, R, 6).outcome is Outcome.OK

    def test_window_can_grow_unboundedly(self):
        # The paper's criticism: attached time can be arbitrarily long.
        s = OutermostSemantics()
        s.attach(1, PMO, RW, 0)
        for t in range(1, 100):
            s.attach(1, PMO, RW, t * 1000)
            s.detach(1, PMO, t * 1000 + 500)
        assert s.is_mapped(PMO)

    def test_unbalanced_detach_is_error(self):
        assert OutermostSemantics().detach(1, PMO, 0).outcome is Outcome.ERROR

    def test_inner_attach_widens_permission(self):
        s = OutermostSemantics()
        s.attach(1, PMO, R, 0)
        assert s.access(1, PMO, W, 1).outcome is Outcome.FAULT_PERM
        s.attach(1, PMO, W, 2)
        assert s.access(1, PMO, W, 3).outcome is Outcome.OK


class TestFcfsSemantics:
    def test_first_detach_performed(self):
        s = FcfsSemantics()
        s.attach(1, PMO, RW, 0)
        s.attach(1, PMO, RW, 2)   # inner, silent
        d = s.detach(1, PMO, 4)   # first detach after attach: performed
        assert d.outcome is Outcome.PERFORMED
        assert not s.is_mapped(PMO)

    def test_access_triggers_reattach(self):
        # Figure 3: "*valid (trigger reattach)".
        s = FcfsSemantics()
        s.attach(1, PMO, RW, 0)
        s.attach(1, PMO, RW, 2)
        s.detach(1, PMO, 4)
        a = s.access(1, PMO, R, 6)
        assert a.outcome is Outcome.REATTACH
        assert s.is_mapped(PMO)
        # The detach following the reattach is performed again.
        assert s.detach(1, PMO, 8).outcome is Outcome.PERFORMED

    def test_access_with_no_outstanding_attach_faults(self):
        s = FcfsSemantics()
        s.attach(1, PMO, RW, 0)
        s.detach(1, PMO, 2)
        assert s.access(1, PMO, R, 4).outcome is Outcome.FAULT_SEGV

    def test_outer_attach_performed_inner_silent(self):
        s = FcfsSemantics()
        assert s.attach(1, PMO, RW, 0).outcome is Outcome.PERFORMED
        assert s.attach(1, PMO, RW, 1).outcome is Outcome.SILENT

    def test_detach_without_attach_is_error(self):
        assert FcfsSemantics().detach(1, PMO, 0).outcome is Outcome.ERROR

    def test_silent_detach_when_already_unmapped(self):
        s = FcfsSemantics()
        s.attach(1, PMO, RW, 0)
        s.attach(1, PMO, RW, 1)
        s.detach(1, PMO, 2)       # performed
        assert s.detach(1, PMO, 3).outcome is Outcome.SILENT


class TestEwConsciousSemantics:
    """Figure 4 scenario and the Section IV-C rules."""

    EW = 40_000  # 40us in ns

    def make(self, **kw):
        return EwConsciousSemantics(self.EW, **kw)

    def test_first_attach_maps(self):
        s = self.make()
        d = s.attach(1, PMO, R, 0)
        assert d.outcome is Outcome.PERFORMED
        assert ActionKind.MAP in kinds(d)

    def test_second_thread_attach_lowers_to_grant(self):
        s = self.make()
        s.attach(1, PMO, R, 0)
        d = s.attach(2, PMO, RW, 5)
        assert d.outcome is Outcome.SILENT
        assert kinds(d) == [ActionKind.GRANT]

    def test_figure4_scenario(self):
        """Thread 1 attaches R; ld A ok, st B denied; thread 2 attaches
        RW, st B ok; t1 detach keeps PMO mapped but revokes t1; t1 ld C
        denied; t2 detach unmaps; st C segfaults; thread 3 never
        attached, all accesses denied."""
        s = self.make()
        s.attach(1, PMO, R, 0)
        assert s.access(1, PMO, R, 1).outcome is Outcome.OK        # ld A
        assert s.access(1, PMO, W, 2).outcome is Outcome.FAULT_PERM  # st B
        s.attach(2, PMO, RW, 3)
        assert s.access(2, PMO, W, 4).outcome is Outcome.OK        # st B
        d1 = s.detach(1, PMO, 5)
        assert d1.outcome is Outcome.SILENT       # t2 still holds access
        assert s.is_mapped(PMO)
        assert s.access(1, PMO, R, 6).outcome is Outcome.FAULT_PERM  # ld C
        d2 = s.detach(2, PMO, self.EW + 10)
        assert d2.outcome is Outcome.PERFORMED    # last holder + EW passed
        assert s.access(2, PMO, W, self.EW + 20).outcome is Outcome.FAULT_SEGV
        # Thread 3 never attaches: denied while mapped too.
        s2 = self.make()
        s2.attach(1, PMO, RW, 0)
        assert s2.access(3, PMO, R, 1).outcome is Outcome.FAULT_PERM

    def test_within_thread_overlap_is_error(self):
        s = self.make()
        s.attach(1, PMO, R, 0)
        assert s.attach(1, PMO, R, 5).outcome is Outcome.ERROR

    def test_thread_can_reattach_after_its_detach(self):
        s = self.make()
        s.attach(1, PMO, R, 0)
        s.detach(1, PMO, 10)
        assert s.attach(1, PMO, R, 20).outcome in (
            Outcome.PERFORMED, Outcome.SILENT)

    def test_detach_before_ew_target_is_lowered(self):
        s = self.make()
        s.attach(1, PMO, R, 0)
        d = s.detach(1, PMO, 10)   # well before 40us
        assert d.outcome is Outcome.SILENT
        assert s.is_mapped(PMO)    # real detach did not happen

    def test_detach_after_ew_target_is_performed(self):
        s = self.make()
        s.attach(1, PMO, R, 0)
        d = s.detach(1, PMO, self.EW + 1)
        assert d.outcome is Outcome.PERFORMED
        assert not s.is_mapped(PMO)

    def test_randomize_when_target_met_but_holders_remain(self):
        s = self.make()
        s.attach(1, PMO, R, 0)
        s.attach(2, PMO, R, 5)
        d = s.detach(1, PMO, self.EW + 1)
        assert ActionKind.RANDOMIZE in kinds(d)
        assert s.is_mapped(PMO)
        # Randomization resets the real-attach clock.
        assert s.last_real_attach_ns(PMO) == self.EW + 1

    def test_randomize_can_be_disabled_for_ablation(self):
        s = self.make(randomize_on_partial=False)
        s.attach(1, PMO, R, 0)
        s.attach(2, PMO, R, 5)
        d = s.detach(1, PMO, self.EW + 1)
        assert ActionKind.RANDOMIZE not in kinds(d)

    def test_detach_without_attach_is_error(self):
        assert self.make().detach(1, PMO, 0).outcome is Outcome.ERROR

    def test_thread_composability_no_cross_thread_errors(self):
        """Two well-formed threads interleaved arbitrarily: no errors."""
        s = self.make()
        for t0 in range(0, 100_000, 7_000):
            assert s.attach(1, PMO, RW, t0).outcome is not Outcome.ERROR
            assert s.attach(2, PMO, RW, t0 + 1000).outcome is not Outcome.ERROR
            assert s.detach(1, PMO, t0 + 3000).outcome is not Outcome.ERROR
            assert s.detach(2, PMO, t0 + 4000).outcome is not Outcome.ERROR

    def test_invalid_ew_target(self):
        with pytest.raises(ValueError):
            EwConsciousSemantics(0)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("basic", BasicSemantics),
        ("outermost", OutermostSemantics),
        ("fcfs", FcfsSemantics),
        ("ew-conscious", EwConsciousSemantics),
    ])
    def test_make(self, name, cls):
        assert isinstance(make_semantics(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_semantics("bogus")
