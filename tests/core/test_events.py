"""Trace recording and queries."""

import pytest

from repro.core.events import EventKind, Trace, TraceEvent


def make_trace():
    trace = Trace()
    trace.record(TraceEvent(EventKind.ATTACH, 0, 1, "p1"))
    trace.record(TraceEvent(EventKind.MAP, 0, None, "p1"))
    trace.record(TraceEvent(EventKind.ACCESS, 100, 1, "p1"))
    trace.record(TraceEvent(EventKind.ACCESS, 200, 2, "p2"))
    trace.record(TraceEvent(EventKind.DETACH, 300, 1, "p1"))
    return trace


class TestTrace:
    def test_of_kind(self):
        trace = make_trace()
        assert len(trace.of_kind(EventKind.ACCESS)) == 2
        assert len(trace.of_kind(EventKind.RANDOMIZE)) == 0

    def test_for_pmo(self):
        trace = make_trace()
        assert len(trace.for_pmo("p1")) == 4
        assert len(trace.for_pmo("p2")) == 1

    def test_for_thread(self):
        trace = make_trace()
        assert len(trace.for_thread(1)) == 3
        assert len(trace.for_thread(7)) == 0

    def test_between(self):
        trace = make_trace()
        window = trace.between(50, 250)
        assert [e.now_ns for e in window] == [100, 200]

    def test_len_and_iter(self):
        trace = make_trace()
        assert len(trace) == 5
        assert sum(1 for _ in trace) == 5

    def test_capacity_drops_and_counts(self):
        trace = Trace(capacity=2)
        for i in range(5):
            trace.record(TraceEvent(EventKind.ACCESS, i))
        assert len(trace) == 2
        assert trace.dropped == 3
