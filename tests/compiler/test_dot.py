"""DOT export of CFGs and WFG regions."""

import pytest

from repro.compiler.dot import function_to_dot, program_to_dot
from repro.compiler.insertion import TerpInsertionPass
from repro.compiler.ir import Compute, Load, Program, Store
from repro.compiler.pointer_analysis import analyze
from repro.compiler.wfg import build_wfg


def figure5_program():
    prog = Program()
    prog.declare_pmo_handle("h", "pmo1")
    fn = prog.function("main")
    fn.block("entry", [Compute(1)]).branch("bb2", "bb3")
    fn.block("bb2", [Load("h")]).jump("join")
    fn.block("bb3", [Store("h")]).jump("join")
    fn.block("join", [Compute(1)])
    return prog, fn


class TestDot:
    def test_nodes_and_edges_present(self):
        prog, fn = figure5_program()
        dot = function_to_dot(fn)
        assert 'digraph "main"' in dot
        for block in fn.blocks:
            assert f'"{block}"' in dot
        assert '"entry" -> "bb2"' in dot
        assert '"bb3" -> "join"' in dot

    def test_access_blocks_shaded(self):
        prog, fn = figure5_program()
        dot = function_to_dot(fn, points_to=analyze(prog))
        bb2_line = next(l for l in dot.splitlines()
                        if l.strip().startswith('"bb2" ['))
        assert "gray80" in bb2_line
        entry_line = next(l for l in dot.splitlines()
                          if l.strip().startswith('"entry" ['))
        assert "gray80" not in entry_line

    def test_wfg_regions_become_clusters(self):
        prog, fn = figure5_program()
        pt = analyze(prog)
        wfg = build_wfg(fn, pt, let_threshold_cycles=10_000)
        dot = function_to_dot(fn, points_to=pt, wfg=wfg)
        assert "subgraph cluster_0" in dot
        assert "LET" in dot

    def test_insertion_annotated(self):
        prog, fn = figure5_program()
        TerpInsertionPass(let_threshold_cycles=10_000,
                          tew_cycles=500).run(prog)
        dot = function_to_dot(fn)
        assert "attach" in dot and "detach" in dot

    def test_program_export_covers_all_functions(self):
        prog, _ = figure5_program()
        helper = prog.function("helper")
        helper.block("entry", [Compute(1)])
        dot = program_to_dot(prog)
        assert 'digraph "main"' in dot
        assert 'digraph "helper"' in dot

    def test_entry_highlighted(self):
        prog, fn = figure5_program()
        dot = function_to_dot(fn)
        entry_line = next(l for l in dot.splitlines()
                          if l.strip().startswith('"entry" ['))
        assert "penwidth=2" in entry_line
