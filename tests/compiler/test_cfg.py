"""CFG analyses: dominators, post-dominators, loops."""

import pytest

from repro.compiler.cfg import Cfg
from repro.compiler.ir import Compute, Function
from repro.core.errors import CompilerError


def diamond() -> Function:
    """entry -> a | b -> join -> exit"""
    fn = Function("diamond")
    fn.block("entry", [Compute(1)]).branch("a", "b")
    fn.block("a", [Compute(5)]).jump("join")
    fn.block("b", [Compute(3)]).jump("join")
    fn.block("join", [Compute(1)]).jump("exit")
    fn.block("exit", [Compute(1)])
    return fn


def loop() -> Function:
    """entry -> header <-> body; header -> exit"""
    fn = Function("loop")
    fn.block("entry", [Compute(1)]).jump("header")
    fn.block("header", [Compute(1)]).branch("body", "exit")
    fn.block("body", [Compute(10)]).jump("header")
    fn.block("exit", [Compute(1)])
    return fn


class TestCfgBasics:
    def test_preds_and_succs(self):
        cfg = Cfg(diamond())
        assert set(cfg.succ["entry"]) == {"a", "b"}
        assert set(cfg.pred["join"]) == {"a", "b"}

    def test_unreachable_block_rejected(self):
        fn = diamond()
        fn.block("island", [Compute(1)])
        with pytest.raises(CompilerError):
            Cfg(fn)

    def test_missing_successor_rejected(self):
        fn = Function("bad")
        fn.block("entry").jump("ghost")
        with pytest.raises(CompilerError):
            Cfg(fn)


class TestDominators:
    def test_diamond_dominators(self):
        cfg = Cfg(diamond())
        dom = cfg.dominators()
        assert dom["join"] == {"entry", "join"}
        assert dom["a"] == {"entry", "a"}
        assert dom["exit"] == {"entry", "join", "exit"}

    def test_immediate_dominators(self):
        cfg = Cfg(diamond())
        idom = cfg.immediate_dominators()
        assert idom["entry"] is None
        assert idom["a"] == "entry"
        assert idom["join"] == "entry"
        assert idom["exit"] == "join"

    def test_loop_dominators(self):
        cfg = Cfg(loop())
        dom = cfg.dominators()
        assert dom["body"] == {"entry", "header", "body"}


class TestPostDominators:
    def test_diamond_postdominators(self):
        cfg = Cfg(diamond())
        pdom = cfg.post_dominators()
        assert "join" in pdom["entry"]
        assert "exit" in pdom["a"]
        assert "a" not in pdom["entry"]

    def test_loop_postdominators(self):
        cfg = Cfg(loop())
        pdom = cfg.post_dominators()
        assert "header" in pdom["body"]
        assert "exit" in pdom["header"]


class TestLoops:
    def test_back_edge_detection(self):
        cfg = Cfg(loop())
        assert cfg.back_edges() == [("body", "header")]

    def test_natural_loop_body(self):
        cfg = Cfg(loop())
        loops = cfg.natural_loops()
        assert loops == {"header": {"header", "body"}}

    def test_no_loops_in_diamond(self):
        assert Cfg(diamond()).natural_loops() == {}

    def test_nested_loops(self):
        fn = Function("nested")
        fn.block("entry").jump("outer")
        fn.block("outer", [Compute(1)]).branch("inner", "exit")
        fn.block("inner", [Compute(1)]).branch("inner_body", "outer_latch")
        fn.block("inner_body", [Compute(1)]).jump("inner")
        fn.block("outer_latch", [Compute(1)]).jump("outer")
        fn.block("exit")
        cfg = Cfg(fn)
        loops = cfg.natural_loops()
        assert loops["inner"] == {"inner", "inner_body"}
        assert "outer_latch" in loops["outer"]
        assert loops["inner"] < loops["outer"]
        depth = cfg.loop_depth()
        assert depth["inner_body"] == 2
        assert depth["outer_latch"] == 1
        assert depth["exit"] == 0

    def test_topo_order_skips_back_edges(self):
        cfg = Cfg(loop())
        order = cfg.topo_order_acyclic()
        assert order.index("header") < order.index("body")
        assert order.index("entry") < order.index("header")
