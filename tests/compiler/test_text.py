"""Textual IR parsing and printing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.insertion import TerpInsertionPass, verify_program
from repro.compiler.ir import Compute, CondAttach, Load, Program
from repro.compiler.text import parse_program, print_program
from repro.core.errors import CompilerError

EXAMPLE = """
pmo h = accounts

func main entry=entry
block entry:
    compute 100
    branch fast slow
block fast:
    load h
    jump join
block slow:
    store h           # writes the PMO
    jump join
block join:
    compute 50
"""


class TestParsing:
    def test_parses_example(self):
        prog = parse_program(EXAMPLE)
        assert prog.pmo_handles == {"h": "accounts"}
        fn = prog.get("main")
        assert set(fn.blocks) == {"entry", "fast", "slow", "join"}
        assert fn.blocks["entry"].successors == ["fast", "slow"]
        assert fn.blocks["join"].successors == []

    def test_comments_and_blank_lines_ignored(self):
        prog = parse_program("""
            # a program
            pmo p = data

            func f entry=start
            block start:
                load p   # read it
        """)
        assert "start" in prog.get("f").blocks

    def test_all_instructions_parse(self):
        prog = parse_program("""
            pmo p = data
            func f entry=b
            block b:
                compute 7
                load p
                store p
                assign x p
                gep y x
                condattach data
                conddetach data
                call g
            func g entry=b
            block b:
                compute 1
        """)
        instrs = prog.get("f").blocks["b"].instrs
        assert len(instrs) == 8

    def test_error_reports_line_number(self):
        with pytest.raises(CompilerError, match="line 3"):
            parse_program("pmo p = data\nfunc f entry=b\nbogus 1\n")

    def test_instruction_outside_block_rejected(self):
        with pytest.raises(CompilerError):
            parse_program("func f entry=b\ncompute 1\n")

    def test_bad_arity_rejected(self):
        with pytest.raises(CompilerError):
            parse_program("func f entry=b\nblock b:\n  assign x\n")

    def test_unknown_successor_rejected(self):
        with pytest.raises(CompilerError):
            parse_program("func f entry=b\nblock b:\n  jump ghost\n")

    def test_instructions_after_terminator_start_nowhere(self):
        with pytest.raises(CompilerError):
            parse_program(
                "func f entry=b\nblock b:\n  jump b\n  compute 1\n")


class TestRoundTrip:
    def test_example_roundtrips(self):
        prog = parse_program(EXAMPLE)
        text = print_program(prog)
        again = parse_program(text)
        assert print_program(again) == text

    def test_instrumented_program_roundtrips(self):
        prog = parse_program(EXAMPLE)
        TerpInsertionPass(let_threshold_cycles=10_000,
                          tew_cycles=500).run(prog)
        verify_program(prog)
        text = print_program(prog)
        assert "condattach accounts" in text
        reparsed = parse_program(text)
        verify_program(reparsed)   # insertion survives the round trip

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.sampled_from(
        ["compute 5", "load h", "store h", "assign a h", "gep b a"]),
        min_size=1, max_size=10))
    def test_random_straightline_roundtrip(self, instr_lines):
        body = "\n".join(f"    {line}" for line in instr_lines)
        text = f"pmo h = data\nfunc f entry=b\nblock b:\n{body}\n"
        prog = parse_program(text)
        assert print_program(parse_program(print_program(prog))) == \
            print_program(prog)
