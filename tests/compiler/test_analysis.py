"""Pointer analysis, regions, LET, and PMO-WFG construction."""

import pytest

from repro.compiler.ir import (
    Assign, Call, Compute, Function, Gep, Load, Program, Store)
from repro.compiler.pointer_analysis import analyze
from repro.compiler.regions import (
    DEFAULT_LOOP_TRIP, Region, RegionHierarchy)
from repro.compiler.wfg import build_wfg


def make_program():
    prog = Program()
    prog.declare_pmo_handle("h", "pmo1")
    return prog


class TestPointerAnalysis:
    def test_direct_access(self):
        prog = make_program()
        fn = prog.function("main")
        fn.block("entry", [Load("h")])
        pt = analyze(prog)
        assert pt.var_targets["h"] == {"pmo1"}
        assert pt.pmos_of_block("main", "entry") == {"pmo1"}

    def test_alias_through_assign_and_gep(self):
        prog = make_program()
        fn = prog.function("main")
        fn.block("entry", [Assign("p", "h"), Gep("q", "p"), Store("q")])
        pt = analyze(prog)
        assert pt.var_targets["q"] == {"pmo1"}
        assert pt.may_alias("q", "h")
        assert pt.pmos_of_block("main", "entry") == {"pmo1"}

    def test_non_pmo_pointer_ignored(self):
        prog = make_program()
        fn = prog.function("main")
        fn.block("entry", [Assign("x", "y"), Load("x")])
        pt = analyze(prog)
        assert pt.pmos_of_block("main", "entry") == set()
        assert not pt.may_alias("x", "h")

    def test_call_propagates_accesses(self):
        prog = make_program()
        helper = prog.function("helper")
        helper.block("entry", [Load("h")])
        main = prog.function("main")
        main.block("entry", [Call("helper")])
        pt = analyze(prog)
        assert pt.pmos_of_block("main", "entry") == {"pmo1"}

    def test_transitive_calls(self):
        prog = make_program()
        prog.function("c").block("entry", [Store("h")])
        prog.function("b").block("entry", [Call("c")])
        prog.function("a").block("entry", [Call("b")])
        pt = analyze(prog)
        assert pt.pmos_of_block("a", "entry") == {"pmo1"}

    def test_two_pmos(self):
        prog = make_program()
        prog.declare_pmo_handle("g", "pmo2")
        fn = prog.function("main")
        fn.block("entry", [Load("h"), Store("g")])
        pt = analyze(prog)
        assert pt.pmos_of_block("main", "entry") == {"pmo1", "pmo2"}


class TestRegionsAndLet:
    def test_block_region_let(self):
        prog = make_program()
        fn = prog.function("main")
        fn.block("entry", [Compute(100)])
        h = RegionHierarchy(fn)
        region = h.chain_for("entry")[0]
        assert h.let(region) == 100

    def test_chain_includes_loops_then_function(self):
        fn = Function("f")
        fn.block("entry").jump("header")
        fn.block("header", [Compute(1)]).branch("body", "exit")
        fn.block("body", [Compute(10)]).jump("header")
        fn.block("exit")
        h = RegionHierarchy(fn)
        chain = h.chain_for("body")
        kinds = [r.kind for r in chain]
        assert kinds == ["block", "loop", "function"]
        assert chain[1].header == "header"

    def test_loop_let_multiplies_trip_count(self):
        fn = Function("f")
        fn.block("entry").jump("header")
        fn.block("header", [Compute(1)]).branch("body", "exit")
        fn.block("body", [Compute(10)]).jump("header")
        fn.block("exit")
        h = RegionHierarchy(fn)
        loop_region = h.chain_for("body")[1]
        # body (11 cycles/iteration) x 1000 assumed iterations.
        assert h.let(loop_region) >= 10 * DEFAULT_LOOP_TRIP

    def test_custom_trip_count(self):
        fn = Function("f")
        fn.block("entry").jump("header")
        fn.block("header", [Compute(1)]).branch("body", "exit")
        fn.block("body", [Compute(10)]).jump("header")
        fn.block("exit")
        small = RegionHierarchy(fn, loop_trip=10)
        big = RegionHierarchy(fn, loop_trip=1000)
        region = small.chain_for("body")[1]
        assert small.let(region) < big.let(region)

    def test_diamond_let_takes_longest_path(self):
        fn = Function("f")
        fn.block("entry", [Compute(1)]).branch("a", "b")
        fn.block("a", [Compute(50)]).jump("join")
        fn.block("b", [Compute(3)]).jump("join")
        fn.block("join", [Compute(1)])
        h = RegionHierarchy(fn)
        whole = h.chain_for("entry")[-1]
        assert h.let(whole) == 1 + 50 + 1


class TestWfg:
    def test_figure5_style_split(self):
        """Two access clusters separated by a confluence point end up
        in separate regions when the threshold is small."""
        prog = make_program()
        fn = prog.function("main")
        fn.block("entry", [Compute(1)]).branch("bb2", "bb3")
        fn.block("bb2", [Load("h"), Compute(5)]).jump("bb7")
        fn.block("bb3", [Store("h"), Compute(5)]).jump("bb7")
        fn.block("bb7", [Compute(1)]).branch("bb8", "bb9")
        fn.block("bb8", [Compute(5)]).jump("bb11")
        fn.block("bb9", [Load("h"), Compute(5)]).jump("bb11")
        fn.block("bb11", [Compute(1)])
        pt = analyze(prog)
        wfg = build_wfg(fn, pt, let_threshold_cycles=8)
        assert len(wfg.regions) == 3  # bb2, bb3, bb9 separately
        assert wfg.covered_blocks() == {"bb2", "bb3", "bb9"}

    def test_large_threshold_merges_into_one_region(self):
        prog = make_program()
        fn = prog.function("main")
        fn.block("entry", [Compute(1)]).branch("bb2", "bb3")
        fn.block("bb2", [Load("h")]).jump("join")
        fn.block("bb3", [Store("h")]).jump("join")
        fn.block("join", [Compute(1)])
        pt = analyze(prog)
        wfg = build_wfg(fn, pt, let_threshold_cycles=10_000)
        assert len(wfg.regions) == 1
        region = wfg.regions[0]
        assert region.header == "entry"
        assert region.confluence == "join"
        assert region.access_blocks == {"bb2", "bb3"}

    def test_loop_region_confluence(self):
        prog = make_program()
        fn = prog.function("main")
        fn.block("entry").jump("header")
        fn.block("header", [Compute(1)]).branch("body", "exit")
        fn.block("body", [Load("h"), Compute(3)]).jump("header")
        fn.block("exit", [Compute(1)])
        pt = analyze(prog)
        # Threshold above the loop LET: the whole loop is one region.
        wfg = build_wfg(fn, pt, let_threshold_cycles=10 ** 9)
        assert len(wfg.regions) == 1
        assert "body" in wfg.regions[0].blocks

    def test_regions_carry_pmo_sets(self):
        prog = make_program()
        prog.declare_pmo_handle("g", "pmo2")
        fn = prog.function("main")
        fn.block("entry", [Load("h"), Store("g")])
        pt = analyze(prog)
        wfg = build_wfg(fn, pt, let_threshold_cycles=100)
        assert wfg.regions[0].pmos == {"pmo1", "pmo2"}
