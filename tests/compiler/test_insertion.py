"""Algorithm 1 insertion, verification, and runtime integration."""

import pytest

from repro.arch.cond_engine import TerpArchEngine
from repro.compiler.insertion import (
    InsertionReport, TerpInsertionPass, verify_function, verify_program)
from repro.compiler.interp import Interpreter
from repro.compiler.ir import (
    Call, Compute, CondAttach, CondDetach, Function, Load, Program,
    Store)
from repro.compiler.pointer_analysis import analyze
from repro.core.errors import CompilerError
from repro.core.semantics import EwConsciousSemantics
from repro.core.units import us


def make_program():
    prog = Program()
    prog.declare_pmo_handle("h", "pmo1")
    return prog


def run_pass(prog, *, let_threshold=100_000, tew=5_000):
    pass_ = TerpInsertionPass(let_threshold_cycles=let_threshold,
                              tew_cycles=tew)
    report = pass_.run(prog)
    verify_program(prog)
    return report


class TestThreadWindowInsertion:
    def test_single_access_block_wrapped(self):
        prog = make_program()
        fn = prog.function("main")
        fn.block("entry", [Compute(1), Load("h"), Compute(1)])
        report = run_pass(prog)
        instrs = fn.blocks["entry"].instrs
        assert isinstance(instrs[0], CondAttach)
        assert isinstance(instrs[-1], CondDetach)
        assert report.attaches == 1 and report.detaches == 1

    def test_diamond_each_branch_wrapped(self):
        prog = make_program()
        fn = prog.function("main")
        fn.block("entry", [Compute(1)]).branch("a", "b")
        fn.block("a", [Load("h")]).jump("join")
        fn.block("b", [Store("h")]).jump("join")
        fn.block("join", [Compute(1)])
        report = run_pass(prog)
        assert report.attaches == 2
        assert isinstance(fn.blocks["a"].instrs[0], CondAttach)
        assert isinstance(fn.blocks["b"].instrs[0], CondAttach)
        assert not any(isinstance(i, CondAttach)
                       for i in fn.blocks["join"].instrs)

    def test_linear_chain_shares_one_pair(self):
        prog = make_program()
        fn = prog.function("main")
        fn.block("entry", [Load("h"), Compute(2)]).jump("next")
        fn.block("next", [Store("h"), Compute(2)])
        report = run_pass(prog, tew=10_000)
        assert report.attaches == 1
        assert report.chains == 1
        assert isinstance(fn.blocks["entry"].instrs[0], CondAttach)
        assert isinstance(fn.blocks["next"].instrs[-1], CondDetach)

    def test_chain_split_when_budget_small(self):
        prog = make_program()
        fn = prog.function("main")
        fn.block("entry", [Load("h"), Compute(50)]).jump("next")
        fn.block("next", [Store("h"), Compute(50)])
        report = run_pass(prog, tew=60)
        assert report.attaches == 2   # budget too small to merge

    def test_loop_body_access(self):
        prog = make_program()
        fn = prog.function("main")
        fn.block("entry").jump("header")
        fn.block("header", [Compute(1)]).branch("body", "exit")
        fn.block("body", [Load("h"), Compute(3)]).jump("header")
        fn.block("exit", [Compute(1)])
        report = run_pass(prog, tew=1_000)
        # Per-iteration pair inside the body.
        assert isinstance(fn.blocks["body"].instrs[0], CondAttach)
        assert isinstance(fn.blocks["body"].instrs[-1], CondDetach)

    def test_functions_without_accesses_untouched(self):
        prog = make_program()
        fn = prog.function("main")
        fn.block("entry", [Compute(5)])
        report = run_pass(prog)
        assert report.attaches == 0
        assert fn.blocks["entry"].instrs == [Compute(5)]


class TestRegionModeInsertion:
    def test_region_pair_at_header_and_confluence(self):
        prog = make_program()
        fn = prog.function("main")
        fn.block("entry", [Compute(1)]).branch("a", "b")
        fn.block("a", [Load("h")]).jump("join")
        fn.block("b", [Store("h")]).jump("join")
        fn.block("join", [Compute(1)])
        report = run_pass(prog, tew=0, let_threshold=10_000)
        assert report.attaches == 1
        assert isinstance(fn.blocks["entry"].instrs[0], CondAttach)
        assert isinstance(fn.blocks["join"].instrs[-1], CondDetach)

    def test_loop_region_per_iteration_pairing(self):
        prog = make_program()
        fn = prog.function("main")
        # Heavy compute outside the loop keeps the whole-function
        # region above the threshold, so the loop is the chosen region.
        fn.block("entry", [Compute(500_000)]).jump("header")
        fn.block("header", [Compute(1)]).branch("body", "exit")
        fn.block("body", [Load("h"), Compute(3)]).jump("header")
        fn.block("exit", [Compute(1)])
        report = run_pass(prog, tew=0, let_threshold=300_000)
        verify_function(fn)   # loop exit edges must be closed
        assert report.attaches >= 1
        # The header attach re-arms every iteration; the latch closes.
        assert isinstance(fn.blocks["header"].instrs[0], CondAttach)
        assert any(isinstance(i, CondDetach)
                   for i in fn.blocks["body"].instrs)


class TestVerification:
    def test_detects_missing_detach(self):
        fn = Function("bad")
        fn.block("entry", [CondAttach("pmo1"), Compute(1)])
        with pytest.raises(CompilerError):
            verify_function(fn)

    def test_detects_double_attach(self):
        fn = Function("bad")
        fn.block("entry", [CondAttach("pmo1"), CondAttach("pmo1"),
                           CondDetach("pmo1")])
        with pytest.raises(CompilerError):
            verify_function(fn)

    def test_detects_detach_without_attach(self):
        fn = Function("bad")
        fn.block("entry", [CondDetach("pmo1")])
        with pytest.raises(CompilerError):
            verify_function(fn)

    def test_detects_inconsistent_paths(self):
        fn = Function("bad")
        fn.block("entry", [Compute(1)]).branch("a", "b")
        fn.block("a", [CondAttach("pmo1")]).jump("join")
        fn.block("b", [Compute(1)]).jump("join")
        fn.block("join", [CondDetach("pmo1")])
        with pytest.raises(CompilerError):
            verify_function(fn)

    def test_accepts_balanced_function(self):
        fn = Function("good")
        fn.block("entry", [CondAttach("pmo1"), Compute(1),
                           CondDetach("pmo1")])
        verify_function(fn)


class TestRuntimeIntegration:
    def _looped_program(self):
        prog = make_program()
        fn = prog.function("main")
        fn.block("entry", [Compute(10)]).jump("header")
        fn.block("header", [Compute(5)]).branch("body", "exit")
        fn.block("body", [Load("h"), Compute(200), Store("h")]) \
            .jump("header")
        fn.block("exit", [Compute(10)])
        return prog

    def test_instrumented_run_is_clean_under_ew_conscious(self):
        prog = self._looped_program()
        run_pass(prog, tew=2_000)
        engine = EwConsciousSemantics(us(40))
        result = Interpreter(prog, engine, seed=3).run("main")
        assert result.clean
        assert result.attaches > 0

    def test_instrumented_run_is_clean_under_arch_engine(self):
        prog = self._looped_program()
        run_pass(prog, tew=2_000)
        engine = TerpArchEngine(us(40))
        result = Interpreter(prog, engine, seed=3).run("main")
        assert result.clean

    def test_uninstrumented_run_faults(self):
        prog = self._looped_program()
        engine = EwConsciousSemantics(us(40))
        result = Interpreter(prog, engine, seed=3).run("main")
        assert result.faults > 0

    def test_tew_bounded_by_budget(self):
        """The measured thread windows respect the compiler's budget
        (plus one block of slack for the trailing instructions)."""
        prog = self._looped_program()
        tew_cycles = 2_000
        run_pass(prog, tew=tew_cycles)
        engine = EwConsciousSemantics(us(40))
        result = Interpreter(prog, engine, seed=3).run("main")
        from repro.core.units import cycles_to_ns
        budget_ns = cycles_to_ns(tew_cycles + 500)
        assert result.max_tew_ns <= budget_ns

    def test_calls_covered_by_caller_windows(self):
        prog = make_program()
        helper = prog.function("helper")
        helper.block("entry", [Load("h"), Compute(5)])
        main = prog.function("main")
        main.block("entry", [Compute(5), Call("helper"), Compute(5)])
        pass_ = TerpInsertionPass(let_threshold_cycles=100_000,
                                  tew_cycles=5_000)
        pass_.run(prog)
        verify_program(prog)
        engine = EwConsciousSemantics(us(40))
        result = Interpreter(prog, engine, seed=3).run("main")
        assert result.clean
