"""Registry semantics: buckets, reservoirs, exposition, no-op mode."""

import pytest

from repro.core.errors import TerpError
from repro.obs import Observability
from repro.obs.registry import (
    NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM, Histogram,
    MetricsRegistry, Reservoir)


class TestHistogramBuckets:
    def test_bucket_edges_are_le_inclusive(self):
        """A value equal to an upper bound counts in that bucket,
        Prometheus ``le`` (less-or-equal) semantics."""
        hist = Histogram("h", buckets=(10, 100, 1000))
        for value in (10, 100, 1000):
            hist.observe(value)
        counts = dict(hist.bucket_counts())
        assert counts["10"] == 1          # exactly 10 is <= 10
        assert counts["100"] == 2
        assert counts["1000"] == 3
        assert counts["+Inf"] == 3

    def test_values_between_and_beyond_bounds(self):
        hist = Histogram("h", buckets=(10, 100, 1000))
        for value in (1, 11, 99, 101, 5_000):
            hist.observe(value)
        counts = dict(hist.bucket_counts())
        assert counts["10"] == 1          # just 1
        assert counts["100"] == 3         # 1, 11, 99
        assert counts["1000"] == 4        # + 101
        assert counts["+Inf"] == 5        # + 5000 in the overflow
        assert hist.count == 5
        assert hist.max_value == 5_000

    def test_cumulative_monotonic(self):
        hist = Histogram("h", buckets=(10, 100, 1000))
        for value in range(0, 2000, 7):
            hist.observe(value)
        cumulative = [n for _, n in hist.bucket_counts()]
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == hist.count

    def test_rejects_unsorted_or_duplicate_buckets(self):
        with pytest.raises(TerpError):
            Histogram("h", buckets=(100, 10))
        with pytest.raises(TerpError):
            Histogram("h", buckets=(10, 10, 100))
        with pytest.raises(TerpError):
            Histogram("h", buckets=())


class TestReservoir:
    def test_deterministic_under_seeded_rng(self):
        """Two reservoirs fed the same overflow sequence keep
        bit-identical samples — percentiles reproduce run to run."""
        a = Reservoir(64, seed=42)
        b = Reservoir(64, seed=42)
        values = [(i * 2654435761) % 100_000 for i in range(5_000)]
        for value in values:
            a.record(value)
            b.record(value)
        assert a.samples == b.samples
        for p in (0, 50, 90, 99, 100):
            assert a.percentile(p) == b.percentile(p)
        # A different seed diverges once eviction starts.
        c = Reservoir(64, seed=43)
        for value in values:
            c.record(value)
        assert c.samples != a.samples

    def test_exact_below_capacity(self):
        res = Reservoir(100, seed=1)
        for value in range(50):
            res.record(value)
        assert sorted(res.samples) == list(range(50))
        assert res.count == 50
        assert res.total == sum(range(50))
        assert res.max_value == 49
        assert res.percentile(0) == 0
        assert res.percentile(100) == 49

    def test_totals_exact_beyond_capacity(self):
        res = Reservoir(16, seed=5)
        for value in range(1, 1001):
            res.record(value)
        assert res.count == 1000
        assert res.total == 500_500       # exact even though sampled
        assert res.max_value == 1000
        assert len(res.samples) == 16

    def test_percentile_bounds_checked(self):
        res = Reservoir(4, seed=1)
        res.record(1)
        with pytest.raises(TerpError):
            res.percentile(101)
        assert Reservoir(4, seed=1).percentile(50) is None


class TestRegistry:
    def test_get_or_create_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.counter("a", labels={"x": "1"}) is not reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("dual")
        with pytest.raises(TerpError):
            reg.gauge("dual")
        with pytest.raises(TerpError):
            reg.histogram("dual")

    def test_noop_mode_hands_out_null_instruments(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("c") is NULL_COUNTER
        assert reg.gauge("g") is NULL_GAUGE
        assert reg.histogram("h") is NULL_HISTOGRAM
        reg.counter("c").inc()
        reg.gauge("g").set(5)
        reg.histogram("h").observe(123)
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.value == 0
        assert NULL_HISTOGRAM.count == 0
        assert reg.to_dict() == {"counters": {}, "gauges": {},
                                 "histograms": {}}
        assert reg.prometheus_text() == ""

    def test_counter_monotonic(self):
        counter = MetricsRegistry().counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6
        with pytest.raises(TerpError):
            counter.inc(-1)

    def test_prometheus_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("reqs", "total requests").inc(7)
        reg.gauge("open", "open things").set(3)
        hist = reg.histogram("lat", "latency", buckets=(10, 100))
        hist.observe(5)
        hist.observe(50)
        hist.observe(5_000)
        text = reg.prometheus_text()
        assert "# HELP reqs total requests" in text
        assert "# TYPE reqs counter" in text
        assert "reqs 7" in text
        assert "# TYPE open gauge" in text
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="10"} 1' in text
        assert 'lat_bucket{le="100"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 5055" in text
        assert "lat_count 3" in text
        assert text.endswith("\n")

    def test_labelled_series_render(self):
        reg = MetricsRegistry()
        reg.counter("op", labels={"op": "attach"}).inc(2)
        reg.counter("op", labels={"op": "detach"}).inc(3)
        text = reg.prometheus_text()
        assert 'op{op="attach"} 2' in text
        assert 'op{op="detach"} 3' in text
        # One TYPE header for the family, not one per series.
        assert text.count("# TYPE op counter") == 1


class TestObservabilityBundle:
    def test_noop_bundle_disables_everything(self):
        obs = Observability.noop()
        assert not obs.enabled
        assert not obs.registry.enabled
        assert not obs.tracer.enabled
        assert not obs.audit.enabled
        dump = obs.dump()
        assert dump["enabled"] is False
        assert dump["audit"]["events"] == 0

    def test_dump_merges_extra(self):
        obs = Observability()
        obs.registry.counter("c").inc()
        dump = obs.dump(extra={"custom": 1})
        assert dump["custom"] == 1
        assert dump["metrics"]["counters"]["c"] == 1
