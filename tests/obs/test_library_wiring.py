"""Observability wired through PmoLibrary / TerpRuntime."""

from repro.arch.cond_engine import TerpArchEngine
from repro.core.units import MIB, us
from repro.obs import Observability
from repro.pmo.api import PmoLibrary


def _library(obs: Observability) -> PmoLibrary:
    engine = TerpArchEngine(us(50), capacity=8)
    lib = PmoLibrary(semantics=engine, seed=2022, strict=True, obs=obs)
    engine.tracer = obs.tracer
    return lib


def _cycle(lib: PmoLibrary) -> None:
    pmo = lib.PMO_create("wired", MIB)
    oid = lib.pmalloc(pmo, 32)
    lib.tick(1_000)
    lib.attach(pmo)
    pmo.begin_tx()
    lib.write(oid, b"x" * 32)
    lib.psync(pmo)
    lib.tick(2_500)
    lib.detach(pmo)


def test_audit_records_library_attach_detach():
    obs = Observability()
    _cycle(_library(obs))
    events = obs.audit.events()
    kinds = [e["kind"] for e in events]
    assert "attach" in kinds
    assert "detach" in kinds
    detach = [e for e in events if e["kind"] == "detach"][-1]
    # Sim-clock discipline: held duration is exactly the ticks between
    # attach and detach.
    assert detach["duration_ns"] == 2_500
    assert obs.audit.summary()["per_pmo"]["wired"]["windows"] == 1


def test_psync_span_recorded():
    obs = Observability()
    _cycle(_library(obs))
    [span] = [s for s in obs.tracer.recent()
              if s["name"] == "lib.psync"]
    assert span["attrs"]["pmo"] == "wired"
    assert span["attrs"]["flushed"] >= 1


def test_runtime_spans_are_opt_in():
    quiet = Observability()
    _cycle(_library(quiet))
    assert quiet.tracer.recent(name="rt.attach") == []

    detailed = Observability(trace_runtime=True)
    _cycle(_library(detailed))
    [attach] = detailed.tracer.recent(name="rt.attach")
    assert attach["attrs"]["pmo"] == "wired"
    [detach] = detailed.tracer.recent(name="rt.detach")
    assert detach["attrs"]["outcome"]
    # The audit timeline records either way.
    assert detailed.audit.summary()["attaches"] == 1


def test_noop_mode_records_nothing_at_library_level():
    obs = Observability.noop()
    _cycle(_library(obs))
    assert obs.audit.events() == []
    assert obs.tracer.recent() == []
    assert obs.tracer.stats()["started"] == 0
