"""Tracer semantics: nesting, per-thread stacks, retention, export."""

import json
import threading

from repro.obs.tracing import NULL_SPAN, Tracer


class ManualClock:
    def __init__(self) -> None:
        self.now = 0

    def __call__(self) -> int:
        self.now += 10
        return self.now


class TestNesting:
    def test_parent_ids_nest_within_a_thread(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            with tracer.span("sibling") as sibling:
                assert sibling.parent_id == outer.span_id
        records = {r["name"]: r for r in tracer.recent()}
        assert records["outer"]["parent_id"] is None
        assert records["inner"]["parent_id"] == \
            records["outer"]["span_id"]
        assert records["sibling"]["parent_id"] == \
            records["outer"]["span_id"]

    def test_record_since_parents_under_open_span(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("sweep") as sweep:
            t0 = clock()
            tracer.record_since("engine.sweep", t0, decisions=3)
        records = {r["name"]: r for r in tracer.recent()}
        assert records["engine.sweep"]["parent_id"] == sweep.span_id
        assert records["engine.sweep"]["duration_ns"] > 0
        assert records["engine.sweep"]["attrs"] == {"decisions": 3}

    def test_stacks_are_per_thread(self):
        """The sweeper-thread scenario: a span open on one thread must
        never become the parent of a span on another."""
        tracer = Tracer()
        holding = threading.Event()
        release = threading.Event()

        def sweeper():
            with tracer.span("sweeper.pass"):
                holding.set()
                release.wait(5.0)

        worker = threading.Thread(target=sweeper, name="sweeper")
        worker.start()
        assert holding.wait(5.0)
        # The sweeper's span is open *right now* on its thread; a span
        # recorded here must still be a root.
        with tracer.span("request") as request:
            assert request.parent_id is None
        release.set()
        worker.join(5.0)
        records = {r["name"]: r for r in tracer.recent()}
        assert records["request"]["parent_id"] is None
        assert records["sweeper.pass"]["parent_id"] is None
        assert records["sweeper.pass"]["thread"] == "sweeper"
        assert records["request"]["thread"] != "sweeper"

    def test_exception_annotates_and_still_records(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise ValueError("nope")
        except ValueError:
            pass
        [record] = tracer.recent(name="boom")
        assert record["attrs"]["error"] == "ValueError"


class TestRetentionAndExport:
    def test_ring_keeps_most_recent(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        names = [r["name"] for r in tracer.recent()]
        assert names == ["s6", "s7", "s8", "s9"]
        stats = tracer.stats()
        assert stats["started"] == 10
        assert stats["recorded"] == 10
        assert stats["retained"] == 4

    def test_recent_filters_and_limits(self):
        tracer = Tracer()
        for name in ("a", "b", "a", "b", "a"):
            with tracer.span(name):
                pass
        assert len(tracer.recent(name="a")) == 3
        assert len(tracer.recent(limit=2)) == 2

    def test_export_jsonl(self, tmp_path):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("one", tag="x"):
            pass
        path = tmp_path / "spans.jsonl"
        assert tracer.export_jsonl(path) == 1
        [line] = path.read_text().splitlines()
        record = json.loads(line)
        assert record["name"] == "one"
        assert record["attrs"] == {"tag": "x"}
        assert record["duration_ns"] == record["end_ns"] - \
            record["start_ns"]

    def test_wrap_decorator(self):
        tracer = Tracer()

        @tracer.wrap()
        def traced(x):
            return x * 2

        assert traced(21) == 42
        [record] = tracer.recent()
        assert record["name"].endswith("traced")


class TestNoopMode:
    def test_disabled_tracer_is_inert(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("ignored")
        assert span is NULL_SPAN
        with span as inner:
            inner.set("k", "v")
        tracer.record_since("ignored", 0)
        assert tracer.recent() == []
        assert tracer.stats()["started"] == 0
        assert tracer.stats()["recorded"] == 0
