"""Audit timeline semantics: ordering, durations, ring-wrap exactness."""

import threading

from repro.obs.audit import ATTACH, DETACH, FORCED_DETACH, AuditTimeline


class TestDurations:
    def test_attach_detach_pairs_measure_held_time(self):
        timeline = AuditTimeline()
        timeline.record_attach(1, 7, "pmoA", 1_000)
        timeline.record_detach(1, 7, "pmoA", 4_000)
        [attach, detach] = timeline.events()
        assert attach["kind"] == ATTACH
        assert attach["duration_ns"] is None
        assert detach["kind"] == DETACH
        assert detach["duration_ns"] == 3_000
        summary = timeline.summary()
        assert summary["windows"] == 1
        assert summary["held_mean_ns"] == 3_000
        assert summary["held_max_ns"] == 3_000

    def test_silent_reattach_keeps_earliest_start(self):
        """Exposure began at the first attach; a silent re-attach
        inside the combined window must not reset the clock."""
        timeline = AuditTimeline()
        timeline.record_attach(1, 7, "pmoA", 1_000)
        timeline.record_attach(1, 7, "pmoA", 2_000, reason="silent")
        timeline.record_detach(1, 7, "pmoA", 5_000)
        detach = timeline.events(kind=DETACH)[0]
        assert detach["duration_ns"] == 4_000

    def test_forced_detach_classified_separately(self):
        timeline = AuditTimeline()
        timeline.record_attach(1, 7, "pmoA", 0)
        timeline.record_detach(1, 7, "pmoA", 9_000, forced=True,
                               reason="budget elapsed")
        [event] = timeline.events(kind=FORCED_DETACH)
        assert event["reason"] == "budget elapsed"
        summary = timeline.summary()
        assert summary["forced_detaches"] == 1
        assert summary["detaches"] == 0
        assert summary["windows"] == 1

    def test_windows_tracked_per_entity(self):
        """Two entities holding the same PMO are two windows."""
        timeline = AuditTimeline()
        timeline.record_attach(1, 7, "pmoA", 0)
        timeline.record_attach(2, 7, "pmoA", 1_000)
        assert len(timeline.open_windows(2_000)) == 2
        timeline.record_detach(1, 7, "pmoA", 3_000)
        [window] = timeline.open_windows(4_000)
        assert window["entity"] == 2
        assert window["age_ns"] == 3_000
        timeline.record_detach(2, 7, "pmoA", 5_000)
        assert timeline.open_windows() == []
        assert timeline.summary()["per_pmo"]["pmoA"]["windows"] == 2

    def test_events_filter_by_pmo_name_or_id(self):
        timeline = AuditTimeline()
        timeline.record_attach(1, 7, "pmoA", 0)
        timeline.record_attach(1, 8, "pmoB", 0)
        assert len(timeline.events(pmo="pmoA")) == 1
        assert len(timeline.events(pmo=8)) == 1
        assert timeline.events(pmo="pmoA")[0]["pmo"] == "pmoA"


class TestConcurrentOrdering:
    def test_seq_total_order_across_sessions(self):
        """N concurrent sessions; every event gets a unique seq and
        the retained log reads back strictly increasing."""
        timeline = AuditTimeline()
        sessions, rounds = 8, 50
        start = threading.Barrier(sessions)

        def session(entity: int) -> None:
            start.wait(5.0)
            for i in range(rounds):
                at = entity * 1_000_000 + i * 10
                timeline.record_attach(entity, 7, "shared", at)
                timeline.record_detach(entity, 7, "shared", at + 5)

        workers = [threading.Thread(target=session, args=(e,))
                   for e in range(sessions)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(30.0)

        events = timeline.events()
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)
        assert len(seqs) == len(set(seqs))
        # Nothing lost: the counters saw every event exactly once.
        summary = timeline.summary()
        assert summary["events"] == sessions * rounds * 2
        assert summary["attaches"] == sessions * rounds
        assert summary["detaches"] == sessions * rounds
        assert summary["open_windows"] == 0
        # Per entity, the interleaving is still attach/detach/attach...
        for entity in range(sessions):
            kinds = [e["kind"] for e in events
                     if e["entity"] == entity]
            assert kinds == [ATTACH, DETACH] * (len(kinds) // 2)


class TestRingWrap:
    def test_summary_exact_after_ring_wraps(self):
        """The ring forgets events; the summary must not."""
        timeline = AuditTimeline(capacity=8)
        windows = 100
        for i in range(windows):
            timeline.record_attach(1, 7, "pmoA", i * 100)
            timeline.record_detach(1, 7, "pmoA", i * 100 + 60)
        assert len(timeline.events()) == 8        # ring-bounded
        summary = timeline.summary()
        assert summary["events"] == windows * 2   # exact
        assert summary["attaches"] == windows
        assert summary["detaches"] == windows
        assert summary["windows"] == windows
        assert summary["held_mean_ns"] == 60
        assert summary["held_max_ns"] == 60

    def test_sweep_events_counted(self):
        timeline = AuditTimeline()
        timeline.record_sweep(1_000, closed=2, duration_ns=50)
        [event] = timeline.events(kind="sweep")
        assert event["reason"] == "closed 2 window(s)"
        assert event["duration_ns"] == 50
        assert timeline.summary()["sweeps"] == 1


class TestNoopMode:
    def test_disabled_timeline_records_nothing(self):
        timeline = AuditTimeline(enabled=False)
        timeline.record_attach(1, 7, "pmoA", 0)
        timeline.record_detach(1, 7, "pmoA", 100)
        timeline.record_sweep(200, closed=1)
        assert timeline.events() == []
        assert timeline.summary()["events"] == 0
        assert timeline.open_windows() == []
