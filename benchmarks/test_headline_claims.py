"""The paper's contribution-list claims, checked end to end.

From the introduction: "huge performance overheads reduction (6% and
15% for WHISPER and SPEC benchmarks vs. 20% and 156% with MERR)" and
"nearly 90% of system calls can be avoided"; from Section VII-B:
"TERP reduces exposure window size by 92% (14.5us to 1.2us) and
exposure rate by 86%".
"""

import pytest

from benchmarks.conftest import run_once
from repro.eval.configs import config
from repro.eval.runner import run_spec_suite, run_whisper_suite

TXS = 4_000
ITERS = 2_500


def _mean(values):
    values = list(values)
    return sum(values) / len(values)


def test_headline_overheads_and_exposure(benchmark):
    def run():
        mm_w = run_whisper_suite(config("MM"), n_transactions=TXS)
        tt_w = run_whisper_suite(config("TT"), n_transactions=TXS)
        mm_s = run_spec_suite(config("MM"), n_iterations=ITERS)
        tt_s = run_spec_suite(config("TT"), n_iterations=ITERS)
        return mm_w, tt_w, mm_s, tt_s
    mm_w, tt_w, mm_s, tt_s = run_once(benchmark, run)

    mm_w_ovh = _mean(r.overhead_percent for r in mm_w.values())
    tt_w_ovh = _mean(r.overhead_percent for r in tt_w.values())
    mm_s_ovh = _mean(r.overhead_percent for r in mm_s.values())
    tt_s_ovh = _mean(r.overhead_percent for r in tt_s.values())
    silent_w = _mean(r.silent_percent for r in tt_w.values())
    silent_s = _mean(r.silent_percent for r in tt_s.values())
    mm_ew = _mean(r.ew_avg_us for r in mm_w.values())
    tt_tew = _mean(r.tew_avg_us for r in tt_w.values())

    print()
    print(f"  WHISPER overhead: MERR {mm_w_ovh:.1f}% -> TERP "
          f"{tt_w_ovh:.1f}%   (paper: 20% -> 6%)")
    print(f"  SPEC overhead:    MERR {mm_s_ovh:.1f}% -> TERP "
          f"{tt_s_ovh:.1f}%   (paper: 156% -> 15%)")
    print(f"  silent calls: WHISPER {silent_w:.1f}%, SPEC "
          f"{silent_s:.1f}%   (paper: ~90%)")
    print(f"  exposure: MERR EW {mm_ew:.1f}us -> TERP TEW "
          f"{tt_tew:.2f}us   (paper: 14.5 -> 1.2)")

    # WHISPER: TERP well under MERR (paper 20% -> 6%).
    assert tt_w_ovh < 0.7 * mm_w_ovh
    assert tt_w_ovh < 10.0

    # SPEC: an order of magnitude (paper 156% -> 15%).
    assert mm_s_ovh > 100.0
    assert tt_s_ovh < mm_s_ovh / 5
    assert tt_s_ovh < 25.0

    # ~90% of system calls avoided.
    assert silent_w > 80.0
    assert silent_s > 88.0

    # Exposure contracted by ~an order of magnitude.
    assert tt_tew < mm_ew / 5
