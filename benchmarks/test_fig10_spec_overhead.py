"""Regenerates Figure 10: SPEC single-thread overheads.

Paper shape: with every conditional executed as a syscall (TM) the
overhead exceeds 300%; MERR averages 156%; the TERP architecture cuts
it to 14.8% at 40µs and 7.6% at 160µs — "more than an order of
magnitude reduction".  lbm is the worst case (two hot PMOs).
"""

from benchmarks.conftest import run_once, SPEC_ITERS
from repro.eval.experiments import fig10


def test_fig10(benchmark):
    result = run_once(benchmark, fig10.run, n_iterations=SPEC_ITERS)
    print()
    print(result.render())
    mm = result.config_total("MM (40us)")
    tm = result.config_total("TM (40us)")
    tt40 = result.config_total("TT (40us)")
    tt160 = result.config_total("TT (160us)")

    # Syscall-per-call schemes blow up on PMO-dense SPEC code
    # (paper: MM 156%, TM >300%).
    assert mm > 100.0
    assert tm > 100.0

    # The TERP architecture brings it down by an order of magnitude
    # (paper: 14.8%).
    assert tt40 < 25.0
    assert tt40 < mm / 5

    # Larger targets amortize further (paper: 7.6% at 160us).
    assert tt160 <= tt40

    # lbm (2 PMOs active throughout) is the most expensive benchmark
    # under every scheme, as in the paper.
    lbm_mm = next(b.total_percent for b in result.bars["lbm"]
                  if b.label == "MM (40us)")
    for name, bars in result.bars.items():
        bench_mm = next(b.total_percent for b in bars
                        if b.label == "MM (40us)")
        assert bench_mm <= lbm_mm + 1e-9
