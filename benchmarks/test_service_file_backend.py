"""terpd closed-loop throughput over the durable file backend.

The exact workload of ``test_service_throughput`` — the same tenant
fleet, rounds, pipeline depth, and sloth — but the daemon runs on a
``--pool-dir`` durable pool, so every ``psync`` pays the real price:
dirty-page CRC trailers, the double-write journal, and two ``fsync``
barriers.  The report lands in ``BENCH_service_file.json`` (same
``terp-service-bench/1`` schema, ``config.backend = "file"``) and CI
gates it against its *own* committed baseline — durability is allowed
to cost throughput versus the memory backend, but not to regress
against itself.

Run (benchmark tier)::

    PYTHONPATH=src python -m pytest benchmarks/test_service_file_backend.py -q -s
"""

import json
import os
import pathlib
import tempfile

from benchmarks.conftest import run_once
from benchmarks.test_service_throughput import (
    CYCLE_BUCKETS_NS, PIPELINE_DEPTH, ROUNDS, SESSIONS, SLOW_ROUNDS,
    WARMUP_ROUNDS, _drive)
from repro.obs.registry import Histogram
from repro.service.client import SyncTerpClient
from repro.service.server import ServiceThread, TerpService

#: Where the stable-schema report lands (CI uploads + compares this).
BENCH_OUT = pathlib.Path(os.environ.get(
    "TERP_BENCH_FILE_OUT",
    pathlib.Path(__file__).resolve().parent.parent /
    "BENCH_service_file.json"))

#: A durable psync pays two fsync barriers, so a well-behaved cycle
#: runs several times longer than on the memory backend; the session
#: budget scales with it or the sweeper would force-close tenants
#: mid-cycle.  (The sloth still sleeps past this comfortably — its
#: wait deadline is 10x the memory-backend budget, 250ms.)
FILE_SESSION_EW_MS = 100


def test_service_file_backend_throughput(benchmark):
    cycle_hist = Histogram("bench_file_cycle_ns",
                           "tenant cycle latency (file backend)",
                           buckets=CYCLE_BUCKETS_NS,
                           reservoir_capacity=4096, seed=13)
    with tempfile.TemporaryDirectory(prefix="terp-bench-pool-") as pool:
        service = TerpService(
            port=0, session_ew_ns=FILE_SESSION_EW_MS * 1_000_000,
            sweep_period_ns=5_000_000, pool_dir=pool)
        with ServiceThread(service) as svc:
            elapsed, forced = run_once(benchmark, _drive,
                                       svc.bound_port, cycle_hist)
            with SyncTerpClient(port=svc.bound_port,
                                user="root") as probe:
                report = probe.metrics()

    stats = report["global"]
    audit = report["audit"]
    requests = stats["requests"]
    bench_report = {
        "schema": "terp-service-bench/1",
        "config": {
            "backend": "file",
            "sessions": SESSIONS + 1,
            "rounds": ROUNDS,
            "warmup_rounds": WARMUP_ROUNDS,
            "pipeline_depth": PIPELINE_DEPTH,
            "session_ew_ms": FILE_SESSION_EW_MS,
        },
        "throughput": {
            "requests": requests,
            "elapsed_s": round(elapsed, 3),
            "requests_per_s": round(requests / elapsed, 1),
        },
        "latency_us": {
            "cycle_p50": round((cycle_hist.percentile(50) or 0) / 1e3, 1),
            "cycle_p99": round((cycle_hist.percentile(99) or 0) / 1e3, 1),
            "request_p50": stats["request_latency"]["p50_us"],
            "request_p99": stats["request_latency"]["p99_us"],
            "sweep_p99": stats["sweep_latency"]["p99_us"],
        },
        "exposure": {
            "forced_detaches": stats["forced_detaches"],
            "attaches": stats["attaches"],
            "detaches": stats["detaches"],
            "tew_mean_us": round(audit["held_mean_ns"] / 1e3, 1),
            "tew_max_us": round(audit["held_max_ns"] / 1e3, 1),
            "audit_events": audit["events"],
        },
        "durability": {
            "scrub_pages_verified": stats["scrub_pages_verified"],
            "scrub_pages_repaired": stats["scrub_pages_repaired"],
            "pmos_quarantined": stats["pmos_quarantined"],
        },
    }
    BENCH_OUT.write_text(json.dumps(bench_report, indent=2) + "\n",
                         encoding="utf-8")
    print()
    print(json.dumps(bench_report, indent=2))

    # Shape assertions, as for the memory backend — plus durability:
    # a healthy run verifies at-rest pages and quarantines nothing.
    cycle_requests = SESSIONS * ROUNDS * (PIPELINE_DEPTH + 4)
    assert requests >= cycle_requests
    assert bench_report["throughput"]["requests_per_s"] > 0
    assert cycle_hist.count == SESSIONS * (ROUNDS - WARMUP_ROUNDS)
    assert forced and forced[0] >= SLOW_ROUNDS
    assert stats["forced_detaches"] >= SLOW_ROUNDS
    assert audit["attaches"] >= stats["attaches"]
    assert bench_report["durability"]["scrub_pages_verified"] > 0
    assert bench_report["durability"]["pmos_quarantined"] == 0
    assert bench_report["durability"]["scrub_pages_repaired"] == 0
