"""Regenerates Table IV: SPEC multi-PMO single-thread results.

Paper averages: 3.6 PMOs; MM EW 4.4/25.4µs, ER 27.2%; TT Silent
96.8%, EW 39.7/40.0µs, ER 38.1%, TEW 1.02µs, TER 10.0%.  Structure:
the higher the PMO count the lower the exposure rate (657.xz, 6 PMOs,
lowest ER), because programs use different PMOs in different stages.
"""

from benchmarks.conftest import run_once, SPEC_ITERS
from repro.eval.experiments import table4


def test_table4(benchmark):
    result = run_once(benchmark, table4.run, n_iterations=SPEC_ITERS)
    print()
    print(result.render())
    avg = result.averages()
    by_name = {r.name: r for r in result.rows}

    # The paper's PMO counts.
    assert {r.name: r.n_pmos for r in result.rows} == {
        "mcf": 4, "lbm": 2, "imagick": 3, "nab": 3, "xz": 6}

    # TERP windows pinned at the target; MERR's tiny and unstable.
    assert 34.0 <= avg.tt_ew_avg_us <= 41.0
    assert avg.mm_ew_avg_us < 15.0

    # Very high silent rate on SPEC (paper: 96.8%).
    assert avg.tt_silent_percent > 88.0

    # TEW near 1us, TER well under ER (paper: 1.02us, 10.0% vs 38.1%).
    assert avg.tt_tew_us <= 2.5
    assert avg.tt_ter_percent < avg.tt_er_percent

    # Higher PMO count -> lower exposure rate: xz (6 PMOs) must have
    # the lowest TT ER; lbm (2 PMOs, both hot) the highest.
    ers = {name: row.tt_er_percent for name, row in by_name.items()}
    assert min(ers, key=ers.get) == "xz"
    assert max(ers, key=ers.get) == "lbm"
