"""Instrumentation must be cheap: no-op mode vs. full observability.

Two measurements, two purposes:

* **Service level (gated)** — the acceptance target.  The same
  closed-loop tenant cycle that drives the throughput bench runs
  against a terpd with observability enabled and one in no-op mode;
  the enabled run must stay within a few percent.  At this level a
  request already crosses a socket and the asyncio loop, so the
  instrumentation's fixed per-event cost is amortised the way it is in
  production.  Best-of-two runs per mode damps scheduler noise.

* **In-process micro level (informational)** — the worst case.  The
  raw library cycle is ~40us of pure Python, so every audited event
  and recorded span is a visible fraction of it.  The ratio is printed
  and carried in the report for the trajectory to watch, with only a
  sanity ceiling asserted.

Run::

    PYTHONPATH=src python -m pytest benchmarks/test_obs_overhead.py -q -s
"""

import json
import statistics
import time

from repro.arch.cond_engine import TerpArchEngine
from repro.core.units import MIB, us
from repro.obs import Observability
from repro.pmo.api import PmoLibrary
from repro.service.client import SyncTerpClient
from repro.service.server import ServiceThread, TerpService

MICRO_CYCLES = 3000
SERVICE_CYCLES = 1000
#: Alternating noop/enabled service runs; min of each damps drift.
SERVICE_PAIRS = 3
#: Acceptance target for service-level overhead.
TARGET_PERCENT = 5.0
#: Asserted ceiling for the service-level ratio — generous next to the
#: target purely to absorb shared-runner noise.
SERVICE_MAX_RATIO = 1.20
#: Sanity ceiling for the in-process micro ratio (informational; every
#: audit event is a visible fraction of a ~40us pure-Python cycle).
MICRO_MAX_RATIO = 2.0


def _build_library(obs: Observability) -> PmoLibrary:
    engine = TerpArchEngine(us(40), capacity=32)
    lib = PmoLibrary(semantics=engine, seed=2022, strict=True, obs=obs)
    if obs.enabled:
        engine.tracer = obs.tracer
    return lib


def _micro_workload(lib: PmoLibrary) -> float:
    """Median cycle latency (seconds) of the in-process tenant cycle.

    Same comparison unit as the service measurement: the median of
    MICRO_CYCLES per-cycle timings, so throttling mid-run moves the
    tail, not the number under comparison."""
    pmo = lib.PMO_create("hot", MIB)
    oid = lib.pmalloc(pmo, 64)
    payload = b"\x5a" * 64
    lat = []
    for i in range(MICRO_CYCLES):
        t0 = time.perf_counter_ns()
        lib.tick(1_000)
        lib.attach(pmo)
        pmo.begin_tx()
        lib.write(oid, payload)
        lib.psync(pmo)
        lib.read(oid, 64)
        lib.detach(pmo)
        if i % 64 == 0:
            lib.runtime.sweep(lib.clock_ns)
        lat.append(time.perf_counter_ns() - t0)
    return statistics.median(lat) / 1e9


def _service_workload(obs_enabled: bool) -> float:
    """Median cycle latency (seconds) against a live terpd.

    The median — not the total — is the comparison unit: a scheduler
    hiccup inflates a handful of cycles and therefore the total, but
    barely moves the median of a thousand."""
    service = TerpService(port=0, obs_enabled=obs_enabled,
                          session_ew_ns=60_000_000_000,
                          sweep_period_ns=50_000_000)
    lat = []
    with ServiceThread(service) as svc:
        with SyncTerpClient(port=svc.bound_port, user="root") as setup:
            setup.create("hot", MIB, mode=0o666)
            oid = setup.pmalloc("hot", 64)
        payload = b"\x5a" * 64
        with SyncTerpClient(port=svc.bound_port, user="tenant") as client:
            for _ in range(SERVICE_CYCLES):
                t0 = time.perf_counter_ns()
                client.attach("hot")
                client.write(oid, payload)
                client.psync("hot")
                client.read(oid, 64)
                client.detach("hot")
                lat.append(time.perf_counter_ns() - t0)
    return statistics.median(lat) / 1e9


def test_obs_overhead(benchmark):
    def run_all():
        # Service level first (the gated number).  Noop and enabled
        # runs alternate and each mode keeps its best time, so neither
        # machine drift over the measurement nor a stray scheduler
        # hiccup in one run can decide the ratio on its own.
        svc_noop, svc_enabled = [], []
        for _ in range(SERVICE_PAIRS):
            svc_noop.append(_service_workload(False))
            svc_enabled.append(_service_workload(True))
        # Then the in-process micro pair, same interleaving.
        micro_noop, micro_enabled = [], []
        micro_obs = Observability()
        for _ in range(2):
            micro_noop.append(
                _micro_workload(_build_library(Observability.noop())))
            micro_enabled.append(
                _micro_workload(_build_library(micro_obs)))
        return (min(svc_noop), min(svc_enabled),
                min(micro_noop), min(micro_enabled), micro_obs)

    (svc_noop, svc_enabled, micro_noop, micro_enabled,
     micro_obs) = benchmark.pedantic(run_all, rounds=1, iterations=1)
    svc_ratio = svc_enabled / svc_noop
    micro_ratio = micro_enabled / micro_noop
    report = {
        "service": {
            "cycles": SERVICE_CYCLES,
            "noop_cycle_p50_us": round(svc_noop * 1e6, 1),
            "enabled_cycle_p50_us": round(svc_enabled * 1e6, 1),
            "overhead_percent": round(100 * (svc_ratio - 1), 2),
            "target_percent": TARGET_PERCENT,
        },
        "micro": {
            "cycles": MICRO_CYCLES,
            "noop_cycle_p50_us": round(micro_noop * 1e6, 1),
            "enabled_cycle_p50_us": round(micro_enabled * 1e6, 1),
            "overhead_percent": round(100 * (micro_ratio - 1), 2),
            "spans_recorded": micro_obs.tracer.stats()["recorded"],
            "audit_events": micro_obs.audit.summary()["events"],
        },
    }
    print()
    print(json.dumps(report, indent=2))

    # The instrumented runs actually instrumented: every cycle of both
    # enabled passes audited into the shared timeline.
    assert micro_obs.audit.summary()["attaches"] == 2 * MICRO_CYCLES
    assert micro_obs.tracer.stats()["recorded"] > 0
    assert svc_ratio < SERVICE_MAX_RATIO, (
        f"service-level observability overhead "
        f"{100 * (svc_ratio - 1):.1f}% exceeds the asserted ceiling "
        f"({100 * (SERVICE_MAX_RATIO - 1):.0f}%)")
    assert micro_ratio < MICRO_MAX_RATIO, (
        f"in-process observability overhead "
        f"{100 * (micro_ratio - 1):.1f}% exceeds the sanity ceiling "
        f"({100 * (MICRO_MAX_RATIO - 1):.0f}%)")
