"""Sharded terpd throughput: what the cluster buys over one process.

The same closed-loop tenant workload from ``test_service_throughput``
runs twice in one bench: first against a single in-process daemon,
then against an N-shard cluster behind the router (``--cluster N``,
default 4) — tenants' PMO names are picked so the ring spreads them
one per shard.  The bench emits ``BENCH_cluster.json`` (schema
``terp-cluster-bench/1``) with both runs' requests/s and the measured
speedup, the series CI pins run over run.

The headline claim — >=1.8x single-process requests/s at 4 shards —
is a *parallelism* claim: each shard owns its PMOs' exposure clocks
and sweeps locally, so requests to different shards execute on
different cores with no shared lock.  The assertion is therefore
gated on the runner actually having cores to parallelise over
(``os.cpu_count() >= 4``); on smaller runners the bench still runs
both legs, records the measured ratio, and asserts only that the
cluster serves the full workload correctly.

Run (benchmark tier)::

    PYTHONPATH=src python -m pytest benchmarks/test_cluster_throughput.py -q -s
"""

import json
import os
import pathlib
import threading
import time

from benchmarks.conftest import run_once
from repro.cluster import ClusterSupervisor
from repro.cluster.ring import HashRing
from repro.core.units import MIB
from repro.service.client import SyncTerpClient
from repro.service.server import ServiceThread, TerpService

SESSIONS = 4
ROUNDS = 120
PIPELINE_DEPTH = 8
#: Requests one tenant cycle issues: attach + writes + psync + read
#: + detach.
CYCLE_REQUESTS = PIPELINE_DEPTH + 4

#: Generous budget: this bench measures throughput, not sweeping.
SESSION_EW_MS = 2_000
RING_SEED = 2022

BENCH_OUT = pathlib.Path(os.environ.get(
    "TERP_BENCH_OUT",
    pathlib.Path(__file__).resolve().parent.parent /
    "BENCH_cluster.json"))


def _tenant_names(shards: int) -> "list[str]":
    """One PMO name per tenant, placed so tenant ``i``'s PMO lives on
    shard ``i % shards`` — every shard serves load, by construction
    rather than by luck (mirrors ``cluster_chaos._pick_names``)."""
    ring = HashRing(range(shards), seed=RING_SEED)
    names = []
    for idx in range(SESSIONS):
        k = 0
        while True:
            name = f"cbench-{idx}-{k}"
            if ring.owner(name) == idx % shards:
                names.append(name)
                break
            k += 1
    return names


def _tenant_loop(port: int, idx: int, name: str, oids, errors) -> None:
    try:
        with SyncTerpClient(port=port, user=f"tenant{idx}") as client:
            payload = bytes([0x40 + idx]) * 64
            packed = oids[idx].pack()
            for _ in range(ROUNDS):
                client.attach(name)
                client.pipeline([("write", {"oid": packed,
                                            "data": payload})
                                 for _ in range(PIPELINE_DEPTH)])
                client.psync(name)
                assert client.read(oids[idx], 64) == payload
                client.detach(name)
    except Exception as exc:            # noqa: BLE001 - report, don't hang
        errors.append((idx, name, exc))


def _drive(port: int, names: "list[str]") -> float:
    """Run the tenant fleet against ``port``; return elapsed seconds."""
    errors: list = []
    with SyncTerpClient(port=port, user="root") as setup:
        oids = []
        for name in names:
            setup.create(name, MIB, mode=0o666)
            setup.attach(name)
            oids.append(setup.pmalloc(name, 64))
            setup.detach(name)
    workers = [threading.Thread(target=_tenant_loop,
                                args=(port, i, names[i], oids, errors))
               for i in range(SESSIONS)]
    t0 = time.perf_counter_ns()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(180.0)
    elapsed = (time.perf_counter_ns() - t0) / 1e9
    assert errors == [], errors
    return elapsed


def _run_single(names) -> "tuple[float, dict]":
    service = TerpService(port=0,
                          session_ew_ns=SESSION_EW_MS * 1_000_000,
                          sweep_period_ns=50_000_000)
    with ServiceThread(service) as svc:
        elapsed = _drive(svc.bound_port, names)
        with SyncTerpClient(port=svc.bound_port, user="root") as probe:
            report = probe.metrics()
    return elapsed, report


def _run_cluster(shards: int, names) -> "tuple[float, dict]":
    with ClusterSupervisor(shards=shards,
                           session_ew_ns=SESSION_EW_MS * 1_000_000,
                           sweep_period_ns=50_000_000) as sup:
        elapsed = _drive(sup.front_port, names)
        with SyncTerpClient(port=sup.front_port, user="root") as probe:
            report = probe.metrics()
    return elapsed, report


def test_cluster_throughput(benchmark, request):
    shards = int(request.config.getoption("--cluster"))
    names = _tenant_names(shards)
    issued = SESSIONS * ROUNDS * CYCLE_REQUESTS

    def both():
        single_s, single_report = _run_single(names)
        cluster_s, cluster_report = _run_cluster(shards, names)
        return single_s, single_report, cluster_s, cluster_report

    single_s, single_report, cluster_s, cluster_report = \
        run_once(benchmark, both)

    single_rps = issued / single_s
    cluster_rps = issued / cluster_s
    speedup = cluster_rps / single_rps
    merged = cluster_report["global"]
    audit = cluster_report["audit"]
    bench_report = {
        "schema": "terp-cluster-bench/1",
        "config": {
            "shards": shards,
            "sessions": SESSIONS,
            "rounds": ROUNDS,
            "pipeline_depth": PIPELINE_DEPTH,
            "session_ew_ms": SESSION_EW_MS,
            "cpu_count": os.cpu_count(),
        },
        "throughput": {
            "requests": issued,
            "elapsed_s": round(cluster_s, 3),
            "requests_per_s": round(cluster_rps, 1),
        },
        "single": {
            "requests": issued,
            "elapsed_s": round(single_s, 3),
            "requests_per_s": round(single_rps, 1),
        },
        "speedup_vs_single": round(speedup, 3),
        "latency_us": {
            "request_p50": merged["request_latency"]["p50_us"],
            "request_p99": merged["request_latency"]["p99_us"],
        },
        "exposure": {
            "forced_detaches": merged["forced_detaches"],
            "attaches": merged["attaches"],
            "detaches": merged["detaches"],
            "tew_max_us": round(audit["held_max_ns"] / 1e3, 1),
        },
        "cluster": {
            "per_shard_requests":
                cluster_report["cluster"]["per_shard_requests"],
            "unreachable": cluster_report["cluster"]["unreachable"],
        },
    }
    BENCH_OUT.write_text(json.dumps(bench_report, indent=2) + "\n",
                         encoding="utf-8")
    print()
    print(json.dumps(bench_report, indent=2))

    # Shape: both legs served the identical workload, fully.
    assert single_report["global"]["attaches"] >= SESSIONS * ROUNDS
    assert merged["attaches"] >= SESSIONS * ROUNDS
    assert merged["errors"] == 0
    assert bench_report["cluster"]["unreachable"] == 0
    # Every shard served real load — the ring spread the tenants.
    per_shard = bench_report["cluster"]["per_shard_requests"]
    assert len(per_shard) == shards
    assert all(count > ROUNDS for count in per_shard.values()), per_shard
    assert merged["forced_detaches"] == 0
    # The parallelism claim needs cores to parallelise over.
    if (os.cpu_count() or 1) >= 4 and shards >= 4:
        assert speedup >= 1.8, (
            f"cluster {cluster_rps:.0f} req/s vs single "
            f"{single_rps:.0f} req/s = {speedup:.2f}x < 1.8x")
