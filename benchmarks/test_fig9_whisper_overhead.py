"""Regenerates Figure 9: WHISPER execution-time overheads.

Paper shape: MM(40us) ~ 20% average, TM(40us) ~ 30% (50% higher than
MM), TT(40us) ~ 6% (70% reduction vs MERR); TT overhead decreases as
the EW target grows to 80/160µs.
"""

from benchmarks.conftest import run_once, WHISPER_TXS
from repro.eval.experiments import fig9


def test_fig9(benchmark):
    result = run_once(benchmark, fig9.run, n_transactions=WHISPER_TXS)
    print()
    print(result.render())
    mm = result.config_total("MM (40us)")
    tm = result.config_total("TM (40us)")
    tt40 = result.config_total("TT (40us)")
    tt80 = result.config_total("TT (80us)")
    tt160 = result.config_total("TT (160us)")

    # Ordering: TT < MM < TM (the paper's 6% < 20% < 30%).
    assert tt40 < mm < tm

    # TERP reduces overhead substantially vs MERR (paper: ~70%; our
    # event-cost-only MERR model under-counts MERR's indirect costs,
    # so the measured cut is ~2x — see EXPERIMENTS.md).
    assert tt40 < 0.7 * mm

    # Larger EW targets amortize better (monotone non-increasing,
    # within noise).
    assert tt160 <= tt80 + 0.5
    assert tt80 <= tt40 + 0.5

    # Absolute sanity: protected WHISPER runs stay cheap under TERP.
    assert tt40 < 12.0

    # The breakdown must attribute TM's cost to conditional calls.
    for bars in result.bars.values():
        tm_bar = next(b for b in bars if b.label == "TM (40us)")
        assert tm_bar.breakdown_percent["cond"] > \
            tm_bar.breakdown_percent["other"]
