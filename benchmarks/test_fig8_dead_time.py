"""Regenerates Figure 8: the heap-object dead-time distribution.

Paper claim: in 95% of cases the time from an object's last write to
its deallocation is 2µs or larger, so a 2µs TEW removes ~95% of the
dead-time attack surface (the basis for the TEW target choice).
"""

from benchmarks.conftest import FIG8_OBJECTS, run_once
from repro.eval.experiments import fig8


def test_fig8(benchmark):
    result = run_once(benchmark, fig8.run,
                      n_objects_per_profile=FIG8_OBJECTS)
    print()
    print(result.render())
    reduction = result.surface_reduction_at_2us

    # The headline: ~95% of dead times are at/above 2us.
    assert 0.90 <= reduction <= 0.99

    # The distribution is broad (no single bin holds the majority),
    # as in the paper's histogram.
    assert max(result.distribution.percentages) < 50.0

    # Monotonicity: larger TEW targets remove less surface... i.e.
    # the fraction >= t decreases with t.
    f2 = result.distribution.fraction_at_least(2.0)
    f16 = result.distribution.fraction_at_least(16.0)
    f256 = result.distribution.fraction_at_least(256.0)
    assert f2 >= f16 >= f256
