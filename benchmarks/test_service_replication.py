"""terpd closed-loop throughput with journal shipping on vs off.

The exact workload of ``test_service_file_backend`` — the same tenant
fleet, rounds, pipeline depth, and sloth on a durable ``--pool-dir``
pool — run twice: once unreplicated (the control), once shipping
every committed journal batch semi-synchronously to a live warm
standby.  Semi-sync means each acked ``psync`` waited for the
standby's apply-ack, so the replicated run pays one local TCP round
trip per commit batch on top of the file backend's fsync barriers.

A sampler thread polls ``repl_status`` throughout the replicated run
and the report carries the lag distribution (batches shipped but not
yet acked; p99 and max).  The report lands in
``BENCH_replication.json`` (schema ``terp-repl-bench/1``) and CI
gates its *replicated* throughput against the committed baseline's
declared floor — shipping is allowed to cost a little versus the
unreplicated file backend, but not to fall under the floor the
acceptance criteria pin (within 10% of the file-backend baseline
floor).

Run (benchmark tier)::

    PYTHONPATH=src python -m pytest benchmarks/test_service_replication.py -q -s
"""

import json
import os
import pathlib
import tempfile
import threading
import time

from benchmarks.conftest import run_once
from benchmarks.test_service_file_backend import FILE_SESSION_EW_MS
from benchmarks.test_service_throughput import (
    CYCLE_BUCKETS_NS, PIPELINE_DEPTH, ROUNDS, SESSIONS, SLOW_ROUNDS,
    WARMUP_ROUNDS, _drive)
from repro.obs.registry import Histogram
from repro.replication import StandbyDaemon
from repro.service.client import SyncTerpClient
from repro.service.server import ServiceThread, TerpService

#: Where the stable-schema report lands (CI uploads + compares this).
BENCH_OUT = pathlib.Path(os.environ.get(
    "TERP_BENCH_REPL_OUT",
    pathlib.Path(__file__).resolve().parent.parent /
    "BENCH_replication.json"))


class _LagSampler:
    """Poll ``repl_status`` on a side connection during the drive."""

    def __init__(self, port: int, period_s: float = 0.005) -> None:
        self._port = port
        self._period_s = period_s
        self._stop = threading.Event()
        self.samples = []
        self._thread = threading.Thread(target=self._loop,
                                        daemon=True)

    def __enter__(self) -> "_LagSampler":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def _loop(self) -> None:
        with SyncTerpClient(port=self._port, user="lagprobe") as probe:
            while not self._stop.is_set():
                status = probe.call("repl_status")
                self.samples.append(int(status.get("lag", 0)))
                time.sleep(self._period_s)

    def percentile(self, pct: float) -> int:
        if not self.samples:
            return 0
        ordered = sorted(self.samples)
        return ordered[int(pct / 100.0 * (len(ordered) - 1))]


def _run_leg(pool: str, cycle_hist: Histogram, *,
             replicate_to=None, timed=None):
    """One drive over a fresh durable pool; returns the leg report."""
    service = TerpService(
        port=0, session_ew_ns=FILE_SESSION_EW_MS * 1_000_000,
        sweep_period_ns=5_000_000, pool_dir=pool,
        replicate_to=replicate_to)
    with ServiceThread(service) as svc:
        if replicate_to is not None:
            with _LagSampler(svc.bound_port) as sampler:
                elapsed, forced = timed(svc.bound_port, cycle_hist)
        else:
            sampler = None
            elapsed, forced = _drive(svc.bound_port, cycle_hist)
        with SyncTerpClient(port=svc.bound_port,
                            user="root") as probe:
            report = probe.metrics()
            repl = probe.call("repl_status")
    return elapsed, forced, report, repl, sampler


def test_service_replication_throughput(benchmark):
    control_hist = Histogram("bench_repl_off_cycle_ns",
                             "tenant cycle latency (shipping off)",
                             buckets=CYCLE_BUCKETS_NS,
                             reservoir_capacity=4096, seed=13)
    cycle_hist = Histogram("bench_repl_on_cycle_ns",
                           "tenant cycle latency (shipping on)",
                           buckets=CYCLE_BUCKETS_NS,
                           reservoir_capacity=4096, seed=13)
    with tempfile.TemporaryDirectory(prefix="terp-bench-repl-") as root:
        # Control leg: the plain durable pool, shipping off.
        off_elapsed, off_forced, off_report, off_repl, _ = _run_leg(
            os.path.join(root, "off"), control_hist)
        # Replicated leg: a live standby, semi-sync shipping, timed
        # under pytest-benchmark (this is the gated number).
        standby = StandbyDaemon(os.path.join(root, "standby"))
        repl_port = standby.start()
        try:
            elapsed, forced, report, repl, sampler = _run_leg(
                os.path.join(root, "on"), cycle_hist,
                replicate_to=f"127.0.0.1:{repl_port}",
                timed=lambda port, hist: run_once(
                    benchmark, _drive, port, hist))
        finally:
            standby.stop()

    stats = report["global"]
    audit = report["audit"]
    requests = stats["requests"]
    off_requests = off_report["global"]["requests"]
    off_rps = off_requests / off_elapsed
    on_rps = requests / elapsed
    bench_report = {
        "schema": "terp-repl-bench/1",
        "config": {
            "backend": "file",
            "replication": "semi-sync",
            "sessions": SESSIONS + 1,
            "rounds": ROUNDS,
            "warmup_rounds": WARMUP_ROUNDS,
            "pipeline_depth": PIPELINE_DEPTH,
            "session_ew_ms": FILE_SESSION_EW_MS,
        },
        "throughput": {
            "requests": requests,
            "elapsed_s": round(elapsed, 3),
            "requests_per_s": round(on_rps, 1),
        },
        "shipping_off": {
            "requests": off_requests,
            "elapsed_s": round(off_elapsed, 3),
            "requests_per_s": round(off_rps, 1),
            "overhead_pct": round(100.0 * (1.0 - on_rps / off_rps), 1),
        },
        "replication": {
            "shipped": repl["shipped"],
            "acked": repl["acked"],
            "dropped": repl["dropped"],
            "reconnects": repl["reconnects"],
            "lag_p99": sampler.percentile(99),
            "lag_max": max(sampler.samples, default=0),
            "lag_samples": len(sampler.samples),
        },
        "latency_us": {
            "cycle_p50": round((cycle_hist.percentile(50) or 0) / 1e3, 1),
            "cycle_p99": round((cycle_hist.percentile(99) or 0) / 1e3, 1),
            "request_p50": stats["request_latency"]["p50_us"],
            "request_p99": stats["request_latency"]["p99_us"],
            "sweep_p99": stats["sweep_latency"]["p99_us"],
        },
        "exposure": {
            "forced_detaches": stats["forced_detaches"],
            "attaches": stats["attaches"],
            "detaches": stats["detaches"],
            "tew_mean_us": round(audit["held_mean_ns"] / 1e3, 1),
            "tew_max_us": round(audit["held_max_ns"] / 1e3, 1),
            "audit_events": audit["events"],
        },
    }
    BENCH_OUT.write_text(json.dumps(bench_report, indent=2) + "\n",
                         encoding="utf-8")
    print()
    print(json.dumps(bench_report, indent=2))

    # Shape assertions: the replicated leg really replicated — every
    # shipped batch acked, nothing degraded to drop, no reconnect
    # storms — and the workload shape matches the other service
    # benches.
    cycle_requests = SESSIONS * ROUNDS * (PIPELINE_DEPTH + 4)
    assert requests >= cycle_requests
    assert on_rps > 0 and off_rps > 0
    assert cycle_hist.count == SESSIONS * (ROUNDS - WARMUP_ROUNDS)
    assert forced and forced[0] >= SLOW_ROUNDS
    assert off_repl == {"enabled": False}
    assert repl["enabled"] and repl["connected"]
    # Group commit coalesces concurrent psyncs into one shipped
    # batch, so the batch count sits well under the psync count but
    # must still scale with the round count.
    assert repl["shipped"] >= ROUNDS
    assert repl["acked"] == repl["shipped"]
    assert repl["dropped"] == 0
    assert repl["lag"] == 0
    assert sampler.samples, "lag sampler never ran"
