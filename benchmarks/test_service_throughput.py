"""terpd closed-loop throughput: the service layer's cost of entry.

A fleet of closed-loop client sessions hammers one daemon with the
attach/write/psync/detach cycle of a persistent-memory tenant, plus a
deliberately slow tenant that sits on its exposure window until the
sweeper force-detaches it.  The bench emits ``BENCH_service.json``
(schema ``terp-service-bench/1``) — requests/s, client-side cycle
percentiles, forced-detach count, mean/max held exposure from the
audit timeline — the service-layer analogue of the paper's overhead
tables, and the series CI pins run over run.

Clock discipline: every duration in this file comes from
``time.perf_counter_ns`` — one monotonic high-resolution clock for
elapsed time, cycle latencies, and deadlines alike — and each tenant's
first ``WARMUP_ROUNDS`` cycles are excluded from the latency
population, so connection setup, allocator warmup, and interpreter
warm-in do not pollute the percentiles CI compares.

Run (benchmark tier)::

    PYTHONPATH=src python -m pytest benchmarks/test_service_throughput.py -q -s
"""

import json
import os
import pathlib
import threading
import time

from benchmarks.conftest import run_once
from repro.core.units import MIB
from repro.obs.registry import Histogram
from repro.service.client import SyncTerpClient
from repro.service.server import ServiceThread, TerpService

#: Closed-loop load: each session issues its next cycle as soon as the
#: previous one completes — throughput is offered load at saturation.
SESSIONS = 4
ROUNDS = 150
#: Cycles per tenant excluded from the latency population.
WARMUP_ROUNDS = 15
PIPELINE_DEPTH = 8

#: The slow tenant's nap comfortably exceeds the session EW budget, so
#: every one of its attaches is closed by the sweeper, not by it.
SESSION_EW_MS = 25
SLOW_ROUNDS = 4

#: Cycle-latency buckets (ns): 50us .. 1s.
CYCLE_BUCKETS_NS = (
    50_000, 100_000, 250_000, 500_000, 1_000_000, 2_500_000,
    5_000_000, 10_000_000, 25_000_000, 50_000_000, 100_000_000,
    250_000_000, 1_000_000_000,
)

#: Where the stable-schema report lands (CI uploads + compares this).
BENCH_OUT = pathlib.Path(os.environ.get(
    "TERP_BENCH_OUT",
    pathlib.Path(__file__).resolve().parent.parent /
    "BENCH_service.json"))


def _tenant_loop(port: int, idx: int, oids, errors,
                 cycle_hist: Histogram) -> None:
    """One well-behaved tenant: attach, pipelined writes, psync,
    read-back, detach — ROUNDS times, as fast as the daemon allows.
    Post-warmup cycle latencies land in the shared histogram."""
    try:
        with SyncTerpClient(port=port, user=f"tenant{idx}") as client:
            payload = bytes([0x40 + idx]) * 64
            packed = oids[idx].pack()
            for round_no in range(ROUNDS):
                t0 = time.perf_counter_ns()
                client.attach("bench")
                # Raw bytes: the client moves them over the v2 binary
                # sidecar (or base64s them itself on a v1 wire).
                client.pipeline([("write", {"oid": packed,
                                            "data": payload})
                                 for _ in range(PIPELINE_DEPTH)])
                client.psync("bench")
                assert client.read(oids[idx], 64) == payload
                client.detach("bench")
                if round_no >= WARMUP_ROUNDS:
                    cycle_hist.observe(time.perf_counter_ns() - t0)
    except Exception as exc:            # noqa: BLE001 - report, don't hang
        errors.append((idx, exc))


def _slow_tenant(port: int, errors, forced) -> None:
    """The tenant the sweeper exists for: attaches and goes to sleep
    past its EW budget, every round."""
    try:
        with SyncTerpClient(port=port, user="sloth") as client:
            for _ in range(SLOW_ROUNDS):
                client.attach("bench")
                deadline = time.perf_counter_ns() + \
                    10 * SESSION_EW_MS * 1_000_000
                before = client.forced_detaches
                while client.forced_detaches == before:
                    if time.perf_counter_ns() > deadline:
                        raise AssertionError("sweeper never fired")
                    time.sleep(0.005)
                    client.ping()       # forced-detach events ride replies
                # Its own detach raced the sweeper and lost: silent.
                result = client.detach("bench")
                assert result["outcome"] == "silent"
            forced.append(client.forced_detaches)
    except Exception as exc:            # noqa: BLE001
        errors.append(("sloth", exc))


def _drive(port: int, cycle_hist: Histogram):
    errors, forced = [], []
    with SyncTerpClient(port=port, user="root") as setup:
        setup.create("bench", 4 * MIB, mode=0o666)
        oids = [setup.pmalloc("bench", 64) for _ in range(SESSIONS)]
    workers = [threading.Thread(target=_tenant_loop,
                                args=(port, i, oids, errors, cycle_hist))
               for i in range(SESSIONS)]
    workers.append(threading.Thread(target=_slow_tenant,
                                    args=(port, errors, forced)))
    t0 = time.perf_counter_ns()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(120.0)
    elapsed = (time.perf_counter_ns() - t0) / 1e9
    assert errors == [], errors
    return elapsed, forced


def test_service_throughput(benchmark):
    cycle_hist = Histogram("bench_cycle_ns", "tenant cycle latency",
                           buckets=CYCLE_BUCKETS_NS,
                           reservoir_capacity=4096, seed=13)
    service = TerpService(port=0,
                          session_ew_ns=SESSION_EW_MS * 1_000_000,
                          sweep_period_ns=5_000_000)
    with ServiceThread(service) as svc:
        elapsed, forced = run_once(benchmark, _drive, svc.bound_port,
                                   cycle_hist)
        with SyncTerpClient(port=svc.bound_port, user="root") as probe:
            report = probe.metrics()

    stats = report["global"]
    audit = report["audit"]
    requests = stats["requests"]
    bench_report = {
        "schema": "terp-service-bench/1",
        "config": {
            "sessions": SESSIONS + 1,
            "rounds": ROUNDS,
            "warmup_rounds": WARMUP_ROUNDS,
            "pipeline_depth": PIPELINE_DEPTH,
            "session_ew_ms": SESSION_EW_MS,
        },
        "throughput": {
            "requests": requests,
            "elapsed_s": round(elapsed, 3),
            "requests_per_s": round(requests / elapsed, 1),
        },
        "latency_us": {
            "cycle_p50": round((cycle_hist.percentile(50) or 0) / 1e3, 1),
            "cycle_p99": round((cycle_hist.percentile(99) or 0) / 1e3, 1),
            "request_p50": stats["request_latency"]["p50_us"],
            "request_p99": stats["request_latency"]["p99_us"],
            "sweep_p99": stats["sweep_latency"]["p99_us"],
        },
        "exposure": {
            "forced_detaches": stats["forced_detaches"],
            "attaches": stats["attaches"],
            "detaches": stats["detaches"],
            "tew_mean_us": round(audit["held_mean_ns"] / 1e3, 1),
            "tew_max_us": round(audit["held_max_ns"] / 1e3, 1),
            "audit_events": audit["events"],
        },
    }
    BENCH_OUT.write_text(json.dumps(bench_report, indent=2) + "\n",
                         encoding="utf-8")
    print()
    print(json.dumps(bench_report, indent=2))

    # Shape assertions: the numbers must be coherent, not just present.
    cycle_requests = SESSIONS * ROUNDS * (PIPELINE_DEPTH + 4)
    assert requests >= cycle_requests
    assert bench_report["throughput"]["requests_per_s"] > 0
    assert stats["request_latency"]["p99_us"] >= \
        stats["request_latency"]["p50_us"]
    assert cycle_hist.count == SESSIONS * (ROUNDS - WARMUP_ROUNDS)
    assert bench_report["latency_us"]["cycle_p99"] >= \
        bench_report["latency_us"]["cycle_p50"]
    # The sweeper closed every one of the slow tenant's windows.
    assert forced and forced[0] >= SLOW_ROUNDS
    assert stats["forced_detaches"] >= SLOW_ROUNDS
    assert stats["sweep_runs"] > 0
    # The audit timeline saw the same story the counters tell: every
    # attach was audited, and the slow tenant's held windows (closed by
    # force at ~EW budget) dominate the maximum.
    assert audit["attaches"] >= stats["attaches"]
    assert audit["forced_detaches"] >= SLOW_ROUNDS
    assert audit["held_max_ns"] >= SESSION_EW_MS * 1_000_000
