"""terpd closed-loop throughput: the service layer's cost of entry.

A fleet of closed-loop client sessions hammers one daemon with the
attach/write/psync/detach cycle of a persistent-memory tenant, plus a
deliberately slow tenant that sits on its exposure window until the
sweeper force-detaches it.  The bench emits a JSON metrics report —
requests/s, p50/p99 request latency, forced-detach count — which is
the service-layer analogue of the paper's overhead tables: how much
the protection envelope costs when the PMO library lives behind a
daemon instead of in-process.

Run (benchmark tier)::

    PYTHONPATH=src python -m pytest benchmarks/test_service_throughput.py -q -s
"""

import json
import threading
import time

from benchmarks.conftest import run_once
from repro.core.units import MIB
from repro.service.client import RemoteError, SyncTerpClient
from repro.service.protocol import encode_bytes
from repro.service.server import ServiceThread, TerpService

#: Closed-loop load: each session issues its next cycle as soon as the
#: previous one completes — throughput is offered load at saturation.
SESSIONS = 4
ROUNDS = 150
PIPELINE_DEPTH = 8

#: The slow tenant's nap comfortably exceeds the session EW budget, so
#: every one of its attaches is closed by the sweeper, not by it.
SESSION_EW_MS = 25
SLOW_ROUNDS = 4


def _tenant_loop(port: int, idx: int, oids, errors) -> None:
    """One well-behaved tenant: attach, pipelined writes, psync,
    read-back, detach — ROUNDS times, as fast as the daemon allows."""
    try:
        with SyncTerpClient(port=port, user=f"tenant{idx}") as client:
            payload = bytes([0x40 + idx]) * 64
            packed = oids[idx].pack()
            for _ in range(ROUNDS):
                client.attach("bench")
                client.pipeline([("write", {"oid": packed,
                                            "data": encode_bytes(payload)})
                                 for _ in range(PIPELINE_DEPTH)])
                client.psync("bench")
                assert client.read(oids[idx], 64) == payload
                client.detach("bench")
    except Exception as exc:            # noqa: BLE001 - report, don't hang
        errors.append((idx, exc))


def _slow_tenant(port: int, errors, forced) -> None:
    """The tenant the sweeper exists for: attaches and goes to sleep
    past its EW budget, every round."""
    try:
        with SyncTerpClient(port=port, user="sloth") as client:
            for _ in range(SLOW_ROUNDS):
                client.attach("bench")
                deadline = time.monotonic() + 10 * SESSION_EW_MS / 1000
                before = client.forced_detaches
                while client.forced_detaches == before:
                    if time.monotonic() > deadline:
                        raise AssertionError("sweeper never fired")
                    time.sleep(0.005)
                    client.ping()       # forced-detach events ride replies
                # Its own detach raced the sweeper and lost: silent.
                result = client.detach("bench")
                assert result["outcome"] == "silent"
            forced.append(client.forced_detaches)
    except Exception as exc:            # noqa: BLE001
        errors.append(("sloth", exc))


def _drive(port: int):
    errors, forced = [], []
    with SyncTerpClient(port=port, user="root") as setup:
        setup.create("bench", 4 * MIB, mode=0o666)
        oids = [setup.pmalloc("bench", 64) for _ in range(SESSIONS)]
    workers = [threading.Thread(target=_tenant_loop,
                                args=(port, i, oids, errors))
               for i in range(SESSIONS)]
    workers.append(threading.Thread(target=_slow_tenant,
                                    args=(port, errors, forced)))
    t0 = time.monotonic()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(120.0)
    elapsed = time.monotonic() - t0
    assert errors == [], errors
    return elapsed, forced


def test_service_throughput(benchmark):
    service = TerpService(port=0,
                          session_ew_ns=SESSION_EW_MS * 1_000_000,
                          sweep_period_ns=5_000_000)
    with ServiceThread(service) as svc:
        elapsed, forced = run_once(benchmark, _drive, svc.bound_port)
        with SyncTerpClient(port=svc.bound_port, user="root") as probe:
            report = probe.metrics()

    stats = report["global"]
    requests = stats["requests"]
    report_out = {
        "sessions": SESSIONS + 1,
        "rounds": ROUNDS,
        "pipeline_depth": PIPELINE_DEPTH,
        "elapsed_s": round(elapsed, 3),
        "requests": requests,
        "requests_per_s": round(requests / elapsed, 1),
        "request_p50_us": stats["request_latency"]["p50_us"],
        "request_p99_us": stats["request_latency"]["p99_us"],
        "sweep_p99_us": stats["sweep_latency"]["p99_us"],
        "forced_detaches": stats["forced_detaches"],
        "attaches": stats["attaches"],
        "detaches": stats["detaches"],
    }
    print()
    print(json.dumps(report_out, indent=2))

    # Shape assertions: the numbers must be coherent, not just present.
    cycle_requests = SESSIONS * ROUNDS * (PIPELINE_DEPTH + 4)
    assert requests >= cycle_requests
    assert report_out["requests_per_s"] > 0
    assert stats["request_latency"]["p99_us"] >= \
        stats["request_latency"]["p50_us"]
    # The sweeper closed every one of the slow tenant's windows.
    assert forced and forced[0] >= SLOW_ROUNDS
    assert stats["forced_detaches"] >= SLOW_ROUNDS
    assert stats["sweep_runs"] > 0
