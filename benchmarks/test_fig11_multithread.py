"""Regenerates Figure 11: 4-thread SPEC and the benefits breakdown.

Paper shape: with Basic semantics at most one thread can attach a PMO
and the rest wait — overheads reach ~800%.  Conditional instructions
(+Cond, EW-conscious semantics) let threads share PMOs; the circular
buffer (+CB, window combining) cuts the remaining syscalls.  Both
optimizations reduce overhead significantly, and overhead falls as
the EW target grows.
"""

from benchmarks.conftest import run_once
from repro.eval.experiments import fig11

ITERS = 2_400  # per-benchmark total across 4 threads


def test_fig11(benchmark):
    result = run_once(benchmark, fig11.run, n_iterations=ITERS,
                      num_threads=4)
    print()
    print(result.render())
    basic = result.config_total("Basic semantics")
    cond = result.config_total("+Cond (40us)")
    cb40 = result.config_total("+CB (40us)")
    cb160 = result.config_total("+CB (160us)")

    # Basic semantics serializes threads: very high overhead
    # (paper: up to ~800%).
    assert basic > 100.0
    assert all(blocked > 0 for blocked in result.blocked_ns.values())

    # Each mechanism helps: Basic >> +Cond >= +CB.
    assert basic > 2 * cond
    assert cb40 <= cond

    # Full TERP keeps 4-thread overhead modest and improving with
    # larger targets.
    assert cb40 < 60.0
    assert cb160 <= cb40 + 1.0
