"""Shared benchmark configuration.

Every benchmark runs its experiment exactly once (``pedantic`` with a
single round): the experiments are deterministic simulations, so
repetition only adds wall-clock time, and the quantity of interest is
the regenerated table/figure, not the harness's own speed.

Scales are chosen so the full suite regenerates every table and
figure in a few minutes; the statistics being rate-based, they are
stable well below the paper's 100K-operation runs (the shape
assertions in each file would fail if they were not).
"""

import pytest

#: Operation counts for benchmark-grade runs.
WHISPER_TXS = 6_000
SPEC_ITERS = 4_000
FIG8_OBJECTS = 1_000


def pytest_addoption(parser):
    parser.addoption(
        "--cluster", default="4", metavar="N",
        help="shard count for the cluster throughput bench "
             "(default: %(default)s)")


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
