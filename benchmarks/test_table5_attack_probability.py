"""Regenerates Table V: attack success probability, MERR vs TERP.

Paper values: MERR (0.015/x)% per 40µs EW on a 1GB PMO (18-bit
entropy); TERP (0.0005/x)% — 30x smaller — because the malicious
thread holds permission for only a small slice of each window; probes
slower than the TEW cannot run at all.
"""

import pytest

from benchmarks.conftest import run_once
from repro.eval.experiments import table5
from repro.security.attacks import compare_protections


def test_table5(benchmark):
    result = run_once(benchmark, table5.run)
    print()
    print(result.render())

    assert result.entropy_bits == 18
    assert result.merr_1us == pytest.approx(0.0153, abs=0.001)
    assert result.merr_01us == pytest.approx(0.153, abs=0.01)
    assert result.terp_1us == pytest.approx(0.00051, abs=0.00005)
    assert result.reduction == pytest.approx(30.0, rel=0.05)
    # Monte Carlo agrees with the analytic model.
    assert result.monte_carlo_merr_1us == pytest.approx(
        result.merr_1us, rel=0.3)


def test_data_only_attack_case_study(benchmark):
    """Section VII-D's case study: the same gadget chain succeeds
    unprotected, is slowed by MERR, and fails under TERP."""
    results = run_once(benchmark, compare_protections,
                       n_nodes=12, max_rounds=60_000)
    print()
    for name, outcome in results.items():
        print(f"  {name:5s}: {outcome.corrupted_nodes}/"
              f"{outcome.total_nodes} nodes corrupted in "
              f"{outcome.rounds_used} rounds "
              f"(faults={outcome.faults}, "
              f"stale addresses={outcome.stale_addresses})")
    assert results["none"].succeeded
    assert not results["terp"].succeeded
    assert results["terp"].progress <= results["merr"].progress
    assert results["terp"].faults > 0
