"""Regenerates the Section V-B hardware-cost estimate.

Paper: the circular buffer is 32 entries x 34 bits plus a 32-bit
timer = 140 bytes of on-chip storage, occupying ~0.006% of a 45nm
Nehalem die (Cacti 5.1).
"""

import pytest

from benchmarks.conftest import run_once
from repro.arch.area import circular_buffer_area


def test_hardware_cost(benchmark):
    est = run_once(benchmark, circular_buffer_area)
    print()
    print(f"  circular buffer: {est.bits} bits = {est.bytes} bytes, "
          f"{est.area_um2:.0f} um^2 = "
          f"{est.die_fraction_percent:.4f}% of a 45nm Nehalem die")
    assert est.bytes == 140
    assert est.die_fraction_percent == pytest.approx(0.006, rel=0.15)


def test_area_scaling(benchmark):
    def sweep():
        return {cap: circular_buffer_area(cap).area_um2
                for cap in (16, 32, 64, 128)}
    areas = run_once(benchmark, sweep)
    print()
    for cap, area in areas.items():
        print(f"  {cap} entries: {area:.0f} um^2")
    values = list(areas.values())
    assert values == sorted(values)
    # Periphery dominates: doubling capacity far less than doubles area.
    assert areas[64] < 1.8 * areas[32]
