"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures per se, but each isolates one mechanism the paper's
results depend on:

* window combining (cases 3/6) — the syscall-elision engine;
* the EW-conscious semantics choice vs Basic under concurrency;
* the sweep period — security/overhead trade-off;
* the TEW target — the Figure 8-motivated 2µs choice.
"""

import pytest

from benchmarks.conftest import run_once
from repro.eval.configs import config
from repro.eval.runner import run_spec, run_whisper


def test_window_combining_ablation(benchmark):
    """+CB vs +Cond on a combining-friendly workload: the circular
    buffer must elide a large share of real syscall pairs."""
    def run():
        with_cb = run_whisper("redis", config("TT"),
                              n_transactions=4_000)
        without_cb = run_whisper("redis", config("TT_COND"),
                                 n_transactions=4_000)
        return with_cb, without_cb
    with_cb, without_cb = run_once(benchmark, run)
    print()
    print(f"  with combining:    {with_cb.counters.attach_syscalls} "
          f"real attaches, overhead {with_cb.overhead_percent:.2f}%")
    print(f"  without combining: "
          f"{without_cb.counters.attach_syscalls} real attaches, "
          f"overhead {without_cb.overhead_percent:.2f}%")
    assert with_cb.counters.attach_syscalls < \
        0.5 * without_cb.counters.attach_syscalls
    assert with_cb.overhead_percent < without_cb.overhead_percent
    assert with_cb.arch_cases.case3_silent_attach > 0


def test_semantics_ablation_multithread(benchmark):
    """EW-conscious vs Basic semantics with 4 threads: composability
    is worth multiples of execution time."""
    def run():
        basic = run_spec("nab", config("TT_BASIC"),
                         n_iterations=1_600, num_threads=4)
        ew = run_spec("nab", config("TT"),
                      n_iterations=1_600, num_threads=4)
        return basic, ew
    basic, ew = run_once(benchmark, run)
    print()
    print(f"  basic semantics: {basic.overhead_percent:.1f}% "
          f"(blocked {basic.blocked_ns / 1e6:.2f} ms)")
    print(f"  EW-conscious:    {ew.overhead_percent:.1f}% "
          f"(blocked {ew.blocked_ns / 1e6:.2f} ms)")
    assert basic.overhead_percent > 2 * ew.overhead_percent
    assert basic.blocked_ns > 0
    assert ew.blocked_ns == 0


def test_sweep_period_ablation(benchmark):
    """Sweeping less often loosens EW enforcement (max EW grows) —
    the paper's 1µs hardware tick is on the tight end."""
    from repro.arch.cond_engine import TerpArchEngine
    from repro.core.units import us
    from repro.sim.machine import Machine
    from repro.sim.policy import CompilerTerpPolicy
    from repro.workloads.whisper.benchmarks import get_benchmark

    def run():
        out = {}
        for period_us in (1, 8, 32):
            bench = get_benchmark("echo")
            machine = Machine(
                engine=TerpArchEngine(us(40),
                                      sweep_period_ns=us(period_us)),
                policy_factory=lambda: CompilerTerpPolicy(us(2)),
                pmo_sizes=bench.pmo_sizes())
            result = machine.run(bench.threads(
                1, n_transactions=2_000))
            out[period_us] = result.per_pmo[0].ew_max_us
        return out
    max_ews = run_once(benchmark, run)
    print()
    for period, ew_max in max_ews.items():
        print(f"  sweep every {period:2d}us -> max EW {ew_max:.1f}us")
    assert max_ews[1] <= max_ews[8] <= max_ews[32]
    assert max_ews[1] <= 42.0


def test_embedded_subtree_ablation(benchmark):
    """The MERR fast-attach substrate TERP builds on: an embedded
    page-table subtree makes attach cost O(1) in PMO size, while the
    conventional per-page path scales linearly (and catastrophically
    at 1GB)."""
    from repro.core.units import GIB, MIB
    from repro.mem.syscalls import attach_cost, page_based_attach_penalty

    def run():
        sizes = {"2MB": 2 * MIB, "64MB": 64 * MIB, "1GB": GIB}
        return {label: page_based_attach_penalty(size)
                for label, size in sizes.items()}
    penalties = run_once(benchmark, run)
    print()
    fast = attach_cost(embedded_subtree=True).total_cycles
    print(f"  embedded-subtree attach: {fast} cycles regardless of size")
    for label, penalty in penalties.items():
        print(f"  conventional attach of {label}: {penalty:,.0f}x "
              "the embedded cost")
    assert penalties["2MB"] < penalties["64MB"] < penalties["1GB"]
    assert penalties["1GB"] > 1_000


def test_tew_target_sweep(benchmark):
    """Tightening the TEW target cuts thread exposure but costs more
    conditional calls — the trade-off behind the 2µs choice."""
    def run():
        out = {}
        for tew in (0.5, 2.0, 8.0):
            result = run_whisper("ycsb",
                                 config("TT", tew_target_us=tew),
                                 n_transactions=3_000)
            out[tew] = (result.ter_percent, result.cond_per_second)
        return out
    sweep = run_once(benchmark, run)
    print()
    for tew, (ter, cond) in sweep.items():
        print(f"  TEW target {tew:4.1f}us -> TER {ter:5.2f}%, "
              f"{cond:10.0f} cond/s")
    ters = [sweep[t][0] for t in (0.5, 2.0, 8.0)]
    conds = [sweep[t][1] for t in (0.5, 2.0, 8.0)]
    assert ters == sorted(ters)            # looser target, more exposure
    assert conds == sorted(conds, reverse=True)  # and fewer calls
