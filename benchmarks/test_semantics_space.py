"""Ablation: the semantics design space (Section IV).

Not a numbered figure, but the paper's central design argument —
reproduced as a scored comparison: only EW-conscious semantics is
simultaneously thread-composable, window-bounded, and free of FCFS's
benign-reattach hole.
"""

from benchmarks.conftest import run_once
from repro.eval.experiments import semantics_space


def test_semantics_design_space(benchmark):
    scores = run_once(benchmark, semantics_space.run)
    print()
    print(semantics_space.render(scores))
    by_name = {s.name: s for s in scores}

    assert by_name["basic"].nested_errors > 0
    assert not by_name["basic"].thread_composable
    assert not by_name["outermost"].window_bounded
    assert by_name["fcfs"].reattach_holes > 0
    winner = by_name["ew-conscious"]
    assert winner.thread_composable and winner.window_bounded
    assert winner.reattach_holes == 0
