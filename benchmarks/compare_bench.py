"""Compare fresh bench reports against their committed baselines.

CI's regression gate, now one invocation for every series: pass any
number of ``BASELINE CURRENT`` path pairs and the script fails
(exit 1) if *any* pair's throughput fell more than
``--max-regression`` (default 20%) below its baseline.  Within a pair
the two reports must carry the same ``schema`` tag — the service
bench, file-backend bench, and cluster bench each pin their own —
so a baseline is never compared against the wrong series.

A baseline may also declare an explicit gate::

    "gate": {"floor_requests_per_s": 3200}

which replaces the computed ``baseline * (1 - max_regression)`` floor
for that pair.  The cluster baseline uses this: its headline
``requests_per_s`` records the >=1.8x-single acceptance number
(achieved on multi-core runners), while the gate floor is what every
CI runner class — including single-core — must clear.

Latency and exposure numbers are reported but not gated — they vary
with runner class far more than saturation throughput does.

Usage::

    python benchmarks/compare_bench.py BASE CUR [BASE CUR ...] \
        [--max-regression 0.20]
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    if not isinstance(report.get("schema"), str):
        raise SystemExit(f"{path}: no schema tag — not a bench report")
    return report


def compare_pair(baseline_path: str, current_path: str,
                 max_regression: float) -> bool:
    """Print one pair's comparison; return True iff within budget."""
    baseline = load(baseline_path)
    current = load(current_path)
    if baseline["schema"] != current["schema"]:
        raise SystemExit(
            f"schema mismatch: {baseline_path} is "
            f"{baseline['schema']!r} but {current_path} is "
            f"{current['schema']!r} — regenerate the baseline "
            "alongside schema changes")

    base_rps = float(baseline["throughput"]["requests_per_s"])
    cur_rps = float(current["throughput"]["requests_per_s"])
    gate = baseline.get("gate") or {}
    explicit = gate.get("floor_requests_per_s")
    if explicit is not None:
        floor = float(explicit)
        floor_note = "baseline gate"
    else:
        floor = base_rps * (1.0 - max_regression)
        floor_note = f"-{max_regression:.0%}"

    print(f"== {baseline['schema']} "
          f"({baseline_path} vs {current_path})")
    print(f"baseline requests/s : {base_rps:12.1f}")
    print(f"current  requests/s : {cur_rps:12.1f}")
    print(f"floor ({floor_note}) : {floor:12.1f}")
    for key in ("cycle_p50", "cycle_p99", "request_p50", "request_p99"):
        base_v = baseline.get("latency_us", {}).get(key)
        cur_v = current.get("latency_us", {}).get(key)
        if base_v is not None or cur_v is not None:
            print(f"{key:20s}: baseline {base_v} us, "
                  f"current {cur_v} us")
    base_fd = baseline.get("exposure", {}).get("forced_detaches")
    cur_fd = current.get("exposure", {}).get("forced_detaches")
    print(f"forced detaches     : baseline {base_fd}, "
          f"current {cur_fd}")
    if "speedup_vs_single" in current:
        print(f"speedup vs single   : "
              f"{current['speedup_vs_single']} "
              f"(baseline {baseline.get('speedup_vs_single')}) on "
              f"{current.get('config', {}).get('cpu_count')} cpu(s)")

    if cur_rps < floor:
        print(f"FAIL: requests/s {cur_rps:.1f} under the floor "
              f"{floor:.1f}")
        return False
    print("OK: throughput within the regression budget")
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("pairs", nargs="+", metavar="PATH",
                        help="BASELINE CURRENT path pairs")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="maximum tolerated relative drop in "
                             "requests/s (default: %(default)s)")
    args = parser.parse_args(argv)
    if len(args.pairs) % 2 != 0:
        parser.error("paths must come in BASELINE CURRENT pairs "
                     f"(got {len(args.pairs)})")

    failed = 0
    for i in range(0, len(args.pairs), 2):
        if i:
            print()
        if not compare_pair(args.pairs[i], args.pairs[i + 1],
                            args.max_regression):
            failed += 1
    if failed:
        print(f"\nFAIL: {failed} of {len(args.pairs) // 2} "
              "pair(s) regressed")
        return 1
    print(f"\nOK: all {len(args.pairs) // 2} pair(s) within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
