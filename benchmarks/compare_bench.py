"""Compare a fresh BENCH_service.json against the committed baseline.

CI's regression gate: after the bench job regenerates
``BENCH_service.json``, this script fails (exit 1) if throughput fell
more than ``--max-regression`` (default 20%) below the baseline
committed at ``benchmarks/baselines/BENCH_service.json``.  Latency and
exposure numbers are reported but not gated — they vary with runner
class far more than saturation throughput does.

Usage::

    python benchmarks/compare_bench.py BASELINE CURRENT [--max-regression 0.20]
"""

from __future__ import annotations

import argparse
import json
import sys

SCHEMA = "terp-service-bench/1"


def load(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    if report.get("schema") != SCHEMA:
        raise SystemExit(
            f"{path}: schema {report.get('schema')!r} != {SCHEMA!r} — "
            "regenerate the baseline alongside schema changes")
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly generated JSON")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="maximum tolerated relative drop in "
                             "requests/s (default: %(default)s)")
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    current = load(args.current)

    base_rps = float(baseline["throughput"]["requests_per_s"])
    cur_rps = float(current["throughput"]["requests_per_s"])
    floor = base_rps * (1.0 - args.max_regression)

    print(f"baseline requests/s : {base_rps:12.1f}")
    print(f"current  requests/s : {cur_rps:12.1f}")
    print(f"floor (-{args.max_regression:.0%})      : {floor:12.1f}")
    for key in ("cycle_p50", "cycle_p99", "request_p50", "request_p99"):
        base_v = baseline["latency_us"].get(key)
        cur_v = current["latency_us"].get(key)
        print(f"{key:20s}: baseline {base_v} us, current {cur_v} us")
    print(f"forced detaches     : baseline "
          f"{baseline['exposure']['forced_detaches']}, current "
          f"{current['exposure']['forced_detaches']}")

    if cur_rps < floor:
        print(f"FAIL: requests/s regressed "
              f"{100 * (1 - cur_rps / base_rps):.1f}% "
              f"(> {args.max_regression:.0%} budget)")
        return 1
    print("OK: throughput within the regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
