"""Regenerates Table VI: gadget census and scenario analysis.

Paper values: TERP disarms ~96.6% of gadgets in WHISPER and ~89.98%
in SPEC; MERR keeps 24.5% (WHISPER) and 27.2% (SPEC) of gadgets
armed.  A ~20x attack-surface reduction vs MERR is the paper's
abstract-level claim.
"""

from benchmarks.conftest import run_once
from repro.eval.experiments import table6

TXS = 3_000
ITERS = 2_000


def test_table6(benchmark):
    result = run_once(benchmark, table6.run, n_transactions=TXS,
                      n_iterations=ITERS)
    print()
    print(result.render())

    # TERP disarms the overwhelming majority of gadgets.
    assert result.whisper.terp_disarmed_percent > 90.0
    assert result.spec.terp_disarmed_percent > 80.0

    # MERR leaves far more gadgets armed than TERP.
    assert result.whisper.merr_armed_percent > \
        2 * result.whisper.terp_armed_percent
    assert result.spec.merr_armed_percent > \
        result.spec.terp_armed_percent

    # Attack-surface improvement factor is large (paper: ~20x at the
    # abstract level; 24.5/3.4 ~ 7x for WHISPER alone).
    assert result.whisper.improvement_factor > 3.0

    # The scenario grid is complete.
    assert len(result.scenarios) == 6
