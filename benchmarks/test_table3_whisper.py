"""Regenerates Table III: WHISPER results with target EW = 40µs.

Paper values for reference (MERR vs TERP, averages over the suite):
MM EW 14.5/34.3µs, ER 24.5%; TT Silent 88.8%, EW 39.4/40.0µs,
ER 53.2%, TEW 1.2µs, TER 3.4%.

Shape assertions (what must reproduce):
* TERP's EWs sit at the target (avg ~ max ~ 40µs) while MERR's are
  unstable (max >> avg);
* ~9 of 10 conditional calls are silent;
* thread windows stay under the 2µs target and TER << ER.
"""

from benchmarks.conftest import run_once, WHISPER_TXS
from repro.eval.experiments import table3


def test_table3(benchmark):
    result = run_once(benchmark, table3.run,
                      n_transactions=WHISPER_TXS)
    print()
    print(result.render())
    avg = result.averages()

    # TERP pins the exposure window at the target...
    assert 34.0 <= avg.tt_ew_avg_us <= 41.0
    assert avg.tt_ew_max_us <= 45.0
    # ...while MERR's windows are whatever the transactions took.
    assert avg.mm_ew_avg_us < 25.0
    for row in result.rows:
        assert row.mm_ew_max_us > row.mm_ew_avg_us * 1.3

    # Nearly 9 out of 10 system calls eliminated (paper: 88.8%).
    assert avg.tt_silent_percent > 80.0

    # Thread windows below the 2us target; thread exposure far below
    # process exposure (paper: TEW 1.2us, TER 3.4% vs ER 53.2%).
    assert avg.tt_tew_us <= 2.0
    assert avg.tt_ter_percent < avg.tt_er_percent / 3

    # Headline: exposure window size cut by ~an order of magnitude
    # (paper: 14.5us -> 1.2us = 92%).
    assert avg.tt_tew_us < avg.mm_ew_avg_us / 5
