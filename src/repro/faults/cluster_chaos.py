"""Cluster chaos: kill one shard mid-traffic, check I1-I6 everywhere.

``run_cluster_chaos(seed)`` stands up a durable N-shard cluster
(:class:`~repro.cluster.supervisor.ClusterSupervisor`), drives worker
threads through the router (attach/write/read/psync/detach rounds,
one squatter holding an attachment on a victim-owned PMO), SIGKILLs
one shard mid-traffic, and lets the supervisor warm-restart it.  The
verdict then checks the temporal-protection invariants at two scopes:

* **per shard** — each shard's own audit timeline must satisfy I1-I6
  (:func:`repro.faults.invariants.check_events`), including I6 on the
  victim: its restart event grants outage allowance, and recovery
  must have force-closed every window that straddled the crash;
* **globally** — the shards' timelines merged by timestamp must still
  satisfy I1-I5.  Restart events are *filtered* from the merge and
  the victim's downtime is added to the global slack instead: I6 is a
  per-process property (a survivor's window legitimately stays open
  across another shard's restart), so checking it on the merged
  timeline would manufacture violations.  Entities are remapped to
  ``entity + (shard << 32)`` so per-shard id spaces cannot alias.

Survivor shards must come through untouched: no restart events, no
outage-attributed forced detaches.  The victim's forced detaches must
be attributed to the outage or the restart.  Every client request
must be acknowledged or typed-failed, exactly as in the single-daemon
chaos suite.

Replay any failure with ``python -m repro.faults.cluster_chaos
--seed N``.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cluster.ring import HashRing
from repro.cluster.supervisor import ClusterConfig, ClusterSupervisor
from repro.faults.chaos import SCHEDULING_SLACK_NS, _Tally
from repro.faults.invariants import InvariantReport, check_events
from repro.obs.audit import RESTART
from repro.service.client import SyncTerpClient
from repro.service.retry import RetryPolicy

#: Per-session wall-clock budget for the run.  Generous: the whole
#: cluster (N shards + router + supervisor + worker threads) shares
#: whatever cores the host has, and a shard restart stalls everyone.
DEFAULT_EW_NS = 400_000_000
DEFAULT_SWEEP_NS = 20_000_000


def _retry(seed: int, idx: int) -> RetryPolicy:
    """Generous backoff: a worker must ride out the whole
    kill-to-warm-restart window, not just a dropped frame."""
    return RetryPolicy(max_retries=10, base_delay_s=0.01,
                       multiplier=2.0, max_delay_s=0.25,
                       seed=seed * 257 + idx)


@dataclass
class ClusterChaosResult:
    """The verdict of one seeded kill-a-shard run."""

    seed: int
    shards: int
    victim: Optional[int] = None
    per_shard: Dict[int, InvariantReport] = field(default_factory=dict)
    global_report: InvariantReport = field(
        default_factory=InvariantReport)
    requests_ok: int = 0
    requests_failed: int = 0
    failures_by_kind: Dict[str, int] = field(default_factory=dict)
    forced_detach_events: int = 0
    victim_restarts: int = 0
    victim_outage_attributed: bool = False
    survivors_clean: bool = False
    slack_ns: int = 0
    unexpected: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        invariants_ok = (self.global_report.ok and
                         all(r.ok for r in self.per_shard.values()))
        if self.victim is None:      # --no-kill run: invariants only
            return invariants_ok and not self.unexpected
        return (invariants_ok and not self.unexpected
                and self.victim_restarts >= 1
                and self.victim_outage_attributed
                and self.survivors_clean)

    def describe(self) -> str:
        lines = [
            f"cluster chaos seed {self.seed} "
            f"({self.shards} shards): "
            f"{'OK' if self.ok else 'FAILED'}",
            f"  requests: {self.requests_ok} ok, "
            f"{self.requests_failed} typed-failed "
            f"({self.failures_by_kind})",
            f"  victim: shard {self.victim}, restarts "
            f"{self.victim_restarts}, outage attributed: "
            f"{self.victim_outage_attributed}, survivors clean: "
            f"{self.survivors_clean}",
        ]
        for shard, report in sorted(self.per_shard.items()):
            lines.append(f"  shard {shard}: {report.describe()}")
        lines.append(f"  global: {self.global_report.describe()}")
        if self.unexpected:
            lines.append(f"  UNEXPECTED: {self.unexpected}")
        if not self.ok:
            lines.append("  replay: python -m "
                         f"repro.faults.cluster_chaos "
                         f"--seed {self.seed} --shards {self.shards}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "shards": self.shards,
            "ok": self.ok,
            "victim": self.victim,
            "victim_restarts": self.victim_restarts,
            "victim_outage_attributed":
                self.victim_outage_attributed,
            "survivors_clean": self.survivors_clean,
            "requests_ok": self.requests_ok,
            "requests_failed": self.requests_failed,
            "failures_by_kind": self.failures_by_kind,
            "forced_detach_events": self.forced_detach_events,
            "slack_ns": self.slack_ns,
            "unexpected": self.unexpected,
            "violations": {
                **{f"shard{s}": [str(v) for v in r.violations]
                   for s, r in self.per_shard.items()},
                "global": [str(v)
                           for v in self.global_report.violations],
            },
        }


def _pick_names(seed: int, shards: int, workers: int) -> List[str]:
    """One PMO name per worker, spread so every shard owns at least
    one — computed with the same seeded ring the router uses, so the
    placement needs no probing."""
    ring = HashRing(range(shards), seed=seed)
    names: List[str] = []
    for idx in range(workers):
        target = idx % shards
        k = 0
        while True:
            name = f"cchaos-{idx}-{k}"
            if ring.owner(name) == target:
                names.append(name)
                break
            k += 1
    return names


def _worker(idx: int, port: int, seed: int, name: str, rounds: int,
            tally: _Tally, stop_early: threading.Event) -> None:
    client = SyncTerpClient(port=port, user=f"cworker{idx}",
                            retry=_retry(seed, idx))
    if tally.attempt(client.connect) is None:
        return
    oid = None
    for r in range(rounds):
        if stop_early.is_set():
            break
        tally.attempt(lambda: client.attach(name))
        if oid is None:
            oid = tally.attempt(lambda: client.pmalloc(name, 16))
        if oid is not None:
            tally.attempt(
                lambda: client.write_u64(oid, idx * 1_000 + r))
            tally.attempt(lambda: client.read_u64(oid))
        tally.attempt(lambda: client.psync(name))
        tally.attempt(lambda: client.detach(name))
    tally.attempt(client.goodbye)
    client.close()


def _shard_audit(host: str, port: int) -> Dict[str, Any]:
    """Pull one shard's audit state over the wire (sessionless)."""
    with SyncTerpClient(host=host, port=port) as direct:
        trace = direct.call("trace", limit=65536)
        metrics = direct.call("metrics")
    return {
        "events": trace["audit"],
        "open_windows": trace["open_windows"],
        "summary": metrics["audit"],
    }


def run_cluster_chaos(seed: int, *, shards: int = 2,
                      workers: int = 4, rounds: int = 6,
                      session_ew_ns: int = DEFAULT_EW_NS,
                      sweep_period_ns: int = DEFAULT_SWEEP_NS,
                      kill: bool = True,
                      pool_dir: Optional[str] = None
                      ) -> ClusterChaosResult:
    """One seeded kill-a-shard run; returns the full verdict."""
    result = ClusterChaosResult(seed=seed, shards=shards)
    own_dir = pool_dir is None
    if own_dir:
        pool_dir = tempfile.mkdtemp(prefix="terpd-cluster-chaos-")
    config = ClusterConfig(
        shards=shards, pool_dir=pool_dir, seed=seed,
        session_ew_ns=session_ew_ns,
        sweep_period_ns=sweep_period_ns,
        session_linger_ns=10_000_000_000)
    names = _pick_names(seed, shards, workers)
    tallies = [_Tally() for _ in range(workers)]
    stop_early = threading.Event()
    victim = 0 if kill else None
    result.victim = victim
    supervisor = ClusterSupervisor(config)
    try:
        supervisor.start()
        port = supervisor.front_port
        with SyncTerpClient(port=port, user="admin") as admin:
            for name in names:
                admin.create(name, 1 << 20, mode=0o666)
        # The squatter holds an attachment on a victim-owned PMO
        # through the SIGKILL: recovery must force-close it and
        # attribute the closure to the outage, never hand it back.
        squatter = SyncTerpClient(port=port, user="squatter",
                                  retry=_retry(seed, 99))
        squatter.connect()
        squat_name = names[victim if victim is not None else 0]
        squatter.attach(squat_name)
        threads = [
            threading.Thread(
                target=_worker, name=f"cchaos-w{i}",
                args=(i, port, seed, names[i], rounds, tallies[i],
                      stop_early))
            for i in range(workers)]
        for thread in threads:
            thread.start()
        if victim is not None:
            # Let traffic build, then pull the plug on one shard.
            time.sleep(0.15)
            supervisor.kill_shard(victim)
            if not supervisor.wait_for_shard(victim, timeout_s=20.0):
                result.unexpected.append(
                    f"shard {victim} never restarted")
                stop_early.set()
        for thread in threads:
            thread.join(timeout=60.0)
        for thread in threads:
            if thread.is_alive():
                result.unexpected.append(
                    f"worker {thread.name} hung past deadline")
        # The squatter's window was force-closed by recovery; its own
        # late detach must be the defined silent no-op or typed error.
        squat_tally = _Tally()
        squat_tally.attempt(lambda: squatter.detach(squat_name))
        squat_tally.attempt(squatter.goodbye)
        squatter.close()
        result.unexpected.extend(squat_tally.unexpected)
        # Drain: wait for every shard's sweeper to close whatever the
        # workers left open, then photograph the timelines.
        audits: Dict[int, Dict[str, Any]] = {}
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            audits = {
                s: _shard_audit(config.host, shard_port)
                for s, shard_port in
                enumerate(supervisor.shard_ports)}
            if not any(a["open_windows"] for a in audits.values()):
                break
            time.sleep(sweep_period_ns / 1e9 * 2)
        result.victim_restarts = 0 if victim is None else \
            supervisor.state()["shards"][victim]["restarts"]
    except Exception as exc:          # noqa: BLE001 — verdict, not crash
        result.unexpected.append(
            f"harness: {type(exc).__name__}: {exc}")
        return result
    finally:
        supervisor.stop()
        if own_dir:
            shutil.rmtree(pool_dir, ignore_errors=True)

    # -- the two-scope invariant check ----------------------------------
    downtime_ns = 0
    slack_ns = 6 * sweep_period_ns + SCHEDULING_SLACK_NS
    result.slack_ns = slack_ns
    merged: List[Dict[str, Any]] = []
    for shard, audit in audits.items():
        events = audit["events"]
        restarts = [e for e in events if e.get("kind") == RESTART]
        downtime_ns += sum(e.get("duration_ns") or 0
                           for e in restarts)
        summary = audit["summary"]
        # A wrapped ring would make pairing a false alarm; with the
        # 64Ki-event ring this workload never wraps, but stay honest.
        per_pmo = summary if summary.get("events", 0) <= len(events) \
            else None
        result.per_shard[shard] = check_events(
            events, ew_budget_ns=session_ew_ns, slack_ns=slack_ns,
            summary=per_pmo, open_windows=audit["open_windows"])
        forced = [e for e in events
                  if e.get("kind") == "forced-detach"]
        result.forced_detach_events += len(forced)
        reasons = {str(e.get("reason", "")) for e in forced}
        if shard == victim:
            result.victim_outage_attributed = any(
                "outage" in r or "restart" in r for r in reasons)
        for event in events:
            if event.get("kind") == RESTART:
                continue
            clone = dict(event)
            clone["entity"] = (event.get("entity") or 0) + \
                (shard << 32)
            merged.append(clone)
    result.survivors_clean = all(
        not any(e.get("kind") == RESTART
                for e in audits[s]["events"])
        and not any("outage" in str(e.get("reason", ""))
                    or "restart" in str(e.get("reason", ""))
                    for e in audits[s]["events"]
                    if e.get("kind") == "forced-detach")
        for s in audits if s != victim)
    merged.sort(key=lambda e: e.get("at_ns", 0))
    # Globally: I1-I5 on the merged timeline.  Restart events are
    # filtered (I6 is per-process) and the outage is granted to every
    # window as slack instead — conservative, but the victim's own
    # I6 ran above with the precise per-window accounting.
    result.global_report = check_events(
        merged, ew_budget_ns=session_ew_ns,
        slack_ns=slack_ns + downtime_ns,
        open_windows=[w for a in audits.values()
                      for w in a["open_windows"]])
    for tally in tallies:
        result.requests_ok += tally.ok
        result.requests_failed += tally.failed
        result.unexpected.extend(tally.unexpected)
        for kind, count in tally.by_kind.items():
            result.failures_by_kind[kind] = \
                result.failures_by_kind.get(kind, 0) + count
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.cluster_chaos",
        description="Kill one shard of a live terpd cluster mid-"
                    "traffic; exit 0 iff invariants I1-I6 held per "
                    "shard and globally.")
    parser.add_argument("--seed", default="random",
                        help="integer seed, or 'random' (default)")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--rounds", type=int, default=6,
                        help="attach/write/read/psync/detach rounds "
                             "per worker")
    parser.add_argument("--no-kill", action="store_true",
                        help="run the same workload without killing "
                             "a shard (invariants only)")
    parser.add_argument("--out", default=None,
                        help="write the full verdict to this JSON "
                             "file")
    args = parser.parse_args(argv)
    if args.seed == "random":
        seed = int.from_bytes(os.urandom(4), "big")
    else:
        seed = int(args.seed)
    result = run_cluster_chaos(seed, shards=args.shards,
                               workers=args.workers,
                               rounds=args.rounds,
                               kill=not args.no_kill)
    print(result.describe())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2)
        print(f"verdict written to {args.out}")
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
