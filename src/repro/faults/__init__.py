"""Deterministic fault injection and the chaos/invariant harness.

Three pieces:

* :mod:`repro.faults.plan` — :class:`FaultPlan`: seeded, declarative
  injection rules fired at registered sites across the whole stack
  (library, arch engine, terpd server).
* :mod:`repro.faults.invariants` — the temporal-protection theorem as
  executable checks over the audit timeline (I1-I5).
* :mod:`repro.faults.chaos` — ``run_chaos``: one seeded faulted run of
  a multi-session terpd workload, verdict included.  Also the
  ``python -m repro.faults.chaos`` CLI.
"""

from repro.faults.invariants import (
    InvariantReport, Violation, check_events, check_timeline)
from repro.faults.plan import (
    NO_FAULTS, SITES, FaultPlan, FaultRule, Injection)

__all__ = [
    "FaultPlan", "FaultRule", "Injection", "NO_FAULTS", "SITES",
    "InvariantReport", "Violation", "check_events", "check_timeline",
]
