"""Seeded, deterministic fault injection: rules, plans, and sites.

A :class:`FaultPlan` is the single chaos source for a whole stack:
the PMO library, the arch engine, and the terpd server each hold a
reference to the same plan and call :meth:`FaultPlan.fire` at their
registered *injection sites*.  A site is a dotted string naming the
place in the stack where a failure may be injected:

==========================  ================================================
site                        effect when a rule fires
==========================  ================================================
``lib.storage_write``       the checked write raises :class:`InjectedFault`
                            (kind ``error``) or :class:`InjectedCrash`
                            (kind ``crash`` — the terpd server treats it
                            as the daemon dying mid-request)
``lib.psync_stall``         ``psync`` sleeps ``delay_ns`` before running
``engine.sweep_stall``      one sweeper pass is skipped entirely
``engine.buffer_full``      attach fails as if the circular buffer were
                            full (transient, retryable)
``engine.domain_exhausted``  attach fails as if the MPK key pool were
                            exhausted (transient, retryable)
``server.conn_drop``        the connection is severed (kind ``before``:
                            the request is never executed; kind
                            ``after``: executed, response never sent)
``server.partial_frame``    half a response frame is written, then the
                            connection is severed
``server.delay_response``   the response is delayed ``delay_ns``
``server.session_crash``    the session is killed outright (windows
                            force-closed, no resume possible)
==========================  ================================================

Determinism: every rule owns its own ``random.Random`` seeded from
``(plan seed, rule index, site)``, so whether a given *arrival* at a
site fires depends only on the plan seed and the arrival order at that
site — never on wall-clock time or on traffic at other sites.  Replays
of a single-client schedule are exactly reproducible; multi-client
schedules are reproducible up to request interleaving (the plan's
decisions for any given interleaving are fixed).

Every fire is recorded in :attr:`FaultPlan.injections` so a failing
test can print the *minimal plan* — the rules that actually fired —
alongside the seed for replay.
"""

from __future__ import annotations

import json
import random
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.errors import TerpError

__all__ = ["FaultRule", "FaultPlan", "Injection", "NO_FAULTS", "SITES"]

#: The registered injection sites (documentation + validation).
SITES = (
    "lib.storage_write",
    "lib.psync_stall",
    "engine.sweep_stall",
    "engine.buffer_full",
    "engine.domain_exhausted",
    "server.conn_drop",
    "server.partial_frame",
    "server.delay_response",
    "server.session_crash",
    "store.torn_page",
    "store.bit_rot",
    "store.commit_stall",
    "repl.ship_stall",
)


@dataclass(frozen=True)
class FaultRule:
    """One declarative injection rule.

    ``site``         where to inject (one of :data:`SITES`).
    ``kind``         site-specific flavour (``error``/``crash`` for
                     storage writes, ``before``/``after`` for
                     connection drops, ``stall`` for delays).
    ``probability``  chance that an eligible arrival fires.
    ``count``        total fires allowed (``None`` = unlimited).
    ``after``        eligible arrivals skipped before the first fire
                     may happen (crash-torture's "K-th write").
    ``delay_ns``     stall length for delay-flavoured sites.
    """

    site: str
    kind: str = "error"
    probability: float = 1.0
    count: Optional[int] = None
    after: int = 0
    delay_ns: int = 0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise TerpError(f"unknown injection site {self.site!r}; "
                            f"known sites: {', '.join(SITES)}")
        if not 0.0 <= self.probability <= 1.0:
            raise TerpError("probability must be within [0, 1]")
        if self.count is not None and self.count < 0:
            raise TerpError("count must be non-negative")
        if self.after < 0:
            raise TerpError("after must be non-negative")
        if self.delay_ns < 0:
            raise TerpError("delay_ns must be non-negative")

    def to_dict(self) -> Dict[str, Any]:
        return {"site": self.site, "kind": self.kind,
                "probability": self.probability, "count": self.count,
                "after": self.after, "delay_ns": self.delay_ns}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultRule":
        return cls(site=str(data["site"]),
                   kind=str(data.get("kind", "error")),
                   probability=float(data.get("probability", 1.0)),
                   count=data.get("count"),
                   after=int(data.get("after", 0)),
                   delay_ns=int(data.get("delay_ns", 0)))


@dataclass(frozen=True)
class Injection:
    """One fault that actually fired: the replay/audit record."""

    seq: int
    site: str
    kind: str
    rule_index: int
    arrival: int
    delay_ns: int = 0


@dataclass
class _RuleState:
    """Mutable per-rule bookkeeping (the rule itself is frozen)."""

    rule: FaultRule
    index: int
    rng: random.Random
    arrivals: int = 0
    fires: int = 0

    def exhausted(self) -> bool:
        return self.rule.count is not None and \
            self.fires >= self.rule.count


@dataclass
class FaultPlan:
    """A seeded set of injection rules shared by a whole stack.

    Thread-safe: the terpd event loop, client threads driving the
    library directly, and the sweeper may all hit sites concurrently.
    ``fire`` is the only hot-path entry point; with no rules for a
    site it is a dictionary miss and a ``None`` return.
    """

    seed: int = 0
    rules: List[FaultRule] = field(default_factory=list)
    #: called with each :class:`Injection` as it fires — the terpd
    #: server wires this to the audit timeline so injected faults are
    #: first-class events in the exposure record.
    on_fire: Optional[Callable[[Injection], None]] = None

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._armed = True
        self._seq = 0
        self.injections: List[Injection] = []
        self._by_site: Dict[str, List[_RuleState]] = {}
        for index, rule in enumerate(self.rules):
            state = _RuleState(
                rule=rule, index=index,
                rng=random.Random(f"{self.seed}:{index}:{rule.site}"))
            self._by_site.setdefault(rule.site, []).append(state)

    # -- arming (the crash-torture harness scopes injection windows) ------

    def disarm(self) -> None:
        """Suspend all injection (arrivals are not even counted)."""
        with self._lock:
            self._armed = False

    def arm(self) -> None:
        with self._lock:
            self._armed = True

    # -- the hot path ------------------------------------------------------

    def fire(self, site: str) -> Optional[FaultRule]:
        """One arrival at ``site``; the matching rule if a fault fires.

        Rules are consulted in declaration order; the first that fires
        wins (its :class:`Injection` is recorded and ``on_fire`` runs).
        """
        states = self._by_site.get(site)
        if not states:
            return None
        fired_rule: Optional[FaultRule] = None
        injection: Optional[Injection] = None
        with self._lock:
            if not self._armed:
                return None
            for state in states:
                rule = state.rule
                state.arrivals += 1
                if state.exhausted():
                    continue
                if state.arrivals <= rule.after:
                    continue
                if rule.probability < 1.0 and \
                        state.rng.random() >= rule.probability:
                    continue
                state.fires += 1
                self._seq += 1
                injection = Injection(
                    seq=self._seq, site=site, kind=rule.kind,
                    rule_index=state.index,
                    arrival=state.arrivals, delay_ns=rule.delay_ns)
                self.injections.append(injection)
                fired_rule = rule
                break
            hook = self.on_fire
        if injection is not None and hook is not None:
            hook(injection)
        return fired_rule

    # -- reporting ---------------------------------------------------------

    def fired(self, site: Optional[str] = None) -> List[Injection]:
        """Injections so far, optionally for one site."""
        with self._lock:
            records = list(self.injections)
        if site is not None:
            records = [r for r in records if r.site == site]
        return records

    def minimal(self) -> List[FaultRule]:
        """The rules that actually fired — the minimal replay plan."""
        with self._lock:
            indices = sorted({r.rule_index for r in self.injections})
        return [self.rules[i] for i in indices]

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            injections = [vars(r) for r in self.injections]
        return {"seed": self.seed,
                "rules": [r.to_dict() for r in self.rules],
                "injections": injections}

    def describe(self) -> str:
        """The seed + minimal plan as replayable JSON (for failures)."""
        return json.dumps({
            "seed": self.seed,
            "minimal_plan": [r.to_dict() for r in self.minimal()],
            "fired": len(self.fired()),
        }, indent=2)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls(seed=int(data.get("seed", 0)),
                   rules=[FaultRule.from_dict(r)
                          for r in data.get("rules", [])])


#: The shared do-nothing plan: ``fire`` is a dict miss, nothing more.
NO_FAULTS = FaultPlan(seed=0, rules=[])
