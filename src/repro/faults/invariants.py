"""The temporal-protection theorem, checked against the audit record.

The paper's central temporal claim (Section 3): under EW-Conscious
semantics no PMO stays attached past its exposure-window target, no
matter what threads, sweeps, or failures do.  The PR-2 audit timeline
records every attach/detach/forced-detach with entity, PMO, and held
duration; this module *replays* that record after a (possibly heavily
faulted) run and asserts the invariants the theorem implies:

I1  **bounded exposure** — every closed held-window is at most the
    enforced EW budget plus the sweep slack (the sweeper only runs
    every period, and injected sweeper stalls widen the slack — they
    may *delay* enforcement, never lose it);
I2  **no overlap** — a given entity never opens a second window on a
    PMO while its first is still open (per-thread EWs never overlap);
I3  **attributed force** — every forced-detach event carries a
    non-empty reason (an operator can always answer *who closed this
    window and why*);
I4  **exact pairing** — the cumulative per-PMO exposure statistics
    match what re-pairing the attach/detach events yields, exactly
    (the aggregate and the event stream cannot drift apart);
I5  **eventual closure** — at the chosen end-of-run instant, no
    window is still open;
I6  **exposure bounded across restart** — a ``restart`` event marks a
    whole-process crash whose ``duration_ns`` is the outage.  Windows
    that were open across the outage get the downtime added to their
    I1 allowance (the clock counted, the enforcement could not run),
    but in exchange every such window must be closed *forced* within
    the slack after the restart instant: recovery may never hand a
    pre-crash window back to its holder.
I7  **zero acknowledged-write loss** — every write whose ``psync``
    the client saw acked before the primary died is present on the
    promoted standby.  Checked by :func:`check_acked_writes` over
    per-writer monotone counters: the value read back after failover
    must be at least the last value whose durability ack the writer
    received (a *later*, never-acked write surviving is allowed —
    only losing an acked one is a violation).

``check_events`` works on a plain event list (synthetic timelines in
tests); ``check_timeline`` pulls events, summary, and open windows
from a live :class:`~repro.obs.audit.AuditTimeline` and skips the
exact-pairing comparison if the ring has wrapped (the events needed
for re-pairing have rolled off).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.obs.audit import (
    ATTACH, DETACH, FORCED_DETACH, RESTART, AuditTimeline)

__all__ = ["Violation", "InvariantReport", "check_events",
           "check_timeline", "check_acked_writes"]


@dataclass(frozen=True)
class Violation:
    """One invariant breach, with enough context to debug it."""

    invariant: str            # "bounded-exposure", "overlap", ...
    detail: str
    event: Optional[Dict[str, Any]] = None

    def __str__(self) -> str:
        suffix = f" | event={self.event}" if self.event else ""
        return f"[{self.invariant}] {self.detail}{suffix}"


@dataclass
class InvariantReport:
    """The verdict of one replay of the audit record."""

    violations: List[Violation] = field(default_factory=list)
    windows_checked: int = 0
    events_checked: int = 0
    max_held_ns: int = 0
    pairing_checked: bool = True

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        if self.ok:
            return (f"OK: {self.windows_checked} windows / "
                    f"{self.events_checked} events, "
                    f"max held {self.max_held_ns / 1e6:.3f}ms")
        lines = [f"{len(self.violations)} violation(s) over "
                 f"{self.windows_checked} windows:"]
        lines.extend(str(v) for v in self.violations)
        return "\n".join(lines)


def check_events(events: List[Dict[str, Any]], *,
                 ew_budget_ns: Optional[int] = None,
                 slack_ns: int = 0,
                 summary: Optional[Dict[str, Any]] = None,
                 open_windows: Optional[List[Dict[str, Any]]] = None,
                 ) -> InvariantReport:
    """Replay audit events and check invariants I1-I6.

    ``ew_budget_ns``  the enforced per-entity budget; ``None`` skips
                      the bounded-exposure check (I1).
    ``slack_ns``      enforcement slack added on top of the budget —
                      at least the sweep period, plus one period per
                      injected sweeper stall, plus scheduling jitter.
    ``summary``       an :meth:`AuditTimeline.summary` dict; when
                      given, per-PMO cumulative stats are re-derived
                      from the events and compared exactly (I4).
    ``open_windows``  :meth:`AuditTimeline.open_windows` at end of
                      run; non-empty is a violation (I5).
    """
    report = InvariantReport()
    open_at: Dict[Tuple[Optional[int], Hashable], int] = {}
    derived: Dict[Hashable, Dict[str, Any]] = {}
    #: restarts seen so far: (restart at_ns, downtime_ns)
    restarts: List[Tuple[int, int]] = []
    #: windows open at the last restart: key -> restart at_ns (I6)
    pending_restart: Dict[Tuple[Optional[int], Hashable], int] = {}

    def stats_for(pmo_id: Hashable, pmo_name: Any) -> Dict[str, Any]:
        st = derived.get(pmo_id)
        if st is None:
            st = {"pmo": pmo_name, "attaches": 0, "detaches": 0,
                  "forced_detaches": 0, "windows": 0,
                  "held_total_ns": 0, "held_max_ns": 0}
            derived[pmo_id] = st
        elif st["pmo"] is None and pmo_name is not None:
            st["pmo"] = pmo_name
        return st

    for event in events:
        report.events_checked += 1
        kind = event.get("kind")
        key = (event.get("entity"), event.get("pmo_id"))
        at_ns = event.get("at_ns", 0)
        if kind == ATTACH:
            stats_for(key[1], event.get("pmo"))["attaches"] += 1
            if key in open_at:
                report.violations.append(Violation(
                    "overlap",
                    f"entity {key[0]} attached PMO {key[1]!r} at "
                    f"{at_ns} while its window from {open_at[key]} "
                    f"was still open", event))
            else:
                open_at[key] = at_ns
        elif kind in (DETACH, FORCED_DETACH):
            forced = kind == FORCED_DETACH
            st = stats_for(key[1], event.get("pmo"))
            st["forced_detaches" if forced else "detaches"] += 1
            if forced and not event.get("reason"):
                report.violations.append(Violation(
                    "attributed-force",
                    f"forced detach of PMO {key[1]!r} by entity "
                    f"{key[0]} carries no reason", event))
            since = open_at.pop(key, None)
            duration = event.get("duration_ns")
            if since is None:
                # A detach that closed nothing is only legitimate as
                # the defined silent no-op (duration is None).
                if duration is not None:
                    report.violations.append(Violation(
                        "pairing",
                        f"detach of PMO {key[1]!r} by entity {key[0]} "
                        f"reports duration {duration} but no window "
                        f"was open", event))
                continue
            held = max(0, at_ns - since)
            if duration is None or duration != held:
                report.violations.append(Violation(
                    "pairing",
                    f"detach of PMO {key[1]!r} by entity {key[0]} "
                    f"reports duration {duration!r}, replay says "
                    f"{held}", event))
            report.windows_checked += 1
            st["windows"] += 1
            st["held_total_ns"] += held
            st["held_max_ns"] = max(st["held_max_ns"], held)
            report.max_held_ns = max(report.max_held_ns, held)
            # I6 (half 1): a window open across an outage gets the
            # downtime added to its allowance — the exposure clock
            # counted through the crash, the sweeper could not run.
            downtime = sum(d for r_at, d in restarts
                           if since < r_at <= at_ns)
            if ew_budget_ns is not None and \
                    held > ew_budget_ns + slack_ns + downtime:
                report.violations.append(Violation(
                    "bounded-exposure",
                    f"entity {key[0]} held PMO {key[1]!r} for "
                    f"{held / 1e6:.3f}ms, budget "
                    f"{ew_budget_ns / 1e6:.3f}ms + slack "
                    f"{slack_ns / 1e6:.3f}ms + outage "
                    f"{downtime / 1e6:.3f}ms", event))
            # I6 (half 2): recovery must have closed it *forced*,
            # promptly after the restart — never handed it back.
            restart_at = pending_restart.pop(key, None)
            if restart_at is not None:
                if not forced:
                    report.violations.append(Violation(
                        "restart-exposure",
                        f"window of entity {key[0]} on PMO {key[1]!r} "
                        f"was open across a restart but closed "
                        f"voluntarily — recovery handed access back",
                        event))
                elif at_ns > restart_at + slack_ns:
                    report.violations.append(Violation(
                        "restart-exposure",
                        f"window of entity {key[0]} on PMO {key[1]!r} "
                        f"open across the restart at {restart_at} was "
                        f"not force-closed until {at_ns} "
                        f"(> slack {slack_ns / 1e6:.3f}ms after)",
                        event))
        elif kind == RESTART:
            restarts.append((at_ns, event.get("duration_ns") or 0))
            for key_open in open_at:
                pending_restart[key_open] = at_ns
        # sweep / fault events carry no window state to replay

    for key, restart_at in pending_restart.items():
        if key in open_at:
            report.violations.append(Violation(
                "restart-exposure",
                f"window of entity {key[0]} on PMO {key[1]!r} was "
                f"open across the restart at {restart_at} and never "
                f"closed"))
    if summary is not None:
        _check_pairing(report, derived, summary)
    if open_windows:
        for window in open_windows:
            report.violations.append(Violation(
                "eventual-closure",
                f"window of entity {window.get('entity')} on PMO "
                f"{window.get('pmo_id')!r} still open since "
                f"{window.get('since_ns')}", dict(window)))
    return report


def _check_pairing(report: InvariantReport,
                   derived: Dict[Hashable, Dict[str, Any]],
                   summary: Dict[str, Any]) -> None:
    """I4: derived per-PMO stats must equal the cumulative summary."""
    recorded: Dict[str, Dict[str, Any]] = summary.get("per_pmo", {})
    fields = ("attaches", "detaches", "forced_detaches", "windows",
              "held_total_ns", "held_max_ns")
    derived_by_name = {
        str(st["pmo"] if st["pmo"] is not None else pmo_id): st
        for pmo_id, st in derived.items()}
    for name in sorted(set(recorded) | set(derived_by_name)):
        want = derived_by_name.get(name)
        have = recorded.get(name)
        if want is None or have is None:
            report.violations.append(Violation(
                "exact-pairing",
                f"PMO {name!r} present in "
                f"{'summary' if want is None else 'events'} only"))
            continue
        for field_name in fields:
            if want[field_name] != have.get(field_name):
                report.violations.append(Violation(
                    "exact-pairing",
                    f"PMO {name!r} {field_name}: events say "
                    f"{want[field_name]}, summary says "
                    f"{have.get(field_name)}"))


def check_timeline(audit: AuditTimeline, *,
                   ew_budget_ns: Optional[int] = None,
                   slack_ns: int = 0,
                   at_end: bool = True) -> InvariantReport:
    """Replay a live audit timeline against invariants I1-I6.

    If the ring has wrapped (``events_recorded > capacity``) the
    event stream is incomplete, so the overlap and exact-pairing
    checks would produce false positives — they are skipped and
    ``pairing_checked`` is set ``False`` on the report.
    """
    events = audit.events()
    wrapped = audit.events_recorded > audit.capacity
    if wrapped:
        report = InvariantReport(pairing_checked=False)
        # Degraded I6: without full pairing, windows open across an
        # outage cannot be matched to their attach — grant every
        # window the total retained downtime as allowance.
        downtime = sum(e.get("duration_ns") or 0 for e in events
                       if e["kind"] == RESTART)
        slack_ns = slack_ns + downtime
        # Bounded exposure + attribution still hold per event.
        for event in events:
            report.events_checked += 1
            if event["kind"] == FORCED_DETACH and not event["reason"]:
                report.violations.append(Violation(
                    "attributed-force",
                    f"forced detach of PMO {event['pmo_id']!r} "
                    f"carries no reason", event))
            duration = event.get("duration_ns")
            if event["kind"] in (DETACH, FORCED_DETACH) and \
                    duration is not None:
                report.windows_checked += 1
                report.max_held_ns = max(report.max_held_ns, duration)
                if ew_budget_ns is not None and \
                        duration > ew_budget_ns + slack_ns:
                    report.violations.append(Violation(
                        "bounded-exposure",
                        f"window of {duration / 1e6:.3f}ms exceeds "
                        f"budget + slack", event))
    else:
        report = check_events(
            events, ew_budget_ns=ew_budget_ns, slack_ns=slack_ns,
            summary=audit.summary(),
            open_windows=audit.open_windows() if at_end else None)
    return report


def check_acked_writes(observed: Dict[Hashable, Optional[int]],
                       acked: Dict[Hashable, int],
                       ) -> InvariantReport:
    """Invariant I7: zero acknowledged-write loss across failover.

    ``acked``     per writer, the *last value* whose ``psync`` ack the
                  client received before the primary died.  Writers
                  write monotonically increasing values, so one
                  integer summarises everything durably promised.
    ``observed``  per writer, the value read back from the promoted
                  standby (``None``: the location is gone entirely).

    The promoted standby may legitimately hold *more* than was acked
    (a later write whose ack never reached the client still committed
    and shipped) — I7 only forbids holding less.
    """
    report = InvariantReport(pairing_checked=False)
    for writer, promised in sorted(acked.items(), key=str):
        report.events_checked += 1
        value = observed.get(writer)
        if value is None:
            report.violations.append(Violation(
                "acked-write-loss",
                f"writer {writer!r}: value {promised} was acked "
                f"durable, but the location is missing after "
                f"failover"))
        elif value < promised:
            report.violations.append(Violation(
                "acked-write-loss",
                f"writer {writer!r}: last acked value {promised}, "
                f"but the promoted standby reads back {value}"))
    return report
