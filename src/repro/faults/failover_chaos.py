"""Failover chaos: SIGKILL a replicated primary, promote, check I1-I7.

``run_failover_chaos(seed)`` is the zero-acknowledged-write-loss
property quantified over seeds:

1. stand up a **real two-process pair** — a durable primary
   (``python -m repro.service --replicate-to``) shipping every
   committed journal batch semi-synchronously to a warm standby
   (``python -m repro.replication``) — with seed-drawn group-commit
   window and kill timing;
2. drive writer threads through retry clients: each writer commits a
   strictly increasing counter via ``write_u64`` + ``psync`` and
   tallies the highest value whose psync was *acknowledged*;
3. SIGKILL the primary mid-traffic (group commits are in flight, so
   the kill lands inside the commit/ship window), wait a seed-drawn
   outage, and promote the standby onto the primary's port with a
   ``promote`` frame — exactly what the cluster supervisor sends;
4. writers ride out the outage through typed :class:`ConnectionLost`
   retry, resume against the promoted daemon, and keep committing;
5. the verdict replays the promoted daemon's audit timeline — the
   *merged* pre/post-crash history, because promotion replays the
   mirrored session journal with original timestamps — against
   invariants I1-I6 (:func:`repro.faults.invariants.check_events`),
   and checks **I7**: every writer's final read-back from the
   promoted daemon must be at least its highest acknowledged value
   (:func:`repro.faults.invariants.check_acked_writes`).

The promoted daemon must carry a restart event and outage-attributed
forced detaches for the windows that straddled the kill; every client
request must be acknowledged or typed-failed.

Replay any failure with ``python -m repro.faults.failover_chaos
--seed N``; run a matrix with ``--matrix 40``.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import re
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional, Tuple

from repro.faults.chaos import SCHEDULING_SLACK_NS, _Tally
from repro.faults.invariants import (
    InvariantReport, check_acked_writes, check_events)
from repro.obs.audit import RESTART
from repro.replication.wire import recv_msg, send_msg
from repro.service.client import SyncTerpClient
from repro.service.retry import RetryPolicy

#: Generous per-session budget: two subprocesses plus writer threads
#: share the host, and the outage itself must not exhaust a window's
#: allowance before recovery attributes it.
DEFAULT_EW_NS = 400_000_000
DEFAULT_SWEEP_NS = 20_000_000

_STANDBY_RE = re.compile(r"standby listening on [^:]+:(\d+)")
_PRIMARY_RE = re.compile(r"terpd serving on tcp://[^:]+:(\d+)")
_STARTUP_TIMEOUT_S = 30.0


def _retry(seed: int, idx: int) -> RetryPolicy:
    """Backoff wide enough to ride out kill -> promote, not just a
    dropped frame."""
    return RetryPolicy(max_retries=10, base_delay_s=0.01,
                       multiplier=2.0, max_delay_s=0.25,
                       seed=seed * 263 + idx)


@dataclass
class FailoverChaosResult:
    """The verdict of one seeded kill-the-primary run."""

    seed: int
    report: InvariantReport = field(default_factory=InvariantReport)
    i7_report: InvariantReport = field(
        default_factory=InvariantReport)
    acked: Dict[int, int] = field(default_factory=dict)
    observed: Dict[int, Optional[int]] = field(default_factory=dict)
    requests_ok: int = 0
    requests_failed: int = 0
    failures_by_kind: Dict[str, int] = field(default_factory=dict)
    promoted: bool = False
    restart_seen: bool = False
    outage_attributed: bool = False
    acks_before_kill: int = 0
    acks_after_promote: int = 0
    repl_status: Dict[str, Any] = field(default_factory=dict)
    slack_ns: int = 0
    downtime_ns: int = 0
    unexpected: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (self.report.ok and self.i7_report.ok
                and not self.unexpected and self.promoted
                and self.restart_seen and self.outage_attributed
                and self.acks_before_kill > 0
                and self.acks_after_promote > 0)

    def describe(self) -> str:
        lines = [
            f"failover chaos seed {self.seed}: "
            f"{'OK' if self.ok else 'FAILED'}",
            f"  requests: {self.requests_ok} ok, "
            f"{self.requests_failed} typed-failed "
            f"({self.failures_by_kind})",
            f"  acks: {self.acks_before_kill} before kill, "
            f"{self.acks_after_promote} after promote; promoted: "
            f"{self.promoted}, restart event: {self.restart_seen}, "
            f"outage attributed: {self.outage_attributed}",
            f"  I7 acked-vs-observed: {self.i7_report.describe()}",
            f"  I1-I6 merged timeline: {self.report.describe()}",
        ]
        if self.unexpected:
            lines.append(f"  UNEXPECTED: {self.unexpected}")
        if not self.ok:
            lines.append("  replay: python -m "
                         "repro.faults.failover_chaos "
                         f"--seed {self.seed}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "requests_ok": self.requests_ok,
            "requests_failed": self.requests_failed,
            "failures_by_kind": self.failures_by_kind,
            "acked": {str(k): v for k, v in self.acked.items()},
            "observed": {str(k): v
                         for k, v in self.observed.items()},
            "acks_before_kill": self.acks_before_kill,
            "acks_after_promote": self.acks_after_promote,
            "promoted": self.promoted,
            "restart_seen": self.restart_seen,
            "outage_attributed": self.outage_attributed,
            "repl_status": self.repl_status,
            "slack_ns": self.slack_ns,
            "downtime_ns": self.downtime_ns,
            "unexpected": self.unexpected,
            "violations": [str(v) for v in self.report.violations],
            "i7_violations": [str(v)
                              for v in self.i7_report.violations],
        }


class _Proc:
    """One captured subprocess: spawn, match a startup line, drain."""

    def __init__(self, argv: List[str]) -> None:
        self.proc = subprocess.Popen(
            argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
            env={**os.environ, "PYTHONUNBUFFERED": "1"})
        self.lines: List[str] = []
        self._drain: Optional[threading.Thread] = None

    def expect(self, pattern: "re.Pattern[str]") -> str:
        """Block until a stdout line matches; then drain in the
        background.  Returns the first capture group."""
        deadline = time.monotonic() + _STARTUP_TIMEOUT_S
        stream: IO[str] = self.proc.stdout  # type: ignore[assignment]
        while time.monotonic() < deadline:
            line = stream.readline()
            if not line:
                raise RuntimeError(
                    f"process exited during startup "
                    f"(rc={self.proc.poll()}): "
                    f"{' '.join(self.lines[-5:])}")
            self.lines.append(line.rstrip())
            match = pattern.search(line)
            if match:
                self._drain = threading.Thread(
                    target=self._drain_loop, args=(stream,),
                    daemon=True)
                self._drain.start()
                return match.group(1)
        raise RuntimeError("startup line never appeared: "
                           f"{' '.join(self.lines[-5:])}")

    def _drain_loop(self, stream: IO[str]) -> None:
        for line in stream:
            self.lines.append(line.rstrip())
            del self.lines[:-50]

    def sigkill(self) -> None:
        os.kill(self.proc.pid, signal.SIGKILL)
        self.proc.wait(timeout=10.0)

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=5.0)


def _writer(idx: int, port: int, seed: int, name: str, oid: Any,
            tally: _Tally, acked: Dict[int, int],
            acked_lock: threading.Lock, killed: threading.Event,
            post_acks: List[int], stop: threading.Event) -> None:
    client = SyncTerpClient(port=port, user=f"fworker{idx}",
                            retry=_retry(seed, idx))
    if tally.attempt(client.connect) is None:
        return
    tally.attempt(lambda: client.attach(name))
    value = idx * 1_000_000
    while not stop.is_set():
        value += 1
        # write_u64/psync return None/0 on success, so wrap them in
        # a sentinel tuple to tell success from a typed failure.
        if tally.attempt(
                lambda: (client.write_u64(oid, value), True)) is None:
            # Forced-detach across the failover (or a dead window):
            # re-attach and resume the counter where it stood.
            tally.attempt(lambda: client.attach(name))
            value -= 1
            continue
        if tally.attempt(
                lambda: (client.psync(name), True)) is not None:
            with acked_lock:
                acked[idx] = value
                if killed.is_set():
                    post_acks[idx] += 1
    tally.attempt(client.goodbye)
    client.close()


def _promote(host: str, repl_port: int, port: int) -> int:
    """Send the supervisor's promote frame; return the serving port."""
    with socket.create_connection((host, repl_port),
                                  timeout=10.0) as sock:
        sock.settimeout(_STARTUP_TIMEOUT_S)
        send_msg(sock, {"t": "promote", "port": port, "service": {}})
        got = recv_msg(sock)
        if got is None or got[0].get("t") != "promoted":
            raise RuntimeError("standby did not confirm promotion")
        return int(got[0]["port"])


def _audit(host: str, port: int) -> Dict[str, Any]:
    with SyncTerpClient(host=host, port=port) as direct:
        trace = direct.call("trace", limit=65536)
        metrics = direct.call("metrics")
    return {"events": trace["audit"],
            "open_windows": trace["open_windows"],
            "summary": metrics["audit"]}


def run_failover_chaos(seed: int, *, writers: int = 3,
                       session_ew_ns: int = DEFAULT_EW_NS,
                       sweep_period_ns: int = DEFAULT_SWEEP_NS,
                       host: str = "127.0.0.1"
                       ) -> FailoverChaosResult:
    """One seeded kill-the-primary run; returns the full verdict."""
    rng = random.Random(seed ^ 0xFA110)
    result = FailoverChaosResult(seed=seed)
    root = tempfile.mkdtemp(prefix="terp-failover-chaos-")
    primary_dir = os.path.join(root, "primary")
    standby_dir = os.path.join(root, "standby")
    # A nonzero, seed-drawn group-commit window keeps commits (and
    # the ship that follows each fsync) in flight when the kill
    # lands, so the SIGKILL genuinely interrupts mid-group-commit.
    commit_us = rng.choice([200, 500, 1000, 2000, 4000])
    name = "failover"
    standby: Optional[_Proc] = None
    primary: Optional[_Proc] = None
    stop = threading.Event()
    killed = threading.Event()
    acked: Dict[int, int] = {}
    acked_lock = threading.Lock()
    post_acks = [0] * writers
    tallies = [_Tally() for _ in range(writers)]
    threads: List[threading.Thread] = []
    try:
        standby = _Proc([
            sys.executable, "-m", "repro.replication",
            "--pool-dir", standby_dir, "--host", host,
            "--listen-port", "0",
            "--session-ew-ms", str(session_ew_ns / 1e6),
            "--sweep-period-ms", str(sweep_period_ns / 1e6),
            "--resume-linger-ms", "10000",
            "--seed", str(seed)])
        repl_port = int(standby.expect(_STANDBY_RE))
        primary = _Proc([
            sys.executable, "-m", "repro.service",
            "--host", host, "--port", "0",
            "--pool-dir", primary_dir,
            "--replicate-to", f"{host}:{repl_port}",
            "--session-ew-ms", str(session_ew_ns / 1e6),
            "--sweep-period-ms", str(sweep_period_ns / 1e6),
            "--resume-linger-ms", "10000",
            "--commit-interval-us", str(commit_us),
            "--seed", str(seed)])
        port = int(primary.expect(_PRIMARY_RE))
        with SyncTerpClient(host=host, port=port,
                            user="admin") as admin:
            admin.create(name, 1 << 20, mode=0o666)
            oids = [admin.pmalloc(name, 16) for _ in range(writers)]
        threads = [
            threading.Thread(
                target=_writer, name=f"failover-w{i}",
                args=(i, port, seed, name, oids[i], tallies[i],
                      acked, acked_lock, killed, post_acks, stop))
            for i in range(writers)]
        for thread in threads:
            thread.start()
        # Let acked traffic build, then pull the plug mid-commit.
        time.sleep(rng.uniform(0.10, 0.35))
        with acked_lock:
            result.acks_before_kill = len(acked)
        primary.sigkill()
        killed.set()
        downtime_s = rng.uniform(0.05, 0.20)
        result.downtime_ns = int(downtime_s * 1e9)
        time.sleep(downtime_s)
        promoted_port = _promote(host, repl_port, port)
        result.promoted = (promoted_port == port)
        if not result.promoted:
            result.unexpected.append(
                f"promoted onto {promoted_port}, wanted {port}")
        # Writers must commit against the promoted daemon before the
        # run counts: wait until every writer lands post-kill acks.
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            if all(n >= 3 for n in post_acks):
                break
            time.sleep(0.02)
        stop.set()
        for thread in threads:
            thread.join(timeout=30.0)
        for thread in threads:
            if thread.is_alive():
                result.unexpected.append(
                    f"writer {thread.name} hung past deadline")
        result.acks_after_promote = sum(post_acks)
        # I7 ground truth: what the promoted daemon serves back.
        with SyncTerpClient(host=host, port=port,
                            user="freader") as reader:
            reader.attach(name, access="r")
            for idx in range(writers):
                try:
                    result.observed[idx] = reader.read_u64(oids[idx])
                except Exception:     # noqa: BLE001 — verdict below
                    result.observed[idx] = None
            reader.detach(name)
            result.repl_status = reader.call("repl_status")
        # Drain: let the sweeper close what the writers left open,
        # then photograph the merged (journal-replayed) timeline.
        audit: Dict[str, Any] = {}
        drain_deadline = time.monotonic() + 10.0
        while time.monotonic() < drain_deadline:
            audit = _audit(host, port)
            if not audit["open_windows"]:
                break
            time.sleep(sweep_period_ns / 1e9 * 2)
    except Exception as exc:          # noqa: BLE001 — verdict, not crash
        result.unexpected.append(
            f"harness: {type(exc).__name__}: {exc}")
        stop.set()
        for thread in threads:
            thread.join(timeout=5.0)
        return result
    finally:
        for proc in (primary, standby):
            if proc is not None:
                proc.stop()
        shutil.rmtree(root, ignore_errors=True)

    with acked_lock:
        result.acked = dict(acked)
    result.i7_report = check_acked_writes(result.observed,
                                          result.acked)
    events = audit["events"]
    result.restart_seen = any(
        e.get("kind") == RESTART for e in events)
    result.outage_attributed = any(
        e.get("kind") == "forced-detach"
        and ("outage" in str(e.get("reason", ""))
             or "restart" in str(e.get("reason", "")))
        for e in events)
    # The restart event itself grants the outage allowance; slack
    # covers sweeper cadence and host scheduling only.
    slack_ns = 6 * sweep_period_ns + SCHEDULING_SLACK_NS
    result.slack_ns = slack_ns
    summary = audit["summary"]
    per_pmo = summary if summary.get("events", 0) <= len(events) \
        else None
    result.report = check_events(
        events, ew_budget_ns=session_ew_ns, slack_ns=slack_ns,
        summary=per_pmo, open_windows=audit["open_windows"])
    for tally in tallies:
        result.requests_ok += tally.ok
        result.requests_failed += tally.failed
        result.unexpected.extend(tally.unexpected)
        for kind, count in tally.by_kind.items():
            result.failures_by_kind[kind] = \
                result.failures_by_kind.get(kind, 0) + count
    return result


def run_matrix(seeds: List[int], *, jobs: int = 4
               ) -> Tuple[List[FailoverChaosResult], bool]:
    """Run a seed matrix with bounded parallelism; returns
    (results ordered by seed, all-ok)."""
    results: Dict[int, FailoverChaosResult] = {}
    lock = threading.Lock()
    pending = list(seeds)

    def drain() -> None:
        while True:
            with lock:
                if not pending:
                    return
                seed = pending.pop(0)
            verdict = run_failover_chaos(seed)
            with lock:
                results[seed] = verdict
            print(verdict.describe(), flush=True)

    pool = [threading.Thread(target=drain, daemon=True)
            for _ in range(max(1, jobs))]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    ordered = [results[s] for s in seeds if s in results]
    return ordered, all(r.ok for r in ordered) and \
        len(ordered) == len(seeds)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.failover_chaos",
        description="SIGKILL a replicated terpd primary mid-group-"
                    "commit, promote its standby, and exit 0 iff "
                    "invariants I1-I7 held (I7: zero acknowledged-"
                    "write loss).")
    parser.add_argument("--seed", default="random",
                        help="integer seed, or 'random' (default)")
    parser.add_argument("--writers", type=int, default=3)
    parser.add_argument("--matrix", type=int, default=None,
                        metavar="N",
                        help="run seeds 0..N-1 instead of one seed")
    parser.add_argument("--jobs", type=int, default=4,
                        help="matrix parallelism "
                             "(default: %(default)s)")
    parser.add_argument("--out", default=None,
                        help="write the full verdict to this JSON "
                             "file")
    args = parser.parse_args(argv)
    if args.matrix is not None:
        results, ok = run_matrix(list(range(args.matrix)),
                                 jobs=args.jobs)
        print(f"failover chaos matrix: {sum(r.ok for r in results)}"
              f"/{args.matrix} seeds OK")
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump([r.to_dict() for r in results], fh,
                          indent=2)
            print(f"verdicts written to {args.out}")
        return 0 if ok else 1
    if args.seed == "random":
        seed = int.from_bytes(os.urandom(4), "big")
    else:
        seed = int(args.seed)
    result = run_failover_chaos(seed, writers=args.writers)
    print(result.describe())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2)
        print(f"verdict written to {args.out}")
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
