"""Chaos harness: one seeded faulted run of a terpd workload.

``run_chaos(seed)`` is the property the theorem test quantifies over:

1. draw a random :class:`FaultPlan` from the seed (``random_plan``);
2. stand up a terpd daemon with tight session budgets, a fast
   sweeper, and the plan wired through every layer;
3. drive a multi-session workload (attach/write/read/psync/detach
   loops, one deliberate budget-overstaying "squatter") with
   retry + circuit-breaker clients;
4. require every request to be *acknowledged or typed-failed* — a
   hang, a silent loss, or an untyped exception fails the run;
5. replay the audit timeline against invariants I1-I6
   (:mod:`repro.faults.invariants`) with a slack derived from the
   faults that actually fired (each sweeper stall delays enforcement
   by one period; injected delays extend windows by their length).

``run_restart_chaos(seed)`` is the kill-and-restart leg: the same
machinery pointed at a durable pool directory, with torn-page faults
injected into the store's home writes, an in-process SIGKILL while a
squatter holds an attachment, an outage longer than the squatter's EW
budget, and a warm restart that must repair, resume, force-detach,
and keep I1-I6 green on the merged pre/post-crash timeline.

Every verdict carries the seed and the minimal fault plan, so any
failure reproduces with ``python -m repro.faults.chaos --seed N``
(add ``--restart`` for the restart leg).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.faults.invariants import InvariantReport, check_timeline
from repro.faults.plan import FaultPlan, FaultRule
from repro.service.client import (
    ConnectionLost, RemoteError, SyncTerpClient)
from repro.service.retry import (
    CircuitBreaker, CircuitOpenError, RetryPolicy)
from repro.service.server import ServiceThread, TerpService

#: Extra bounded-exposure slack for host scheduling jitter: the
#: sweeper is an asyncio task on a shared CI box, not a hardware
#: timer, so a pass can land arbitrarily late under load.
SCHEDULING_SLACK_NS = 250_000_000


def random_plan(seed: int) -> FaultPlan:
    """A randomized-but-seeded fault plan covering every layer.

    Each rule is bounded (small ``count``, short ``delay_ns``) so a
    run always terminates; which rules exist and how eager they are
    is drawn from the seed.
    """
    rng = random.Random(seed)
    rules: List[FaultRule] = []

    def maybe(chance: float, make) -> None:
        if rng.random() < chance:
            rules.append(make())

    maybe(0.7, lambda: FaultRule(
        "lib.storage_write", "error",
        probability=round(0.02 + 0.10 * rng.random(), 3),
        count=rng.randint(1, 3)))
    maybe(0.5, lambda: FaultRule(
        "lib.psync_stall", "stall",
        probability=round(0.05 + 0.15 * rng.random(), 3),
        count=2, delay_ns=rng.randrange(200_000, 2_000_000)))
    maybe(0.6, lambda: FaultRule(
        "engine.sweep_stall", "stall", probability=0.25,
        count=rng.randint(1, 3)))
    maybe(0.4, lambda: FaultRule(
        "engine.buffer_full", "error", probability=0.05, count=2))
    maybe(0.4, lambda: FaultRule(
        "engine.domain_exhausted", "error", probability=0.05, count=2))
    maybe(0.6, lambda: FaultRule(
        "server.conn_drop", "before", probability=0.04,
        count=rng.randint(1, 2)))
    maybe(0.5, lambda: FaultRule(
        "server.partial_frame", "after", probability=0.04,
        count=rng.randint(1, 2)))
    maybe(0.5, lambda: FaultRule(
        "server.delay_response", "stall", probability=0.06, count=3,
        delay_ns=rng.randrange(200_000, 2_000_000)))
    maybe(0.25, lambda: FaultRule(
        "server.session_crash", "crash", probability=0.02, count=1))
    return FaultPlan(seed=seed, rules=rules)


@dataclass
class ChaosResult:
    """The verdict of one seeded chaos run."""

    seed: int
    report: InvariantReport
    requests_ok: int = 0
    requests_failed: int = 0
    replayed_events: int = 0
    failures_by_kind: Dict[str, int] = field(default_factory=dict)
    faults_by_site: Dict[str, int] = field(default_factory=dict)
    #: fault events actually present on the audit timeline, by site
    #: (may undercount faults_by_site if the ring wrapped).
    faults_in_audit: Dict[str, int] = field(default_factory=dict)
    resumes: int = 0
    sessions_lost: int = 0
    forced_detach_events: int = 0
    slack_ns: int = 0
    #: exceptions that were NOT typed failures — always a bug.
    unexpected: List[str] = field(default_factory=list)
    plan: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.report.ok and not self.unexpected

    def describe(self) -> str:
        lines = [
            f"chaos seed {self.seed}: "
            f"{'OK' if self.ok else 'FAILED'}",
            f"  requests: {self.requests_ok} ok, "
            f"{self.requests_failed} typed-failed "
            f"({self.failures_by_kind})",
            f"  faults fired: {self.faults_by_site}",
            f"  resumes: {self.resumes}, sessions lost: "
            f"{self.sessions_lost}, forced-detach events: "
            f"{self.forced_detach_events}",
            f"  invariants: {self.report.describe()}",
        ]
        if self.unexpected:
            lines.append(f"  UNEXPECTED: {self.unexpected}")
        if not self.ok:
            lines.append("  replay: python -m repro.faults.chaos "
                         f"--seed {self.seed}")
            lines.append("  minimal plan: "
                         + json.dumps(self.plan.get("rules", [])))
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "requests_ok": self.requests_ok,
            "requests_failed": self.requests_failed,
            "failures_by_kind": self.failures_by_kind,
            "faults_by_site": self.faults_by_site,
            "faults_in_audit": self.faults_in_audit,
            "resumes": self.resumes,
            "sessions_lost": self.sessions_lost,
            "forced_detach_events": self.forced_detach_events,
            "slack_ns": self.slack_ns,
            "unexpected": self.unexpected,
            "violations": [str(v) for v in self.report.violations],
            "plan": self.plan,
        }


class _Tally:
    """Per-worker op accounting: every request acked or typed-failed."""

    def __init__(self) -> None:
        self.ok = 0
        self.failed = 0
        self.by_kind: Dict[str, int] = {}
        self.unexpected: List[str] = []

    def attempt(self, fn) -> Optional[Any]:
        try:
            result = fn()
        except (RemoteError, CircuitOpenError) as exc:
            # Typed failure: the request's fate is known and named.
            kind = getattr(exc, "kind", type(exc).__name__)
            self.failed += 1
            self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
            return None
        except Exception as exc:       # noqa: BLE001 — the whole point
            self.unexpected.append(f"{type(exc).__name__}: {exc}")
            return None
        self.ok += 1
        return result


def _worker(idx: int, port: int, seed: int, oid, budget_ns: int,
            requests: int, squat: bool, tally: _Tally,
            clients: List[SyncTerpClient]) -> None:
    retry = RetryPolicy(max_retries=6, base_delay_s=0.001,
                        max_delay_s=0.02, seed=seed * 131 + idx)
    breaker = CircuitBreaker(failure_threshold=8,
                             reset_timeout_s=0.05)
    client = SyncTerpClient(port=port, user=f"worker{idx}",
                            retry=retry, breaker=breaker)
    clients.append(client)
    connected = False
    for attempt in range(4):
        if tally.attempt(client.connect) is not None:
            connected = True
            break
        time.sleep(0.002 * (attempt + 1))
    if not connected:
        return
    for r in range(requests):
        tally.attempt(lambda: client.attach("chaos"))
        tally.attempt(lambda: client.write_u64(oid, idx * 1000 + r))
        tally.attempt(lambda: client.read_u64(oid))
        tally.attempt(lambda: client.psync("chaos"))
        tally.attempt(lambda: client.detach("chaos"))
    if squat:
        # Overstay the budget on purpose: the sweeper must force the
        # window closed, and our own late detach must be the defined
        # silent outcome — the theorem's enforcement arm, observed.
        tally.attempt(lambda: client.attach("chaos"))
        time.sleep(budget_ns * 1.5 / 1e9)
        tally.attempt(lambda: client.detach("chaos"))
    tally.attempt(client.goodbye)
    client.close()


def run_chaos(seed: int, *, plan: Optional[FaultPlan] = None,
              sessions: int = 3, requests: int = 5,
              session_ew_ns: int = 12_000_000,
              sweep_period_ns: int = 3_000_000) -> ChaosResult:
    """One seeded faulted run; returns the full verdict."""
    if plan is None:
        plan = random_plan(seed)
    service = TerpService(
        port=0, session_ew_ns=session_ew_ns,
        sweep_period_ns=sweep_period_ns, seed=seed, faults=plan,
        session_linger_ns=10_000_000_000)
    plan.disarm()                      # setup runs fault-free
    tallies = [_Tally() for _ in range(sessions)]
    clients: List[SyncTerpClient] = []
    with ServiceThread(service) as svc:
        port = svc.bound_port
        assert port is not None
        with SyncTerpClient(port=port, user="admin") as admin:
            admin.create("chaos", 1 << 20, mode=0o666)
            oids = [admin.pmalloc("chaos", 16)
                    for _ in range(sessions)]
        plan.arm()
        threads = [
            threading.Thread(
                target=_worker, name=f"chaos-w{i}",
                args=(i, port, seed, oids[i], session_ew_ns, requests,
                      i == 0, tallies[i], clients))
            for i in range(sessions)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        hung = [t.name for t in threads if t.is_alive()]
        plan.disarm()                  # drain runs fault-free
        # Let the sweeper close anything still open (a worker that
        # died between attach and detach), then verify closure.
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            service.run_sweep()
            with service.lib.lock:
                still_open = service.obs.audit.open_windows(
                    service.lib.clock_ns)
            if not still_open:
                break
            time.sleep(sweep_period_ns / 1e9)
    # ServiceThread.stop() ran: sessions drained, runtime finished.
    stalls = len(plan.fired("engine.sweep_stall"))
    injected_delay = sum(inj.delay_ns for inj in plan.fired())
    slack_ns = (4 + stalls) * sweep_period_ns + injected_delay + \
        SCHEDULING_SLACK_NS
    report = check_timeline(service.obs.audit,
                            ew_budget_ns=session_ew_ns,
                            slack_ns=slack_ns)
    result = ChaosResult(seed=seed, report=report, slack_ns=slack_ns,
                         plan={"seed": plan.seed,
                               "rules": [r.to_dict()
                                         for r in plan.minimal()]})
    for tally in tallies:
        result.requests_ok += tally.ok
        result.requests_failed += tally.failed
        result.unexpected.extend(tally.unexpected)
        for kind, count in tally.by_kind.items():
            result.failures_by_kind[kind] = \
                result.failures_by_kind.get(kind, 0) + count
    for name in hung:
        result.unexpected.append(f"worker {name} hung past deadline")
    for client in clients:
        result.resumes += client.resumes
        result.sessions_lost += client.sessions_lost
        result.forced_detach_events += client.forced_detaches
    for inj in plan.fired():
        result.faults_by_site[inj.site] = \
            result.faults_by_site.get(inj.site, 0) + 1
    for event in service.obs.audit.events(kind="fault"):
        site = str(event["reason"]).split(" [", 1)[0]
        result.faults_in_audit[site] = \
            result.faults_in_audit.get(site, 0) + 1
    return result


def restart_plan(seed: int) -> FaultPlan:
    """A seeded plan for the kill-and-restart leg.

    Only *recoverable* faults: torn home-page writes (the journal is
    the repair source) plus mild service-level noise.  ``store.bit_rot``
    is deliberately absent — rot quarantines the workload PMO, and this
    leg's property is that committed data survives the crash intact.
    """
    rng = random.Random(seed ^ 0x5EED)
    rules: List[FaultRule] = []

    def maybe(chance: float, make) -> None:
        if rng.random() < chance:
            rules.append(make())

    maybe(0.7, lambda: FaultRule(
        "store.torn_page", "torn",
        probability=round(0.10 + 0.30 * rng.random(), 3),
        count=rng.randint(1, 3)))
    maybe(0.4, lambda: FaultRule(
        "lib.psync_stall", "stall", probability=0.10, count=2,
        delay_ns=rng.randrange(200_000, 1_500_000)))
    maybe(0.4, lambda: FaultRule(
        "engine.sweep_stall", "stall", probability=0.25,
        count=rng.randint(1, 2)))
    maybe(0.3, lambda: FaultRule(
        "server.delay_response", "stall", probability=0.05, count=2,
        delay_ns=rng.randrange(200_000, 1_500_000)))
    return FaultPlan(seed=seed, rules=rules)


@dataclass
class RestartChaosResult:
    """The verdict of one seeded kill-and-restart run."""

    seed: int
    report: InvariantReport
    recovery: Dict[str, Any] = field(default_factory=dict)
    data_intact: bool = False
    session_resumed: bool = False
    overdue_attributed: bool = False
    pages_repaired: int = 0
    faults_by_site: Dict[str, int] = field(default_factory=dict)
    unexpected: List[str] = field(default_factory=list)
    plan: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return (self.report.ok and not self.unexpected
                and self.data_intact and self.session_resumed
                and self.overdue_attributed)

    def describe(self) -> str:
        lines = [
            f"restart chaos seed {self.seed}: "
            f"{'OK' if self.ok else 'FAILED'}",
            f"  data intact: {self.data_intact}, resumed: "
            f"{self.session_resumed}, overdue attributed: "
            f"{self.overdue_attributed}, pages repaired: "
            f"{self.pages_repaired}",
            f"  faults fired: {self.faults_by_site}",
            f"  recovery: {self.recovery}",
            f"  invariants: {self.report.describe()}",
        ]
        if self.unexpected:
            lines.append(f"  UNEXPECTED: {self.unexpected}")
        if not self.ok:
            lines.append("  replay: python -m repro.faults.chaos "
                         f"--restart --seed {self.seed}")
            lines.append("  minimal plan: "
                         + json.dumps(self.plan.get("rules", [])))
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "data_intact": self.data_intact,
            "session_resumed": self.session_resumed,
            "overdue_attributed": self.overdue_attributed,
            "pages_repaired": self.pages_repaired,
            "faults_by_site": self.faults_by_site,
            "recovery": self.recovery,
            "unexpected": self.unexpected,
            "violations": [str(v) for v in self.report.violations],
            "plan": self.plan,
        }


def run_restart_chaos(seed: int, *,
                      plan: Optional[FaultPlan] = None,
                      pool_dir: Optional[str] = None,
                      session_ew_ns: int = 80_000_000,
                      sweep_period_ns: int = 3_000_000,
                      downtime_s: float = 0.2) -> RestartChaosResult:
    """One seeded kill-and-restart run; returns the full verdict.

    The workload commits data through ``psync`` (under injected torn
    pages), a squatter attaches and holds, the daemon is killed
    in-process (no shutdown path runs), the outage outlasts the
    squatter's EW budget, and a second daemon recovers the same pool
    directory.  The verdict checks the PR's restart property end to
    end: committed data intact, session resumed by its original
    token, the squatter's window force-closed at recovery and
    attributed to the outage, and the merged pre/post-crash audit
    timeline satisfying invariants I1-I6.

    The writer's EW budget must leave headroom for the pre-kill
    workload's five psyncs — each pays the group-commit window plus
    two thread handoffs — even on a loaded runner; the downtime in
    turn must comfortably outlast that budget so the squatter's
    force-close is attributable to the outage.
    """
    if plan is None:
        plan = restart_plan(seed)
    own_dir = pool_dir is None
    if own_dir:
        pool_dir = tempfile.mkdtemp(prefix="terp-restart-chaos-")
    result = RestartChaosResult(
        seed=seed, report=InvariantReport(),
        plan={"seed": plan.seed,
              "rules": [r.to_dict() for r in plan.rules]})

    service_a = TerpService(
        port=0, session_ew_ns=session_ew_ns,
        sweep_period_ns=sweep_period_ns, seed=seed, faults=plan,
        session_linger_ns=10_000_000_000, pool_dir=pool_dir)
    thread_a = ServiceThread(service_a)
    thread_a.start()
    port_a = service_a.bound_port
    assert port_a is not None
    squatter = SyncTerpClient(port=port_a, user="squatter")
    values: Dict[int, int] = {}
    oids = []
    try:
        with SyncTerpClient(port=port_a, user="writer") as writer:
            writer.create("chaos", 1 << 20, mode=0o666)
            writer.attach("chaos")
            for i in range(4):
                oids.append(writer.pmalloc("chaos", 16))
                values[i] = seed * 10_000 + i
                writer.write_u64(oids[i], values[i])
            # A full page whose every byte changes per round: torn
            # home-page writes on it are *visible* (the stale tail
            # mismatches the new CRC), so the journal repair path is
            # actually exercised rather than dodged by identical
            # halves.
            blob_oid = writer.pmalloc("chaos", 4096)
            blob = bytes([seed & 0xFF]) * 4096
            writer.write(blob_oid, blob)
            writer.psync("chaos")
            # A couple more committed rounds so torn-page rules get
            # home-page writes to tear.
            for i in range(4):
                values[i] += 1
                writer.write_u64(oids[i], values[i])
                blob = bytes([(seed + i + 1) & 0xFF]) * 4096
                writer.write(blob_oid, blob)
                writer.psync("chaos")
            writer.detach("chaos")
        squatter.connect()
        squatter.attach("chaos")
        token_before = squatter.resume_token
        sid_before = squatter.session_id
    except Exception as exc:          # noqa: BLE001 — verdict, not crash
        result.unexpected.append(
            f"pre-kill workload: {type(exc).__name__}: {exc}")
        thread_a.kill()
        return result

    thread_a.kill()                   # no release, no journal goodbye
    squatter.close()                  # socket died with the daemon
    time.sleep(downtime_s)            # the outage the clock must count

    service_b = TerpService(
        port=0, session_ew_ns=session_ew_ns,
        sweep_period_ns=sweep_period_ns, seed=seed,
        session_linger_ns=10_000_000_000, pool_dir=pool_dir)
    recovery = service_b.recovery_report
    assert recovery is not None
    result.recovery = recovery.to_dict()
    result.pages_repaired = recovery.pages_repaired
    with ServiceThread(service_b) as svc_b:
        port_b = svc_b.bound_port
        assert port_b is not None
        try:
            # Resume with the token minted before the crash.
            squatter._port = port_b
            squatter._reconnect()
            result.session_resumed = (squatter.resumes >= 1 and
                                      squatter.session_id == sid_before
                                      and squatter.resume_token ==
                                      token_before)
            with SyncTerpClient(port=port_b, user="reader") as reader:
                reader.attach("chaos", access="r")
                result.data_intact = all(
                    reader.read_u64(oids[i]) == values[i]
                    for i in range(4)) and \
                    reader.read(blob_oid, 4096) == blob
                reader.detach("chaos")
            squatter.goodbye()
            squatter.close()
        except Exception as exc:      # noqa: BLE001
            result.unexpected.append(
                f"post-restart: {type(exc).__name__}: {exc}")
    result.overdue_attributed = any(
        event["kind"] == "forced-detach" and
        "outage" in str(event.get("reason", ""))
        for event in service_b.obs.audit.events())
    stalls = len(plan.fired("engine.sweep_stall"))
    injected_delay = sum(inj.delay_ns for inj in plan.fired())
    slack_ns = (4 + stalls) * sweep_period_ns + injected_delay + \
        SCHEDULING_SLACK_NS
    result.report = check_timeline(service_b.obs.audit,
                                   ew_budget_ns=session_ew_ns,
                                   slack_ns=slack_ns)
    for inj in plan.fired():
        result.faults_by_site[inj.site] = \
            result.faults_by_site.get(inj.site, 0) + 1
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.chaos",
        description="One seeded chaos run against a live terpd; "
                    "exit 0 iff every invariant held.")
    parser.add_argument("--seed", default="random",
                        help="integer seed, or 'random' (default)")
    parser.add_argument("--sessions", type=int, default=3)
    parser.add_argument("--requests", type=int, default=5,
                        help="attach/write/read/psync/detach rounds "
                             "per session")
    parser.add_argument("--out", default=None,
                        help="write the full verdict (plan included) "
                             "to this JSON file")
    parser.add_argument("--restart", action="store_true",
                        help="run the kill-and-restart leg instead: "
                             "durable pool, in-process SIGKILL, warm "
                             "restart, invariants I1-I6 across the "
                             "outage")
    args = parser.parse_args(argv)
    if args.seed == "random":
        seed = int.from_bytes(os.urandom(4), "big")
    else:
        seed = int(args.seed)
    result: Any
    if args.restart:
        result = run_restart_chaos(seed)
    else:
        result = run_chaos(seed, sessions=args.sessions,
                           requests=args.requests)
    print(result.describe())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2)
        print(f"verdict written to {args.out}")
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
