"""Plain-text table/figure rendering for the experiment drivers.

Every experiment returns structured rows; these helpers print them in
the layout of the corresponding paper table or figure so a terminal
run reads like the original.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 *, title: str = "") -> str:
    """Fixed-width table with a header rule."""
    cols = len(headers)
    widths = [len(str(h)) for h in headers]
    text_rows = []
    for row in rows:
        text_row = [_fmt(cell) for cell in row]
        text_rows.append(text_row)
        for i in range(cols):
            widths[i] = max(widths[i], len(text_row[i]))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(cols)))
    for text_row in text_rows:
        lines.append("  ".join(text_row[i].ljust(widths[i])
                               for i in range(cols)))
    return "\n".join(lines)


def render_grouped_bars(series: Dict[str, Dict[str, float]], *,
                        title: str = "", unit: str = "%",
                        bar_scale: float = 1.0) -> str:
    """ASCII grouped bars: {group: {series_name: value}}.

    Used for the overhead figures: groups are benchmarks, series are
    configurations.
    """
    lines = [title] if title else []
    name_width = max((len(n) for g in series.values() for n in g),
                     default=8)
    for group, bars in series.items():
        lines.append(f"{group}:")
        for name, value in bars.items():
            bar = "#" * max(1, int(round(value * bar_scale)))
            lines.append(f"  {name.ljust(name_width)} "
                         f"{value:8.2f}{unit} {bar}")
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}" if abs(cell) < 1000 else f"{cell:.0f}"
    return str(cell)
