"""Table III: WHISPER results with target EW = 40µs.

For each WHISPER benchmark, runs MM and TT and reports MERR's
avg/max EW and ER against TERP's Silent%, EW, ER, TEW, and TER —
the same columns as the paper's table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.eval.configs import config
from repro.eval.runner import WHISPER_DEFAULT_TXS, run_whisper
from repro.eval.tables import render_table
from repro.workloads.whisper.benchmarks import WHISPER_NAMES


@dataclass
class Table3Row:
    name: str
    mm_ew_avg_us: float
    mm_ew_max_us: float
    mm_er_percent: float
    tt_silent_percent: float
    tt_ew_avg_us: float
    tt_ew_max_us: float
    tt_er_percent: float
    tt_tew_us: float
    tt_ter_percent: float


@dataclass
class Table3Result:
    rows: List[Table3Row]

    def averages(self) -> Table3Row:
        n = len(self.rows)

        def avg(attr: str) -> float:
            return sum(getattr(r, attr) for r in self.rows) / n

        return Table3Row("Avg.",
                         avg("mm_ew_avg_us"), avg("mm_ew_max_us"),
                         avg("mm_er_percent"), avg("tt_silent_percent"),
                         avg("tt_ew_avg_us"), avg("tt_ew_max_us"),
                         avg("tt_er_percent"), avg("tt_tew_us"),
                         avg("tt_ter_percent"))

    def render(self) -> str:
        headers = ["Prog.", "MM EW avg/max (us)", "MM ER(%)",
                   "TT Silent(%)", "TT EW avg/max (us)", "TT ER(%)",
                   "TT TEW(us)", "TT TER(%)"]
        body = []
        for r in self.rows + [self.averages()]:
            body.append([
                r.name,
                f"{r.mm_ew_avg_us:.1f}/{r.mm_ew_max_us:.1f}",
                f"{r.mm_er_percent:.1f}",
                f"{r.tt_silent_percent:.1f}",
                f"{r.tt_ew_avg_us:.1f}/{r.tt_ew_max_us:.1f}",
                f"{r.tt_er_percent:.1f}",
                f"{r.tt_tew_us:.1f}",
                f"{r.tt_ter_percent:.1f}",
            ])
        return render_table(
            headers, body,
            title="Table III: WHISPER results, target EW = 40us")


def run(*, n_transactions: int = WHISPER_DEFAULT_TXS,
        names: Optional[List[str]] = None,
        seed: int = 2022) -> Table3Result:
    names = names or WHISPER_NAMES
    mm_cfg = config("MM")
    tt_cfg = config("TT")
    rows = []
    for name in names:
        mm = run_whisper(name, mm_cfg, n_transactions=n_transactions,
                         seed=seed)
        tt = run_whisper(name, tt_cfg, n_transactions=n_transactions,
                         seed=seed)
        mm_pmo = mm.per_pmo[0]
        tt_pmo = tt.per_pmo[0]
        rows.append(Table3Row(
            name=name,
            mm_ew_avg_us=mm_pmo.ew_avg_us,
            mm_ew_max_us=mm_pmo.ew_max_us,
            mm_er_percent=mm_pmo.er_percent,
            tt_silent_percent=tt.silent_percent,
            tt_ew_avg_us=tt_pmo.ew_avg_us,
            tt_ew_max_us=tt_pmo.ew_max_us,
            tt_er_percent=tt_pmo.er_percent,
            tt_tew_us=tt_pmo.tew_avg_us,
            tt_ter_percent=tt_pmo.ter_percent,
        ))
    return Table3Result(rows)


if __name__ == "__main__":
    print(run(n_transactions=5_000).render())
