"""Figure 11: 4-thread SPEC results and the benefits breakdown.

Three schemes at each EW target, all with TERP-style insertion:

* **Basic semantics** — at most one thread can hold a PMO; other
  threads block (the paper's ~800% bars);
* **+Cond** — conditional instructions implementing EW-conscious
  semantics (threads share PMOs) but no window combining;
* **+CB** — the full TERP architecture with the circular buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.eval.configs import config
from repro.eval.experiments.fig9 import OverheadBar
from repro.eval.runner import SPEC_DEFAULT_ITERS, run_spec
from repro.workloads.spec.base import SPEC_NAMES

FIG11_CONFIGS = [
    ("Basic semantics", "TT_BASIC", 40.0),
    ("+Cond (40us)", "TT_COND", 40.0),
    ("+CB (40us)", "TT", 40.0),
    ("+CB (80us)", "TT", 80.0),
    ("+CB (160us)", "TT", 160.0),
]


@dataclass
class Fig11Result:
    bars: Dict[str, List[OverheadBar]]
    blocked_ns: Dict[str, int]

    def averages(self) -> List[OverheadBar]:
        labels = [b.label for b in next(iter(self.bars.values()))]
        out = []
        n = len(self.bars)
        for i, label in enumerate(labels):
            total = sum(bars[i].total_percent
                        for bars in self.bars.values()) / n
            out.append(OverheadBar(label, total, {}))
        return out

    def config_total(self, label: str) -> float:
        for bar in self.averages():
            if bar.label == label:
                return bar.total_percent
        raise KeyError(label)

    def render(self) -> str:
        from repro.eval.tables import render_grouped_bars
        series = {}
        for name, bars in list(self.bars.items()) + [
                ("avg", self.averages())]:
            series[name] = {bar.label: bar.total_percent for bar in bars}
        return render_grouped_bars(
            series,
            title="Figure 11: 4-thread SPEC overheads "
                  "(Basic vs +Cond vs +CB)",
            bar_scale=0.2)


def run(*, n_iterations: int = SPEC_DEFAULT_ITERS,
        names: Optional[List[str]] = None,
        num_threads: int = 4,
        seed: int = 2022) -> Fig11Result:
    names = names or SPEC_NAMES
    bars: Dict[str, List[OverheadBar]] = {}
    blocked: Dict[str, int] = {}
    for name in names:
        bench_bars = []
        for label, key, ew in FIG11_CONFIGS:
            cfg = config(key, ew_target_us=ew)
            result = run_spec(name, cfg, n_iterations=n_iterations,
                              num_threads=num_threads, seed=seed)
            bench_bars.append(OverheadBar(
                label, result.overhead_percent,
                result.overhead_breakdown_percent()))
            if key == "TT_BASIC":
                blocked[name] = result.blocked_ns
        bars[name] = bench_bars
    return Fig11Result(bars, blocked)


if __name__ == "__main__":
    print(run(n_iterations=1_000).render())
