"""Figure 9: WHISPER execution-time overheads.

Bars: MM(40us), TM(40us), and TT at 40/80/160µs EW targets, each
broken down into attach / detach / rand / cond / other components, as
percentages over the unprotected baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.eval.configs import config
from repro.eval.runner import WHISPER_DEFAULT_TXS, run_whisper
from repro.eval.tables import render_grouped_bars
from repro.workloads.whisper.benchmarks import WHISPER_NAMES

#: The configurations plotted, in the figure's order.
FIG9_CONFIGS = [
    ("MM (40us)", "MM", 40.0),
    ("TM (40us)", "TM", 40.0),
    ("TT (40us)", "TT", 40.0),
    ("TT (80us)", "TT", 80.0),
    ("TT (160us)", "TT", 160.0),
]


@dataclass
class OverheadBar:
    label: str
    total_percent: float
    breakdown_percent: Dict[str, float]


@dataclass
class Fig9Result:
    #: benchmark -> [bars in FIG9_CONFIGS order]
    bars: Dict[str, List[OverheadBar]]

    def averages(self) -> List[OverheadBar]:
        labels = [b.label for b in next(iter(self.bars.values()))]
        out = []
        for i, label in enumerate(labels):
            totals = [bars[i].total_percent for bars in self.bars.values()]
            breakdowns: Dict[str, float] = {}
            for bars in self.bars.values():
                for cat, val in bars[i].breakdown_percent.items():
                    breakdowns[cat] = breakdowns.get(cat, 0.0) + val
            n = len(self.bars)
            out.append(OverheadBar(
                label, sum(totals) / n,
                {cat: val / n for cat, val in breakdowns.items()}))
        return out

    def config_total(self, label: str) -> float:
        """Average total overhead for one configuration label."""
        for bar in self.averages():
            if bar.label == label:
                return bar.total_percent
        raise KeyError(label)

    def render(self) -> str:
        series = {}
        for name, bars in list(self.bars.items()) + [
                ("avg", self.averages())]:
            series[name] = {bar.label: bar.total_percent for bar in bars}
        return render_grouped_bars(
            series, title="Figure 9: WHISPER overhead vs unprotected "
                          "(breakdown available per bar)")


def run(*, n_transactions: int = WHISPER_DEFAULT_TXS,
        names: Optional[List[str]] = None,
        seed: int = 2022) -> Fig9Result:
    names = names or WHISPER_NAMES
    bars: Dict[str, List[OverheadBar]] = {}
    for name in names:
        bench_bars = []
        for label, key, ew in FIG9_CONFIGS:
            cfg = config(key, ew_target_us=ew)
            result = run_whisper(name, cfg,
                                 n_transactions=n_transactions,
                                 seed=seed)
            bench_bars.append(OverheadBar(
                label, result.overhead_percent,
                result.overhead_breakdown_percent()))
        bars[name] = bench_bars
    return Fig9Result(bars)


if __name__ == "__main__":
    print(run(n_transactions=3_000).render())
