"""Figure 10: SPEC single-thread multi-PMO execution-time overheads.

Same bar structure as Figure 9 but over the SPEC benchmarks, where
PMO accesses dominate and MM/TM overheads blow up (the paper's
156% / >300% vs TERP's ~15%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.eval.configs import config
from repro.eval.experiments.fig9 import Fig9Result, OverheadBar
from repro.eval.runner import SPEC_DEFAULT_ITERS, run_spec
from repro.workloads.spec.base import SPEC_NAMES

FIG10_CONFIGS = [
    ("MM (40us)", "MM", 40.0),
    ("TM (40us)", "TM", 40.0),
    ("TT (40us)", "TT", 40.0),
    ("TT (80us)", "TT", 80.0),
    ("TT (160us)", "TT", 160.0),
]


@dataclass
class Fig10Result(Fig9Result):
    def render(self) -> str:
        text = super().render()
        return text.replace("Figure 9: WHISPER", "Figure 10: SPEC")


def run(*, n_iterations: int = SPEC_DEFAULT_ITERS,
        names: Optional[List[str]] = None,
        num_threads: int = 1,
        seed: int = 2022) -> Fig10Result:
    names = names or SPEC_NAMES
    bars: Dict[str, List[OverheadBar]] = {}
    for name in names:
        bench_bars = []
        for label, key, ew in FIG10_CONFIGS:
            cfg = config(key, ew_target_us=ew)
            result = run_spec(name, cfg, n_iterations=n_iterations,
                              num_threads=num_threads, seed=seed)
            bench_bars.append(OverheadBar(
                label, result.overhead_percent,
                result.overhead_breakdown_percent()))
        bars[name] = bench_bars
    return Fig10Result(bars)


if __name__ == "__main__":
    print(run(n_iterations=2_000).render())
