"""Table IV: SPEC multi-PMO single-thread results at 40µs EW."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.eval.configs import config
from repro.eval.runner import SPEC_DEFAULT_ITERS, run_spec
from repro.eval.tables import render_table
from repro.workloads.spec.base import SPEC_NAMES, SPEC_SPECS


@dataclass
class Table4Row:
    name: str
    n_pmos: int
    mm_ew_avg_us: float
    mm_ew_max_us: float
    mm_er_percent: float
    tt_silent_percent: float
    tt_ew_avg_us: float
    tt_ew_max_us: float
    tt_er_percent: float
    tt_tew_us: float
    tt_ter_percent: float


@dataclass
class Table4Result:
    rows: List[Table4Row]

    def averages(self) -> Table4Row:
        n = len(self.rows)

        def avg(attr: str) -> float:
            return sum(getattr(r, attr) for r in self.rows) / n

        return Table4Row("Avg.", round(avg("n_pmos"), 1),
                         avg("mm_ew_avg_us"), avg("mm_ew_max_us"),
                         avg("mm_er_percent"), avg("tt_silent_percent"),
                         avg("tt_ew_avg_us"), avg("tt_ew_max_us"),
                         avg("tt_er_percent"), avg("tt_tew_us"),
                         avg("tt_ter_percent"))

    def render(self) -> str:
        headers = ["Prog.", "#PMOs", "MM EW avg/max", "MM ER(%)",
                   "TT Silent(%)", "TT EW avg/max", "TT ER(%)",
                   "TT TEW(us)", "TT TER(%)"]
        body = []
        for r in self.rows + [self.averages()]:
            body.append([
                r.name, r.n_pmos,
                f"{r.mm_ew_avg_us:.1f}/{r.mm_ew_max_us:.1f}",
                f"{r.mm_er_percent:.1f}",
                f"{r.tt_silent_percent:.1f}",
                f"{r.tt_ew_avg_us:.1f}/{r.tt_ew_max_us:.1f}",
                f"{r.tt_er_percent:.1f}",
                f"{r.tt_tew_us:.2f}",
                f"{r.tt_ter_percent:.1f}",
            ])
        return render_table(
            headers, body,
            title="Table IV: SPEC results, 40us EW (avg over all PMOs)")


def run(*, n_iterations: int = SPEC_DEFAULT_ITERS,
        names: Optional[List[str]] = None,
        seed: int = 2022) -> Table4Result:
    names = names or SPEC_NAMES
    mm_cfg = config("MM")
    tt_cfg = config("TT")
    rows = []
    for name in names:
        mm = run_spec(name, mm_cfg, n_iterations=n_iterations, seed=seed)
        tt = run_spec(name, tt_cfg, n_iterations=n_iterations, seed=seed)
        rows.append(Table4Row(
            name=name,
            n_pmos=SPEC_SPECS[name].n_pmos,
            mm_ew_avg_us=mm.ew_avg_us,
            mm_ew_max_us=mm.ew_max_us,
            mm_er_percent=mm.er_percent,
            tt_silent_percent=tt.silent_percent,
            tt_ew_avg_us=tt.ew_avg_us,
            tt_ew_max_us=tt.ew_max_us,
            tt_er_percent=tt.er_percent,
            tt_tew_us=tt.tew_avg_us,
            tt_ter_percent=tt.ter_percent,
        ))
    return Table4Result(rows)


if __name__ == "__main__":
    print(run(n_iterations=3_000).render())
