"""Table V: quantitative attack success probability, MERR vs TERP.

Analytic (as in the paper) plus a Monte-Carlo cross-check.  The
headline: TERP's per-window success probability is ~30x smaller than
MERR's, because the malicious thread holds PMO permission only a
small fraction (TER/ER) of each exposure window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.eval.tables import render_table
from repro.security.probability import (
    merr_success_percent, placement_entropy_bits, reduction_factor,
    simulate_probing, terp_success_percent)

ATTACK_CLASSES = [
    "Stack Buffer Overflow",
    "Heap Overflow",
    "Format String",
    "Integer Overflow",
]


@dataclass
class Table5Result:
    entropy_bits: int
    merr_1us: float
    merr_01us: float
    terp_1us: Optional[float]
    terp_01us: Optional[float]
    monte_carlo_merr_1us: float
    access_fraction: float

    @property
    def reduction(self) -> float:
        return reduction_factor(1.0,
                                access_fraction=self.access_fraction)

    def render(self) -> str:
        rows = []
        for attack in ATTACK_CLASSES:
            rows.append([
                attack,
                "0.015/x", f"{self.merr_1us:.4f}", f"{self.merr_01us:.3f}",
                "0.0005/x", f"{self.terp_1us:.5f}",
                f"{self.terp_01us:.4f}" if self.terp_01us is not None
                else "n/a (probe > TEW)",
            ])
        table = render_table(
            ["Attack", "MERR x us", "MERR 1us", "MERR 0.1us",
             "TERP x us", "TERP 1us", "TERP 0.1us"],
            rows,
            title="Table V: success probability (%) per exposure "
                  "window, 1GB PMO")
        return (table +
                f"\nplacement entropy: {self.entropy_bits} bits"
                f"\nTERP/MERR reduction: {self.reduction:.0f}x "
                f"(paper: ~30x)"
                f"\nMonte-Carlo MERR @1us: "
                f"{self.monte_carlo_merr_1us:.4f}% "
                f"(analytic {self.merr_1us:.4f}%)")


def run(*, ew_us: float = 40.0, tew_us: float = 2.0,
        whisper_ter_over_er: float = 1.0 / 30.0) -> Table5Result:
    entropy = placement_entropy_bits()
    return Table5Result(
        entropy_bits=entropy,
        merr_1us=merr_success_percent(1.0, ew_us=ew_us,
                                      entropy_bits=entropy),
        merr_01us=merr_success_percent(0.1, ew_us=ew_us,
                                       entropy_bits=entropy),
        terp_1us=terp_success_percent(
            1.0, ew_us=ew_us, tew_us=tew_us,
            access_fraction=whisper_ter_over_er, entropy_bits=entropy),
        terp_01us=terp_success_percent(
            0.1, ew_us=ew_us, tew_us=tew_us,
            access_fraction=whisper_ter_over_er, entropy_bits=entropy),
        monte_carlo_merr_1us=simulate_probing(
            1.0, window_us=ew_us, entropy_bits=entropy),
        access_fraction=whisper_ter_over_er,
    )


if __name__ == "__main__":
    print(run().render())
