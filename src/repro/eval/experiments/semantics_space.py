"""The semantics design space (Section IV / Figure 3), quantified.

Runs canonical scenarios under all four semantics and scores each on
the axes the paper argues about:

* **nesting** (function composition) — what happens when a callee's
  attach/detach pair lands inside the caller's?  Basic errors out
  (the manual pair-matching burden); Outermost and FCFS absorb it
  silently; EW-conscious *forbids* within-thread overlap and relies
  on the compiler's insertion discipline (callees wrap their own
  accesses, call sites are never wrapped) to avoid it — measured here
  by running the two composition styles.
* **thread composability** — two well-formed threads overlapping
  windows: Basic errors (or blocks), the others proceed; FCFS's
  first-detach-wins cuts the second thread's window out from under it
  (counted as anomalies).
* **security** — the longest time the PMO stays mapped *at one
  location* under a nested-pair stream: unbounded for Outermost (the
  paper's rejection reason), bounded by the EW target only for
  EW-conscious (randomization augmentation).
* FCFS's **benign-reattach hole**: any access after the performed
  detach silently reopens the window — indistinguishable from an
  attacker's probe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.permissions import Access
from repro.core.semantics import (
    ActionKind, make_semantics, Outcome)
from repro.core.units import ns_to_us, us

PMO = "pmo1"
SEMANTICS = ["basic", "outermost", "fcfs", "ew-conscious"]
EW = us(40)


@dataclass
class SemanticsScore:
    name: str
    nested_errors: int          # same-thread nested pairs
    sequential_errors: int      # compiler-style composition
    thread_errors: int
    thread_anomalies: int       # windows cut/kept-open wrongly
    max_location_window_us: float
    reattach_holes: int         # FCFS's benign-access reattach

    @property
    def thread_composable(self) -> bool:
        return self.thread_errors == 0

    @property
    def window_bounded(self) -> bool:
        return self.max_location_window_us <= ns_to_us(EW) + 5


def _count_errors(results) -> int:
    return sum(1 for r in results if r.outcome is Outcome.ERROR)


def _nested_composition(name: str) -> int:
    """A caller's pair wrapping a callee's pair (same thread)."""
    engine = make_semantics(name, ew_target_ns=EW)
    results = [
        engine.attach(1, PMO, Access.RW, us(1)),
        engine.attach(1, PMO, Access.RW, us(2)),   # callee's attach
        engine.access(1, PMO, Access.READ, us(3)),
        engine.detach(1, PMO, us(4)),              # callee's detach
        engine.detach(1, PMO, us(5)),
    ]
    return _count_errors(results)


def _sequential_composition(name: str) -> int:
    """Compiler-style composition: the callee wraps its own accesses,
    the caller never wraps the call site — no nesting arises."""
    engine = make_semantics(name, ew_target_ns=EW)
    results = []
    for i in range(5):
        base = us(10 * i)
        results.append(engine.attach(1, PMO, Access.RW, base))
        results.append(engine.access(1, PMO, Access.READ, base + 100))
        results.append(engine.detach(1, PMO, base + 200))
    return _count_errors(results)


def _threaded(name: str) -> tuple:
    """Two well-formed threads with overlapping windows; anomalies:
    thread 2's access denied inside its own window."""
    engine = make_semantics(name, ew_target_ns=EW)
    errors = anomalies = 0
    for round_ in range(20):
        base = us(10 * round_)
        for r in (engine.attach(1, PMO, Access.RW, base),
                  engine.attach(2, PMO, Access.RW, base + 100)):
            if r.outcome is Outcome.ERROR:
                errors += 1
        d1 = engine.detach(1, PMO, base + 200)
        if d1.outcome is Outcome.ERROR:
            errors += 1
        # Thread 2 is still inside its own window.
        a2 = engine.access(2, PMO, Access.READ, base + 300)
        if a2.outcome not in (Outcome.OK, Outcome.REATTACH):
            anomalies += 1
        d2 = engine.detach(2, PMO, base + 400)
        if d2.outcome is Outcome.ERROR:
            errors += 1
    return errors, anomalies


def _location_window(name: str) -> float:
    """Longest same-location mapped stretch under a nested-pair
    stream that keeps the PMO busy for 1ms."""
    engine = make_semantics(name, ew_target_ns=EW)
    open_since = None
    longest = 0
    outer = engine.attach(1, PMO, Access.RW, 0)
    if engine.is_mapped(PMO):
        open_since = 0
    for i in range(1, 100):
        t = us(10 * i)
        thread = 2 if name == "ew-conscious" else 1
        engine.attach(thread, PMO, Access.RW, t)
        d = engine.detach(thread, PMO, t + us(1))
        now = t + us(1)
        relocated = any(a.kind is ActionKind.RANDOMIZE
                        for a in d.actions)
        if (not engine.is_mapped(PMO) or relocated) and \
                open_since is not None:
            longest = max(longest, now - open_since)
            open_since = now if engine.is_mapped(PMO) else None
        if open_since is None and engine.is_mapped(PMO):
            open_since = now
    end = us(1000)
    engine.detach(1, PMO, end)
    if open_since is not None:
        longest = max(longest, end - open_since)
    return ns_to_us(longest)


def _reattach_holes(name: str) -> int:
    """Accesses after a performed detach that silently reattach."""
    engine = make_semantics(name, ew_target_ns=EW)
    holes = 0
    engine.attach(1, PMO, Access.RW, 0)
    engine.attach(1, PMO, Access.RW, us(1))
    engine.detach(1, PMO, us(2))
    for i in range(5):
        res = engine.access(1, PMO, Access.READ, us(3 + i))
        if res.outcome is Outcome.REATTACH:
            holes += 1
            engine.detach(1, PMO, us(3 + i) + 100)
    return holes


def run() -> List[SemanticsScore]:
    scores = []
    for name in SEMANTICS:
        thread_errors, anomalies = _threaded(name)
        scores.append(SemanticsScore(
            name=name,
            nested_errors=_nested_composition(name),
            sequential_errors=_sequential_composition(name),
            thread_errors=thread_errors,
            thread_anomalies=anomalies,
            max_location_window_us=_location_window(name),
            reattach_holes=_reattach_holes(name),
        ))
    return scores


def render(scores: List[SemanticsScore]) -> str:
    from repro.eval.tables import render_table
    rows = []
    for s in scores:
        window = f"{s.max_location_window_us:.0f}us"
        if not s.window_bounded:
            window += " (UNBOUNDED)"
        rows.append([
            s.name,
            f"{s.nested_errors} err",
            f"{s.sequential_errors} err",
            f"{s.thread_errors} err / {s.thread_anomalies} anomalies",
            window,
            s.reattach_holes,
        ])
    return render_table(
        ["semantics", "nested pairs", "compiler-style", "2 threads",
         "max location window", "reattach holes"],
        rows, title="Semantics design space (Section IV)")


if __name__ == "__main__":
    print(render(run()))
