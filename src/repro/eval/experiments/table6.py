"""Table VI: gadget census and attack-scenario analysis.

Derives the armed/disarmed gadget fractions from the same simulated
runs behind Tables III and IV (a gadget is armed while the executing
thread can touch the PMO), and renders the paper's scenario grid with
those measured numbers plugged in.

Paper targets: TERP disarms ~96.6% of gadgets in WHISPER and ~89.98%
in SPEC; MERR leaves 24.5% / 27.2% of gadgets armed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.eval.configs import config
from repro.eval.runner import (
    SPEC_DEFAULT_ITERS, WHISPER_DEFAULT_TXS, run_spec_suite,
    run_whisper_suite)
from repro.eval.tables import render_table
from repro.security.gadgets import (
    census_from_runs, GadgetCensus, scenario_table, ScenarioVerdict)


@dataclass
class Table6Result:
    whisper: GadgetCensus
    spec: GadgetCensus
    scenarios: List[ScenarioVerdict]

    def render(self) -> str:
        census_rows = [
            ["WHISPER", f"{self.whisper.merr_armed_percent:.1f}",
             f"{self.whisper.terp_armed_percent:.1f}",
             f"{self.whisper.terp_disarmed_percent:.1f}",
             f"{self.whisper.improvement_factor:.1f}x"],
            ["SPEC", f"{self.spec.merr_armed_percent:.1f}",
             f"{self.spec.terp_armed_percent:.1f}",
             f"{self.spec.terp_disarmed_percent:.2f}",
             f"{self.spec.improvement_factor:.1f}x"],
        ]
        census = render_table(
            ["Suite", "MERR armed(%)", "TERP armed(%)",
             "TERP disarmed(%)", "improvement"],
            census_rows,
            title="Table VI: gadget census (armed = executable with "
                  "PMO access)")
        lines = [census, "", "Attack-scenario analysis:"]
        for s in self.scenarios:
            lines.append(f"  [{s.capability.value} | {s.relation.value}]")
            lines.append(f"    -> {s.verdict}")
            if s.quantitative:
                lines.append(f"       {s.quantitative}")
        return "\n".join(lines)


def run(*, n_transactions: int = WHISPER_DEFAULT_TXS,
        n_iterations: int = SPEC_DEFAULT_ITERS,
        seed: int = 2022) -> Table6Result:
    mm = config("MM")
    tt = config("TT")
    whisper_mm = run_whisper_suite(mm, n_transactions=n_transactions,
                                   seed=seed)
    whisper_tt = run_whisper_suite(tt, n_transactions=n_transactions,
                                   seed=seed)
    spec_mm = run_spec_suite(mm, n_iterations=n_iterations, seed=seed)
    spec_tt = run_spec_suite(tt, n_iterations=n_iterations, seed=seed)
    whisper = census_from_runs("WHISPER", whisper_mm, whisper_tt)
    spec = census_from_runs("SPEC", spec_mm, spec_tt)
    return Table6Result(whisper, spec, scenario_table(whisper, spec))


if __name__ == "__main__":
    print(run(n_transactions=2_000, n_iterations=1_500).render())
