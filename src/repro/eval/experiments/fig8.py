"""Figure 8: the heap-object dead-time distribution.

Pools dead times measured across the thirteen allocation workloads
(eight SPEC-like, five Heap-Layers-like) and bins them as the figure
does.  The headline check: ~95% of dead times are >= 2µs, which is
what justifies the 2µs TEW target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.security.dead_time import DeadTimeDistribution
from repro.workloads.heaplayers import all_dead_times_us


@dataclass
class Fig8Result:
    distribution: DeadTimeDistribution

    @property
    def surface_reduction_at_2us(self) -> float:
        return self.distribution.surface_reduction_at(2.0)

    def render(self) -> str:
        reduction = 100.0 * self.surface_reduction_at_2us
        return ("Figure 8: distribution of time from last write to "
                "object deallocation\n"
                + self.distribution.render()
                + f"\n=> a 2us TEW removes {reduction:.1f}% of the "
                  "dead-time attack surface (paper: 95%)")


def run(*, n_objects_per_profile: int = 1_500,
        seed: int = 42) -> Fig8Result:
    dead_times = all_dead_times_us(
        n_objects_per_profile=n_objects_per_profile, seed=seed)
    return Fig8Result(DeadTimeDistribution.from_dead_times(dead_times))


if __name__ == "__main__":
    print(run().render())
