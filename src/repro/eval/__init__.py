"""Evaluation: configurations, runner, and per-artifact experiments."""

from repro.eval.configs import config, DEFAULT_EW_US, DEFAULT_TEW_US, EvalConfig
from repro.eval.runner import (
    run_spec, run_spec_suite, run_whisper, run_whisper_suite)

__all__ = ["config", "EvalConfig", "DEFAULT_EW_US", "DEFAULT_TEW_US",
           "run_spec", "run_spec_suite", "run_whisper",
           "run_whisper_suite"]
