"""ASCII exposure timelines from runtime traces.

Turns a :class:`~repro.core.events.Trace` into the picture the
paper's Figure 4 draws: per-PMO rows showing when the object was
mapped (``=``), relocated (``R``), and per-thread rows showing when
each thread held permission (``#``).  Used by examples and debugging;
the rendering is pure text so it works everywhere the tests run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.events import EventKind, Trace
from repro.core.units import ns_to_us


@dataclass
class _Lane:
    intervals: List[Tuple[int, int]] = field(default_factory=list)
    marks: List[int] = field(default_factory=list)
    open_since: Optional[int] = None

    def open(self, t: int) -> None:
        if self.open_since is None:
            self.open_since = t

    def close(self, t: int) -> None:
        if self.open_since is not None:
            self.intervals.append((self.open_since, t))
            self.open_since = None

    def finish(self, t: int) -> None:
        self.close(t)


class ExposureTimeline:
    """Builds lanes from a trace and renders them into columns."""

    def __init__(self, trace: Trace, *, end_ns: Optional[int] = None,
                 width: int = 72) -> None:
        self.width = width
        self.pmo_lanes: Dict[Hashable, _Lane] = {}
        self.thread_lanes: Dict[Tuple[int, Hashable], _Lane] = {}
        self.end_ns = end_ns if end_ns is not None else max(
            (e.now_ns for e in trace), default=0)
        self._build(trace)

    def _pmo(self, pmo_id) -> _Lane:
        return self.pmo_lanes.setdefault(pmo_id, _Lane())

    def _thread(self, thread_id, pmo_id) -> _Lane:
        return self.thread_lanes.setdefault((thread_id, pmo_id),
                                            _Lane())

    def _build(self, trace: Trace) -> None:
        for event in trace:
            if event.kind is EventKind.MAP:
                self._pmo(event.pmo_id).open(event.now_ns)
            elif event.kind is EventKind.UNMAP:
                self._pmo(event.pmo_id).close(event.now_ns)
            elif event.kind is EventKind.RANDOMIZE:
                lane = self._pmo(event.pmo_id)
                lane.marks.append(event.now_ns)
                # A relocation ends the old-location interval.
                lane.close(event.now_ns)
                lane.open(event.now_ns)
            elif event.kind is EventKind.GRANT:
                self._thread(event.thread_id,
                             event.pmo_id).open(event.now_ns)
            elif event.kind is EventKind.REVOKE:
                self._thread(event.thread_id,
                             event.pmo_id).close(event.now_ns)
        for lane in list(self.pmo_lanes.values()) + \
                list(self.thread_lanes.values()):
            lane.finish(self.end_ns)

    # -- rendering -----------------------------------------------------------

    def _column(self, t: int) -> int:
        if self.end_ns == 0:
            return 0
        col = int(t * self.width / self.end_ns)
        return min(col, self.width - 1)

    def _lane_chars(self, lane: _Lane, fill: str) -> str:
        chars = [" "] * self.width
        for start, end in lane.intervals:
            lo, hi = self._column(start), self._column(end)
            for c in range(lo, max(hi, lo + 1)):
                chars[c] = fill
        for mark in lane.marks:
            chars[self._column(mark)] = "R"
        return "".join(chars)

    def render(self) -> str:
        lines = [f"timeline 0 .. {ns_to_us(self.end_ns):.1f}us "
                 f"(= mapped, # thread permission, R relocation)"]
        for pmo_id in sorted(self.pmo_lanes, key=repr):
            lane = self.pmo_lanes[pmo_id]
            lines.append(f"  pmo {str(pmo_id):12s} "
                         f"|{self._lane_chars(lane, '=')}|")
            lanes = [(key, l) for key, l in self.thread_lanes.items()
                     if key[1] == pmo_id]
            for (thread_id, _), thread_lane in sorted(lanes):
                lines.append(f"    thread {thread_id:<7d} "
                             f"|{self._lane_chars(thread_lane, '#')}|")
        return "\n".join(lines)

    # -- stats (handy for tests) ------------------------------------------------

    def mapped_fraction(self, pmo_id) -> float:
        lane = self.pmo_lanes.get(pmo_id)
        if lane is None or self.end_ns == 0:
            return 0.0
        total = sum(end - start for start, end in lane.intervals)
        return total / self.end_ns

    def permission_fraction(self, thread_id, pmo_id) -> float:
        lane = self.thread_lanes.get((thread_id, pmo_id))
        if lane is None or self.end_ns == 0:
            return 0.0
        total = sum(end - start for start, end in lane.intervals)
        return total / self.end_ns
