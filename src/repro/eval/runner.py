"""Experiment runner: workloads x configurations -> results.

The single entry point the table/figure drivers and benchmarks use.
Scaling: the paper runs 100K WHISPER transactions; Python's discrete-
event machine handles that, but most tables only need the *rates* and
window statistics, which converge far earlier.  ``scale`` multiplies
the default operation counts (1.0 = the paper's counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.eval.configs import EvalConfig, config
from repro.sim.stats import RunResult
from repro.workloads.spec.base import SpecBenchmark
from repro.workloads.spec.base import get_benchmark as get_spec
from repro.workloads.whisper.base import WhisperBenchmark
from repro.workloads.whisper.benchmarks import get_benchmark as get_whisper

#: Default op counts used by the experiment drivers.  The paper's
#: runs use 100K transactions; 10K is the default here because every
#: reported statistic is rate-based and stable at that length (the
#: benchmark harness asserts this), keeping a full table run fast.
WHISPER_DEFAULT_TXS = 10_000
SPEC_DEFAULT_ITERS = 8_000


def run_whisper(name: str, cfg: EvalConfig, *,
                n_transactions: int = WHISPER_DEFAULT_TXS,
                num_threads: int = 1, seed: int = 2022) -> RunResult:
    """Run one WHISPER benchmark under one configuration."""
    bench = get_whisper(name)
    machine = cfg.build(bench.pmo_sizes(), seed=seed)
    threads = bench.threads(num_threads, n_transactions=n_transactions,
                            seed=seed)
    return machine.run(threads)


def run_spec(name: str, cfg: EvalConfig, *,
             n_iterations: int = SPEC_DEFAULT_ITERS,
             num_threads: int = 1, seed: int = 2022) -> RunResult:
    """Run one SPEC benchmark under one configuration."""
    bench = get_spec(name)
    machine = cfg.build(bench.pmo_sizes(), seed=seed)
    threads = bench.threads(num_threads, n_iterations=n_iterations,
                            seed=seed)
    return machine.run(threads)


def run_whisper_suite(cfg: EvalConfig, *, names=None,
                      n_transactions: int = WHISPER_DEFAULT_TXS,
                      seed: int = 2022) -> Dict[str, RunResult]:
    from repro.workloads.whisper.benchmarks import WHISPER_NAMES
    names = names or WHISPER_NAMES
    return {name: run_whisper(name, cfg, n_transactions=n_transactions,
                              seed=seed)
            for name in names}


def run_spec_suite(cfg: EvalConfig, *, names=None,
                   n_iterations: int = SPEC_DEFAULT_ITERS,
                   num_threads: int = 1,
                   seed: int = 2022) -> Dict[str, RunResult]:
    from repro.workloads.spec.base import SPEC_NAMES
    names = names or SPEC_NAMES
    return {name: run_spec(name, cfg, n_iterations=n_iterations,
                           num_threads=num_threads, seed=seed)
            for name in names}
