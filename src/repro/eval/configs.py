"""Evaluation configurations (Section VI "Configurations").

The paper evaluates three schemes, plus Figure 11's ablations:

* **MM** — MERR insertion on the MERR architecture: manually inserted
  pairs, each executed fully as a system call, randomized placement on
  every (re)attach, process-wide Basic-style semantics.
* **TM** — TERP insertion on the MERR architecture: compiler-inserted
  conditional attach/detach with a TEW target, but every conditional
  call still traps (syscall cost).
* **TT** — TERP insertion on the TERP architecture: circular buffer,
  window combining, 27-cycle silent operations.
* **TT_BASIC** — TERP-frequency insertion under Basic semantics
  (Figure 11 "basic semantics"): one thread at a time can hold a PMO.
* **TT_COND** — conditional instructions without window combining
  (Figure 11 "+Cond").

Each configuration builds a fresh engine/policy pair per run (state is
never shared across runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.arch.cond_engine import TerpArchEngine
from repro.core.errors import ConfigurationError
from repro.core.semantics import BasicSemantics, EwConsciousSemantics
from repro.core.units import us
from repro.sim.machine import Machine
from repro.sim.policy import CompilerTerpPolicy, ManualMerrPolicy
from repro.sim.stats import RunResult

#: The paper's window targets.
DEFAULT_EW_US = 40.0
DEFAULT_TEW_US = 2.0


@dataclass(frozen=True)
class EvalConfig:
    """One named scheme; ``build`` produces a ready Machine."""

    key: str
    label: str
    ew_target_us: float = DEFAULT_EW_US
    tew_target_us: float = DEFAULT_TEW_US

    def build(self, pmo_sizes: Dict[str, int], *, seed: int = 2022) -> Machine:
        ew = us(self.ew_target_us)
        tew = us(self.tew_target_us)
        if self.key == "MM":
            return Machine(
                engine=BasicSemantics(blocking=True),
                policy_factory=lambda: ManualMerrPolicy(ew),
                pmo_sizes=pmo_sizes,
                randomize_on_reattach=True,
                seed=seed)
        if self.key == "TM":
            # TM runs on the MERR architecture: conditional calls all
            # trap, and real (re)attaches randomize placement.
            return Machine(
                engine=EwConsciousSemantics(ew),
                policy_factory=lambda: CompilerTerpPolicy(tew),
                pmo_sizes=pmo_sizes,
                silent_ops_are_syscalls=True,
                randomize_on_reattach=True,
                seed=seed)
        if self.key == "TT":
            return Machine(
                engine=TerpArchEngine(ew),
                policy_factory=lambda: CompilerTerpPolicy(tew),
                pmo_sizes=pmo_sizes,
                seed=seed)
        if self.key == "TT_BASIC":
            return Machine(
                engine=BasicSemantics(blocking=True),
                policy_factory=lambda: CompilerTerpPolicy(tew),
                pmo_sizes=pmo_sizes,
                seed=seed)
        if self.key == "TT_COND":
            return Machine(
                engine=TerpArchEngine(ew, window_combining=False),
                policy_factory=lambda: CompilerTerpPolicy(tew),
                pmo_sizes=pmo_sizes,
                seed=seed)
        raise ConfigurationError(f"unknown configuration {self.key!r}")


def config(key: str, *, ew_target_us: float = DEFAULT_EW_US,
           tew_target_us: float = DEFAULT_TEW_US) -> EvalConfig:
    """Build a named configuration with the given window targets."""
    labels = {
        "MM": f"MERR insertion + MERR arch ({ew_target_us:g}us EW)",
        "TM": f"TERP insertion + MERR arch ({ew_target_us:g}us EW, "
              f"{tew_target_us:g}us TEW)",
        "TT": f"TERP insertion + TERP arch ({ew_target_us:g}us EW, "
              f"{tew_target_us:g}us TEW)",
        "TT_BASIC": "TERP insertion, Basic semantics (Fig. 11)",
        "TT_COND": "TERP arch without window combining (+Cond)",
    }
    if key not in labels:
        raise ConfigurationError(f"unknown configuration {key!r}")
    return EvalConfig(key=key, label=labels[key],
                      ew_target_us=ew_target_us,
                      tew_target_us=tew_target_us)
