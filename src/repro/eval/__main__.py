"""Command-line entry point: ``python -m repro.eval <artifact>``.

Regenerates any of the paper's tables and figures, or ``all``::

    python -m repro.eval table3
    python -m repro.eval fig9 --txs 3000
    python -m repro.eval all --scale 0.5
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.eval.experiments import (
    fig8, fig9, fig10, fig11, semantics_space, table3, table4,
    table5, table6)

DEFAULT_TXS = 6_000
DEFAULT_ITERS = 4_000
DEFAULT_OBJECTS = 1_000


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("artifacts", nargs="+",
                        help="table3 table4 table5 table6 fig8 fig9 "
                             "fig10 fig11 semantics, or 'all'")
    parser.add_argument("--txs", type=int, default=DEFAULT_TXS,
                        help="WHISPER transactions per run")
    parser.add_argument("--iters", type=int, default=DEFAULT_ITERS,
                        help="SPEC iterations per run")
    parser.add_argument("--objects", type=int, default=DEFAULT_OBJECTS,
                        help="objects per dead-time profile")
    parser.add_argument("--threads", type=int, default=4,
                        help="thread count for fig11")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="global multiplier on operation counts")
    parser.add_argument("--seed", type=int, default=2022)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    txs = max(200, int(args.txs * args.scale))
    iters = max(200, int(args.iters * args.scale))
    objects = max(100, int(args.objects * args.scale))

    runners = {
        "fig8": lambda: fig8.run(n_objects_per_profile=objects,
                                 seed=args.seed).render(),
        "table3": lambda: table3.run(n_transactions=txs,
                                     seed=args.seed).render(),
        "fig9": lambda: fig9.run(n_transactions=txs,
                                 seed=args.seed).render(),
        "table4": lambda: table4.run(n_iterations=iters,
                                     seed=args.seed).render(),
        "fig10": lambda: fig10.run(n_iterations=iters,
                                   seed=args.seed).render(),
        "fig11": lambda: fig11.run(n_iterations=max(200, iters // 2),
                                   num_threads=args.threads,
                                   seed=args.seed).render(),
        "table5": lambda: table5.run().render(),
        "table6": lambda: table6.run(n_transactions=txs // 2,
                                     n_iterations=iters // 2,
                                     seed=args.seed).render(),
        "semantics": lambda: semantics_space.render(
            semantics_space.run()),
    }

    selected = list(runners) if "all" in args.artifacts \
        else args.artifacts
    unknown = [a for a in selected if a not in runners]
    if unknown:
        print(f"unknown artifacts: {unknown}; choose from "
              f"{sorted(runners)} or 'all'", file=sys.stderr)
        return 2
    for name in selected:
        started = time.time()
        text = runners[name]()
        print("=" * 72)
        print(text)
        print(f"[{name} in {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
