"""Primary→standby journal shipping for the durable pool.

The primary's :class:`~repro.pmo.store.GroupCommitter` hands every
post-fsync batch to a :class:`~repro.replication.shipper.JournalShipper`
(semi-sync: the commit waits for the standby's ack while connected);
a :class:`~repro.replication.applier.StandbyDaemon` replays the stream
into its own pool directory and can be *promoted* into a live terpd on
the dead primary's port, with recovery (epoch, sessions, forced
detaches) running verbatim.  See DESIGN.md §13.
"""

from repro.replication.applier import (
    JournalApplier, ReplicationChainError, StandbyDaemon)
from repro.replication.shipper import JournalShipper
from repro.replication.wire import (
    MAX_FRAME_BYTES, REPL_PROTOCOL_VERSION, ReplicationWireError,
    recv_msg, send_msg)

__all__ = [
    "JournalShipper", "JournalApplier", "StandbyDaemon",
    "ReplicationChainError", "ReplicationWireError",
    "send_msg", "recv_msg", "REPL_PROTOCOL_VERSION", "MAX_FRAME_BYTES",
]
