"""The replication wire: length-prefixed header+payload frames.

The shipper and applier speak a dedicated binary protocol on their own
socket — never the client protocol, so replication traffic cannot
starve (or be starved by) request traffic.  Every message is one
frame::

    u32 total_len | u32 header_len | header JSON | payload bytes

The JSON header carries the message type and metadata; bulk page
images ride the binary payload untouched (the same split the v2
client protocol uses for reads and writes).  Message types:

``hello`` / ``hello-ack``
    version negotiation, sent once per connection in each direction.
``reset``
    primary → standby, first frame of every bootstrap: the complete
    list of registered PMO names.  The applier deletes mirrored pool
    files *not* in the list and restarts its mirrored session journal
    (the primary re-ships the journal in full right after) — so a
    destroy that raced a disconnect, or a stale prior generation in
    the standby's directory, can never survive into a promotion.
``header``
    one PMO's 4096-byte durable file header (payload), shipped at
    registration and again on every bootstrap.  Applying a header
    truncates the mirrored file to the bare header: stale pages never
    outlive the snapshot that follows.
``batch``
    one committed group-commit batch: PMO name/id, the committed
    ``flush_seq``, the previous shipped seq (``prev``, so the applier
    can verify the stream is gapless), and ``pages`` as
    ``[index, crc32]`` pairs whose 4096-byte images are concatenated
    in the payload.  ``prev == -1`` resets the chain (a bootstrap
    snapshot).
``journal``
    one session-journal record, mirrored verbatim so a promoted
    standby recovers sessions/epoch exactly as a warm restart would.
``destroy``
    a PMO's durable files were destroyed on the primary.
``ack``
    standby → primary: the named batch is fsynced on the standby.
``promote`` / ``promoted``
    control: turn the standby into a live terpd on the given port.
``status`` / ``status-ack``
    control: what the standby has applied so far.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional, Tuple

from repro.core.errors import TerpError

__all__ = ["ReplicationWireError", "send_msg", "recv_msg",
           "REPL_PROTOCOL_VERSION", "MAX_FRAME_BYTES"]

#: Replication protocol revision (independent of the client protocol).
#: v2 added the reconciling ``reset`` frame and truncate-on-header.
REPL_PROTOCOL_VERSION = 2

#: Frame size guard: a batch is at most ``max_batch`` merged snapshots
#: of 4KB pages; 64 MiB leaves generous headroom over any legal batch.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


class ReplicationWireError(TerpError):
    """A malformed or oversized replication frame."""


def send_msg(sock: socket.socket, header: Dict[str, Any],
             payload: bytes = b"") -> None:
    """Send one frame (blocking, complete)."""
    head = json.dumps(header, separators=(",", ":")).encode("utf-8")
    total = _LEN.size + len(head) + len(payload)
    if total > MAX_FRAME_BYTES:
        raise ReplicationWireError(
            f"replication frame of {total} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound")
    sock.sendall(_LEN.pack(total) + _LEN.pack(len(head)) + head
                 + payload)


def _recv_exactly(sock: socket.socket, n: int) -> Optional[bytes]:
    parts = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            return None
        parts.append(chunk)
        got += len(chunk)
    return b"".join(parts)


def recv_msg(sock: socket.socket
             ) -> Optional[Tuple[Dict[str, Any], bytes]]:
    """Receive one frame; ``None`` on orderly EOF at a frame boundary."""
    raw_len = _recv_exactly(sock, _LEN.size)
    if raw_len is None:
        return None
    (total,) = _LEN.unpack(raw_len)
    if total < _LEN.size or total > MAX_FRAME_BYTES:
        raise ReplicationWireError(
            f"replication frame length {total} out of bounds")
    body = _recv_exactly(sock, total)
    if body is None:
        raise ReplicationWireError("connection died mid-frame")
    (head_len,) = _LEN.unpack_from(body, 0)
    if head_len > total - _LEN.size:
        raise ReplicationWireError(
            f"header length {head_len} exceeds frame body")
    try:
        header = json.loads(body[_LEN.size:_LEN.size + head_len])
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ReplicationWireError(
            f"undecodable frame header: {exc}") from exc
    if not isinstance(header, dict) or "t" not in header:
        raise ReplicationWireError("frame header must be an object "
                                   "with a 't' field")
    return header, body[_LEN.size + head_len:]
