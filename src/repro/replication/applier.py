"""The standby's half of journal shipping: apply, ack, promote.

:class:`JournalApplier` continuously replays shipped frames into its
own pool directory using the durable store's *exact* file formats
(header page, CRC-trailed page slots, journal-before-home batches) —
imported from :mod:`repro.pmo.store`, never re-derived — so the
standby's directory is at all times a valid pool that
:meth:`~repro.pmo.store.PmoStore.load_all` can recover.  A batch is
acked only after both of its fsyncs, which is the standby's half of
invariant I7: an ack the primary's semi-sync commit waited for means
the acknowledged write exists in two pool directories.

Per PMO the applier enforces the shipped chain: batch ``(prev, seq]``
must extend the last applied seq exactly (``prev == -1`` resets the
chain — a bootstrap snapshot).  A broken chain raises, the link drops,
and the primary's reconnect bootstraps from scratch: gaps heal by
snapshot, never by guessing.

:class:`StandbyDaemon` wraps the applier in a listening socket plus a
``promote`` control path.  Promotion is deliberately thin: it
constructs a :class:`~repro.service.server.TerpService` over the
standby's pool directory on the primary's port — and
:class:`~repro.service.recovery.RecoveryManager` runs **verbatim** in
the service constructor, exactly as a warm restart would: pool rescan,
epoch adoption from the mirrored session journal (the exposure clock
continues, unbroken, through the failover), outage-attributed forced
detaches, session restore in the lingering state.  Clients reconnect
through the existing typed-``ConnectionLost`` retry path and resume
with the tokens they already hold.
"""

from __future__ import annotations

import os
import socket
import threading
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.errors import TerpError
from repro.core.units import PAGE_SIZE
from repro.pmo.store import (
    HEADER_SPAN, JOURNAL_COMMIT, JOURNAL_MAGIC, PAGE_MARKER, SLOT_SIZE,
    TRAILER, _JRN_COMMIT, _JRN_HEAD, _JRN_PAGE, _safe_filename)
from repro.replication.wire import (
    REPL_PROTOCOL_VERSION, ReplicationWireError, recv_msg, send_msg)
from repro.service.recovery import SessionJournal

__all__ = ["JournalApplier", "StandbyDaemon", "ReplicationChainError"]


class ReplicationChainError(TerpError):
    """A shipped batch does not extend the applied chain; the link
    must drop and re-bootstrap."""


class JournalApplier:
    """Replays shipped frames into a standby pool directory."""

    def __init__(self, pool_dir: os.PathLike, *,
                 fsync: bool = True) -> None:
        self.root = Path(pool_dir)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self._lock = threading.Lock()
        self._journal = SessionJournal(self.root)
        #: last applied flush_seq per PMO — the chain heads.
        self.applied: Dict[str, int] = {}
        self.batches_applied = 0
        self.pages_applied = 0
        self.journal_records = 0
        self.chain_errors = 0

    def path_for(self, name: str) -> Path:
        return self.root / f"{_safe_filename(name)}.pmo"

    def journal_path_for(self, name: str) -> Path:
        return self.root / f"{_safe_filename(name)}.journal"

    def close(self) -> None:
        self._journal.close()

    # -- frame application -------------------------------------------------

    def apply_header(self, name: str, header: bytes) -> None:
        """(Re)create a PMO's durable file as the bare header.

        Deliberately truncating: a header is shipped at registration
        (fresh PMO, nothing to keep) and at bootstrap (a full snapshot
        follows immediately), so any pages already in the file belong
        to a stale generation and must not survive into a promotion.
        The chain restarts at 0; the bootstrap snapshot's ``prev ==
        -1`` re-seats it at the snapshot seq.
        """
        if len(header) != HEADER_SPAN:
            raise ReplicationWireError(
                f"shipped header is {len(header)} bytes, "
                f"expected {HEADER_SPAN}")
        with self._lock:
            with open(self.path_for(name), "wb") as fh:
                fh.write(header)
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            self.journal_path_for(name).unlink(missing_ok=True)
            self.applied[name] = 0

    def apply_batch(self, name: str, seq: int, prev: int,
                    meta: List[List[int]], payload: bytes) -> None:
        """Apply one committed batch journal-before-home and record
        its seq as the PMO's new chain head.  Raises (never acks) on a
        chain break, a CRC mismatch, or a malformed payload."""
        pages = self._check_batch(name, seq, prev, meta, payload)
        with self._lock:
            self._verify_chain(name, seq, prev)
            path = self.path_for(name)
            if not path.exists():
                self.chain_errors += 1
                raise ReplicationChainError(
                    f"batch for {name!r} before its header")
            # The same double-write discipline as the primary: a
            # standby crash mid-apply leaves either an unapplied
            # journal or a committed one recovery replays.
            self._write_journal(name, seq, pages)
            self._write_home(path, pages)
            self.journal_path_for(name).unlink(missing_ok=True)
            self.applied[name] = seq
            self.batches_applied += 1
            self.pages_applied += len(pages)

    def apply_journal(self, record: Dict[str, Any]) -> None:
        """Append one mirrored session-journal record."""
        with self._lock:
            self._journal._append(record)
            self.journal_records += 1

    def apply_destroy(self, name: str) -> None:
        with self._lock:
            self.path_for(name).unlink(missing_ok=True)
            self.journal_path_for(name).unlink(missing_ok=True)
            self.applied.pop(name, None)

    def apply_reset(self, names: List[str]) -> None:
        """Reconcile the mirror with the primary's registered set (the
        first frame of every bootstrap): prune mirrored files for PMOs
        the primary no longer has — a destroy that raced a disconnect,
        or a stale prior generation in this directory — and restart
        the mirrored session journal, which the primary re-ships in
        full immediately after."""
        live = {str(name) for name in names}
        keep = {_safe_filename(name) for name in live}
        with self._lock:
            for path in self.root.glob("*.pmo"):
                if path.stem not in keep:
                    path.unlink(missing_ok=True)
            for path in self.root.glob("*.journal"):
                if path != self._journal.path \
                        and path.stem not in keep:
                    path.unlink(missing_ok=True)
            for name in list(self.applied):
                if name not in live:
                    del self.applied[name]
            self._journal.close()
            self._journal.path.unlink(missing_ok=True)

    def status(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "pool_dir": str(self.root),
                "applied": dict(self.applied),
                "batches_applied": self.batches_applied,
                "pages_applied": self.pages_applied,
                "journal_records": self.journal_records,
                "chain_errors": self.chain_errors,
            }

    # -- internals ---------------------------------------------------------

    def _verify_chain(self, name: str, seq: int, prev: int) -> None:
        if prev == -1:
            return                   # bootstrap snapshot: chain reset
        last = self.applied.get(name)
        if last != prev:
            self.chain_errors += 1
            raise ReplicationChainError(
                f"gap in shipped stream for {name!r}: batch covers "
                f"({prev}, {seq}] but last applied seq is {last}")

    def _check_batch(self, name: str, seq: int, prev: int,
                     meta: List[List[int]], payload: bytes
                     ) -> List[Tuple[int, bytes]]:
        if prev != -1 and seq <= prev:
            raise ReplicationWireError(
                f"non-monotone batch for {name!r}: seq {seq} <= "
                f"prev {prev}")
        if len(payload) != len(meta) * PAGE_SIZE:
            raise ReplicationWireError(
                f"batch payload is {len(payload)} bytes for "
                f"{len(meta)} page(s)")
        pages: List[Tuple[int, bytes]] = []
        view = memoryview(payload)
        for slot, entry in enumerate(meta):
            index, crc = int(entry[0]), int(entry[1])
            page = bytes(view[slot * PAGE_SIZE:(slot + 1) * PAGE_SIZE])
            if zlib.crc32(page) & 0xFFFFFFFF != crc:
                raise ReplicationWireError(
                    f"shipped page {index} of {name!r} failed CRC")
            pages.append((index, page))
        return pages

    def _write_journal(self, name: str, seq: int,
                       pages: List[Tuple[int, bytes]]) -> None:
        parts = [_JRN_HEAD.pack(JOURNAL_MAGIC, seq, len(pages))]
        for index, page in pages:
            parts.append(_JRN_PAGE.pack(index,
                                        zlib.crc32(page) & 0xFFFFFFFF))
            parts.append(page)
        parts.append(_JRN_COMMIT.pack(JOURNAL_COMMIT, seq))
        with open(self.journal_path_for(name), "wb") as fh:
            fh.write(b"".join(parts))
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())

    def _write_home(self, path: Path,
                    pages: List[Tuple[int, bytes]]) -> None:
        with open(path, "r+b") as fh:
            for index, page in pages:
                fh.seek(HEADER_SPAN + index * SLOT_SIZE)
                fh.write(page + TRAILER.pack(
                    zlib.crc32(page) & 0xFFFFFFFF, PAGE_MARKER))
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())


class StandbyDaemon:
    """A warm standby: applies shipped frames until promoted.

    ``service_kwargs`` are the :class:`TerpService` constructor
    arguments the promoted daemon will use (minus ``port`` and
    ``pool_dir``, which promotion supplies); they should mirror the
    dead primary's configuration.
    """

    def __init__(self, pool_dir: os.PathLike, *,
                 host: str = "127.0.0.1", port: int = 0,
                 service_kwargs: Optional[Dict[str, Any]] = None,
                 quiet: bool = True) -> None:
        self.pool_dir = Path(pool_dir)
        self.host = host
        self.port = port
        self.service_kwargs = dict(service_kwargs or {})
        self.quiet = quiet
        self.applier = JournalApplier(self.pool_dir)
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: List[threading.Thread] = []
        self._conns: List[socket.socket] = []
        self._stop = threading.Event()
        self._promote_lock = threading.Lock()
        self.promoted = False
        self.service_thread: Optional[Any] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> int:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(8)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="terp-standby-accept",
            daemon=True)
        self._accept_thread.start()
        return self.port

    @property
    def bound_port(self) -> int:
        return self.port

    def stop(self) -> None:
        self._stop.set()
        if self._listener is not None:
            # shutdown() wakes a thread parked in accept(); close()
            # alone can leave it blocked until the join timeout.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None
        for conn in self._conns:
            # shutdown() unblocks serve threads parked in recv().
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        self._conns.clear()
        for thread in self._conn_threads:
            thread.join(timeout=2.0)
        self._conn_threads.clear()
        self.applier.close()
        if self.service_thread is not None:
            self.service_thread.stop()
            self.service_thread = None

    # -- promotion ---------------------------------------------------------

    def promote(self, port: int,
                overrides: Optional[Dict[str, Any]] = None) -> int:
        """Bring this standby up as a live terpd on ``port``.

        Recovery runs verbatim inside the TerpService constructor:
        the mirrored pool + session journal give the promoted daemon
        the dead primary's epoch, sessions, and audit history.
        Idempotent — a second promote returns the serving port.
        """
        with self._promote_lock:
            if self.promoted:
                return self.service_thread.service.bound_port
            from repro.service.server import ServiceThread, TerpService
            kwargs = dict(self.service_kwargs)
            kwargs.update(overrides or {})
            kwargs["port"] = port
            kwargs["pool_dir"] = self.pool_dir
            # Applies stop before recovery scans the pool: the
            # promoted service is the directory's only writer.
            self.promoted = True
            thread = ServiceThread(TerpService(**kwargs))
            service = thread.start()
            self.service_thread = thread
            if not self.quiet:
                print(f"standby promoted, terpd serving on "
                      f"tcp://{kwargs.get('host', '127.0.0.1')}:"
                      f"{service.bound_port}", flush=True)
            return service.bound_port

    # -- the replication socket --------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            self._conns.append(conn)
            thread = threading.Thread(
                target=self._serve, args=(conn,),
                name="terp-standby-conn", daemon=True)
            thread.start()
            self._conn_threads.append(thread)

    def _serve(self, conn: socket.socket) -> None:
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while not self._stop.is_set():
                got = recv_msg(conn)
                if got is None:
                    return
                header, payload = got
                if not self._dispatch(conn, header, payload):
                    return
        except (OSError, ReplicationWireError, ReplicationChainError):
            # Drop the link; the primary reconnects and bootstraps.
            return
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch(self, conn: socket.socket, header: Dict[str, Any],
                  payload: bytes) -> bool:
        """Handle one frame; False ends the connection."""
        kind = header.get("t")
        if kind == "hello":
            if int(header.get("version", 0)) != REPL_PROTOCOL_VERSION:
                send_msg(conn, {"t": "hello-ack", "ok": False,
                                "version": REPL_PROTOCOL_VERSION})
                return False
            send_msg(conn, {"t": "hello-ack", "ok": True,
                            "version": REPL_PROTOCOL_VERSION})
            return True
        if kind == "promote":
            port = self.promote(int(header.get("port", 0)),
                                header.get("service") or None)
            send_msg(conn, {"t": "promoted", "port": port})
            return True
        if kind == "status":
            send_msg(conn, {"t": "status-ack",
                            "promoted": self.promoted,
                            **self.applier.status()})
            return True
        if self.promoted:
            # The promoted service owns the pool directory now; any
            # straggling primary must not write under it.
            return False
        if kind == "reset":
            pmos = header.get("pmos")
            self.applier.apply_reset(
                [str(p) for p in pmos] if isinstance(pmos, list)
                else [])
            return True
        if kind == "header":
            self.applier.apply_header(str(header["pmo"]), payload)
            return True
        if kind == "batch":
            name = str(header["pmo"])
            seq = int(header["seq"])
            self.applier.apply_batch(
                name, seq, int(header.get("prev", -1)),
                header.get("pages", []), payload)
            send_msg(conn, {"t": "ack", "pmo": name, "seq": seq})
            return True
        if kind == "journal":
            record = header.get("line")
            if isinstance(record, dict):
                self.applier.apply_journal(record)
            return True
        if kind == "destroy":
            self.applier.apply_destroy(str(header["pmo"]))
            return True
        return True                  # unknown frames are ignored
