"""``python -m repro.replication`` — run a warm standby.

Examples::

    # Standby applying into ./standby-pool, listening on an ephemeral
    # port (printed on startup for the primary's --replicate-to):
    python -m repro.replication --pool-dir ./standby-pool \
        --listen-port 0

    # The primary ships to it:
    python -m repro.service --port 7077 --pool-dir ./primary-pool \
        --replicate-to 127.0.0.1:<standby port>

The standby applies shipped batches until it receives a ``promote``
control frame (or SIGINT/SIGTERM), at which point it either becomes a
live terpd on the requested port — recovery running verbatim over the
mirrored pool — or shuts down.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading

from repro.replication.applier import StandbyDaemon
from repro.service.server import (
    DEFAULT_SESSION_EW_NS, DEFAULT_SESSION_LINGER_NS,
    DEFAULT_SWEEP_PERIOD_NS)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.replication",
        description="terpd warm standby: applies shipped journal "
                    "batches into its own pool directory; promotable "
                    "into a live terpd.")
    parser.add_argument("--pool-dir", metavar="DIR", required=True,
                        help="the standby's pool directory (the "
                             "primary's durable state is mirrored "
                             "here)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="replication bind address "
                             "(default: %(default)s)")
    parser.add_argument("--listen-port", type=int, default=7087,
                        help="replication port; 0 picks an ephemeral "
                             "port (default: %(default)s)")
    parser.add_argument("--ew-target-us", type=float, default=40.0,
                        help="promoted service: arch engine EW target "
                             "in us (default: %(default)s)")
    parser.add_argument("--session-ew-ms", type=float,
                        default=DEFAULT_SESSION_EW_NS / 1e6,
                        help="promoted service: session exposure "
                             "budget in ms (default: %(default)s)")
    parser.add_argument("--sweep-period-ms", type=float,
                        default=DEFAULT_SWEEP_PERIOD_NS / 1e6,
                        help="promoted service: sweeper period in ms "
                             "(default: %(default)s)")
    parser.add_argument("--cb-capacity", type=int, default=32,
                        help="promoted service: circular-buffer "
                             "entries (default: %(default)s)")
    parser.add_argument("--commit-interval-us", type=int, default=200,
                        help="promoted service: group-commit window "
                             "in us (default: %(default)s)")
    parser.add_argument("--resume-linger-ms", type=float,
                        default=DEFAULT_SESSION_LINGER_NS / 1e6,
                        help="promoted service: resume-token linger "
                             "in ms (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=2022,
                        help="promoted service: layout seed "
                             "(default: %(default)s)")
    parser.add_argument("--no-obs", action="store_true",
                        help="promoted service: observability in "
                             "no-op mode")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress startup/promotion chatter")
    return parser


def make_standby(args: argparse.Namespace) -> StandbyDaemon:
    service_kwargs = {
        "host": args.host,
        "ew_target_us": args.ew_target_us,
        "session_ew_ns": int(args.session_ew_ms * 1e6),
        "sweep_period_ns": max(1, int(args.sweep_period_ms * 1e6)),
        "cb_capacity": args.cb_capacity,
        "seed": args.seed,
        "obs_enabled": not args.no_obs,
        "session_linger_ns": max(0, int(args.resume_linger_ms * 1e6)),
        "commit_interval_us": max(0, args.commit_interval_us),
    }
    return StandbyDaemon(args.pool_dir, host=args.host,
                         port=args.listen_port,
                         service_kwargs=service_kwargs,
                         quiet=args.quiet)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    standby = make_standby(args)
    port = standby.start()
    if not args.quiet:
        print(f"standby listening on {args.host}:{port} "
              f"(pool {args.pool_dir})", flush=True)
    stop = threading.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, lambda *_: stop.set())
    try:
        while not stop.is_set():
            stop.wait(0.25)
            # A promoted standby keeps serving until signalled; the
            # replication listener already refuses further applies.
    except KeyboardInterrupt:
        pass
    finally:
        if not args.quiet and standby.promoted:
            print("standby final applier status:", flush=True)
            print(json.dumps(standby.applier.status(), indent=2),
                  flush=True)
        standby.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
