"""The primary's half of journal shipping: :class:`JournalShipper`.

The :class:`~repro.pmo.store.GroupCommitter` hands every committed
batch here *after* its fsyncs and *before* its tickets retire.  While
a standby is connected the shipper is **semi-synchronous**: the batch
is streamed and the commit parks until the standby acks it fsynced —
so a ``psync`` the client saw succeed is durable in *two* pool
directories, which is the zero-acknowledged-write-loss guarantee
(invariant I7) the failover chaos leg checks.

Availability beats replication: a standby that is absent, dead, or
too slow degrades the shipper (batches counted ``dropped``, commits
proceed locally), never the primary.  A background dialer reconnects
and then **bootstraps**: the standby first receives a reconciling
``reset`` (the full registered set — it prunes mirrored files for
anything else, so a destroy the link was down for cannot resurrect),
then every registered PMO's durable header plus a snapshot batch of
its committed pages (``prev = -1`` resets the per-PMO chain),
followed by the session journal — so a standby attached mid-life
converges to *exactly* the primary's durable state, not just the
traffic after the connect.

Per PMO the shipped stream is a gapless, monotone chain: each batch
carries ``(prev, seq]`` and the applier refuses any link that does
not extend its last applied seq.  Replication lag (shipped minus
acked batches) is exported as the ``terpd_repl_lag_batches`` gauge,
which the replication bench samples to report ``lag p99``.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.replication.wire import (
    REPL_PROTOCOL_VERSION, ReplicationWireError, recv_msg, send_msg)

if TYPE_CHECKING:
    from repro.faults.plan import FaultPlan
    from repro.pmo.store import PmoStore
    from repro.service.recovery import SessionJournal

__all__ = ["JournalShipper"]

#: How long a semi-sync commit waits for the standby's ack before
#: degrading (the commit itself is already locally durable).
DEFAULT_ACK_TIMEOUT_S = 5.0
#: Background dialer retry period while the standby is unreachable.
DEFAULT_RECONNECT_S = 0.2


class JournalShipper:
    """Streams committed journal batches to a warm standby."""

    def __init__(self, host: str, port: int, *,
                 store: "PmoStore",
                 journal: Optional["SessionJournal"] = None,
                 metrics: Optional[Any] = None,
                 faults: Optional["FaultPlan"] = None,
                 sync: bool = True,
                 ack_timeout_s: float = DEFAULT_ACK_TIMEOUT_S,
                 reconnect_s: float = DEFAULT_RECONNECT_S) -> None:
        self.host = host
        self.port = port
        self._store = store
        self._journal = journal
        self._metrics = metrics
        self._faults = faults
        self.sync = sync
        self.ack_timeout_s = ack_timeout_s
        self.reconnect_s = reconnect_s
        #: serializes socket sends and the per-PMO chain state.
        self._send_lock = threading.RLock()
        #: ack bookkeeping (its lock is distinct from the send lock so
        #: a parked commit never blocks other sends).
        self._ack_cond = threading.Condition()
        self._sock: Optional[socket.socket] = None
        self.connected = False
        self._prev: Dict[str, int] = {}
        self._acked: Dict[str, int] = {}
        self._inflight: Dict[Tuple[str, int], int] = {}
        self._reader: Optional[threading.Thread] = None
        self._dialer: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._wake = threading.Event()
        #: lifetime tallies (also mirrored into the metrics registry).
        self.shipped = 0
        self.acked = 0
        self.dropped = 0
        self.reconnects = 0
        self.last_error = ""

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> bool:
        """Dial once synchronously (so a standby that is already up is
        bootstrapped before the primary serves its first request),
        then keep a background dialer for later reconnects.  Returns
        whether the first dial connected."""
        ok = self._connect_once()
        self._dialer = threading.Thread(
            target=self._dial_loop, name="terp-repl-dialer", daemon=True)
        self._dialer.start()
        return ok

    def stop(self) -> None:
        """Graceful shutdown: the store has already drained its group
        committer through :meth:`ship_commit`, so closing the socket
        here loses nothing acked."""
        self._stop.set()
        self._wake.set()
        self._drop_connection("shutdown")
        for thread in (self._dialer, self._reader):
            if thread is not None and thread is not \
                    threading.current_thread():
                thread.join(timeout=2.0)
        self._dialer = None

    def abort(self) -> None:
        """Crash-path shutdown: drop the socket mid-stream, exactly as
        a SIGKILL would."""
        self._stop.set()
        self._wake.set()
        self._drop_connection("crashed")

    # -- status ------------------------------------------------------------

    @property
    def lag(self) -> int:
        """Batches shipped but not yet acked by the standby."""
        return max(0, self.shipped - self.acked)

    def status(self) -> Dict[str, Any]:
        return {
            "target": f"{self.host}:{self.port}",
            "connected": self.connected,
            "sync": self.sync,
            "shipped": self.shipped,
            "acked": self.acked,
            "dropped": self.dropped,
            "lag": self.lag,
            "reconnects": self.reconnects,
            "last_error": self.last_error,
        }

    # -- shipping (called by the store and the session journal) ------------

    def ship_commit(self, name: str, pmo_id: int, seq: int,
                    pages: List[Tuple[int, bytes]]) -> None:
        """Ship one committed batch; parks for the standby's ack in
        sync mode.  Never raises — every failure path degrades."""
        if self._faults is not None:
            rule = self._faults.fire("repl.ship_stall")
            if rule is not None and rule.delay_ns > 0:
                time.sleep(rule.delay_ns / 1e9)
        with self._send_lock:
            if not self.connected:
                self._note_drop()
                return
            prev = self._prev.get(name)
            try:
                if prev is None:
                    # First sight of this PMO on a live link (its
                    # header ship raced the connect): bootstrap it —
                    # the snapshot includes this very batch's pages,
                    # which are already on media.
                    target = self._bootstrap_pmo(name)
                    if target is None:
                        self._note_drop()
                        return
                elif seq <= prev:
                    # Already covered by a bootstrap snapshot that
                    # read the pool file after this batch's fsync.
                    target = prev
                else:
                    self._send_batch(name, pmo_id, seq, prev, pages)
                    self._prev[name] = seq
                    target = seq
            except (OSError, ReplicationWireError) as exc:
                self._drop_connection(f"ship: {exc}")
                self._note_drop()
                return
        if self.sync and not self._await_ack(name, target):
            self._note_drop()

    def ship_header(self, name: str, header: bytes) -> None:
        """Mirror a PMO registration (fire-and-forget)."""
        with self._send_lock:
            if not self.connected:
                return
            if name in self._prev:
                # A bootstrap that raced this register already shipped
                # the header (plus a snapshot); re-shipping would
                # truncate the mirror behind the snapshot's back.
                return
            try:
                send_msg(self._sock, {"t": "header", "pmo": name},
                         header)
                self._prev.setdefault(name, 0)
            except (OSError, ReplicationWireError) as exc:
                self._drop_connection(f"header: {exc}")

    def ship_destroy(self, name: str) -> None:
        """Mirror a PMO destroy (fire-and-forget)."""
        with self._send_lock:
            self._prev.pop(name, None)
            if not self.connected:
                return
            try:
                send_msg(self._sock, {"t": "destroy", "pmo": name})
            except (OSError, ReplicationWireError) as exc:
                self._drop_connection(f"destroy: {exc}")
        with self._ack_cond:
            self._acked.pop(name, None)

    def ship_journal(self, record: Dict[str, Any]) -> None:
        """Mirror one session-journal record (fire-and-forget: data
        durability is I7's contract; session identity rides along)."""
        with self._send_lock:
            if not self.connected:
                return
            try:
                send_msg(self._sock, {"t": "journal", "line": record})
            except (OSError, ReplicationWireError) as exc:
                self._drop_connection(f"journal: {exc}")

    # -- connection management ---------------------------------------------

    def _dial_loop(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(self.reconnect_s)
            self._wake.clear()
            if self._stop.is_set():
                return
            if not self.connected:
                self._connect_once()

    def _connect_once(self) -> bool:
        try:
            sock = socket.create_connection((self.host, self.port),
                                            timeout=5.0)
        except OSError as exc:
            self.last_error = f"connect: {exc}"
            return False
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            send_msg(sock, {"t": "hello",
                            "version": REPL_PROTOCOL_VERSION,
                            "role": "primary"})
            got = recv_msg(sock)
            if got is None or got[0].get("t") != "hello-ack":
                raise ReplicationWireError(
                    "standby did not answer the hello")
        except (OSError, ReplicationWireError) as exc:
            self.last_error = f"hello: {exc}"
            sock.close()
            return False
        sock.settimeout(None)
        # Bound *sends* without bounding recvs: a standby that stops
        # reading (stalled process, full TCP window) must degrade
        # shipping, never park a group commit in sendall() under the
        # send lock.  SO_SNDTIMEO is kernel-side and send-only, so the
        # ack reader keeps blocking in recv() while a timed-out send
        # raises OSError — which every ship path already treats as a
        # drop-connection event.
        timeout = max(0.001, self.ack_timeout_s)
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_SNDTIMEO,
            struct.pack("ll", int(timeout),
                        int((timeout - int(timeout)) * 1e6)))
        with self._send_lock:
            self._sock = sock
            self._prev.clear()
            with self._ack_cond:
                self._acked.clear()
                self._inflight.clear()
            self.connected = True
            self.reconnects += 1
            try:
                self._bootstrap_all()
            except (OSError, ReplicationWireError) as exc:
                self._drop_connection(f"bootstrap: {exc}")
                return False
        self._reader = threading.Thread(
            target=self._read_acks, args=(sock,),
            name="terp-repl-acks", daemon=True)
        self._reader.start()
        return True

    def _drop_connection(self, why: str,
                         sock: Optional[socket.socket] = None) -> None:
        with self._send_lock:
            if sock is not None and sock is not self._sock:
                # A stale ack-reader from an already-dropped link must
                # not tear down the connection the dialer has since
                # re-established.
                return
            if self._sock is not None:
                try:
                    # shutdown() unblocks a reader parked in recv();
                    # close() alone can leave it in the syscall.
                    self._sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    self._sock.close()
                except OSError:
                    pass
            self._sock = None
            if self.connected:
                self.last_error = why
            self.connected = False
        with self._ack_cond:
            self._inflight.clear()
            self._ack_cond.notify_all()
        self._set_lag_gauge()

    # -- bootstrap ---------------------------------------------------------

    def _bootstrap_all(self) -> None:
        """Converge a fresh link: a reconciling ``reset`` (the full
        registered set — the applier prunes everything else, so a
        destroy the link was down for cannot survive), then headers +
        committed snapshots for every registered PMO, then the whole
        session journal.  Runs under the send lock, so live commits
        and journal appends queue behind it and the standby sees one
        consistent prefix."""
        names = self._store.registered()
        send_msg(self._sock, {"t": "reset", "pmos": names})
        for name in names:
            self._bootstrap_pmo(name, raise_errors=True)
        if self._journal is not None:
            for record in self._journal.read_records():
                send_msg(self._sock, {"t": "journal", "line": record})

    def _bootstrap_pmo(self, name: str, *,
                       raise_errors: bool = False) -> Optional[int]:
        """Ship one PMO's header + committed pages; returns the
        snapshot's seq (the new chain head), or None if degraded."""
        try:
            header, seq, pages = self._store.committed_state(name)
        except Exception:
            # Unregistered mid-flight (destroy raced): nothing to ship.
            return None
        try:
            send_msg(self._sock, {"t": "header", "pmo": name}, header)
            self._send_batch(name, 0, seq, -1, pages)
        except (OSError, ReplicationWireError):
            if raise_errors:
                raise
            self._drop_connection("bootstrap")
            return None
        self._prev[name] = seq
        return seq

    # -- internals ---------------------------------------------------------

    def _send_batch(self, name: str, pmo_id: int, seq: int, prev: int,
                    pages: List[Tuple[int, bytes]]) -> None:
        import zlib
        meta = [[index, zlib.crc32(page) & 0xFFFFFFFF]
                for index, page in pages]
        payload = b"".join(page for _, page in pages)
        with self._ack_cond:
            self._inflight[(name, seq)] = time.perf_counter_ns()
        send_msg(self._sock, {"t": "batch", "pmo": name,
                              "pmo_id": pmo_id, "seq": seq,
                              "prev": prev, "pages": meta}, payload)
        self.shipped += 1
        if self._metrics is not None:
            self._metrics.note_ship()
        self._set_lag_gauge()

    def _await_ack(self, name: str, seq: int) -> bool:
        deadline = time.monotonic() + self.ack_timeout_s
        with self._ack_cond:
            while self._acked.get(name, -1) < seq:
                if not self.connected:
                    return False
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self.last_error = (f"ack timeout: {name} seq {seq}"
                                       f" after {self.ack_timeout_s}s")
                    return False
                self._ack_cond.wait(remaining)
            return True

    def _read_acks(self, sock: socket.socket) -> None:
        while not self._stop.is_set():
            try:
                got = recv_msg(sock)
            except (OSError, ReplicationWireError) as exc:
                self._drop_connection(f"ack stream: {exc}", sock)
                return
            if got is None:
                self._drop_connection("standby closed the link", sock)
                return
            header, _ = got
            if header.get("t") != "ack":
                continue
            name = str(header.get("pmo", ""))
            seq = int(header.get("seq", -1))
            with self._ack_cond:
                if seq > self._acked.get(name, -1):
                    self._acked[name] = seq
                t0 = self._inflight.pop((name, seq), None)
                self.acked += 1
                self._ack_cond.notify_all()
            if self._metrics is not None:
                latency = (time.perf_counter_ns() - t0
                           if t0 is not None else 0)
                self._metrics.note_ship_ack(latency)
            self._set_lag_gauge()

    def _note_drop(self) -> None:
        self.dropped += 1
        if self._metrics is not None:
            self._metrics.note_ship_drop()

    def _set_lag_gauge(self) -> None:
        if self._metrics is not None:
            self._metrics.set_replication_lag(self.lag)
