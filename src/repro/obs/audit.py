"""The exposure-window audit timeline.

Where :mod:`repro.core.exposure` *aggregates* exposure windows into the
paper's EW/TEW statistics, the audit timeline *remembers the events*:
every attach, detach, forced detach, and sweep pass, with the entity
that caused it, the PMO it touched, and — for the closing half of a
pair — how long the window stayed open.  It answers the operator's
questions the aggregate cannot: *when* was this PMO exposed, *to whom*,
and *who* closed the window (the tenant, or the sweeper on its behalf)?

Events land in a bounded ring buffer (old events roll off) while
cumulative per-PMO statistics are kept separately, so
:meth:`AuditTimeline.summary` stays exact over the whole run even
after the ring has wrapped.  A monotonically increasing sequence
number stamps every event, giving a total order across concurrent
sessions regardless of clock granularity.

Like the rest of :mod:`repro.obs`, the timeline has a no-op mode:
constructed with ``enabled=False`` every recorder returns immediately.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Any, Deque, Dict, Hashable, List, Optional, Tuple

#: event kinds, in the vocabulary of the paper's constructs
ATTACH = "attach"
DETACH = "detach"
FORCED_DETACH = "forced-detach"
SWEEP = "sweep"
FAULT = "fault"
#: the daemon came back after a crash; ``duration_ns`` is the outage
RESTART = "restart"
#: one integrity-scrub pass over at-rest pages
SCRUB = "scrub"
#: a PMO failed verification with no repair source
QUARANTINE = "quarantine"


class AuditTimeline:
    """Bounded event log + exact cumulative exposure accounting."""

    def __init__(self, *, capacity: int = 65536,
                 enabled: bool = True) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0
        self._lock = threading.Lock()
        #: (entity, pmo_id) -> attach timestamp of the open window
        self._open: Dict[Tuple[Optional[int], Hashable], int] = {}
        #: pmo_id -> cumulative per-PMO stats (never rolls off)
        self._per_pmo: Dict[Hashable, Dict[str, Any]] = {}
        self.events_recorded = 0
        self.sweeps = 0
        self.faults_injected = 0

    # -- recording --------------------------------------------------------

    def _pmo_stats(self, pmo_id: Hashable,
                   pmo_name: Optional[str]) -> Dict[str, Any]:
        stats = self._per_pmo.get(pmo_id)
        if stats is None:
            stats = {"pmo": pmo_name, "attaches": 0, "detaches": 0,
                     "forced_detaches": 0, "windows": 0,
                     "held_total_ns": 0, "held_max_ns": 0}
            self._per_pmo[pmo_id] = stats
        elif pmo_name is not None and stats["pmo"] is None:
            stats["pmo"] = pmo_name
        return stats

    def _append_locked(self, kind: str, at_ns: int,
                       entity: Optional[int], pmo_id: Hashable,
                       pmo_name: Optional[str],
                       duration_ns: Optional[int], reason: str) -> None:
        # Caller holds self._lock — one lock section per event keeps
        # the seq ordering and the stats update atomic together.
        self._seq += 1
        self.events_recorded += 1
        self._ring.append({
            "seq": self._seq,
            "kind": kind,
            "at_ns": at_ns,
            "entity": entity,
            "pmo_id": pmo_id,
            "pmo": pmo_name,
            "duration_ns": duration_ns,
            "reason": reason,
        })

    def record_attach(self, entity: Optional[int], pmo_id: Hashable,
                      pmo_name: Optional[str], at_ns: int, *,
                      reason: str = "") -> None:
        """An entity gained access to a PMO; opens its held-window."""
        if not self.enabled:
            return
        with self._lock:
            # A silent re-attach inside a combined window keeps the
            # original start: exposure began at the first attach.
            self._open.setdefault((entity, pmo_id), at_ns)
            self._pmo_stats(pmo_id, pmo_name)["attaches"] += 1
            self._append_locked(ATTACH, at_ns, entity, pmo_id,
                                pmo_name, None, reason)

    def record_detach(self, entity: Optional[int], pmo_id: Hashable,
                      pmo_name: Optional[str], at_ns: int, *,
                      forced: bool = False, reason: str = "") -> None:
        """An entity's access ended; closes the held-window if open."""
        if not self.enabled:
            return
        with self._lock:
            since = self._open.pop((entity, pmo_id), None)
            duration = None if since is None else max(0, at_ns - since)
            stats = self._pmo_stats(pmo_id, pmo_name)
            stats["forced_detaches" if forced else "detaches"] += 1
            if duration is not None:
                stats["windows"] += 1
                stats["held_total_ns"] += duration
                if duration > stats["held_max_ns"]:
                    stats["held_max_ns"] = duration
            self._append_locked(FORCED_DETACH if forced else DETACH,
                                at_ns, entity, pmo_id, pmo_name,
                                duration, reason)

    def record_sweep(self, at_ns: int, *, closed: int,
                     duration_ns: Optional[int] = None) -> None:
        """One sweeper pass closed ``closed`` windows."""
        if not self.enabled:
            return
        with self._lock:
            self.sweeps += 1
            self._append_locked(SWEEP, at_ns, None, None, None,
                                duration_ns,
                                f"closed {closed} window(s)")

    def record_fault(self, site: str, kind: str, at_ns: int, *,
                     detail: str = "") -> None:
        """An injected fault fired at ``site``.

        Chaos runs thread the fault plan's ``on_fire`` hook here so
        injected failures are first-class events on the same timeline
        as the windows they perturb — a faulted run's audit record
        shows *both* the chaos and the enforcement that survived it.
        """
        if not self.enabled:
            return
        with self._lock:
            self.faults_injected += 1
            reason = f"{site} [{kind}]"
            if detail:
                reason = f"{reason} {detail}"
            self._append_locked(FAULT, at_ns, None, None, None, None,
                                reason)

    def record_restart(self, at_ns: int, *, downtime_ns: int,
                       sessions_restored: int = 0,
                       reason: str = "") -> None:
        """The daemon recovered after a crash.

        ``downtime_ns`` (carried as the event's ``duration_ns``) is the
        wall-clock outage; the invariant checker's I6 uses it to extend
        the exposure allowance of windows that were open across the
        restart — the clock counted through the outage, the enforcement
        could not.
        """
        if not self.enabled:
            return
        with self._lock:
            detail = reason or (
                f"recovered {sessions_restored} session(s) after "
                f"{downtime_ns / 1e6:.1f}ms down")
            self._append_locked(RESTART, at_ns, None, None, None,
                                max(0, downtime_ns), detail)

    def record_scrub(self, at_ns: int, *, verified: int,
                     repaired: int, quarantined: int) -> None:
        """One bounded integrity-scrub pass finished.

        Only recorded when the pass found damage — an all-clean scrub
        would flood the ring at one event per sweep.
        """
        if not self.enabled or (repaired == 0 and quarantined == 0):
            return
        with self._lock:
            self._append_locked(
                SCRUB, at_ns, None, None, None, None,
                f"verified {verified}, repaired {repaired}, "
                f"quarantined {quarantined}")

    def record_quarantine(self, pmo_id: Hashable,
                          pmo_name: Optional[str], at_ns: int, *,
                          reason: str = "") -> None:
        """A PMO was quarantined (unrepairable integrity failure)."""
        if not self.enabled:
            return
        with self._lock:
            self._pmo_stats(pmo_id, pmo_name)
            self._append_locked(QUARANTINE, at_ns, None, pmo_id,
                                pmo_name, None, reason)

    # -- querying ---------------------------------------------------------

    def events(self, *, pmo: Optional[Hashable] = None,
               kind: Optional[str] = None,
               limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Retained events in sequence order, optionally filtered by
        PMO (id or name) and/or kind, optionally the last ``limit``."""
        with self._lock:
            records = list(self._ring)
        if pmo is not None:
            records = [r for r in records
                       if r["pmo_id"] == pmo or r["pmo"] == pmo]
        if kind is not None:
            records = [r for r in records if r["kind"] == kind]
        if limit is not None:
            records = records[-limit:]
        return records

    def open_windows(self, now_ns: Optional[int] = None
                     ) -> List[Dict[str, Any]]:
        """Currently-open held-windows, oldest first."""
        with self._lock:
            entries = [{"entity": entity, "pmo_id": pmo_id,
                        "since_ns": since,
                        "age_ns": (None if now_ns is None
                                   else max(0, now_ns - since))}
                       for (entity, pmo_id), since in self._open.items()]
        entries.sort(key=lambda e: e["since_ns"])
        return entries

    def summary(self) -> Dict[str, Any]:
        """Whole-run exposure accounting, exact (not ring-bounded).

        ``held_*`` statistics are the audit analogue of the paper's
        TEW: how long entities held access between an attach and the
        detach (voluntary or forced) that closed it.
        """
        with self._lock:
            per_pmo = {str(stats["pmo"] if stats["pmo"] is not None
                           else pmo_id): dict(stats)
                       for pmo_id, stats in self._per_pmo.items()}
            open_count = len(self._open)
            events = self.events_recorded
            sweeps = self.sweeps
            faults = self.faults_injected
        windows = sum(s["windows"] for s in per_pmo.values())
        held_total = sum(s["held_total_ns"] for s in per_pmo.values())
        held_max = max((s["held_max_ns"] for s in per_pmo.values()),
                       default=0)
        return {
            "events": events,
            "attaches": sum(s["attaches"] for s in per_pmo.values()),
            "detaches": sum(s["detaches"] for s in per_pmo.values()),
            "forced_detaches": sum(s["forced_detaches"]
                                   for s in per_pmo.values()),
            "sweeps": sweeps,
            "faults_injected": faults,
            "open_windows": open_count,
            "windows": windows,
            "held_mean_ns": held_total / windows if windows else 0.0,
            "held_max_ns": held_max,
            "per_pmo": per_pmo,
        }

    # -- export -----------------------------------------------------------

    def export_jsonl(self, path) -> int:
        """Write retained events as one JSON object per line."""
        records = self.events()
        with open(path, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record) + "\n")
        return len(records)
