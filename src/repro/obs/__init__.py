"""repro.obs — the observability layer.

Zero-dependency instrumentation for the TERP reproduction, in three
pieces that share one design rule — *bounded memory, no-op mode, cheap
on the hot path*:

``registry``   counters / gauges / histograms (fixed buckets + seeded
               reservoir percentiles), Prometheus text exposition and
               JSON dump — :class:`MetricsRegistry`
``tracing``    nestable spans (context manager, decorator, or one-shot
               ``record_since``) in a ring buffer, JSONL export —
               :class:`Tracer`
``audit``      the exposure-window audit timeline: every attach /
               detach / forced-detach / sweep with entity, PMO, and
               held duration — :class:`AuditTimeline`

:class:`Observability` bundles the three with a single ``enabled``
switch; ``Observability(enabled=False)`` (or :meth:`Observability.noop`)
is the measured-overhead-free mode instrumented code paths check for.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

from repro.obs.audit import AuditTimeline
from repro.obs.registry import (
    DEFAULT_BUCKETS_NS, Counter, Gauge, Histogram, MetricsRegistry,
    Reservoir)
from repro.obs.tracing import NULL_SPAN, Span, Tracer

__all__ = [
    "AuditTimeline",
    "Counter",
    "DEFAULT_BUCKETS_NS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Observability",
    "Reservoir",
    "Span",
    "Tracer",
]


class Observability:
    """One switchboard: a registry, a tracer, and an audit timeline."""

    def __init__(self, *, enabled: bool = True,
                 clock: Callable[[], int] = time.perf_counter_ns,
                 trace_capacity: int = 4096,
                 audit_capacity: int = 65536,
                 trace_runtime: bool = False) -> None:
        self.enabled = enabled
        #: Also emit per-attach/per-detach spans from TerpRuntime.
        #: Off by default: the audit timeline already records every
        #: attach/detach with duration, so runtime spans are extra
        #: detail for debugging, not the steady-state configuration.
        self.trace_runtime = trace_runtime
        self.registry = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(clock=clock, capacity=trace_capacity,
                             enabled=enabled)
        self.audit = AuditTimeline(capacity=audit_capacity,
                                   enabled=enabled)

    @classmethod
    def noop(cls) -> "Observability":
        """An instance every recorder of which does nothing."""
        return cls(enabled=False)

    def dump(self, extra: Optional[Dict[str, Any]] = None
             ) -> Dict[str, Any]:
        """The full observability state as one JSON-able document."""
        out: Dict[str, Any] = {
            "enabled": self.enabled,
            "metrics": self.registry.to_dict(),
            "audit": self.audit.summary(),
            "trace": self.tracer.stats(),
        }
        if extra:
            out.update(extra)
        return out
