"""The metrics registry: counters, gauges, histograms.

A zero-dependency, thread-safe instrument registry in the Prometheus
mold.  Three instrument kinds:

* :class:`Counter` — a monotonically increasing tally;
* :class:`Gauge` — a value that can move both ways;
* :class:`Histogram` — a fixed-bucket distribution *plus* a seeded
  reservoir (:class:`Reservoir`), so it answers both the
  bucket-cumulative questions Prometheus asks (``le`` series) and the
  exact-percentile questions the paper's tables ask (p50/p99 over an
  unbiased sample of the whole run).

Instruments are created (or re-fetched — creation is idempotent)
through a :class:`MetricsRegistry`, optionally labelled; the registry
renders everything as a JSON-able dict (:meth:`MetricsRegistry.to_dict`)
or in the Prometheus text exposition format
(:meth:`MetricsRegistry.prometheus_text`).

A registry built with ``enabled=False`` hands out shared null
instruments whose mutators do nothing: the no-op mode instrumented
code relies on to stay off the profile when observability is off.
"""

from __future__ import annotations

import bisect
import random
import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import TerpError

#: label set in canonical (sorted, hashable) form
LabelItems = Tuple[Tuple[str, str], ...]

#: Default histogram buckets, in nanoseconds: 1us .. 1s, roughly
#: logarithmic — sized for request/sweep latencies of a daemon whose
#: exposure budgets live in the 1ms..1s decades.
DEFAULT_BUCKETS_NS: Tuple[int, ...] = (
    1_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000, 10_000_000, 25_000_000,
    50_000_000, 100_000_000, 250_000_000, 500_000_000, 1_000_000_000,
)


def _canon_labels(labels: Optional[Mapping[str, str]]) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _series_name(name: str, labels: LabelItems) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Reservoir:
    """A bounded uniform sample of an unbounded population.

    The first ``capacity`` values are kept verbatim; after that each
    new value overwrites a uniformly-random slot with probability
    ``capacity / count`` (Vitter's Algorithm R), so the retained set
    stays an unbiased sample of everything ever recorded.  The RNG is
    seeded, making two reservoirs fed the same sequence bit-identical —
    percentiles are reproducible run to run.
    """

    def __init__(self, capacity: int = 8192, *, seed: int = 2022) -> None:
        if capacity <= 0:
            raise TerpError("reservoir capacity must be positive")
        self.capacity = capacity
        self.count = 0
        self.total = 0
        self.max_value = 0
        self._samples: List[int] = []
        self._rng = random.Random(seed)

    def record(self, value: int) -> None:
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value
        if len(self._samples) < self.capacity:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.capacity:
                self._samples[slot] = value

    def percentile(self, p: float) -> Optional[int]:
        """The p-th percentile (0..100) of the sampled population."""
        if not self._samples:
            return None
        if not 0 <= p <= 100:
            raise TerpError("percentile must be within [0, 100]")
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1,
                    max(0, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[index]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def samples(self) -> List[int]:
        return list(self._samples)


class Instrument:
    """Common identity for every registry-held instrument."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 labels: LabelItems) -> None:
        self.name = name
        self.help_text = help_text
        self.labels = labels

    @property
    def series(self) -> str:
        return _series_name(self.name, self.labels)


class Counter(Instrument):
    """A monotonically increasing tally."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "",
                 labels: LabelItems = ()) -> None:
        super().__init__(name, help_text, labels)
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise TerpError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge(Instrument):
    """A value free to move in both directions."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "",
                 labels: LabelItems = ()) -> None:
        super().__init__(name, help_text, labels)
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram(Instrument):
    """Fixed buckets for exposition, a reservoir for percentiles.

    ``buckets`` are ascending upper bounds; an implicit ``+Inf``
    bucket catches the tail.  ``observe`` is O(log buckets) plus one
    reservoir update.
    """

    kind = "histogram"

    def __init__(self, name: str, help_text: str = "",
                 labels: LabelItems = (), *,
                 buckets: Sequence[int] = DEFAULT_BUCKETS_NS,
                 reservoir_capacity: int = 4096,
                 seed: int = 2022) -> None:
        super().__init__(name, help_text, labels)
        bounds = tuple(buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise TerpError("histogram buckets must be ascending "
                            "and non-empty")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)   # last slot = +Inf
        self.count = 0
        self.total = 0
        self.max_value = 0
        self.reservoir = Reservoir(reservoir_capacity, seed=seed)
        self._lock = threading.Lock()

    def observe(self, value: int) -> None:
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.total += value
            if value > self.max_value:
                self.max_value = value
            self.reservoir.record(value)

    def percentile(self, p: float) -> Optional[int]:
        with self._lock:
            return self.reservoir.percentile(p)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bucket_counts(self) -> List[Tuple[str, int]]:
        """Cumulative counts per upper bound, Prometheus-style."""
        out: List[Tuple[str, int]] = []
        running = 0
        with self._lock:
            for bound, n in zip(self.bounds, self._counts):
                running += n
                out.append((str(bound), running))
            out.append(("+Inf", self.count))
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "max": self.max_value,
            "p50": self.percentile(50) or 0,
            "p90": self.percentile(90) or 0,
            "p99": self.percentile(99) or 0,
            "buckets": {le: n for le, n in self.bucket_counts()},
        }


class _NullCounter(Counter):
    def inc(self, amount: int = 1) -> None:    # noqa: ARG002
        pass


class _NullGauge(Gauge):
    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    def observe(self, value: int) -> None:
        pass


#: Shared do-nothing instruments, handed out by disabled registries.
NULL_COUNTER = _NullCounter("null")
NULL_GAUGE = _NullGauge("null")
NULL_HISTOGRAM = _NullHistogram("null")


class MetricsRegistry:
    """Creates, deduplicates, and renders instruments.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same (name, labels) returns the same object; asking for an
    existing name with a different kind is an error.  When the registry
    is disabled, the same calls return shared null instruments and the
    registry renders empty.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: Dict[Tuple[str, LabelItems], Instrument] = {}
        self._lock = threading.Lock()

    # -- creation ---------------------------------------------------------

    def _get_or_create(self, cls, name: str, help_text: str,
                       labels: Optional[Mapping[str, str]],
                       **kwargs) -> Instrument:
        key = (name, _canon_labels(labels))
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TerpError(
                        f"instrument {name!r} already registered as "
                        f"{existing.kind}")
                return existing
            instrument = cls(name, help_text, key[1], **kwargs)
            self._instruments[key] = instrument
            return instrument

    def counter(self, name: str, help_text: str = "",
                labels: Optional[Mapping[str, str]] = None) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        out = self._get_or_create(Counter, name, help_text, labels)
        assert isinstance(out, Counter)
        return out

    def gauge(self, name: str, help_text: str = "",
              labels: Optional[Mapping[str, str]] = None) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        out = self._get_or_create(Gauge, name, help_text, labels)
        assert isinstance(out, Gauge)
        return out

    def histogram(self, name: str, help_text: str = "",
                  labels: Optional[Mapping[str, str]] = None, *,
                  buckets: Sequence[int] = DEFAULT_BUCKETS_NS,
                  reservoir_capacity: int = 4096,
                  seed: int = 2022) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        out = self._get_or_create(
            Histogram, name, help_text, labels, buckets=buckets,
            reservoir_capacity=reservoir_capacity, seed=seed)
        assert isinstance(out, Histogram)
        return out

    # -- rendering --------------------------------------------------------

    def instruments(self) -> List[Instrument]:
        with self._lock:
            return sorted(self._instruments.values(),
                          key=lambda i: (i.name, i.labels))

    def to_dict(self) -> Dict[str, object]:
        """Everything the registry knows, as one JSON-able document."""
        counters: Dict[str, object] = {}
        gauges: Dict[str, object] = {}
        histograms: Dict[str, object] = {}
        for inst in self.instruments():
            if isinstance(inst, Histogram):
                histograms[inst.series] = inst.to_dict()
            elif isinstance(inst, Counter):
                counters[inst.series] = inst.value
            elif isinstance(inst, Gauge):
                gauges[inst.series] = inst.value
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def prometheus_text(self) -> str:
        """The text exposition format, one family at a time."""
        lines: List[str] = []
        seen_header = set()
        for inst in self.instruments():
            if inst.name not in seen_header:
                seen_header.add(inst.name)
                if inst.help_text:
                    lines.append(f"# HELP {inst.name} {inst.help_text}")
                lines.append(f"# TYPE {inst.name} {inst.kind}")
            if isinstance(inst, Histogram):
                for le, cumulative in inst.bucket_counts():
                    labels = inst.labels + (("le", le),)
                    lines.append(
                        f"{_series_name(inst.name + '_bucket', labels)}"
                        f" {cumulative}")
                lines.append(
                    f"{_series_name(inst.name + '_sum', inst.labels)}"
                    f" {inst.total}")
                lines.append(
                    f"{_series_name(inst.name + '_count', inst.labels)}"
                    f" {inst.count}")
            else:
                value = inst.value if isinstance(
                    inst, (Counter, Gauge)) else 0
                lines.append(f"{inst.series} {value}")
        return "\n".join(lines) + ("\n" if lines else "")
