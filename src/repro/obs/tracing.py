"""Lightweight tracing spans with ring-buffer retention.

A :class:`Tracer` hands out :class:`Span` context managers::

    with tracer.span("terpd.attach", pmo="bench"):
        ...

or wraps functions::

    @tracer.wrap("lib.psync")
    def psync(...): ...

Spans nest per thread (a thread-local stack supplies parent ids), so a
sweep span opened on the sweeper thread never becomes the parent of a
request span on the event-loop thread.  Finished spans land in a
bounded ring buffer — old spans fall off the back, the tracer never
grows without bound — and can be read back (:meth:`Tracer.recent`) or
exported as JSONL (:meth:`Tracer.export_jsonl`).

The clock is injectable: the default is ``time.perf_counter_ns`` (real
durations), but a simulation can pass its own manual clock so span
timestamps land on the simulated timeline.  For hot paths that cannot
afford a context manager, :meth:`Tracer.record_since` records a span
from an explicit start timestamp in one call.

A tracer built with ``enabled=False`` returns a shared null span whose
enter/exit do nothing — instrumented code stays on a single attribute
check when tracing is off.
"""

from __future__ import annotations

import functools
import itertools
import json
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional


class Span:
    """One in-flight span; records itself into the tracer on exit."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "start_ns",
                 "end_ns", "attrs", "thread")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: Optional[int], start_ns: int,
                 attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_ns = start_ns
        self.end_ns: Optional[int] = None
        self.attrs = attrs
        self.thread = threading.current_thread().name

    def set(self, key: str, value: Any) -> "Span":
        self.attrs[key] = value
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end_ns = self._tracer.clock()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._pop(self)

    def to_dict(self) -> Dict[str, Any]:
        end = self.end_ns if self.end_ns is not None else self.start_ns
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread": self.thread,
            "start_ns": self.start_ns,
            "end_ns": end,
            "duration_ns": end - self.start_ns,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Shared do-nothing span for disabled tracers."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()


class Tracer:
    """Creates spans, keeps the most recent ``capacity`` of them."""

    def __init__(self, *, clock: Callable[[], int] = time.perf_counter_ns,
                 capacity: int = 4096, enabled: bool = True) -> None:
        self.clock = clock
        self.enabled = enabled
        self.capacity = capacity
        self.spans_started = 0
        self.spans_recorded = 0
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._stacks = threading.local()

    # -- span plumbing ----------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
        return stack

    def _thread_name(self) -> str:
        # threading.current_thread() is surprisingly costly on a hot
        # path; a thread never renames itself here, so cache it.
        name = getattr(self._stacks, "name", None)
        if name is None:
            name = threading.current_thread().name
            self._stacks.name = name
        return name

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        self._commit(span.to_dict())

    def _commit(self, record: Dict[str, Any]) -> None:
        # deque.append is atomic under the GIL; the recorded tally is
        # allowed to be approximate under contention — the ring itself
        # never loses a committed span.
        self._ring.append(record)
        self.spans_recorded += 1

    def current_span_id(self) -> Optional[int]:
        stack = self._stack()
        return stack[-1].span_id if stack else None

    # -- public API -------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """A context manager timing the enclosed block."""
        if not self.enabled:
            return NULL_SPAN
        self.spans_started += 1
        return Span(self, name, next(self._ids),
                    self.current_span_id(), self.clock(), attrs)

    def record_since(self, name: str, start_ns: int,
                     **attrs: Any) -> None:
        """One-shot span from an explicit start timestamp.

        The cheap instrumentation path: the caller samples the clock
        itself, runs the work, then makes a single call here — no
        context-manager overhead on the hot path.
        """
        if not self.enabled:
            return
        self.spans_started += 1
        end = self.clock()
        stack = self._stack()
        self._ring.append({
            "name": name,
            "span_id": next(self._ids),
            "parent_id": stack[-1].span_id if stack else None,
            "thread": self._thread_name(),
            "start_ns": start_ns,
            "end_ns": end,
            "duration_ns": end - start_ns,
            "attrs": attrs,
        })
        self.spans_recorded += 1

    def wrap(self, name: Optional[str] = None) -> Callable:
        """Decorator form of :meth:`span`."""
        def decorate(fn: Callable) -> Callable:
            label = name if name is not None else fn.__qualname__

            @functools.wraps(fn)
            def inner(*args: Any, **kwargs: Any) -> Any:
                with self.span(label):
                    return fn(*args, **kwargs)
            return inner
        return decorate

    # -- reading back -----------------------------------------------------

    def recent(self, limit: Optional[int] = None,
               name: Optional[str] = None) -> List[Dict[str, Any]]:
        """The most recent finished spans, oldest first."""
        with self._lock:
            records = list(self._ring)
        if name is not None:
            records = [r for r in records if r["name"] == name]
        if limit is not None:
            records = records[-limit:]
        return records

    def export_jsonl(self, path) -> int:
        """Write every retained span as one JSON object per line."""
        records = self.recent()
        with open(path, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record) + "\n")
        return len(records)

    def stats(self) -> Dict[str, int]:
        return {
            "started": self.spans_started,
            "recorded": self.spans_recorded,
            "retained": len(self._ring),
            "capacity": self.capacity,
        }
