"""Control-flow graph analyses: dominators, post-dominators, loops.

The classic iterative dataflow formulations (Cooper-Harvey-Kennedy
style, on name sets for clarity over speed — functions here have tens
of blocks, not millions).  Post-dominance is dominance on the reverse
graph with a virtual unique exit.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.compiler.ir import Function
from repro.core.errors import CompilerError

VIRTUAL_EXIT = "__exit__"


class Cfg:
    """Edge structure + reachability over one function."""

    def __init__(self, fn: Function) -> None:
        fn.validate()
        self.fn = fn
        self.entry = fn.entry
        self.succ: Dict[str, List[str]] = {
            name: list(bb.successors) for name, bb in fn.blocks.items()}
        self.pred: Dict[str, List[str]] = {name: [] for name in self.succ}
        for name, succs in self.succ.items():
            for s in succs:
                self.pred[s].append(name)
        unreachable = set(self.succ) - self.reachable()
        if unreachable:
            raise CompilerError(
                f"unreachable blocks: {sorted(unreachable)}")

    def nodes(self) -> List[str]:
        return list(self.succ)

    def reachable(self) -> Set[str]:
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            for s in self.succ[stack.pop()]:
                if s not in seen:
                    seen.add(s)
                    stack.append(s)
        return seen

    # -- dominance ---------------------------------------------------------

    def dominators(self) -> Dict[str, Set[str]]:
        """dom[b] = set of blocks dominating b (including b)."""
        nodes = self.nodes()
        all_nodes = set(nodes)
        dom = {n: set(all_nodes) for n in nodes}
        dom[self.entry] = {self.entry}
        changed = True
        while changed:
            changed = False
            for n in nodes:
                if n == self.entry:
                    continue
                preds = self.pred[n]
                new = set(all_nodes)
                for p in preds:
                    new &= dom[p]
                new.add(n)
                if new != dom[n]:
                    dom[n] = new
                    changed = True
        return dom

    def immediate_dominators(self) -> Dict[str, Optional[str]]:
        dom = self.dominators()
        idom: Dict[str, Optional[str]] = {self.entry: None}
        for n in self.nodes():
            if n == self.entry:
                continue
            strict = dom[n] - {n}
            # idom = the strict dominator dominated by all others.
            idom[n] = max(strict, key=lambda d: len(dom[d]))
        return idom

    def post_dominators(self) -> Dict[str, Set[str]]:
        """pdom[b] over a reverse CFG with a virtual unique exit."""
        nodes = self.nodes() + [VIRTUAL_EXIT]
        rsucc = {n: list(self.pred[n]) for n in self.nodes()}
        rsucc[VIRTUAL_EXIT] = [bb for bb in self.nodes()
                               if not self.succ[bb]]
        rpred: Dict[str, List[str]] = {n: [] for n in nodes}
        for n, succs in rsucc.items():
            for s in succs:
                rpred[s].append(n)
        all_nodes = set(nodes)
        pdom = {n: set(all_nodes) for n in nodes}
        pdom[VIRTUAL_EXIT] = {VIRTUAL_EXIT}
        changed = True
        while changed:
            changed = False
            for n in nodes:
                if n == VIRTUAL_EXIT:
                    continue
                new = set(all_nodes)
                for p in rpred[n]:
                    new &= pdom[p]
                new.add(n)
                if new != pdom[n]:
                    pdom[n] = new
                    changed = True
        for n in self.nodes():
            pdom[n].discard(VIRTUAL_EXIT)
        del pdom[VIRTUAL_EXIT]
        return pdom

    # -- loops --------------------------------------------------------------

    def back_edges(self) -> List[Tuple[str, str]]:
        """Edges (tail, head) where head dominates tail."""
        dom = self.dominators()
        return [(t, h) for t in self.nodes() for h in self.succ[t]
                if h in dom[t]]

    def natural_loops(self) -> Dict[str, Set[str]]:
        """header -> loop body (all natural loops, merged per header)."""
        loops: Dict[str, Set[str]] = {}
        for tail, head in self.back_edges():
            body = {head, tail}
            stack = [tail]
            while stack:
                n = stack.pop()
                for p in self.pred[n]:
                    if p not in body and n != head:
                        body.add(p)
                        stack.append(p)
            loops.setdefault(head, set()).update(body)
        return loops

    def loop_depth(self) -> Dict[str, int]:
        depth = {n: 0 for n in self.nodes()}
        for body in self.natural_loops().values():
            for n in body:
                depth[n] += 1
        return depth

    def topo_order_acyclic(self, ignore_back_edges: bool = True
                           ) -> List[str]:
        """Topological order ignoring back edges (for longest-path)."""
        back = set(self.back_edges()) if ignore_back_edges else set()
        indeg = {n: 0 for n in self.nodes()}
        for n in self.nodes():
            for s in self.succ[n]:
                if (n, s) not in back:
                    indeg[s] += 1
        order = []
        ready = [n for n, d in indeg.items() if d == 0]
        while ready:
            n = ready.pop()
            order.append(n)
            for s in self.succ[n]:
                if (n, s) in back:
                    continue
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        if len(order) != len(self.nodes()):
            raise CompilerError("CFG is irreducible (cycle without "
                                "a dominating header)")
        return order
