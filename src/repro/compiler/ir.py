"""A small intermediate representation for the TERP compiler pass.

The paper implements its region-based analysis as an LLVM pass; this
IR carries exactly the features that pass consumes: basic blocks and
control-flow edges, straight-line computation with cycle estimates,
PMO accesses through pointer variables (so pointer analysis has work
to do), and calls.

A :class:`Function` is a graph of :class:`BasicBlock`; a
:class:`Program` is a set of functions plus the declaration of which
variables are PMO handles (the roots the pointer analysis propagates
from).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import CompilerError


# -- instructions -------------------------------------------------------------

@dataclass(frozen=True)
class Instr:
    """Base class; concrete instructions below."""


@dataclass(frozen=True)
class Compute(Instr):
    """Straight-line computation costing ``cycles``."""

    cycles: int = 1


@dataclass(frozen=True)
class Load(Instr):
    """Read through ``ptr``; a PMO access if ptr aliases a PMO."""

    ptr: str


@dataclass(frozen=True)
class Store(Instr):
    """Write through ``ptr``."""

    ptr: str


@dataclass(frozen=True)
class Assign(Instr):
    """``dst = src`` pointer copy (creates aliases)."""

    dst: str
    src: str


@dataclass(frozen=True)
class Gep(Instr):
    """``dst = src + offset`` — pointer arithmetic keeps the alias."""

    dst: str
    src: str


@dataclass(frozen=True)
class Call(Instr):
    """Call another function in the program."""

    callee: str


#: Instructions inserted by the TERP pass.
@dataclass(frozen=True)
class CondAttach(Instr):
    pmo: str


@dataclass(frozen=True)
class CondDetach(Instr):
    pmo: str


# -- blocks / functions / programs ------------------------------------------------

class BasicBlock:
    """A named block: instruction list + successor edges."""

    def __init__(self, name: str,
                 instrs: Optional[Sequence[Instr]] = None) -> None:
        self.name = name
        self.instrs: List[Instr] = list(instrs or [])
        self.successors: List[str] = []

    def add(self, instr: Instr) -> "BasicBlock":
        self.instrs.append(instr)
        return self

    def jump(self, target: str) -> "BasicBlock":
        self.successors = [target]
        return self

    def branch(self, then_target: str, else_target: str) -> "BasicBlock":
        self.successors = [then_target, else_target]
        return self

    def __repr__(self) -> str:
        return f"BasicBlock({self.name!r}, -> {self.successors})"


class Function:
    """A function: blocks keyed by name, one entry, >= one exit."""

    def __init__(self, name: str, entry: str = "entry") -> None:
        self.name = name
        self.entry = entry
        self.blocks: Dict[str, BasicBlock] = {}

    def block(self, name: str,
              instrs: Optional[Sequence[Instr]] = None) -> BasicBlock:
        if name in self.blocks:
            raise CompilerError(f"duplicate block {name!r}")
        bb = BasicBlock(name, instrs)
        self.blocks[name] = bb
        return bb

    def validate(self) -> None:
        if self.entry not in self.blocks:
            raise CompilerError(f"missing entry block {self.entry!r}")
        for bb in self.blocks.values():
            for succ in bb.successors:
                if succ not in self.blocks:
                    raise CompilerError(
                        f"block {bb.name!r} jumps to unknown {succ!r}")
        exits = [bb for bb in self.blocks.values() if not bb.successors]
        if not exits:
            raise CompilerError(f"function {self.name!r} has no exit")

    def exits(self) -> List[str]:
        return [bb.name for bb in self.blocks.values()
                if not bb.successors]

    def instructions(self) -> Iterator[Tuple[str, int, Instr]]:
        """All (block, index, instr) triples."""
        for bb in self.blocks.values():
            for i, instr in enumerate(bb.instrs):
                yield bb.name, i, instr


class Program:
    """A whole program: functions plus PMO handle declarations."""

    def __init__(self) -> None:
        self.functions: Dict[str, Function] = {}
        #: variable name -> PMO name; the pointer-analysis roots
        self.pmo_handles: Dict[str, str] = {}

    def function(self, name: str, entry: str = "entry") -> Function:
        if name in self.functions:
            raise CompilerError(f"duplicate function {name!r}")
        fn = Function(name, entry)
        self.functions[name] = fn
        return fn

    def declare_pmo_handle(self, var: str, pmo: str) -> None:
        self.pmo_handles[var] = pmo

    def validate(self) -> None:
        for fn in self.functions.values():
            fn.validate()
            for _, _, instr in fn.instructions():
                if isinstance(instr, Call) and \
                        instr.callee not in self.functions:
                    raise CompilerError(
                        f"call to unknown function {instr.callee!r}")

    def get(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise CompilerError(f"no function {name!r}") from None
