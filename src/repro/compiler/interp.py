"""IR interpreter: run instrumented programs against a TERP engine.

Closes the loop between the compiler and the runtime: execute an
instrumented function with a cycle clock, route every CondAttach /
CondDetach / Load / Store through a semantics engine, and record the
thread exposure windows actually produced.  The integration tests use
it to show the pass's insertion (a) never violates the EW-conscious
semantics and (b) keeps the measured TEW under the compiler's budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.compiler.ir import (
    Assign, Call, Compute, CondAttach, CondDetach, Function, Gep,
    Instr, Load, Program, Store)
from repro.compiler.regions import ACCESS_CYCLES, TERP_OP_CYCLES
from repro.core.errors import CompilerError, SimulationError
from repro.core.exposure import WindowTracker
from repro.core.permissions import Access
from repro.core.semantics import Outcome, SemanticsEngine
from repro.core.units import cycles_to_ns


@dataclass
class InterpResult:
    """Observed behaviour of one run."""

    cycles: int
    faults: int
    semantics_errors: int
    attaches: int
    detaches: int
    max_tew_ns: int
    tew_count: int

    @property
    def clean(self) -> bool:
        return self.faults == 0 and self.semantics_errors == 0


class Interpreter:
    """Executes one thread through a program, branch choices random
    but seeded; loops run until their back-edge budget is exhausted."""

    def __init__(self, program: Program, engine: SemanticsEngine, *,
                 thread_id: int = 1, seed: int = 5,
                 max_steps: int = 200_000,
                 branch_bias: float = 0.7) -> None:
        self.program = program
        self.engine = engine
        self.thread_id = thread_id
        self.rng = np.random.default_rng(seed)
        self.max_steps = max_steps
        #: probability of taking a branch's first successor — loop
        #: bodies are conventionally first, so >0.5 iterates loops.
        self.branch_bias = branch_bias
        self.cycles = 0
        self.faults = 0
        self.semantics_errors = 0
        self.attaches = 0
        self.detaches = 0
        self._tew = WindowTracker()
        self._alias: Dict[str, str] = dict(program.pmo_handles)

    # -- clock -------------------------------------------------------------

    @property
    def now_ns(self) -> int:
        return cycles_to_ns(self.cycles)

    def _advance(self, cycles: int) -> None:
        self.cycles += cycles

    # -- execution -----------------------------------------------------------

    def run(self, function: str) -> InterpResult:
        self._exec_function(self.program.get(function), depth=0)
        # Close any still-open windows for reporting.
        for key in list(self._tew._open):
            self._tew.close(key, self.now_ns)
        stats = self._tew.stats()
        return InterpResult(
            cycles=self.cycles,
            faults=self.faults,
            semantics_errors=self.semantics_errors,
            attaches=self.attaches,
            detaches=self.detaches,
            max_tew_ns=stats.max_ns,
            tew_count=stats.count,
        )

    def _exec_function(self, fn: Function, depth: int) -> None:
        if depth > 32:
            raise SimulationError("call depth exceeded")
        block = fn.entry
        steps = 0
        while block is not None:
            steps += 1
            if steps > self.max_steps:
                raise SimulationError(
                    f"interpreter exceeded {self.max_steps} blocks")
            bb = fn.blocks[block]
            for instr in bb.instrs:
                self._exec_instr(instr, depth)
            if not bb.successors:
                block = None
            elif len(bb.successors) == 1:
                block = bb.successors[0]
            elif self.rng.random() < self.branch_bias:
                block = bb.successors[0]
            else:
                block = bb.successors[
                    int(self.rng.integers(1, len(bb.successors)))]

    def _exec_instr(self, instr: Instr, depth: int) -> None:
        if isinstance(instr, Compute):
            self._advance(instr.cycles)
        elif isinstance(instr, (Assign, Gep)):
            if instr.src in self._alias:
                self._alias[instr.dst] = self._alias[instr.src]
            self._advance(1)
        elif isinstance(instr, (Load, Store)):
            self._advance(ACCESS_CYCLES)
            pmo = self._alias.get(instr.ptr)
            if pmo is None:
                return  # non-PMO memory
            requested = (Access.WRITE if isinstance(instr, Store)
                         else Access.READ)
            decision = self.engine.access(self.thread_id, pmo,
                                          requested, self.now_ns)
            if decision.outcome in (Outcome.FAULT_SEGV,
                                    Outcome.FAULT_PERM):
                self.faults += 1
        elif isinstance(instr, CondAttach):
            self._advance(TERP_OP_CYCLES)
            decision = self.engine.attach(self.thread_id, instr.pmo,
                                          Access.RW, self.now_ns)
            if decision.outcome is Outcome.ERROR:
                self.semantics_errors += 1
                return
            self.attaches += 1
            key = (self.thread_id, instr.pmo)
            if not self._tew.is_open(key):
                self._tew.open(key, self.now_ns)
        elif isinstance(instr, CondDetach):
            self._advance(TERP_OP_CYCLES)
            decision = self.engine.detach(self.thread_id, instr.pmo,
                                          self.now_ns)
            if decision.outcome is Outcome.ERROR:
                self.semantics_errors += 1
                return
            self.detaches += 1
            key = (self.thread_id, instr.pmo)
            if self._tew.is_open(key):
                self._tew.close(key, self.now_ns)
        elif isinstance(instr, Call):
            self._advance(2)
            self._exec_function(self.program.get(instr.callee),
                                depth + 1)
        else:
            raise CompilerError(f"unknown instruction {instr!r}")
