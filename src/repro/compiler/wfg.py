"""PMO window flow graph construction (Section V-A, Algorithm 1).

The PMO-WFG is "a set of subgraphs of the program CFG, covering all
BBs with PMO accesses", where each subgraph (code region) satisfies:

1. a header dominating all its blocks;
2. a block post-dominating all its blocks (the confluence point where
   the PMO state is known detached — Figure 5b's split point);
3. LET below the threshold set by the target maximum exposure window.

Construction follows Algorithm 1: start from each unvisited block
with PMO accesses and climb the region ladder while the next level's
LET stays under the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.compiler.cfg import Cfg
from repro.compiler.ir import Function, Program
from repro.compiler.pointer_analysis import PointsTo, analyze
from repro.compiler.regions import Region, RegionHierarchy


@dataclass
class WfgRegion:
    """One PMO-WFG subgraph, with its insertion anchor points."""

    header: str
    blocks: FrozenSet[str]
    access_blocks: FrozenSet[str]
    pmos: FrozenSet[str]
    let_cycles: int
    #: the block that post-dominates the region (detach goes at its
    #: exit); None when the region's own exit blocks serve that role
    confluence: Optional[str]


@dataclass
class PmoWfg:
    """The PMO-WFG of one function."""

    function: str
    regions: List[WfgRegion]

    def covered_blocks(self) -> Set[str]:
        out: Set[str] = set()
        for region in self.regions:
            out |= region.access_blocks
        return out


def build_wfg(fn: Function, points_to: PointsTo, *,
              let_threshold_cycles: int,
              hierarchy: Optional[RegionHierarchy] = None) -> PmoWfg:
    """Algorithm 1, lines 1-10: construct the PMO-WFG."""
    hierarchy = hierarchy or RegionHierarchy(fn)
    cfg = hierarchy.cfg
    # Only the function's own loads/stores need wrapping here; a call
    # site's PMO traffic is wrapped inside the (also instrumented)
    # callee — this is what keeps the insertion nesting-free and the
    # EW-conscious within-thread non-overlap intact.
    access_blocks = points_to.blocks_with_accesses(fn.name,
                                                   direct_only=True)
    unvisited = set(access_blocks)
    regions: List[WfgRegion] = []
    dom = cfg.dominators()
    pdom = cfg.post_dominators()
    # Deterministic iteration: topological order of access blocks.
    order = [b for b in cfg.topo_order_acyclic() if b in access_blocks]
    for start in order:
        if start not in unvisited:
            continue
        chosen = Region(start, frozenset([start]), "block")
        # Climb while the next-level region's LET stays below the
        # threshold and it covers unvisited access blocks.
        for candidate in hierarchy.chain_for(start)[1:]:
            if hierarchy.let(candidate) >= let_threshold_cycles:
                break
            if not (candidate.blocks & unvisited):
                break
            chosen = candidate
        covered = frozenset(chosen.blocks & access_blocks)
        unvisited -= covered
        pmos: Set[str] = set()
        for block in covered:
            pmos |= points_to.pmos_of_block(fn.name, block,
                                            direct_only=True)
        regions.append(WfgRegion(
            header=_region_header(chosen, dom),
            blocks=chosen.blocks,
            access_blocks=covered,
            pmos=frozenset(pmos),
            let_cycles=hierarchy.let(chosen),
            confluence=_confluence(chosen, pdom),
        ))
    return PmoWfg(function=fn.name, regions=regions)


def _region_header(region: Region, dom: Dict[str, Set[str]]) -> str:
    """The block in the region dominating all others (condition 1)."""
    for candidate in region.blocks:
        if all(candidate in dom[b] for b in region.blocks):
            return candidate
    # Fall back to the declared header (always valid for loops/blocks).
    return region.header


def _confluence(region: Region,
                pdom: Dict[str, Set[str]]) -> Optional[str]:
    """A block post-dominating the whole region (condition 2)."""
    candidates = []
    for candidate in region.blocks:
        if all(candidate in pdom[b] for b in region.blocks):
            candidates.append(candidate)
    if not candidates:
        return None
    # The earliest such block (the one post-dominated by all others)
    # is the natural split point.
    return max(candidates, key=lambda c: sum(
        1 for other in candidates if c in pdom[other]))
