"""Textual IR: parse and print programs for the TERP compiler.

A small assembly-like syntax so test programs and examples can be
written as text instead of builder calls::

    pmo h = accounts

    func main entry=entry
    block entry:
        compute 100
        branch fast slow
    block fast:
        load h
        jump join
    block slow:
        store h
        jump join
    block join:
        compute 50

Instructions: ``compute N``, ``load VAR``, ``store VAR``,
``assign DST SRC``, ``gep DST SRC``, ``call FUNC``,
``condattach PMO``, ``conddetach PMO``.  Terminators: ``jump B``,
``branch B1 B2`` (a block without one is an exit).  ``#`` starts a
comment.  :func:`print_program` emits the same syntax, and the
round-trip is the module's tested invariant.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.compiler.ir import (
    Assign, BasicBlock, Call, Compute, CondAttach, CondDetach,
    Function, Gep, Instr, Load, Program, Store)
from repro.core.errors import CompilerError

_INSTR_PARSERS = {
    "compute": lambda args: Compute(int(args[0])),
    "load": lambda args: Load(args[0]),
    "store": lambda args: Store(args[0]),
    "assign": lambda args: Assign(args[0], args[1]),
    "gep": lambda args: Gep(args[0], args[1]),
    "call": lambda args: Call(args[0]),
    "condattach": lambda args: CondAttach(args[0]),
    "conddetach": lambda args: CondDetach(args[0]),
}

_ARG_COUNTS = {
    "compute": 1, "load": 1, "store": 1, "assign": 2, "gep": 2,
    "call": 1, "condattach": 1, "conddetach": 1,
}


def parse_program(text: str) -> Program:
    """Parse the textual syntax into a validated Program."""
    program = Program()
    function: Optional[Function] = None
    block: Optional[BasicBlock] = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        head = tokens[0].lower()
        try:
            if head == "pmo":
                # pmo VAR = PMO_NAME
                if len(tokens) != 4 or tokens[2] != "=":
                    raise CompilerError("expected 'pmo VAR = NAME'")
                program.declare_pmo_handle(tokens[1], tokens[3])
            elif head == "func":
                name = tokens[1]
                entry = "entry"
                for extra in tokens[2:]:
                    if extra.startswith("entry="):
                        entry = extra.split("=", 1)[1]
                    else:
                        raise CompilerError(
                            f"unknown func attribute {extra!r}")
                function = program.function(name, entry)
                block = None
            elif head == "block":
                if function is None:
                    raise CompilerError("'block' outside a function")
                name = tokens[1].rstrip(":")
                block = function.block(name)
            elif head in ("jump", "branch"):
                if block is None:
                    raise CompilerError(f"'{head}' outside a block")
                if head == "jump":
                    block.jump(tokens[1])
                else:
                    block.branch(tokens[1], tokens[2])
                block = None   # a terminator ends the block
            elif head in _INSTR_PARSERS:
                if block is None:
                    raise CompilerError(
                        f"instruction {head!r} outside a block")
                args = tokens[1:]
                if len(args) != _ARG_COUNTS[head]:
                    raise CompilerError(
                        f"{head} takes {_ARG_COUNTS[head]} args, "
                        f"got {len(args)}")
                block.add(_INSTR_PARSERS[head](args))
            else:
                raise CompilerError(f"unknown directive {head!r}")
        except CompilerError as exc:
            raise CompilerError(f"line {lineno}: {exc}") from None
        except (IndexError, ValueError) as exc:
            raise CompilerError(f"line {lineno}: malformed "
                                f"{head!r}: {exc}") from None
    program.validate()
    return program


def _instr_to_text(instr: Instr) -> str:
    if isinstance(instr, Compute):
        return f"compute {instr.cycles}"
    if isinstance(instr, Load):
        return f"load {instr.ptr}"
    if isinstance(instr, Store):
        return f"store {instr.ptr}"
    if isinstance(instr, Assign):
        return f"assign {instr.dst} {instr.src}"
    if isinstance(instr, Gep):
        return f"gep {instr.dst} {instr.src}"
    if isinstance(instr, Call):
        return f"call {instr.callee}"
    if isinstance(instr, CondAttach):
        return f"condattach {instr.pmo}"
    if isinstance(instr, CondDetach):
        return f"conddetach {instr.pmo}"
    raise CompilerError(f"unprintable instruction {instr!r}")


def print_program(program: Program) -> str:
    """Emit the textual syntax (parse(print(p)) == structure of p)."""
    lines: List[str] = []
    for var, pmo in sorted(program.pmo_handles.items()):
        lines.append(f"pmo {var} = {pmo}")
    for fn in program.functions.values():
        lines.append("")
        lines.append(f"func {fn.name} entry={fn.entry}")
        for name, bb in fn.blocks.items():
            lines.append(f"block {name}:")
            for instr in bb.instrs:
                lines.append(f"    {_instr_to_text(instr)}")
            if len(bb.successors) == 1:
                lines.append(f"    jump {bb.successors[0]}")
            elif len(bb.successors) == 2:
                lines.append(f"    branch {bb.successors[0]} "
                             f"{bb.successors[1]}")
    return "\n".join(lines) + "\n"
