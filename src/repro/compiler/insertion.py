"""Automatic attach/detach insertion (Algorithm 1, lines 11-15).

The pass instruments every function of a program:

* **thread-window mode** (``tew_cycles`` > 0): each PMO-access site is
  wrapped in a conditional attach/detach pair.  Straight-line chains
  of access blocks whose cumulative LET stays under the TEW budget
  share one pair (the compiler's contribution to window combining);
  the hardware elides the rest at runtime (case 3 / case 6).
* **region mode** (``tew_cycles`` == 0): one pair per PMO-WFG region —
  attach at the header, detach at the region's confluence point
  (Figure 5b), or at every region exit when no confluence exists.

The insertion is *verified* after the fact by a dataflow check
(:func:`verify_function`): on every path, pairs match, never overlap
within a thread, and nothing stays attached at function exit — the
well-formedness the EW-conscious semantics requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.compiler.cfg import Cfg
from repro.compiler.ir import (
    CondAttach, CondDetach, Function, Instr, Load, Program, Store)
from repro.compiler.pointer_analysis import PointsTo, analyze
from repro.compiler.regions import RegionHierarchy, block_cycles
from repro.compiler.wfg import build_wfg, PmoWfg
from repro.core.errors import CompilerError


@dataclass
class InsertionReport:
    """What the pass did, per function."""

    attaches: int = 0
    detaches: int = 0
    regions: int = 0
    chains: int = 0

    def merge(self, other: "InsertionReport") -> None:
        self.attaches += other.attaches
        self.detaches += other.detaches
        self.regions += other.regions
        self.chains += other.chains


class TerpInsertionPass:
    """The compiler pass.  ``let_threshold_cycles`` bounds region
    growth (derived from the EW target); ``tew_cycles`` bounds thread
    windows (0 disables thread-window mode)."""

    def __init__(self, *, let_threshold_cycles: int,
                 tew_cycles: int) -> None:
        if let_threshold_cycles <= 0:
            raise CompilerError("let_threshold_cycles must be positive")
        if tew_cycles < 0:
            raise CompilerError("tew_cycles must be >= 0")
        self.let_threshold_cycles = let_threshold_cycles
        self.tew_cycles = tew_cycles

    # -- entry points ----------------------------------------------------

    def run(self, program: Program) -> InsertionReport:
        points_to = analyze(program)
        report = InsertionReport()
        for fn in program.functions.values():
            report.merge(self.run_on_function(fn, points_to))
        return report

    def run_on_function(self, fn: Function,
                        points_to: PointsTo) -> InsertionReport:
        report = InsertionReport()
        if not points_to.blocks_with_accesses(fn.name,
                                              direct_only=True):
            return report
        hierarchy = RegionHierarchy(fn)
        wfg = build_wfg(fn, points_to,
                        let_threshold_cycles=self.let_threshold_cycles,
                        hierarchy=hierarchy)
        report.regions = len(wfg.regions)
        for region in wfg.regions:
            if self.tew_cycles:
                report.merge(self._insert_thread_windows(
                    fn, points_to, region, hierarchy))
            else:
                report.merge(self._insert_region_window(fn, region))
        return report

    # -- thread-window mode -------------------------------------------------

    def _insert_thread_windows(self, fn, points_to, region,
                               hierarchy) -> InsertionReport:
        report = InsertionReport()
        cfg = hierarchy.cfg
        chains = self._linear_chains(cfg, region.access_blocks,
                                     fn, points_to)
        for chain, pmos in chains:
            report.chains += 1
            first, last = chain[0], chain[-1]
            for pmo in sorted(pmos):
                fn.blocks[first].instrs.insert(0, CondAttach(pmo))
                fn.blocks[last].instrs.append(CondDetach(pmo))
                report.attaches += 1
                report.detaches += 1
        return report

    def _linear_chains(self, cfg: Cfg, access_blocks: FrozenSet[str],
                       fn: Function, points_to: PointsTo
                       ) -> List[Tuple[List[str], Set[str]]]:
        """Group access blocks into straight-line chains whose
        cumulative LET fits the TEW budget; each chain gets one pair.

        A chain extends b1 -> b2 only when b2 is b1's unique successor
        and b1 is b2's unique predecessor — every path through one
        block passes through the other, so one pair is safe.
        """
        chains: List[Tuple[List[str], Set[str]]] = []
        order = [b for b in cfg.topo_order_acyclic()
                 if b in access_blocks]
        used: Set[str] = set()
        for start in order:
            if start in used:
                continue
            chain = [start]
            used.add(start)
            budget = self.tew_cycles - block_cycles(fn, start)
            current = start
            while True:
                succs = cfg.succ[current]
                if len(succs) != 1:
                    break
                nxt = succs[0]
                if nxt not in access_blocks or nxt in used or \
                        len(cfg.pred[nxt]) != 1:
                    break
                cost = block_cycles(fn, nxt)
                if cost > budget:
                    break
                chain.append(nxt)
                used.add(nxt)
                budget -= cost
                current = nxt
            pmos: Set[str] = set()
            for block in chain:
                pmos |= points_to.pmos_of_block(fn.name, block,
                                                direct_only=True)
            chains.append((chain, pmos))
        return chains

    # -- region mode -----------------------------------------------------------

    def _insert_region_window(self, fn: Function,
                              region) -> InsertionReport:
        """One window per region.

        Loop regions get per-iteration pairing: attach at the header,
        detach at every latch (back-edge source), and a detach block
        spliced onto every edge leaving the region — "a loop always
        forms a code region with attach added at the confluence
        point" and the timer-based sweep bounds the combined window.
        Straight-line regions pair header with confluence.
        """
        report = InsertionReport()
        latches = sorted(name for name in region.blocks
                         if region.header in fn.blocks[name].successors)
        is_loop = bool(latches) and len(region.blocks) > 1
        pmos = sorted(region.pmos)
        for pmo in pmos:
            fn.blocks[region.header].instrs.insert(0, CondAttach(pmo))
            report.attaches += 1
        if is_loop:
            for latch in latches:
                for pmo in pmos:
                    fn.blocks[latch].instrs.append(CondDetach(pmo))
                    report.detaches += 1
            report.detaches += _split_exit_edges(fn, region, pmos,
                                                 skip_sources=set(latches))
        elif region.confluence is not None and \
                region.confluence in region.blocks:
            for pmo in pmos:
                fn.blocks[region.confluence].instrs.append(
                    CondDetach(pmo))
                report.detaches += 1
        else:
            for exit_block in _region_exits(fn, region):
                for pmo in pmos:
                    fn.blocks[exit_block].instrs.append(CondDetach(pmo))
                    report.detaches += 1
        return report


def _split_exit_edges(fn: Function, region, pmos: List[str], *,
                      skip_sources: Set[str] = frozenset()) -> int:
    """Splice a detach block onto every edge leaving the region.

    Needed for loops: the edge out of the loop leaves the window open
    (the latch detach runs only at latch ends), so the exit edge
    itself must close it.  Latch-sourced exit edges are skipped — the
    latch already detached before branching.  Returns the number of
    detaches added.
    """
    added = 0
    for name in sorted(region.blocks):
        if name in skip_sources:
            continue
        bb = fn.blocks[name]
        for i, succ in enumerate(list(bb.successors)):
            if succ in region.blocks:
                continue
            split = fn.block(f"__terp_exit_{name}_{succ}")
            for pmo in pmos:
                split.add(CondDetach(pmo))
                added += 1
            split.jump(succ)
            bb.successors[i] = split.name
    return added


def _region_exits(fn: Function, region) -> List[str]:
    """Blocks in the region with an edge leaving it (or function exit)."""
    out = []
    for name in region.blocks:
        bb = fn.blocks[name]
        if not bb.successors or \
                any(s not in region.blocks for s in bb.successors):
            out.append(name)
    return sorted(out)


# -- verification --------------------------------------------------------------

def verify_function(fn: Function) -> None:
    """Dataflow check of insertion well-formedness.

    For every block boundary the set of PMOs held open must be
    path-independent; CondAttach requires the PMO closed, CondDetach
    requires it open; function exits must hold nothing open.  Raises
    :class:`CompilerError` on any violation.
    """
    cfg = Cfg(fn)
    in_state: Dict[str, Optional[FrozenSet[str]]] = {
        name: None for name in fn.blocks}
    in_state[fn.entry] = frozenset()
    worklist = [fn.entry]
    while worklist:
        name = worklist.pop()
        state = in_state[name]
        assert state is not None
        out = _transfer(fn, name, state)
        bb = fn.blocks[name]
        if not bb.successors and out:
            raise CompilerError(
                f"block {name!r} exits with PMOs still attached: "
                f"{sorted(out)}")
        for succ in bb.successors:
            existing = in_state[succ]
            if existing is None:
                in_state[succ] = out
                worklist.append(succ)
            elif existing != out:
                raise CompilerError(
                    f"inconsistent attach state at {succ!r}: "
                    f"{sorted(existing)} vs {sorted(out)}")


def _transfer(fn: Function, name: str,
              state: FrozenSet[str]) -> FrozenSet[str]:
    open_pmos = set(state)
    for instr in fn.blocks[name].instrs:
        if isinstance(instr, CondAttach):
            if instr.pmo in open_pmos:
                raise CompilerError(
                    f"overlapping attach of {instr.pmo!r} in {name!r}")
            open_pmos.add(instr.pmo)
        elif isinstance(instr, CondDetach):
            if instr.pmo not in open_pmos:
                raise CompilerError(
                    f"detach of unattached {instr.pmo!r} in {name!r}")
            open_pmos.discard(instr.pmo)
    return frozenset(open_pmos)


def verify_program(program: Program) -> None:
    for fn in program.functions.values():
        verify_function(fn)
