"""Graphviz (DOT) export of CFGs and PMO-WFG regions.

Renders a function's control-flow graph in the style of Figure 5:
blocks with PMO accesses are shaded, PMO-WFG regions become clusters,
and the inserted conditional attach/detach points are annotated.  The
output is plain DOT text (no graphviz dependency); tests check the
structure, humans run ``dot -Tpng`` on it.
"""

from __future__ import annotations

from typing import Optional

from repro.compiler.ir import CondAttach, CondDetach, Function, Program
from repro.compiler.pointer_analysis import analyze, PointsTo
from repro.compiler.wfg import PmoWfg


def _escape(name: str) -> str:
    return name.replace('"', '\\"')


def _block_label(fn: Function, name: str) -> str:
    bb = fn.blocks[name]
    attaches = sum(1 for i in bb.instrs if isinstance(i, CondAttach))
    detaches = sum(1 for i in bb.instrs if isinstance(i, CondDetach))
    label = name
    if attaches:
        label += f"\\n+{attaches} attach"
    if detaches:
        label += f"\\n+{detaches} detach"
    return label


def function_to_dot(fn: Function, *,
                    points_to: Optional[PointsTo] = None,
                    wfg: Optional[PmoWfg] = None) -> str:
    """DOT text for one function.

    ``points_to`` shades PMO-access blocks (Figure 5's gray nodes);
    ``wfg`` draws each region as a cluster with its LET.
    """
    access_blocks = set()
    if points_to is not None:
        access_blocks = points_to.blocks_with_accesses(fn.name)
    lines = [f'digraph "{_escape(fn.name)}" {{',
             '  node [shape=box, fontname="monospace"];']
    clustered = set()
    if wfg is not None:
        for i, region in enumerate(wfg.regions):
            lines.append(f"  subgraph cluster_{i} {{")
            lines.append(f'    label="region {i} '
                         f'(LET {region.let_cycles} cy)";')
            lines.append("    style=dashed;")
            for name in sorted(region.blocks):
                if name in fn.blocks:
                    lines.append(f'    "{_escape(name)}";')
                    clustered.add(name)
            lines.append("  }")
    for name in fn.blocks:
        attrs = [f'label="{_block_label(fn, name)}"']
        if name in access_blocks:
            attrs.append('style=filled')
            attrs.append('fillcolor=gray80')
        if name == fn.entry:
            attrs.append('penwidth=2')
        lines.append(f'  "{_escape(name)}" [{", ".join(attrs)}];')
    for name, bb in fn.blocks.items():
        for succ in bb.successors:
            lines.append(f'  "{_escape(name)}" -> "{_escape(succ)}";')
    lines.append("}")
    return "\n".join(lines) + "\n"


def program_to_dot(program: Program, *,
                   with_analysis: bool = True) -> str:
    """One DOT digraph per function, concatenated."""
    points_to = analyze(program) if with_analysis else None
    parts = []
    for fn in program.functions.values():
        parts.append(function_to_dot(fn, points_to=points_to))
    return "\n".join(parts)
