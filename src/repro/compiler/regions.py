"""Region hierarchy and longest-execution-time (LET) estimation.

Section V-A builds a "hierarchy of regions by the classic code region
analysis" and computes each region's LET bottom-up, assuming a large
iteration count (1K) for loops whose trip count is not static.

The hierarchy here has the levels Algorithm 1 climbs:

* level 0 — a single basic block;
* level 1..k — the enclosing natural loops, innermost first;
* top — the whole function body.

LET is the longest path (in cycles) through the region's acyclic
condensation, with every loop's body weight multiplied by the assumed
trip count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.compiler.cfg import Cfg
from repro.compiler.ir import (
    Compute, CondAttach, CondDetach, Function, Instr, Load, Store)

#: "We follow the common practice in static analysis to assume it to
#: be a large number (e.g., 1k)" for statically unknown trip counts.
DEFAULT_LOOP_TRIP = 1_000

#: Conservative cycle costs per instruction kind for LET purposes.
ACCESS_CYCLES = 4
TERP_OP_CYCLES = 27


def block_cycles(fn: Function, name: str) -> int:
    """Conservative cycle estimate of one block's instructions."""
    total = 0
    for instr in fn.blocks[name].instrs:
        if isinstance(instr, Compute):
            total += instr.cycles
        elif isinstance(instr, (Load, Store)):
            total += ACCESS_CYCLES
        elif isinstance(instr, (CondAttach, CondDetach)):
            total += TERP_OP_CYCLES
        else:
            total += 1
    return max(total, 1)


@dataclass(frozen=True)
class Region:
    """A region: a block set with a distinguished header."""

    header: str
    blocks: FrozenSet[str]
    kind: str  # "block" | "loop" | "function"

    def __contains__(self, name: str) -> bool:
        return name in self.blocks

    def __len__(self) -> int:
        return len(self.blocks)


class RegionHierarchy:
    """Per-block chains of enclosing regions, plus LET for each."""

    def __init__(self, fn: Function, *,
                 loop_trip: int = DEFAULT_LOOP_TRIP) -> None:
        self.fn = fn
        self.cfg = Cfg(fn)
        self.loop_trip = loop_trip
        self._loops = self.cfg.natural_loops()
        self._let_cache: Dict[FrozenSet[str], int] = {}

    # -- hierarchy -----------------------------------------------------------

    def chain_for(self, block: str) -> List[Region]:
        """Enclosing regions of ``block``: block, loops (inner->outer),
        whole function — the "next-level region" ladder of Algorithm 1."""
        chain = [Region(block, frozenset([block]), "block")]
        enclosing = [(header, body)
                     for header, body in self._loops.items()
                     if block in body]
        enclosing.sort(key=lambda item: len(item[1]))
        seen: Set[FrozenSet[str]] = {frozenset([block])}
        for header, body in enclosing:
            fs = frozenset(body)
            if fs not in seen:
                chain.append(Region(header, fs, "loop"))
                seen.add(fs)
        whole = frozenset(self.fn.blocks)
        if whole not in seen:
            chain.append(Region(self.fn.entry, whole, "function"))
        return chain

    def loops(self) -> Dict[str, Set[str]]:
        return dict(self._loops)

    # -- LET ------------------------------------------------------------------

    def let(self, region: Region) -> int:
        """Longest execution time of all paths in the region, cycles."""
        return self._let_of_blocks(region.blocks)

    def _let_of_blocks(self, blocks: FrozenSet[str]) -> int:
        cached = self._let_cache.get(blocks)
        if cached is not None:
            return cached
        # Effective per-block weight: the block's cycles times the
        # product of trip counts of loops (within the region) that
        # contain it.  Longest path over the back-edge-free DAG then
        # bounds any execution of the region.
        weight: Dict[str, int] = {}
        for name in blocks:
            w = block_cycles(self.fn, name)
            for header, body in self._loops.items():
                if name in body and header in blocks and \
                        body <= set(blocks):
                    w *= self.loop_trip
            weight[name] = w
        order = [n for n in self.cfg.topo_order_acyclic() if n in blocks]
        longest: Dict[str, int] = {}
        for name in order:
            preds = [p for p in self.cfg.pred[name]
                     if p in blocks and
                     (p, name) not in set(self.cfg.back_edges())]
            base = max((longest[p] for p in preds if p in longest),
                       default=0)
            longest[name] = base + weight[name]
        result = max(longest.values(), default=0)
        self._let_cache[blocks] = result
        return result

    def let_of_block(self, name: str) -> int:
        return self._let_of_blocks(frozenset([name]))
