"""Flow-insensitive pointer analysis for PMO accesses.

"Pointer analysis is used to identify BBs with PMO accesses and
pointer aliases" (Section V-A).  An Andersen-style inclusion analysis
is overkill for this IR's copy/GEP structure; a transitive alias
propagation over ``Assign``/``Gep`` chains, seeded at the declared PMO
handles, gives the same may-point-to answer:

* a variable may point into PMO P if it is P's declared handle or is
  copied (possibly through arithmetic) from a variable that may;
* a ``Load``/``Store`` through such a variable is a PMO access.

The analysis is interprocedural in the simplest sound way: alias
facts are global (parameters and globals share one namespace), and
call edges are walked to mark callee accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set, Tuple

from repro.compiler.ir import (
    Assign, Call, Function, Gep, Load, Program, Store)


@dataclass
class PointsTo:
    """The analysis result."""

    #: var -> set of PMO names it may point into
    var_targets: Dict[str, Set[str]]
    #: (function, block) -> set of PMOs accessed in that block,
    #: including accesses reached through calls
    block_pmos: Dict[Tuple[str, str], Set[str]]
    #: (function, block) -> PMOs accessed by the block's own
    #: loads/stores only (callees instrument themselves, so the
    #: insertion pass wraps direct accesses only)
    direct_block_pmos: Dict[Tuple[str, str], Set[str]]

    def may_alias(self, a: str, b: str) -> bool:
        """Do two variables possibly point into the same PMO?"""
        return bool(self.var_targets.get(a, set())
                    & self.var_targets.get(b, set()))

    def pmos_of_block(self, fn: str, block: str, *,
                      direct_only: bool = False) -> Set[str]:
        table = self.direct_block_pmos if direct_only else self.block_pmos
        return table.get((fn, block), set())

    def blocks_with_accesses(self, fn: str, *,
                             direct_only: bool = False) -> Set[str]:
        table = self.direct_block_pmos if direct_only else self.block_pmos
        return {block for (f, block), pmos in table.items()
                if f == fn and pmos}


def analyze(program: Program) -> PointsTo:
    """Run the analysis over the whole program."""
    program.validate()
    var_targets: Dict[str, Set[str]] = {
        var: {pmo} for var, pmo in program.pmo_handles.items()}

    # Fixed-point over copy edges (flow-insensitive).
    copies = []
    for fn in program.functions.values():
        for _, _, instr in fn.instructions():
            if isinstance(instr, Assign):
                copies.append((instr.dst, instr.src))
            elif isinstance(instr, Gep):
                copies.append((instr.dst, instr.src))
    changed = True
    while changed:
        changed = False
        for dst, src in copies:
            src_set = var_targets.get(src)
            if not src_set:
                continue
            dst_set = var_targets.setdefault(dst, set())
            before = len(dst_set)
            dst_set |= src_set
            if len(dst_set) != before:
                changed = True

    # Per-block access sets, including PMOs reached via calls: a call
    # makes the caller block "contain" the callee's accesses for the
    # purposes of region formation (the paper treats library calls the
    # same way: the attach must cover them).
    direct: Dict[Tuple[str, str], Set[str]] = {}
    calls: Dict[Tuple[str, str], Set[str]] = {}
    for fn in program.functions.values():
        for block, _, instr in fn.instructions():
            key = (fn.name, block)
            if isinstance(instr, (Load, Store)):
                direct.setdefault(key, set()).update(
                    var_targets.get(instr.ptr, set()))
            elif isinstance(instr, Call):
                calls.setdefault(key, set()).add(instr.callee)

    fn_summary: Dict[str, Set[str]] = {name: set()
                                       for name in program.functions}
    for (fname, _), pmos in direct.items():
        fn_summary[fname] |= pmos
    changed = True
    while changed:
        changed = False
        for (fname, _), callees in calls.items():
            for callee in callees:
                before = len(fn_summary[fname])
                fn_summary[fname] |= fn_summary[callee]
                if len(fn_summary[fname]) != before:
                    changed = True

    block_pmos: Dict[Tuple[str, str], Set[str]] = {}
    for key, pmos in direct.items():
        block_pmos.setdefault(key, set()).update(pmos)
    for key, callees in calls.items():
        for callee in callees:
            if fn_summary[callee]:
                block_pmos.setdefault(key, set()).update(
                    fn_summary[callee])

    return PointsTo(var_targets=var_targets, block_pmos=block_pmos,
                    direct_block_pmos=direct)
