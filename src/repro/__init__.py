"""TERP: Temporal Exposure Reduction Protection for Persistent Memory.

A complete reproduction of the HPCA 2022 paper: the TERP formal
framework (posets, exposure windows, the four attach/detach
semantics), the PMO substrate (pools, persistent heap, crash
consistency, embedded page-table subtrees), the memory-protection
substrate (page tables, TLBs, permission matrix, MPK domains), the
TERP architecture (circular buffer, conditional attach/detach,
sweeping), the compiler pass (region analysis and automatic
insertion), the evaluation workloads (WHISPER- and SPEC-style), and
the security analyses (dead times, success probabilities, gadget
census, a data-only attack case study).

Quick start::

    from repro import PmoLibrary, Access

    lib = PmoLibrary(ew_target_us=40.0)
    pmo = lib.PMO_create("mydata", 8 * 1024 * 1024)
    handle = lib.attach(pmo, Access.RW)
    oid = lib.pmalloc(pmo, 64)
    lib.write(oid, b"persistent!")

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
regeneration of every table and figure in the paper's evaluation.
"""

from repro.core.errors import (
    CompilerError, ConfigurationError, CrashConsistencyError,
    OutOfPersistentMemory, PmoError, ProtectionFault,
    SegmentationFault, SemanticsViolation, SimulationError, TerpError)
from repro.core.exposure import ExposureMonitor, Window, WindowTracker
from repro.core.permissions import (
    Access, Entity, EntityKind, PermissionGroup, PermissionSet)
from repro.core.poset import Mechanism, ProtectionLevel, TerpPoset
from repro.core.runtime import Handle, TerpRuntime
from repro.core.semantics import (
    BasicSemantics, EwConsciousSemantics, FcfsSemantics,
    make_semantics, Outcome, OutermostSemantics)
from repro.arch.cond_engine import TerpArchEngine
from repro.pmo.api import PmoLibrary
from repro.pmo.object_id import Oid
from repro.pmo.pmo import Pmo
from repro.pmo.pool import PmoManager

__version__ = "1.0.0"

__all__ = [
    # facade
    "PmoLibrary", "Access", "Oid", "Pmo", "PmoManager", "Handle",
    # framework
    "TerpPoset", "Mechanism", "ProtectionLevel", "PermissionSet",
    "PermissionGroup", "Entity", "EntityKind",
    "ExposureMonitor", "WindowTracker", "Window",
    # semantics and runtime
    "BasicSemantics", "OutermostSemantics", "FcfsSemantics",
    "EwConsciousSemantics", "TerpArchEngine", "make_semantics",
    "Outcome", "TerpRuntime",
    # errors
    "TerpError", "SemanticsViolation", "ProtectionFault",
    "SegmentationFault", "PmoError", "OutOfPersistentMemory",
    "CrashConsistencyError", "CompilerError", "SimulationError",
    "ConfigurationError",
]
