"""Process supervision for a terpd cluster.

:class:`ClusterSupervisor` forks ``shards`` worker processes — each a
full :class:`~repro.service.server.TerpService` with its own event
loop, sweeper, pmo_id residue class, and (when durable) its own store
subdirectory — plus one or more :class:`~repro.cluster.router.TerpRouter`
processes on the front port.  A monitor thread watches liveness and
restarts whatever dies:

* a dead **shard** restarts on the *same* learned port with the same
  store directory, so the router's arithmetic routing stays valid and
  a durable shard comes back through the warm-restart path
  (:mod:`repro.service.recovery`) with its exposure clock monotonic
  across the outage — windows that straddled the crash are charged,
  not forgiven;
* a dead **router** restarts on the front port;
* with ``replicas=True`` (durable clusters only), every shard gets a
  warm **standby** process (:class:`repro.replication.StandbyDaemon`)
  that continuously applies the shard's shipped journal batches into
  its own directory.  A dead shard is then *promoted-on-failure*: the
  supervisor sends its standby a ``promote`` frame and the standby
  comes up as the shard — on the same port, through the verbatim
  warm-restart path, with zero acknowledged-write loss (the shipper
  is semi-sync) — while a replacement standby is spawned into the old
  directory so the chain continues.  Only if promotion fails does the
  supervisor fall back to the cold same-directory restart.

Multiple routers bind the same front port with ``SO_REUSEPORT`` so the
kernel shards accepted connections across them — the cheap fast path
for connection-heavy workloads.

Everything a child needs travels through a :class:`ClusterConfig`
(picklable, so ``spawn`` works where ``fork`` is unavailable) and the
child reports its bound port back through a pipe.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import multiprocessing
import os
import signal
import sys
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.pmo.store import DEFAULT_COMMIT_INTERVAL_US
from repro.service.server import (
    DEFAULT_SESSION_EW_NS, DEFAULT_SESSION_LINGER_NS,
    DEFAULT_SWEEP_PERIOD_NS)

#: How long to wait for a child to report its bound port.  Generous:
#: a durable shard replays its journal before it binds.
_STARTUP_TIMEOUT_S = 30.0


@dataclass
class ClusterConfig:
    """Everything the supervisor and its children need to agree on."""

    shards: int = 2
    routers: int = 1
    host: str = "127.0.0.1"
    #: front (router) port; 0 picks an ephemeral one
    port: int = 0
    #: durable root: shard ``i`` stores under ``<pool_dir>/shard0i``
    pool_dir: Optional[str] = None
    session_ew_ns: int = DEFAULT_SESSION_EW_NS
    sweep_period_ns: int = DEFAULT_SWEEP_PERIOD_NS
    session_linger_ns: int = DEFAULT_SESSION_LINGER_NS
    ew_target_us: float = 40.0
    cb_capacity: int = 32
    commit_interval_us: int = DEFAULT_COMMIT_INTERVAL_US
    seed: int = 2022
    obs_enabled: bool = True
    #: cProfile stats prefix; each process writes its own file
    #: (``<profile>.shard0``, ``<profile>.router0``, …)
    profile: Optional[str] = None
    quiet: bool = True
    #: per-child restart budget before the supervisor gives up on it
    max_restarts: int = 5
    monitor_period_s: float = 0.15
    #: one warm standby per shard, promoted when the shard dies
    #: (requires ``pool_dir``: only durable state can be shipped)
    replicas: bool = False

    def shard_dir(self, index: int) -> Optional[str]:
        if self.pool_dir is None:
            return None
        return os.path.join(self.pool_dir, f"shard{index:02d}")

    def standby_dir(self, index: int) -> Optional[str]:
        if self.pool_dir is None:
            return None
        return os.path.join(self.pool_dir, f"standby{index:02d}")


async def _child_serve(node: Any, report, quiet: bool,
                       what: str) -> None:
    """Start a service/router, report the port, serve until signaled."""
    await node.start()
    report.send({"port": node.bound_port})
    report.close()
    if not quiet:
        print(f"terpd {what} serving on port {node.bound_port}",
              flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:
            pass
    try:
        await stop.wait()
    finally:
        await node.stop()
        # Let connection tasks unwind off their closed transports
        # before asyncio.run() cancels them mid-read (noisy).
        await asyncio.sleep(0.05)


def _run_child(amain, profile_path: Optional[str], report) -> None:
    profiler = None
    if profile_path:
        import cProfile
        profiler = cProfile.Profile()
        profiler.enable()
    try:
        asyncio.run(amain())
    except Exception as exc:   # report startup failures, don't hang
        try:
            report.send({"error": repr(exc)})
        except (OSError, ValueError):
            pass
        raise
    finally:
        if profiler is not None:
            profiler.disable()
            profiler.dump_stats(profile_path)


def _service_kwargs(config: ClusterConfig, index: int
                    ) -> Dict[str, Any]:
    """The TerpService constructor arguments shard ``index`` runs
    with — shared verbatim with its standby, so a promoted standby is
    configured exactly like the shard it replaces."""
    return {
        "host": config.host,
        "ew_target_us": config.ew_target_us,
        "session_ew_ns": config.session_ew_ns,
        "sweep_period_ns": config.sweep_period_ns,
        "session_linger_ns": config.session_linger_ns,
        "cb_capacity": config.cb_capacity,
        "seed": config.seed + index,
        "obs_enabled": config.obs_enabled,
        "commit_interval_us": config.commit_interval_us,
        "shard_index": index,
        "shard_count": config.shards,
    }


def _shard_main(config: ClusterConfig, index: int, port: int,
                pool_dir: Optional[str], replicate_to: Optional[str],
                report) -> None:
    """Child entry point: one terpd shard (module-level: picklable)."""
    from repro.service.server import TerpService

    async def amain() -> None:
        service = TerpService(
            port=port, pool_dir=pool_dir, replicate_to=replicate_to,
            **_service_kwargs(config, index))
        await _child_serve(service, report, config.quiet,
                           f"shard {index}")

    profile = (f"{config.profile}.shard{index}"
               if config.profile else None)
    _run_child(amain, profile, report)


def _standby_main(config: ClusterConfig, index: int, port: int,
                  pool_dir: str, report) -> None:
    """Child entry point: one warm standby (module-level: picklable).

    The directory is deliberately NOT wiped here.  Stale content — a
    prior generation's mirror, or a since-destroyed PMO — is pruned by
    the shipper's reconciling bootstrap (reset frame, truncating
    headers, full snapshot) the moment a primary connects, which also
    covers reconnects of a live standby, not just process restarts.
    Deferring the cleanup to that moment matters for promotion: the
    dead shard's pool directory is recycled as the replacement
    standby's mirror, and until a promoted primary is confirmed up and
    shipping, that directory may hold the only complete durable copy
    of acknowledged writes (invariant I7).
    """
    from repro.replication.applier import StandbyDaemon

    daemon = StandbyDaemon(
        pool_dir, host=config.host, port=port,
        service_kwargs=_service_kwargs(config, index),
        quiet=config.quiet)
    bound = daemon.start()
    report.send({"port": bound})
    report.close()
    if not config.quiet:
        print(f"terpd standby {index} applying on port {bound}",
              flush=True)
    stop = threading.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, lambda *_: stop.set())
    try:
        stop.wait()
    finally:
        daemon.stop()


def _router_main(config: ClusterConfig, index: int, port: int,
                 shard_addrs: List[Tuple[str, int]],
                 reuse_port: bool, report) -> None:
    """Child entry point: one router process (module-level: picklable)."""
    from repro.cluster.router import TerpRouter

    async def amain() -> None:
        router = TerpRouter(
            shard_addrs=shard_addrs, host=config.host, port=port,
            reuse_port=reuse_port,
            session_ew_ns=config.session_ew_ns,
            session_linger_ns=config.session_linger_ns,
            seed=config.seed)
        await _child_serve(router, report, config.quiet,
                           f"router {index}")

    profile = (f"{config.profile}.router{index}"
               if config.profile else None)
    _run_child(amain, profile, report)


class _Child:
    """One supervised process and what it takes to respawn it."""

    __slots__ = ("kind", "index", "port", "process", "restarts",
                 "given_up")

    def __init__(self, kind: str, index: int) -> None:
        self.kind = kind             # "shard" | "router"
        self.index = index
        self.port: Optional[int] = None
        self.process: Optional[multiprocessing.process.BaseProcess] = \
            None
        self.restarts = 0
        self.given_up = False


class ClusterSupervisor:
    """Fork, watch, restart: the cluster's process tree."""

    def __init__(self, config: Optional[ClusterConfig] = None,
                 **overrides: Any) -> None:
        if config is None:
            config = ClusterConfig(**overrides)
        elif overrides:
            config = dataclasses.replace(config, **overrides)
        if config.shards < 1:
            raise ValueError("need at least one shard")
        if config.routers < 1:
            raise ValueError("need at least one router")
        if config.replicas and config.pool_dir is None:
            raise ValueError("replicas need a pool_dir: only durable "
                             "state can be shipped to a standby")
        self.config = config
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:       # pragma: no cover - non-posix
            self._ctx = multiprocessing.get_context("spawn")
        self._shards = [_Child("shard", i)
                        for i in range(config.shards)]
        self._routers = [_Child("router", i)
                         for i in range(config.routers)]
        self._standbys = [_Child("standby", i)
                          for i in range(config.shards)] \
            if config.replicas else []
        #: current pool directory per shard / per standby — promotion
        #: swaps a pair, so respawns always land on live state.
        self._shard_dirs = [config.shard_dir(i)
                            for i in range(config.shards)]
        self._standby_dirs = [config.standby_dir(i)
                              for i in range(config.shards)]
        #: lifetime count of standby promotions (chaos assertions).
        self.promotions = 0
        self._monitor: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._lock = threading.Lock()

    # -- introspection -----------------------------------------------------

    @property
    def front_port(self) -> int:
        port = self._routers[0].port
        assert port is not None, "cluster not started"
        return port

    @property
    def shard_ports(self) -> List[int]:
        return [c.port or 0 for c in self._shards]

    def shard_pid(self, index: int) -> Optional[int]:
        process = self._shards[index].process
        return process.pid if process is not None else None

    def state(self) -> Dict[str, Any]:
        return {
            "front_port": self.front_port,
            "host": self.config.host,
            "shards": [{"index": c.index, "port": c.port,
                        "pid": c.process.pid if c.process else None,
                        "restarts": c.restarts}
                       for c in self._shards],
            "routers": [{"index": c.index, "port": c.port,
                         "pid": c.process.pid if c.process else None}
                        for c in self._routers],
            "standbys": [{"index": c.index, "port": c.port,
                          "pid": c.process.pid if c.process else None,
                          "restarts": c.restarts}
                         for c in self._standbys],
            "promotions": self.promotions,
        }

    def write_state_file(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.state(), fh, indent=2)
            fh.write("\n")

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self.config.pool_dir is not None:
            os.makedirs(self.config.pool_dir, exist_ok=True)
        for child in self._standbys:
            # Standbys bind first so each shard's shipper finds its
            # target on the very first dial (nothing unreplicated).
            self._spawn_standby(child, port=0)
        for child in self._shards:
            self._spawn_shard(child, port=0)
        shard_addrs = [(self.config.host, c.port or 0)
                       for c in self._shards]
        reuse = len(self._routers) > 1
        for child in self._routers:
            # Router 0 binds the configured front port; the rest join
            # it via SO_REUSEPORT for kernel-side accept sharding.
            port = self.config.port if child.index == 0 \
                else self.front_port
            self._spawn_router(child, port=port,
                               shard_addrs=shard_addrs,
                               reuse_port=reuse)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="terpd-cluster-monitor",
            daemon=True)
        self._monitor.start()

    def stop(self, timeout_s: float = 10.0) -> None:
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=timeout_s)
        deadline = time.monotonic() + timeout_s
        # Routers go first and fully: they close their upstream
        # connections on the way down, so the shards then shut down
        # with no connections left to tear mid-read.  Standbys go
        # last — a shard's shutdown drain still ships to them.
        for group in (self._routers, self._shards, self._standbys):
            for child in group:
                process = child.process
                if process is not None and process.is_alive():
                    process.terminate()
            for child in group:
                process = child.process
                if process is None:
                    continue
                process.join(timeout=max(
                    0.0, deadline - time.monotonic()))
                if process.is_alive():
                    process.kill()
                    process.join(timeout=1.0)

    def __enter__(self) -> "ClusterSupervisor":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- chaos hooks -------------------------------------------------------

    def kill_shard(self, index: int) -> int:
        """SIGKILL one shard (no goodbye, no flush) and return its pid.

        The monitor restarts it on the same port; a durable shard then
        walks the warm-restart path and charges the outage to every
        window that was open when the power went out.
        """
        process = self._shards[index].process
        assert process is not None and process.pid is not None
        pid = process.pid
        os.kill(pid, signal.SIGKILL)
        return pid

    def wait_for_shard(self, index: int,
                       timeout_s: float = 15.0) -> bool:
        """Block until shard ``index`` is (back) up, or time out."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            with self._lock:
                process = self._shards[index].process
                up = process is not None and process.is_alive()
            if up and self._probe(self._shards[index]):
                return True
            time.sleep(0.02)
        return False

    def _probe(self, child: _Child) -> bool:
        import socket as socketlib
        try:
            with socketlib.create_connection(
                    (self.config.host, child.port or 0), timeout=0.5):
                return True
        except OSError:
            return False

    # -- spawning ----------------------------------------------------------

    def _spawn(self, child: _Child, target, args: tuple) -> None:
        parent_end, child_end = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=target, args=args + (child_end,),
            name=f"terpd-{child.kind}{child.index}", daemon=True)
        process.start()
        child_end.close()
        if not parent_end.poll(_STARTUP_TIMEOUT_S):
            process.kill()
            raise RuntimeError(
                f"{child.kind} {child.index} never reported a port")
        reported = parent_end.recv()
        parent_end.close()
        if "error" in reported:
            process.join(timeout=2.0)
            raise RuntimeError(f"{child.kind} {child.index} failed "
                               f"to start: {reported['error']}")
        child.port = int(reported["port"])
        child.process = process

    def _spawn_shard(self, child: _Child, *, port: int) -> None:
        standby = self._standbys[child.index] \
            if self._standbys else None
        replicate_to = (f"{self.config.host}:{standby.port}"
                        if standby is not None and standby.port
                        else None)
        self._spawn(child, _shard_main,
                    (self.config, child.index, port,
                     self._shard_dirs[child.index], replicate_to))

    def _spawn_standby(self, child: _Child, *, port: int) -> None:
        self._spawn(child, _standby_main,
                    (self.config, child.index, port,
                     self._standby_dirs[child.index]))

    def _spawn_router(self, child: _Child, *, port: int,
                      shard_addrs: List[Tuple[str, int]],
                      reuse_port: bool) -> None:
        self._spawn(child, _router_main,
                    (self.config, child.index, port, shard_addrs,
                     reuse_port))

    # -- monitoring --------------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._stopping.wait(self.config.monitor_period_s):
            with self._lock:
                for child in self._shards:
                    self._revive(child)
                for child in self._routers:
                    self._revive(child)
                for child in self._standbys:
                    self._revive(child)

    def _revive(self, child: _Child) -> None:
        process = child.process
        if child.given_up:
            return
        if process is None:
            # Only a standby consumed by a promotion (its process
            # became the shard) legitimately has no process; respawn
            # it so the promoted shard regains a failover target.
            if child.kind != "standby":
                return
        elif process.is_alive():
            return
        else:
            process.join(timeout=0)
        if child.restarts >= self.config.max_restarts:
            child.given_up = True
            if not self.config.quiet:
                print(f"terpd {child.kind} {child.index} died "
                      f"{child.restarts + 1} times; giving up",
                      file=sys.stderr, flush=True)
            return
        child.restarts += 1
        try:
            if child.kind == "shard":
                if self._standbys and self._promote_standby(child):
                    return
                # Same learned port, same store directory: routing
                # stays valid and recovery finds the journal.
                self._spawn_shard(child, port=child.port or 0)
            elif child.kind == "standby":
                # Same replication port: the shard's shipper dialer
                # reconnects and its reconciling bootstrap rebuilds
                # the mirror (pruning anything stale).
                self._spawn_standby(child, port=child.port or 0)
            else:
                shard_addrs = [(self.config.host, c.port or 0)
                               for c in self._shards]
                self._spawn_router(
                    child, port=child.port or 0,
                    shard_addrs=shard_addrs,
                    reuse_port=len(self._routers) > 1)
        except RuntimeError:
            # Spawn failed (port still draining?); next monitor tick
            # retries until the restart budget runs out.
            pass

    def _promote_standby(self, shard: _Child) -> bool:
        """Promote a dead shard's warm standby onto the shard's port.

        On success the standby *process* becomes the shard (the
        supervisor re-points its bookkeeping), the shard's old
        directory is recycled as the replacement standby's mirror,
        and the promoted service ships to that replacement — so the
        failover chain survives repeated deaths.  Returns False (cold
        restart fallback) if the standby is dead or unreachable.
        """
        import socket as socketlib

        from repro.replication.wire import recv_msg, send_msg

        index = shard.index
        standby = self._standbys[index]
        if standby.process is None or not standby.process.is_alive():
            return False
        # Replacement standby first (into the dead shard's old
        # directory), so the promote frame can point the promoted
        # service's shipper at it.  Spawning is safe *before* the
        # promotion is confirmed because a standby defers its wipe:
        # the directory — possibly the only complete durable copy of
        # acked writes, since shipping legitimately degrades — is
        # untouched until a promoted primary connects and bootstraps.
        old_shard_dir = self._shard_dirs[index]
        replacement = _Child("standby", index)
        self._standby_dirs[index], self._shard_dirs[index] = \
            old_shard_dir, self._standby_dirs[index]
        try:
            self._spawn_standby(replacement, port=0)
            replicate_to: Optional[str] = \
                f"{self.config.host}:{replacement.port}"
        except RuntimeError:
            replacement = None
            replicate_to = None
        try:
            with socketlib.create_connection(
                    (self.config.host, standby.port or 0),
                    timeout=5.0) as sock:
                sock.settimeout(_STARTUP_TIMEOUT_S)
                overrides: Dict[str, Any] = {}
                if replicate_to is not None:
                    overrides["replicate_to"] = replicate_to
                send_msg(sock, {"t": "promote",
                                "port": shard.port or 0,
                                "service": overrides})
                got = recv_msg(sock)
                if got is None or got[0].get("t") != "promoted":
                    raise OSError("standby did not confirm promotion")
        except Exception:
            # Promotion failed; fall back to the cold restart path.
            # No promoted primary ever connected, so the dead shard's
            # directory is still intact: retire the replacement, undo
            # the swap, and let the shard cold-restart from its own
            # pool — the one copy guaranteed to hold every acked
            # write.  The old standby stays as its failover target.
            if replacement is not None and \
                    replacement.process is not None:
                if replacement.process.is_alive():
                    replacement.process.terminate()
                replacement.process.join(timeout=2.0)
            self._standby_dirs[index], self._shard_dirs[index] = \
                self._shard_dirs[index], self._standby_dirs[index]
            return False
        # The standby process now runs the shard on the shard's port.
        shard.process = standby.process
        if replacement is not None:
            self._standbys[index] = replacement
        else:
            standby.process = None    # consumed; next tick respawns
        self.promotions += 1
        if not self.config.quiet:
            print(f"terpd shard {index} promoted from standby "
                  f"(promotion #{self.promotions})", flush=True)
        return True
