"""The cluster front-end: one wire endpoint over N terpd shards.

:class:`TerpRouter` terminates client sessions (hello, version
negotiation, resume tokens) itself and forwards everything else to
the shard that owns the PMO being operated on:

* **name-addressed ops** (create/open/attach/psync/…) route by the
  consistent-hash ring over the PMO name;
* **oid-addressed ops** (read/write/pfree/…) route arithmetically —
  shard ``i`` of ``N`` only ever mints pmo_ids in the residue class
  ``i+1 (mod N)`` (see :meth:`PmoManager.set_id_namespace`), so the
  Oid's pool id alone names the owner, with zero routing state;
* **batch frames** are split per-item across shards (each item's
  slice of the binary sidecar travels with it), the sub-batches run
  concurrently, and the responses are re-merged in client item order;
* **observability ops** (ping/metrics/trace/prometheus) fan out to
  every shard and merge (see :mod:`repro.cluster.aggregate`).

The relay is byte-transparent on the fast path: a single op's request
body and sidecar are forwarded verbatim and the shard's response
frame is returned verbatim, so v1 and v2 clients work unmodified.

Failure model: a shard dying mid-request aborts the *client's*
transport, which lands the client on the typed
:class:`~repro.service.client.ConnectionLost` retry path it already
has — reconnect, resume the router session by token, re-send the same
request id.  The router re-dials the restarted shard and resumes its
upstream session with the stored token, so a durable shard's replay
cache still de-duplicates the retried op.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.core.errors import TerpError
from repro.cluster.aggregate import (
    aggregate_metrics, label_prometheus)
from repro.cluster.ring import HashRing
from repro.pmo.object_id import OFFSET_BITS
from repro.service import protocol
from repro.service.protocol import (
    PROTOCOL_V1, PROTOCOL_VERSION, WireError, error_response,
    ok_response)
from repro.service.server import (
    DEFAULT_SESSION_EW_NS, DEFAULT_SESSION_LINGER_NS)
from repro.service.sessions import Session, SessionRegistry

#: Ops routed by the PMO *name* in their args.
NAME_OPS = frozenset({
    "create", "open", "close", "destroy", "attach", "detach",
    "pmalloc", "psync", "tx_begin", "tx_abort"})
#: Ops routed by the packed Oid in their args.
OID_OPS = frozenset({"pfree", "read", "write", "read_u64",
                     "write_u64"})
#: Observability ops the router answers by fanning out to every shard.
FANOUT_OPS = frozenset({"ping", "metrics", "trace", "prometheus"})


class UpstreamLost(Exception):
    """A shard connection died mid-request; the client must retry."""


class UpstreamError(TerpError):
    """A shard answered the router's own request with an error."""


class UpstreamConn:
    """One router->shard connection: frames in, frames out, in order.

    Serialized by an asyncio lock: a connection carries one request at
    a time (batch fan-out parallelism comes from using *different*
    connections per shard), so responses match requests by position
    with no id bookkeeping.
    """

    def __init__(self, shard: int, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.shard = shard
        self.reader = reader
        self.writer = writer
        self.alive = True
        self._lock = asyncio.Lock()
        #: the shard-side session this connection carries, once hello'd
        self.session_id: Optional[int] = None
        self.token: str = ""
        #: rids for the router's *own* requests on this connection.
        #: Negative and descending: client rids are positive, and the
        #: shard's per-session replay cache is keyed by rid — a
        #: router-originated metrics poll must never collide with a
        #: relayed client op (or with a previous router request) and
        #: get the wrong cached response replayed at it.
        self._next_rid = 0

    def next_rid(self) -> int:
        self._next_rid -= 1
        return self._next_rid

    @classmethod
    async def open(cls, shard: int, host: str,
                   port: int) -> "UpstreamConn":
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except OSError as exc:
            raise UpstreamLost(
                f"shard {shard} unreachable: {exc}") from None
        return cls(shard, reader, writer)

    async def request_raw(self, body: bytes,
                          sidecar: bytes) -> Tuple[bytes, bytes]:
        """Send one pre-encoded request frame, await the response."""
        async with self._lock:
            try:
                self.writer.write(
                    protocol.frame_from_body(body, sidecar or None))
                await self.writer.drain()
                got = await protocol.read_frame_raw(self.reader)
            except (WireError, ConnectionError, OSError) as exc:
                self.alive = False
                raise UpstreamLost(
                    f"shard {self.shard} dropped: {exc}") from None
            if got is None:
                self.alive = False
                raise UpstreamLost(f"shard {self.shard} closed the "
                                   "connection")
            return got

    async def request(self, payload: Any,
                      sidecar: bytes = b"") -> Tuple[Any, bytes]:
        """Encoded-object convenience over :meth:`request_raw`."""
        body, side = await self.request_raw(
            protocol.encode_body(payload), sidecar)
        return protocol.decode_frame(body), side

    async def hello(self, args: Dict[str, Any]) -> Dict[str, Any]:
        response, _ = await self.request(
            {"id": self.next_rid(), "op": "hello", "args": args})
        if not response.get("ok"):
            error = response.get("error") or {}
            raise UpstreamError(error.get("message", "hello failed"))
        result = response["result"]
        self.session_id = int(result["session"])
        self.token = str(result.get("token", ""))
        return result

    def close(self) -> None:
        self.alive = False
        try:
            self.writer.close()
        except Exception:
            pass


class _SessionExt:
    """Router-side per-session state the wire Session doesn't carry."""

    __slots__ = ("upstreams", "identities")

    def __init__(self) -> None:
        #: live shard connections, keyed by shard index
        self.upstreams: Dict[int, UpstreamConn] = {}
        #: (shard session id, resume token) per shard — survives the
        #: connection so a restarted shard's session can be resumed.
        self.identities: Dict[int, Tuple[int, str]] = {}

    def close_all(self) -> None:
        for conn in self.upstreams.values():
            conn.close()
        self.upstreams.clear()


class _RouterConn:
    """Per client-connection state."""

    __slots__ = ("session", "generation", "version", "peer")

    def __init__(self, peer: str) -> None:
        self.session: Optional[Session] = None
        self.generation = 0
        self.version = PROTOCOL_V1
        self.peer = peer


def _bin_len(obj: Any) -> int:
    """Total sidecar bytes a request's args claim, in marker order."""
    if isinstance(obj, dict):
        if set(obj) == {"bin"} and isinstance(obj["bin"], int):
            return obj["bin"]
        return sum(_bin_len(v) for v in obj.values())
    if isinstance(obj, list):
        return sum(_bin_len(v) for v in obj)
    return 0


class TerpRouter:
    """The v2-speaking, session-pinning, batch-splitting front-end."""

    def __init__(self, *, shard_addrs: List[Tuple[str, int]],
                 host: str = "127.0.0.1", port: Optional[int] = 0,
                 reuse_port: bool = False,
                 session_ew_ns: int = DEFAULT_SESSION_EW_NS,
                 session_linger_ns: int = DEFAULT_SESSION_LINGER_NS,
                 seed: int = 2022,
                 protocol_version: int = PROTOCOL_VERSION) -> None:
        self.shard_addrs = list(shard_addrs)
        self.shard_count = len(self.shard_addrs)
        if not self.shard_count:
            raise TerpError("router needs at least one shard")
        self.host = host
        self.port = port
        self.reuse_port = reuse_port
        self.session_linger_ns = session_linger_ns
        self.protocol_version = protocol_version
        self.ring = HashRing(range(self.shard_count), seed=seed)
        #: Router-local sessions: the client-facing identity.  The
        #: budget the router reports is what the shards enforce — the
        #: supervisor configures both from the same number, and the
        #: router passes each session's clamped budget in its
        #: upstream hellos.
        self.registry = SessionRegistry(
            default_ew_budget_ns=session_ew_ns, token_seed=seed)
        self._ext: Dict[int, _SessionExt] = {}
        #: sessionless connections for observability fan-out, one per
        #: shard, dialed lazily and re-dialed after a shard restart.
        self._admin: Dict[int, UpstreamConn] = {}
        self._servers: List[asyncio.AbstractServer] = []
        self._writers: set = set()
        self._purge_task: Optional[asyncio.Task] = None
        self._t0 = time.monotonic_ns()
        self.bound_port: Optional[int] = None

    def now_ns(self) -> int:
        return time.monotonic_ns() - self._t0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        kwargs: Dict[str, Any] = {}
        if self.reuse_port:
            # SO_REUSEPORT accept sharding: several router processes
            # bind the same front port and the kernel spreads accepts.
            kwargs["reuse_port"] = True
        server = await asyncio.start_server(
            self._serve_connection, self.host, self.port, **kwargs)
        self._servers.append(server)
        self.bound_port = server.sockets[0].getsockname()[1]
        self._purge_task = asyncio.create_task(self._purge_loop())

    async def stop(self) -> None:
        if self._purge_task is not None:
            self._purge_task.cancel()
            try:
                await self._purge_task
            except asyncio.CancelledError:
                pass
        for server in self._servers:
            server.close()
            await server.wait_closed()
        for ext in self._ext.values():
            ext.close_all()
        for conn in self._admin.values():
            conn.close()
        for writer in list(self._writers):
            writer.close()

    async def serve_forever(self) -> None:
        await self.start()
        try:
            await asyncio.Event().wait()
        finally:
            await self.stop()

    async def _purge_loop(self) -> None:
        """Expire lingering (dropped, never resumed) sessions."""
        while True:
            await asyncio.sleep(0.1)
            now = self.now_ns()
            for session in self.registry.lingering():
                if session.linger_expired(now, self.session_linger_ns):
                    self.registry.remove(session.session_id)
                    ext = self._ext.pop(session.session_id, None)
                    if ext is not None:
                        ext.close_all()

    # -- connection handling ----------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername") or "?"
        conn = _RouterConn(str(peer))
        self._writers.add(writer)
        transport = writer.transport
        try:
            while True:
                got = await protocol.read_frame_raw(reader)
                if got is None:
                    break
                body, sidecar = got
                payload = protocol.decode_frame(body)
                if isinstance(payload, list):
                    frame = await self._handle_batch(conn, payload,
                                                     sidecar)
                else:
                    frame = await self._handle_single(conn, payload,
                                                      body, sidecar)
                writer.write(frame)
                if transport is None or \
                        transport.get_write_buffer_size() > 65536:
                    await writer.drain()
        except UpstreamLost:
            # Map shard death onto the client's typed retry path: an
            # aborted transport is a ConnectionLost, and the retried
            # request (same rid, resumed session) re-routes to the
            # restarted shard.
            if transport is not None:
                transport.abort()
        except (WireError, ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            session = conn.session
            if session is not None and not session.closed and \
                    session.generation == conn.generation:
                # Drop the upstream connections *now*: each shard
                # force-releases this session's windows on teardown
                # ("connection lost"), exactly as a direct client's
                # death would.  Identity lingers for a token resume.
                ext = self._ext.get(session.session_id)
                if ext is not None:
                    ext.close_all()
                session.unbind(self.now_ns())
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # -- routing -----------------------------------------------------------

    def _home_shard(self, conn: _RouterConn) -> int:
        if conn.session is not None:
            return self.ring.owner(
                f"session:{conn.session.session_id}")
        return 0

    def _route(self, op: str, args: Any, conn: _RouterConn) -> int:
        if isinstance(args, dict):
            if op in NAME_OPS:
                name = args.get("name")
                if isinstance(name, str):
                    return self.ring.owner(name)
            elif op in OID_OPS:
                oid = args.get("oid")
                if isinstance(oid, (int, float)):
                    pool_id = int(oid) >> OFFSET_BITS
                    if pool_id >= 1:
                        return (pool_id - 1) % self.shard_count
        # Unroutable (malformed args, null oid): any shard will
        # produce the same typed error; keep it session-sticky.
        return self._home_shard(conn)

    async def _upstream(self, conn: _RouterConn,
                        shard: int) -> UpstreamConn:
        session = conn.session
        assert session is not None
        ext = self._ext[session.session_id]
        up = ext.upstreams.get(shard)
        if up is not None and up.alive:
            return up
        host, port = self.shard_addrs[shard]
        up = await UpstreamConn.open(shard, host, port)
        hello_args: Dict[str, Any] = {
            "user": session.user,
            "version": conn.version,
            "ew_budget_us": session.ew_budget_ns / 1_000,
        }
        identity = ext.identities.get(shard)
        try:
            if identity is not None:
                try:
                    await up.hello(dict(hello_args,
                                        resume=identity[0],
                                        token=identity[1]))
                except UpstreamError:
                    # The shard restarted cold (or the linger lapsed):
                    # fall back to a fresh shard session.  Replay
                    # de-duplication is lost for that shard, exactly
                    # as for a direct client whose resume fails.
                    await up.hello(hello_args)
            else:
                await up.hello(hello_args)
        except UpstreamLost:
            up.close()
            raise
        ext.identities[shard] = (up.session_id or 0, up.token)
        ext.upstreams[shard] = up
        return up

    async def _admin_conn(self, shard: int) -> UpstreamConn:
        up = self._admin.get(shard)
        if up is not None and up.alive:
            return up
        host, port = self.shard_addrs[shard]
        up = await UpstreamConn.open(shard, host, port)
        self._admin[shard] = up
        return up

    # -- single-op path ----------------------------------------------------

    async def _handle_single(self, conn: _RouterConn, payload: Any,
                             raw_body: bytes,
                             sidecar: bytes) -> bytes:
        rid = payload.get("id") if isinstance(payload, dict) else None
        try:
            if not isinstance(payload, dict) or \
                    not isinstance(payload.get("op"), str):
                raise WireError("request must be an object with an "
                                "'op'")
            op = payload["op"]
            args = payload.get("args") or {}
            if not isinstance(args, dict):
                raise WireError("'args' must be an object")
            if op == "hello":
                result = self._op_hello(conn, args)
                return protocol.frame_from_body(protocol.encode_body(
                    ok_response(rid, result, None)))
            if conn.session is None and op not in FANOUT_OPS:
                raise TerpError(f"op {op!r} requires a session; "
                                "say hello first")
            if op == "goodbye":
                result = await self._op_goodbye(conn)
                return protocol.frame_from_body(protocol.encode_body(
                    ok_response(rid, result, None)))
            if op in FANOUT_OPS:
                return await self._fanout(conn, rid, op, args)
        except UpstreamLost:
            raise
        except (TerpError, WireError) as exc:
            return protocol.frame_from_body(protocol.encode_body(
                error_response(rid, type(exc).__name__, str(exc),
                               None)))
        except (KeyError, TypeError, ValueError) as exc:
            return protocol.frame_from_body(protocol.encode_body(
                error_response(rid, "BadRequest",
                               f"malformed arguments: {exc!r}")))
        # The relay fast path: the owning shard sees the client's
        # exact bytes and its response travels back untouched.
        shard = self._route(op, args, conn)
        up = await self._upstream(conn, shard)
        rbody, rside = await up.request_raw(raw_body, sidecar)
        return protocol.frame_from_body(rbody, rside or None)

    def _op_hello(self, conn: _RouterConn,
                  args: Dict[str, Any]) -> Dict[str, Any]:
        if conn.session is not None:
            raise TerpError("connection already has a session")
        version = int(args.get("version", PROTOCOL_V1))
        if version < PROTOCOL_V1 or \
                (self.protocol_version <= PROTOCOL_V1 and
                 version != PROTOCOL_V1):
            raise TerpError(f"protocol version {version} unsupported; "
                            f"server speaks {self.protocol_version}")
        negotiated = min(version, self.protocol_version)
        resume = args.get("resume")
        if resume is not None:
            session = self._resume_session(int(resume),
                                           str(args.get("token", "")))
        else:
            budget_us = args.get("ew_budget_us")
            budget_ns = None if budget_us is None else int(
                float(budget_us) * 1_000)
            session = self.registry.create(
                user=str(args.get("user", "root")),
                ew_budget_ns=budget_ns)
            self._ext[session.session_id] = _SessionExt()
        conn.generation = session.bind()
        conn.session = session
        conn.version = negotiated
        return {"session": session.session_id,
                "entity": session.entity_id,
                "version": negotiated,
                "ew_budget_us": session.ew_budget_ns / 1_000,
                "token": session.resume_token,
                "resumed": resume is not None}

    def _resume_session(self, session_id: int, token: str) -> Session:
        session = self.registry.find(session_id)
        if session is None or session.closed:
            raise TerpError(f"no session {session_id} to resume")
        if not token or token != session.resume_token:
            raise TerpError(f"bad resume token for session "
                            f"{session_id}")
        if session.bound:
            raise TerpError(f"session {session_id} is still bound "
                            "to a live connection")
        return session

    async def _op_goodbye(self, conn: _RouterConn) -> Dict[str, Any]:
        session = conn.session
        assert session is not None
        ext = self._ext.pop(session.session_id, None)
        released = 0
        if ext is not None:
            for up in list(ext.upstreams.values()):
                if not up.alive:
                    continue
                try:
                    response, _ = await up.request(
                        {"id": up.next_rid(), "op": "goodbye",
                         "args": {}})
                    if response.get("ok"):
                        released += int(
                            response["result"].get("released", 0))
                except UpstreamLost:
                    pass
            ext.close_all()
        self.registry.remove(session.session_id)
        conn.session = None
        return {"released": released}

    # -- fan-out path ------------------------------------------------------

    async def _fanout_targets(self, conn: _RouterConn
                              ) -> List[Tuple[int, UpstreamConn]]:
        """One connection per shard: the session's own where it has
        one (so per-session metrics and pending events ride along),
        a shared sessionless one otherwise.  Unreachable shards are
        skipped — a restarting shard must not fail a survivor's
        metrics poll."""
        targets: List[Tuple[int, UpstreamConn]] = []
        ext = None
        if conn.session is not None:
            ext = self._ext.get(conn.session.session_id)
        for shard in range(self.shard_count):
            up = None
            if ext is not None:
                up = ext.upstreams.get(shard)
                if up is not None and not up.alive:
                    up = None
            if up is None:
                try:
                    up = await self._admin_conn(shard)
                except UpstreamLost:
                    continue
            targets.append((shard, up))
        return targets

    async def _fanout(self, conn: _RouterConn, rid: Any, op: str,
                      args: Dict[str, Any]) -> bytes:
        if op == "ping":
            result, events = await self._fanout_ping(conn, args)
        elif op == "metrics":
            result, events = await self._fanout_metrics(conn, args)
        elif op == "trace":
            result, events = await self._fanout_trace(conn, args)
        else:
            result, events = await self._fanout_prometheus(conn, args)
        return protocol.frame_from_body(protocol.encode_body(
            ok_response(rid, result, events or None)))

    async def _collect(self, targets: List[Tuple[int, UpstreamConn]],
                       op: str, args: Dict[str, Any]
                       ) -> List[Tuple[int, Dict[str, Any]]]:
        """Send one op to every target; drop targets that die."""
        async def one(shard: int, up: UpstreamConn):
            try:
                response, _ = await up.request(
                    {"id": up.next_rid(), "op": op, "args": args})
            except UpstreamLost:
                return None
            return shard, response
        answers = await asyncio.gather(
            *(one(shard, up) for shard, up in targets))
        return [a for a in answers if a is not None]

    @staticmethod
    def _merge_events(answers: List[Tuple[int, Dict[str, Any]]]
                      ) -> List[dict]:
        events: List[dict] = []
        for _, response in answers:
            events.extend(response.get("events") or [])
        return events

    async def _fanout_ping(self, conn: _RouterConn,
                           args: Dict[str, Any]):
        # Ping only needs the session's own shards: that is where its
        # pending events (forced detaches) queue, and where clock
        # movement matters to it.  A session-less ping answers locally.
        targets: List[Tuple[int, UpstreamConn]] = []
        if conn.session is not None:
            ext = self._ext.get(conn.session.session_id)
            if ext is not None:
                targets = [(s, up) for s, up in ext.upstreams.items()
                           if up.alive]
        answers = await self._collect(targets, "ping", args)
        now = max((a[1].get("result", {}).get("now_ns", 0)
                   for a in answers if a[1].get("ok")),
                  default=self.now_ns())
        return ({"now_ns": now, "sessions": len(self.registry)},
                self._merge_events(answers))

    async def _fanout_metrics(self, conn: _RouterConn,
                              args: Dict[str, Any]):
        targets = await self._fanout_targets(conn)
        answers = await self._collect(targets, "metrics",
                                      dict(args, raw=True))
        reports = []
        for shard, response in answers:
            if not response.get("ok"):
                continue
            report = response["result"]
            report.setdefault("shard", shard)
            reports.append(report)
        merged = aggregate_metrics(reports,
                                   sessions=len(self.registry))
        merged["cluster"]["unreachable"] = \
            self.shard_count - len(reports)
        return merged, self._merge_events(answers)

    async def _fanout_trace(self, conn: _RouterConn,
                            args: Dict[str, Any]):
        targets = await self._fanout_targets(conn)
        answers = await self._collect(targets, "trace", args)
        spans: List[dict] = []
        audit: List[dict] = []
        open_windows: List[dict] = []
        for shard, response in answers:
            if not response.get("ok"):
                continue
            result = response["result"]
            spans.extend(result.get("spans") or [])
            for event in result.get("audit") or []:
                event["shard"] = shard
                audit.append(event)
            for window in result.get("open_windows") or []:
                window["shard"] = shard
                open_windows.append(window)
        audit.sort(key=lambda e: e.get("at_ns", 0))
        return ({"spans": spans, "audit": audit,
                 "open_windows": open_windows},
                self._merge_events(answers))

    async def _fanout_prometheus(self, conn: _RouterConn,
                                 args: Dict[str, Any]):
        targets = await self._fanout_targets(conn)
        answers = await self._collect(targets, "prometheus", args)
        texts = [label_prometheus(
                     response["result"].get("text", ""), shard)
                 for shard, response in answers if response.get("ok")]
        return {"text": "".join(texts)}, self._merge_events(answers)

    # -- batch path --------------------------------------------------------

    async def _handle_batch(self, conn: _RouterConn, items: List[Any],
                            sidecar: bytes) -> bytes:
        """Split per owning shard, run concurrently, merge in order.

        Each item keeps its slice of the combined request sidecar (in
        item order, the v2 batch contract) and contributes its
        response chunks to the combined response sidecar, also in
        item order.  A shard error stays isolated to its items'
        slots; a shard *death* aborts the whole client connection
        (the retry re-splits identically).
        """
        bins = protocol.BinReader(sidecar)
        # parts[i] is either pre-encoded response bytes (local errors)
        # or None until the owning shard's sub-batch answers.
        parts: List[Any] = [None] * len(items)
        chunks: List[bytes] = [b""] * len(items)
        by_shard: Dict[int, List[Tuple[int, Any, bytes]]] = {}
        for index, item in enumerate(items):
            op = item.get("op") if isinstance(item, dict) else None
            rid = item.get("id") if isinstance(item, dict) else None
            args = item.get("args") if isinstance(item, dict) else None
            take = bins.take(_bin_len(args)) if args else b""
            if not isinstance(item, dict) or not isinstance(op, str):
                parts[index] = protocol.encode_body(error_response(
                    rid, "WireError",
                    "request must be an object with an 'op'"))
                continue
            if op in ("hello", "goodbye"):
                parts[index] = protocol.encode_body(error_response(
                    rid, "TerpError",
                    f"op {op!r} must be sent standalone, not in a "
                    "batch"))
                continue
            if conn.session is None:
                parts[index] = protocol.encode_body(error_response(
                    rid, "TerpError",
                    f"op {op!r} requires a session; say hello first"))
                continue
            # Fan-out ops inside a batch are pinned to the session's
            # home shard: a batched ping is a liveness probe, not a
            # cluster census.
            if op in FANOUT_OPS:
                shard = self._home_shard(conn)
            else:
                shard = self._route(op, args or {}, conn)
            by_shard.setdefault(shard, []).append((index, item, take))

        async def run_shard(shard: int,
                            grouped: List[Tuple[int, Any, bytes]]):
            up = await self._upstream(conn, shard)
            body = protocol.encode_body([item for _, item, _ in
                                         grouped])
            side = b"".join(chunk for _, _, chunk in grouped)
            rbody, rside = await up.request_raw(body, side)
            responses = protocol.decode_frame(rbody)
            if not isinstance(responses, list) or \
                    len(responses) != len(grouped):
                raise UpstreamLost(
                    f"shard {shard} answered a batch of "
                    f"{len(grouped)} with "
                    f"{len(responses) if isinstance(responses, list) else 1}")
            reply_bins = protocol.BinReader(rside)
            for (index, _, _), response in zip(grouped, responses):
                result = response.get("result") \
                    if isinstance(response, dict) else None
                n = result.get("bin") if isinstance(result, dict) \
                    else None
                if isinstance(n, int):
                    chunks[index] = reply_bins.take(n)
                parts[index] = protocol.encode_body(response)

        if by_shard:
            done = await asyncio.gather(
                *(run_shard(shard, grouped)
                  for shard, grouped in by_shard.items()),
                return_exceptions=True)
            for outcome in done:
                if isinstance(outcome, BaseException):
                    raise outcome
        body = protocol.encode_body(parts)
        merged_sidecar = b"".join(chunks)
        return protocol.frame_from_body(body, merged_sidecar or None)
