"""Cross-shard metric merging for the router's ``metrics`` op.

Each shard answers ``metrics`` with its own counters and latency
summaries; the router must present ONE coherent report to a client
that neither knows nor cares that N processes served it.  Counters
add.  Latency percentiles do not — the mean of two p99s is not the
p99 of the union — so the router asks shards for their raw histogram
buckets (``metrics {raw: true}``) and recomputes the percentiles from
the merged cumulative bucket counts, which is exact up to bucket
resolution.  When a shard predates the ``raw`` extension the merge
falls back to count-weighted summary percentiles, which is the best
available lie and flagged as such here.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

#: The wire names of the two latency histograms a shard registers.
REQUEST_HIST = "terpd_request_latency_ns"
SWEEP_HIST = "terpd_sweep_latency_ns"


def sum_tree(trees: List[Any]) -> Any:
    """Merge parallel JSON trees: numbers add, dicts merge by key,
    anything else keeps the first non-None value."""
    trees = [t for t in trees if t is not None]
    if not trees:
        return None
    first = trees[0]
    if isinstance(first, bool):
        return first
    if isinstance(first, (int, float)):
        return sum(t for t in trees if isinstance(t, (int, float)))
    if isinstance(first, dict):
        keys: List[str] = []
        for tree in trees:
            if isinstance(tree, dict):
                for key in tree:
                    if key not in keys:
                        keys.append(key)
        return {key: sum_tree([t.get(key) for t in trees
                               if isinstance(t, dict)])
                for key in keys}
    return first


def _merged_cumulative(hists: List[Dict[str, Any]]) -> List[tuple]:
    """Per-shard cumulative buckets -> one merged cumulative list.

    Bounds may differ only in which tail buckets exist; they are
    unioned numerically with ``+Inf`` always last.
    """
    per_bucket: Dict[Optional[float], int] = {}
    for hist in hists:
        buckets = hist.get("buckets") or {}
        previous = 0
        # A dict from JSON preserves insertion order: ascending
        # bounds then +Inf, so cumulative -> per-bucket is one pass.
        for le, cumulative in buckets.items():
            bound = None if le == "+Inf" else float(le)
            per_bucket[bound] = per_bucket.get(bound, 0) + \
                int(cumulative) - previous
            previous = int(cumulative)
    bounds = sorted(b for b in per_bucket if b is not None)
    out = []
    running = 0
    for bound in bounds:
        running += per_bucket[bound]
        out.append((bound, running))
    running += per_bucket.get(None, 0)
    out.append((None, running))
    return out


def merge_histograms(hists: List[Dict[str, Any]]) -> Dict[str, float]:
    """Registry histogram dicts -> one wire latency summary (us).

    Percentiles come from the merged cumulative buckets: the value
    reported for p is the upper bound of the first bucket whose
    cumulative count reaches p% of the merged population (the +Inf
    bucket reports the merged max).  Mean is exact (sum of totals over
    sum of counts); max is exact.
    """
    hists = [h for h in hists if h]
    count = sum(int(h.get("count", 0)) for h in hists)
    total = sum(int(h.get("total", 0)) for h in hists)
    max_value = max((int(h.get("max", 0)) for h in hists), default=0)
    if count == 0:
        return {"count": 0, "mean_us": 0.0, "p50_us": 0.0,
                "p99_us": 0.0, "max_us": 0.0}
    cumulative = _merged_cumulative(hists)

    def percentile(p: float) -> float:
        need = p / 100.0 * count
        for bound, running in cumulative:
            if running >= need:
                return max_value if bound is None else bound
        return max_value

    return {
        "count": count,
        "mean_us": total / count / 1e3,
        "p50_us": percentile(50) / 1e3,
        "p99_us": percentile(99) / 1e3,
        "max_us": max_value / 1e3,
    }


def merge_latency_summaries(summaries: List[Dict[str, Any]]
                            ) -> Dict[str, float]:
    """Fallback merge of wire latency summaries (no buckets):
    count-weighted mean and percentiles, exact count and max."""
    summaries = [s for s in summaries if s]
    count = sum(int(s.get("count", 0)) for s in summaries)
    if count == 0:
        return {"count": 0, "mean_us": 0.0, "p50_us": 0.0,
                "p99_us": 0.0, "max_us": 0.0}

    def weighted(key: str) -> float:
        return sum(float(s.get(key, 0.0)) * int(s.get("count", 0))
                   for s in summaries) / count

    return {
        "count": count,
        "mean_us": weighted("mean_us"),
        "p50_us": weighted("p50_us"),
        "p99_us": weighted("p99_us"),
        "max_us": max(float(s.get("max_us", 0.0)) for s in summaries),
    }


def _merge_audit(summaries: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Audit summaries add, except the held-time stats: the mean is
    window-count weighted and the max is the max."""
    summaries = [s for s in summaries if s]
    if not summaries:
        return {}
    merged = sum_tree(summaries)
    windows = sum(int(s.get("windows", 0)) for s in summaries)
    if windows:
        merged["held_mean_ns"] = sum(
            float(s.get("held_mean_ns", 0.0)) *
            int(s.get("windows", 0)) for s in summaries) / windows
    else:
        merged["held_mean_ns"] = 0.0
    merged["held_max_ns"] = max(
        int(s.get("held_max_ns", 0)) for s in summaries)
    return merged


def _latency(reports: List[Dict[str, Any]], wire_key: str,
             hist_name: str) -> Dict[str, float]:
    hists = []
    for report in reports:
        registry = report.get("registry") or {}
        hist = (registry.get("histograms") or {}).get(hist_name)
        if hist is None:
            # At least one shard answered without raw buckets:
            # degrade the whole merge to weighted summaries rather
            # than mixing exact and approximate populations.
            return merge_latency_summaries(
                [(r.get("global") or {}).get(wire_key) or {}
                 for r in reports])
        hists.append(hist)
    return merge_histograms(hists)


def aggregate_metrics(reports: List[Dict[str, Any]], *,
                      sessions: int) -> Dict[str, Any]:
    """Per-shard ``metrics`` responses -> one cluster-wide report.

    ``sessions`` is the router's own count (the client-facing truth:
    shard-side sessions are an implementation detail — one client
    session fans out to up to N upstream ones).
    """
    reports = [r for r in reports if r]
    merged_global = sum_tree([r.get("global") for r in reports]) or {}
    merged_global["request_latency"] = _latency(
        reports, "request_latency", REQUEST_HIST)
    merged_global["sweep_latency"] = _latency(
        reports, "sweep_latency", SWEEP_HIST)
    out: Dict[str, Any] = {
        "global": merged_global,
        "sessions": sessions,
        "runtime": sum_tree([r.get("runtime") for r in reports]) or {},
        "arch_cases": sum_tree([r.get("arch_cases")
                                for r in reports]) or {},
        "audit": _merge_audit([r.get("audit") or {} for r in reports]),
        "trace": sum_tree([r.get("trace") for r in reports]) or {},
        "cluster": {
            "shards": len(reports),
            "per_shard_requests": {
                str(r.get("shard", i)):
                    (r.get("global") or {}).get("requests", 0)
                for i, r in enumerate(reports)},
        },
    }
    recoveries = [r.get("recovery") for r in reports
                  if r.get("recovery")]
    if recoveries:
        out["recovery"] = sum_tree(recoveries)
    session_parts = [r.get("session") for r in reports
                     if r.get("session")]
    if session_parts:
        out["session"] = sum_tree(session_parts)
    return out


def label_prometheus(text: str, shard: int) -> str:
    """Inject a ``shard`` label into every sample of one shard's
    Prometheus exposition, so concatenated shard dumps stay distinct
    series."""
    out = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            out.append(line)
            continue
        name_and_labels, _, value = line.rpartition(" ")
        if "{" in name_and_labels:
            head, _, tail = name_and_labels.partition("{")
            sample = f'{head}{{shard="{shard}",{tail} {value}'
        else:
            sample = f'{name_and_labels}{{shard="{shard}"}} {value}'
        out.append(sample)
    return "\n".join(out) + "\n"
