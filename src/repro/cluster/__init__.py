"""terpd cluster — multi-process sharded serving behind one router.

A single asyncio process caps terpd's throughput; the paper's per-PMO
exposure accounting partitions cleanly by PMOID, so the cluster runs N
worker shards — each a full :class:`~repro.service.server.TerpService`
owning a partition of the PMO namespace, its own sweeper, and (when
durable) its own store directory — behind an asyncio router that
speaks the existing hello-negotiated wire protocol to unmodified v1
and v2 clients.

Modules:

``ring``        seeded consistent-hash ring over PMO names
``aggregate``   cross-shard metric merging (sum counters, merge buckets)
``router``      the client-facing front-end: session pinning, op
                routing, batch split/merge, shard-death -> retry path
``supervisor``  forks shard + router processes, monitors liveness,
                warm-restarts dead shards on the same port

Run a cluster with ``python -m repro.cluster --shards N``.
"""

from repro.cluster.ring import HashRing
from repro.cluster.router import TerpRouter
from repro.cluster.supervisor import ClusterConfig, ClusterSupervisor

__all__ = [
    "ClusterConfig",
    "ClusterSupervisor",
    "HashRing",
    "TerpRouter",
]
