"""A seeded consistent-hash ring over PMO names.

Placement must satisfy three properties at once: every router process
(and the chaos checker) computes the same owner for the same name
with zero coordination; load spreads evenly across shards; and
adding or removing one shard remaps only ~1/N of the keyspace — the
classic consistent-hashing guarantee (Karger et al.), which the ring
gets from hashing each node to ``vnodes`` points on a 64-bit circle
and assigning a key to the first node point at or after the key's
hash.

Hashing is ``blake2b`` keyed by the seed — never the builtin
``hash()``, whose per-process ``PYTHONHASHSEED`` randomization would
give every shard process a different ring.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Tuple

#: Points per node: enough that the max/mean load ratio stays small
#: at small N without making ring construction or lookup noticeable.
DEFAULT_VNODES = 96


class HashRing:
    """Consistent hashing of string keys onto integer node ids."""

    def __init__(self, nodes: Iterable[int], *,
                 vnodes: int = DEFAULT_VNODES,
                 seed: int = 2022) -> None:
        self.vnodes = vnodes
        self.seed = seed
        self._points: List[Tuple[int, int]] = []   # (hash, node)
        self._hashes: List[int] = []
        self._nodes: set = set()
        for node in nodes:
            self.add_node(node)

    def _hash(self, value: str) -> int:
        digest = hashlib.blake2b(
            value.encode("utf-8"), digest_size=8,
            key=self.seed.to_bytes(8, "big", signed=False)).digest()
        return int.from_bytes(digest, "big")

    def _rebuild(self) -> None:
        self._points.sort()
        self._hashes = [h for h, _ in self._points]

    def add_node(self, node: int) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node} already on the ring")
        self._nodes.add(node)
        self._points.extend(
            (self._hash(f"node:{node}:{i}"), node)
            for i in range(self.vnodes))
        self._rebuild()

    def remove_node(self, node: int) -> None:
        if node not in self._nodes:
            raise ValueError(f"node {node} not on the ring")
        self._nodes.discard(node)
        self._points = [(h, n) for h, n in self._points if n != node]
        self._rebuild()

    def owner(self, key: str) -> int:
        """The node owning ``key``: first point clockwise of its hash."""
        if not self._points:
            raise ValueError("empty ring")
        index = bisect.bisect_right(self._hashes, self._hash(key))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    @property
    def nodes(self) -> List[int]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)
