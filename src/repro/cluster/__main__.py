"""``python -m repro.cluster`` — run a sharded terpd cluster.

Examples::

    # 4 shards behind one router on an ephemeral port
    python -m repro.cluster --shards 4

    # durable cluster, fixed front port, state file for tooling
    python -m repro.cluster --shards 4 --port 7077 \
        --pool-dir /var/lib/terpd --state-file cluster_state.json

Existing clients connect to the front port unmodified — the router
speaks the same hello-negotiated wire protocol (v1 and v2) as a
standalone daemon.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading

from repro.cluster.supervisor import ClusterConfig, ClusterSupervisor
from repro.pmo.store import DEFAULT_COMMIT_INTERVAL_US
from repro.service.server import (
    DEFAULT_SESSION_EW_NS, DEFAULT_SESSION_LINGER_NS,
    DEFAULT_SWEEP_PERIOD_NS)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="terpd cluster: N sharded daemons behind a "
                    "v2-speaking router on one front port.")
    parser.add_argument("--shards", type=int, default=2,
                        help="worker shard processes "
                             "(default: %(default)s)")
    parser.add_argument("--routers", type=int, default=1,
                        help="router processes sharing the front port "
                             "via SO_REUSEPORT (default: %(default)s)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: %(default)s)")
    parser.add_argument("--port", type=int, default=7077,
                        help="front port; 0 picks an ephemeral port "
                             "(default: %(default)s)")
    parser.add_argument("--pool-dir", metavar="DIR", default=None,
                        help="durable root; each shard stores under "
                             "DIR/shardNN and warm-restarts from it")
    parser.add_argument("--session-ew-ms", type=float,
                        default=DEFAULT_SESSION_EW_NS / 1e6,
                        help="per-session exposure budget in ms "
                             "(default: %(default)s)")
    parser.add_argument("--sweep-period-ms", type=float,
                        default=DEFAULT_SWEEP_PERIOD_NS / 1e6,
                        help="sweeper period in ms "
                             "(default: %(default)s)")
    parser.add_argument("--resume-linger-ms", type=float,
                        default=DEFAULT_SESSION_LINGER_NS / 1e6,
                        help="resume-linger window in ms "
                             "(default: %(default)s)")
    parser.add_argument("--ew-target-us", type=float, default=40.0,
                        help="arch engine EW target in us "
                             "(default: %(default)s)")
    parser.add_argument("--commit-interval-us", type=int,
                        default=DEFAULT_COMMIT_INTERVAL_US,
                        help="group-commit window in us "
                             "(default: %(default)s)")
    parser.add_argument("--seed", type=int, default=2022,
                        help="base seed; shard i uses seed+i "
                             "(default: %(default)s)")
    parser.add_argument("--profile", metavar="PREFIX", default=None,
                        help="run every process under cProfile; each "
                             "writes PREFIX.shardN / PREFIX.routerN")
    parser.add_argument("--state-file", metavar="PATH", default=None,
                        help="write a JSON description of the running "
                             "cluster (front port, shard pids/ports) "
                             "to PATH once up")
    parser.add_argument("--replicas", action="store_true",
                        help="one warm standby per shard (requires "
                             "--pool-dir): shards ship every committed "
                             "journal batch semi-synchronously, and a "
                             "dead shard is promoted from its standby "
                             "with zero acknowledged-write loss "
                             "instead of cold-restarting")
    parser.add_argument("--no-obs", action="store_true",
                        help="run shards with observability in no-op "
                             "mode")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress startup/shutdown chatter")
    return parser


def make_config(args: argparse.Namespace) -> ClusterConfig:
    return ClusterConfig(
        shards=args.shards,
        routers=args.routers,
        host=args.host,
        port=args.port,
        pool_dir=args.pool_dir,
        session_ew_ns=int(args.session_ew_ms * 1e6),
        sweep_period_ns=max(1, int(args.sweep_period_ms * 1e6)),
        session_linger_ns=max(0, int(args.resume_linger_ms * 1e6)),
        ew_target_us=args.ew_target_us,
        commit_interval_us=max(0, args.commit_interval_us),
        seed=args.seed,
        obs_enabled=not args.no_obs,
        profile=args.profile,
        quiet=args.quiet,
        replicas=args.replicas)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    supervisor = ClusterSupervisor(make_config(args))
    stop = threading.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, lambda *_: stop.set())
    supervisor.start()
    try:
        if args.state_file:
            supervisor.write_state_file(args.state_file)
        if not args.quiet:
            state = supervisor.state()
            print(f"terpd cluster serving on "
                  f"tcp://{args.host}:{supervisor.front_port} "
                  f"({args.shards} shards: ports "
                  f"{[s['port'] for s in state['shards']]})",
                  flush=True)
        stop.wait()
    except KeyboardInterrupt:
        pass
    finally:
        supervisor.stop()
        if not args.quiet:
            print("terpd cluster stopped:", flush=True)
            print(json.dumps(
                [{"shard": c["index"], "restarts": c["restarts"]}
                 for c in supervisor.state()["shards"]], indent=2),
                flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
