"""``python -m repro.service`` — run the terpd daemon.

Examples::

    # TCP on the default port
    python -m repro.service --port 7077

    # Unix socket, tight 5ms session exposure budget, 1ms sweeps
    python -m repro.service --unix /tmp/terpd.sock \
        --session-ew-ms 5 --sweep-period-ms 1

The daemon serves until SIGINT/SIGTERM, then detaches every live
session and prints a final metrics report.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys

from repro.pmo.store import DEFAULT_COMMIT_INTERVAL_US
from repro.service.server import (
    DEFAULT_SESSION_EW_NS, DEFAULT_SESSION_LINGER_NS,
    DEFAULT_SWEEP_PERIOD_NS, TerpService)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="terpd: the TERP multi-tenant PMO daemon "
                    "(Table I API over length-prefixed JSON).")
    parser.add_argument("--host", default="127.0.0.1",
                        help="TCP bind address (default: %(default)s)")
    parser.add_argument("--port", type=int, default=7077,
                        help="TCP port; 0 picks an ephemeral port, "
                             "-1 disables TCP (default: %(default)s)")
    parser.add_argument("--unix", metavar="PATH", default=None,
                        help="also (or instead) serve on a Unix "
                             "socket at PATH")
    parser.add_argument("--ew-target-us", type=float, default=40.0,
                        help="arch engine EW target in us, the window-"
                             "combining horizon (default: %(default)s)")
    parser.add_argument("--session-ew-ms", type=float,
                        default=DEFAULT_SESSION_EW_NS / 1e6,
                        help="wall-clock exposure budget per session "
                             "in ms; the sweeper force-detaches "
                             "holdings older than this "
                             "(default: %(default)s)")
    parser.add_argument("--sweep-period-ms", type=float,
                        default=DEFAULT_SWEEP_PERIOD_NS / 1e6,
                        help="sweeper period in ms (default: "
                             "%(default)s)")
    parser.add_argument("--cb-capacity", type=int, default=32,
                        help="circular-buffer entries (default: "
                             "%(default)s)")
    parser.add_argument("--seed", type=int, default=2022,
                        help="layout-randomization seed (default: "
                             "%(default)s)")
    parser.add_argument("--pool-dir", metavar="DIR", default=None,
                        help="durable pool directory: one CRC-guarded "
                             "file per PMO, flushed at psync through a "
                             "double-write journal, plus a session "
                             "journal enabling warm restart — start "
                             "again on the same DIR after a crash and "
                             "data, sessions, and the exposure clock "
                             "all survive")
    parser.add_argument("--commit-interval-us", type=int,
                        default=DEFAULT_COMMIT_INTERVAL_US,
                        help="group-commit window in us: how long the "
                             "flusher thread waits for more psyncs to "
                             "merge into one journal fsync; 0 commits "
                             "each batch as soon as the flusher is "
                             "free (default: %(default)s)")
    parser.add_argument("--replicate-to", metavar="HOST:PORT",
                        default=None,
                        help="stream every committed journal batch to "
                             "a warm standby (python -m "
                             "repro.replication) at HOST:PORT; "
                             "requires --pool-dir.  Commits wait for "
                             "the standby's ack while it is connected "
                             "(semi-sync), so an acked psync survives "
                             "primary death and promotion")
    parser.add_argument("--profile", metavar="PATH", default=None,
                        help="run under cProfile and dump the stats "
                             "file to PATH on shutdown (inspect with "
                             "python -m pstats PATH)")
    parser.add_argument("--resume-linger-ms", type=float,
                        default=DEFAULT_SESSION_LINGER_NS / 1e6,
                        help="how long a dropped session's identity "
                             "lingers for token-based resume, in ms "
                             "(default: %(default)s)")
    parser.add_argument("--metrics-dump", metavar="PATH", default=None,
                        help="on shutdown, write the full observability "
                             "dump (metrics registry JSON, exposure "
                             "audit summary, trace stats) to PATH; "
                             "'-' writes to stdout")
    parser.add_argument("--no-obs", action="store_true",
                        help="run with observability in no-op mode "
                             "(every recorder short-circuits; the "
                             "overhead-measurement baseline)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress startup/shutdown chatter")
    return parser


def make_service(args: argparse.Namespace) -> TerpService:
    return TerpService(
        host=args.host,
        port=None if args.port < 0 else args.port,
        unix_path=args.unix,
        ew_target_us=args.ew_target_us,
        session_ew_ns=int(args.session_ew_ms * 1e6),
        sweep_period_ns=max(1, int(args.sweep_period_ms * 1e6)),
        cb_capacity=args.cb_capacity,
        seed=args.seed,
        obs_enabled=not args.no_obs,
        session_linger_ns=max(0, int(args.resume_linger_ms * 1e6)),
        pool_dir=args.pool_dir,
        commit_interval_us=max(0, args.commit_interval_us),
        replicate_to=args.replicate_to)


async def _amain(args: argparse.Namespace) -> int:
    profiler = None
    if args.profile:
        import cProfile
        profiler = cProfile.Profile()
        profiler.enable()
    service = make_service(args)
    await service.start()
    if not args.quiet:
        where = []
        if service.bound_port is not None:
            where.append(f"tcp://{args.host}:{service.bound_port}")
        if args.unix:
            where.append(f"unix://{args.unix}")
        print(f"terpd serving on {' and '.join(where)} "
              f"(session EW budget {args.session_ew_ms}ms, "
              f"sweep every {args.sweep_period_ms}ms)", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:   # non-Unix event loops
            pass
    try:
        await stop.wait()
    finally:
        await service.stop()
        if profiler is not None:
            profiler.disable()
            profiler.dump_stats(args.profile)
            if not args.quiet:
                print(f"terpd profile written to {args.profile}",
                      flush=True)
        if args.metrics_dump:
            dump = json.dumps(service.dump_observability(), indent=2,
                              default=str)
            if args.metrics_dump == "-":
                print(dump, flush=True)
            else:
                with open(args.metrics_dump, "w",
                          encoding="utf-8") as fh:
                    fh.write(dump + "\n")
        if not args.quiet:
            print("terpd final metrics:", flush=True)
            print(json.dumps(service.metrics.to_dict(), indent=2),
                  flush=True)
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
