"""The terpd wire protocol: length-prefixed JSON frames.

A frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  One frame carries either a single request (a
JSON object) or a *batch* (a JSON array of requests); the response
frame mirrors the shape — object for object, array for array, in
order.  Clients may also *pipeline*: send many single-request frames
without waiting, then collect the responses, which the server returns
in request order per connection.

Request::

    {"id": 7, "op": "attach", "args": {"name": "mydata", "access": "rw"}}

Success response::

    {"id": 7, "ok": true, "result": {...}, "events": [...]}

Error response::

    {"id": 7, "ok": false, "error": {"kind": "PmoError", "message": "..."}}

``events`` is only present when the session has pending out-of-band
notifications — today the only kind is ``forced-detach``, emitted when
the sweeper closed one of the session's exposure windows by force.

Protocol v1 carries binary payloads (PMO data) base64-encoded inside
the JSON body; OIDs travel as their packed 64-bit integer
(:meth:`repro.pmo.object_id.Oid.pack`).

**Protocol v2 — the binary fast path.**  Negotiated in ``hello``
(``min(client, server)``; a client that omits ``version`` is v1).  A
v2 frame may append a *binary sidecar* after the JSON body::

    u32be (SIDECAR_FLAG | body_len) | body | u32be sidecar_len | sidecar

The top bit of the length word marks the sidecar's presence — legal
because ``MAX_FRAME_BYTES`` is far below 2**31, so a v1 endpoint that
receives a flagged length sees an impossible frame size and raises
:class:`WireError` immediately instead of desyncing or hanging.  JSON
marks each binary value with ``{"bin": <len>}`` in place of the base64
string; consumers take ``len`` bytes off the sidecar in request (or
response) order via :class:`BinReader`.  A batch frame has one
combined sidecar: the concatenation of its items' chunks, in item
order.
"""

from __future__ import annotations

import asyncio
import base64
import json
import socket
import struct
from typing import Any, Dict, List, Optional, Tuple

from repro.core.errors import TerpError

#: Frame header: payload length, 4-byte big-endian unsigned.  The same
#: struct frames the sidecar length word.
HEADER = struct.Struct(">I")
#: Upper bound on a single frame, a sanity guard against a desynced or
#: hostile peer streaming garbage lengths (16 MiB fits any sane batch).
MAX_FRAME_BYTES = 16 * 1024 * 1024
#: Upper bound on a frame's binary sidecar (a batch of large reads).
MAX_SIDECAR_BYTES = 64 * 1024 * 1024
#: The legacy JSON-only protocol revision.
PROTOCOL_V1 = 1
#: Current protocol revision, negotiated in ``hello``.
PROTOCOL_VERSION = 2
#: Top bit of the length word: a binary sidecar follows the body.
SIDECAR_FLAG = 0x80000000
#: Mask recovering the JSON body length from a flagged length word.
LEN_MASK = 0x7FFFFFFF

_SEPARATORS = (",", ":")


class WireError(TerpError):
    """Malformed frame, oversized frame, or truncated stream."""


# -- framing ----------------------------------------------------------------

def encode_body(payload: Any) -> bytes:
    """Serialize a request/response (or batch) to JSON body bytes.

    A batch (list) is sized incrementally: each item is encoded once
    and the running total is checked against ``MAX_FRAME_BYTES``
    *before* the full body is joined, so an oversized batch fails fast
    without materializing the whole frame.  Items that are already
    ``bytes`` are treated as pre-encoded JSON and spliced in as-is —
    the batch response path uses this to encode each response exactly
    once.
    """
    if isinstance(payload, list):
        parts: List[bytes] = []
        total = 2                      # the enclosing brackets
        for item in payload:
            part = item if type(item) is bytes else json.dumps(
                item, separators=_SEPARATORS).encode("utf-8")
            total += len(part) + 1     # item + separating comma
            if total - 1 > MAX_FRAME_BYTES:
                raise WireError(
                    f"batch frame exceeds {MAX_FRAME_BYTES} bytes "
                    f"after {len(parts)} of {len(payload)} items")
            parts.append(part)
        return b"[" + b",".join(parts) + b"]"
    body = json.dumps(payload, separators=_SEPARATORS).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(body)} bytes exceeds "
                        f"{MAX_FRAME_BYTES}")
    return body


def frame_from_body(body: bytes,
                    sidecar: Optional[bytes] = None) -> bytes:
    """Wrap pre-encoded body bytes (and optional sidecar) in a frame."""
    if not sidecar:
        return HEADER.pack(len(body)) + body
    if len(sidecar) > MAX_SIDECAR_BYTES:
        raise WireError(f"sidecar of {len(sidecar)} bytes exceeds "
                        f"{MAX_SIDECAR_BYTES}")
    return b"".join((HEADER.pack(len(body) | SIDECAR_FLAG), body,
                     HEADER.pack(len(sidecar)), sidecar))


def encode_frame(payload: Any,
                 sidecar: Optional[bytes] = None) -> bytes:
    """Serialize one request/response (or batch) into a wire frame."""
    return frame_from_body(encode_body(payload), sidecar)


def decode_frame(body: bytes) -> Any:
    """Parse a frame body (the bytes after the length header)."""
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable frame: {exc}") from None


async def read_frame_ex(reader: asyncio.StreamReader
                        ) -> Optional[Tuple[Any, bytes]]:
    """Read one frame + sidecar from an asyncio stream.

    Returns ``(payload, sidecar)`` — ``sidecar`` is ``b""`` for a
    plain v1 frame — or ``None`` on clean EOF.  A stream that ends
    mid-header, mid-body, or mid-sidecar raises :class:`WireError`:
    truncation is always a typed error, never a hang.
    """
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WireError("stream truncated mid-header") from None
    (word,) = HEADER.unpack(header)
    length = word & LEN_MASK
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise WireError("stream truncated mid-frame") from None
    sidecar = b""
    if word & SIDECAR_FLAG:
        try:
            side_head = await reader.readexactly(HEADER.size)
            (side_len,) = HEADER.unpack(side_head)
            if side_len > MAX_SIDECAR_BYTES:
                raise WireError(f"sidecar length {side_len} exceeds "
                                f"{MAX_SIDECAR_BYTES}")
            sidecar = await reader.readexactly(side_len)
        except asyncio.IncompleteReadError:
            raise WireError("stream truncated mid-sidecar") from None
    return decode_frame(body), sidecar


async def read_frame_raw(reader: asyncio.StreamReader
                         ) -> Optional[Tuple[bytes, bytes]]:
    """Read one frame but leave the JSON body *undecoded*.

    Returns ``(body_bytes, sidecar_bytes)`` or ``None`` on clean EOF.
    The cluster router's relay path uses this: a response from the
    owning shard is forwarded to the client byte-for-byte, paying no
    decode/re-encode on the fast path.
    """
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WireError("stream truncated mid-header") from None
    (word,) = HEADER.unpack(header)
    length = word & LEN_MASK
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise WireError("stream truncated mid-frame") from None
    sidecar = b""
    if word & SIDECAR_FLAG:
        try:
            side_head = await reader.readexactly(HEADER.size)
            (side_len,) = HEADER.unpack(side_head)
            if side_len > MAX_SIDECAR_BYTES:
                raise WireError(f"sidecar length {side_len} exceeds "
                                f"{MAX_SIDECAR_BYTES}")
            sidecar = await reader.readexactly(side_len)
        except asyncio.IncompleteReadError:
            raise WireError("stream truncated mid-sidecar") from None
    return body, sidecar


async def read_frame(reader: asyncio.StreamReader) -> Optional[Any]:
    """Read one v1 frame from an asyncio stream; None on clean EOF."""
    got = await read_frame_ex(reader)
    if got is None:
        return None
    payload, sidecar = got
    if sidecar:
        raise WireError("unexpected binary sidecar on a v1 endpoint")
    return payload


async def write_frame(writer: asyncio.StreamWriter, payload: Any,
                      sidecar: Optional[bytes] = None) -> None:
    writer.write(encode_frame(payload, sidecar))
    await writer.drain()


def recv_frame_ex(sock: socket.socket
                  ) -> Optional[Tuple[Any, bytes]]:
    """Blocking-socket counterpart of :func:`read_frame_ex`."""
    header = _recv_exactly(sock, HEADER.size, eof_ok=True)
    if header is None:
        return None
    (word,) = HEADER.unpack(header)
    length = word & LEN_MASK
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    body = _recv_exactly(sock, length, eof_ok=False)
    sidecar = b""
    if word & SIDECAR_FLAG:
        side_head = _recv_exactly(sock, HEADER.size, eof_ok=False)
        (side_len,) = HEADER.unpack(side_head)
        if side_len > MAX_SIDECAR_BYTES:
            raise WireError(f"sidecar length {side_len} exceeds "
                            f"{MAX_SIDECAR_BYTES}")
        sidecar = _recv_exactly(sock, side_len, eof_ok=False) or b""
    return decode_frame(body), sidecar


def recv_frame(sock: socket.socket) -> Optional[Any]:
    """Blocking-socket counterpart of :func:`read_frame`."""
    got = recv_frame_ex(sock)
    if got is None:
        return None
    payload, sidecar = got
    if sidecar:
        raise WireError("unexpected binary sidecar on a v1 endpoint")
    return payload


def send_frame(sock: socket.socket, payload: Any,
               sidecar: Optional[bytes] = None) -> None:
    sock.sendall(encode_frame(payload, sidecar))


def _recv_exactly(sock: socket.socket, n: int, *,
                  eof_ok: bool) -> Optional[bytes]:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and remaining == n:
                return None
            raise WireError("stream truncated")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# -- sidecar plumbing --------------------------------------------------------

class BinReader:
    """Sequential, bounds-checked cursor over a frame's sidecar.

    Requests (or responses) consume their binary chunks in frame
    order; an underrun — a ``{"bin": n}`` marker claiming more bytes
    than the sidecar holds — is a typed :class:`WireError`.
    """

    __slots__ = ("_buf", "_pos", "_size")

    def __init__(self, buf: bytes) -> None:
        self._buf = buf
        self._pos = 0
        self._size = len(buf)

    def take(self, n: int) -> bytes:
        pos = self._pos
        if n < 0 or pos + n > self._size:
            raise WireError(f"sidecar underrun: need {n} bytes at "
                            f"offset {pos} of {self._size}")
        self._pos = pos + n
        return self._buf[pos:pos + n]

    @property
    def remaining(self) -> int:
        return self._size - self._pos


def absorb_sidecar(payload: Any, sidecar: bytes) -> Any:
    """Fold a response frame's sidecar back into its results.

    Every result carrying a ``{"bin": n}`` marker gets its raw bytes
    under ``"data"`` instead, consumed from the sidecar in response
    order — after this, a v2 response looks like a v1 response except
    ``"data"`` holds ``bytes`` rather than base64 text.
    """
    bins = BinReader(sidecar)
    if isinstance(payload, list):
        for one in payload:
            _absorb_one(one, bins)
    else:
        _absorb_one(payload, bins)
    return payload


def _absorb_one(response: Any, bins: BinReader) -> None:
    if not isinstance(response, dict):
        return
    result = response.get("result")
    if isinstance(result, dict) and "bin" in result:
        n = result.pop("bin")
        result["data"] = bins.take(int(n))


# -- request / response shapes ----------------------------------------------

def request(rid: int, op: str, args: Optional[Dict[str, Any]] = None) -> Dict:
    return {"id": rid, "op": op, "args": args or {}}


def ok_response(rid: Optional[int], result: Any,
                events: Optional[List[Dict]] = None) -> Dict:
    response: Dict[str, Any] = {"id": rid, "ok": True, "result": result}
    if events:
        response["events"] = events
    return response


def error_response(rid: Optional[int], kind: str, message: str,
                   events: Optional[List[Dict]] = None) -> Dict:
    response: Dict[str, Any] = {
        "id": rid, "ok": False,
        "error": {"kind": kind, "message": message}}
    if events:
        response["events"] = events
    return response


# -- payload encoding helpers ------------------------------------------------

def encode_bytes(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def decode_bytes(text: str) -> bytes:
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except Exception as exc:
        raise WireError(f"bad base64 payload: {exc}") from None
