"""The terpd wire protocol: length-prefixed JSON frames.

A frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  One frame carries either a single request (a
JSON object) or a *batch* (a JSON array of requests); the response
frame mirrors the shape — object for object, array for array, in
order.  Clients may also *pipeline*: send many single-request frames
without waiting, then collect the responses, which the server returns
in request order per connection.

Request::

    {"id": 7, "op": "attach", "args": {"name": "mydata", "access": "rw"}}

Success response::

    {"id": 7, "ok": true, "result": {...}, "events": [...]}

Error response::

    {"id": 7, "ok": false, "error": {"kind": "PmoError", "message": "..."}}

``events`` is only present when the session has pending out-of-band
notifications — today the only kind is ``forced-detach``, emitted when
the sweeper closed one of the session's exposure windows by force.

Binary payloads (PMO data) travel base64-encoded; OIDs travel as their
packed 64-bit integer (:meth:`repro.pmo.object_id.Oid.pack`).
"""

from __future__ import annotations

import asyncio
import base64
import json
import socket
import struct
from typing import Any, Dict, List, Optional

from repro.core.errors import TerpError

#: Frame header: payload length, 4-byte big-endian unsigned.
HEADER = struct.Struct(">I")
#: Upper bound on a single frame, a sanity guard against a desynced or
#: hostile peer streaming garbage lengths (16 MiB fits any sane batch).
MAX_FRAME_BYTES = 16 * 1024 * 1024
#: Protocol revision, negotiated in ``hello``.
PROTOCOL_VERSION = 1


class WireError(TerpError):
    """Malformed frame, oversized frame, or truncated stream."""


# -- framing ----------------------------------------------------------------

def encode_frame(payload: Any) -> bytes:
    """Serialize one request/response (or batch) into a wire frame."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(body)} bytes exceeds "
                        f"{MAX_FRAME_BYTES}")
    return HEADER.pack(len(body)) + body


def decode_frame(body: bytes) -> Any:
    """Parse a frame body (the bytes after the length header)."""
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable frame: {exc}") from None


async def read_frame(reader: asyncio.StreamReader) -> Optional[Any]:
    """Read one frame from an asyncio stream; None on clean EOF."""
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WireError("stream truncated mid-header") from None
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise WireError("stream truncated mid-frame") from None
    return decode_frame(body)


async def write_frame(writer: asyncio.StreamWriter, payload: Any) -> None:
    writer.write(encode_frame(payload))
    await writer.drain()


def recv_frame(sock: socket.socket) -> Optional[Any]:
    """Blocking-socket counterpart of :func:`read_frame`."""
    header = _recv_exactly(sock, HEADER.size, eof_ok=True)
    if header is None:
        return None
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    body = _recv_exactly(sock, length, eof_ok=False)
    return decode_frame(body)


def send_frame(sock: socket.socket, payload: Any) -> None:
    sock.sendall(encode_frame(payload))


def _recv_exactly(sock: socket.socket, n: int, *,
                  eof_ok: bool) -> Optional[bytes]:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and remaining == n:
                return None
            raise WireError("stream truncated")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# -- request / response shapes ----------------------------------------------

def request(rid: int, op: str, args: Optional[Dict[str, Any]] = None) -> Dict:
    return {"id": rid, "op": op, "args": args or {}}


def ok_response(rid: Optional[int], result: Any,
                events: Optional[List[Dict]] = None) -> Dict:
    response: Dict[str, Any] = {"id": rid, "ok": True, "result": result}
    if events:
        response["events"] = events
    return response


def error_response(rid: Optional[int], kind: str, message: str,
                   events: Optional[List[Dict]] = None) -> Dict:
    response: Dict[str, Any] = {
        "id": rid, "ok": False,
        "error": {"kind": kind, "message": message}}
    if events:
        response["events"] = events
    return response


# -- payload encoding helpers ------------------------------------------------

def encode_bytes(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def decode_bytes(text: str) -> bytes:
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except Exception as exc:
        raise WireError(f"bad base64 payload: {exc}") from None
