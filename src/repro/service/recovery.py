"""terpd warm restart: the session journal and the recovery manager.

A PMO "lives beyond process termination" (Section II) — and with the
durable pool backend it genuinely does.  But temporal protection is a
property of *time*, not of process lifetime: a tenant's exposure
window does not close just because the daemon hosting it died.  This
module makes the exposure clock count through the outage:

* :class:`SessionJournal` — an append-only JSONL file in the pool
  directory recording the service's wall-clock **epoch**, every
  session's identity (id, user, resume token, EW budget), and every
  attach/detach.  Appends are flushed immediately, so the journal
  survives ``kill -9`` (the OS page cache outlives the process; media
  power-loss is the durable store's double-write problem, not the
  journal's).
* :class:`RecoveryManager` — at restart with the same ``--pool-dir``:
  rescans the pool (CRC verification, journal repair, redo-log replay,
  quarantine), replays the session journal to rebuild the audit
  timeline with the *original* timestamps, restores surviving sessions
  in the lingering state (same resume token, so a client that outlived
  the crash rebinds with the token it already holds), and — before the
  first request is served — force-detaches every holding that was open
  when the daemon died.  A holding whose EW budget elapsed during the
  outage is attributed ``EW budget elapsed during daemon outage`` on
  the timeline; the invariant checker's I6 verifies exactly this.

Because the service clock with a pool directory is
``time.time_ns() - epoch_wall_ns`` (epoch persisted on first start),
timestamps from before the crash and after the restart live on one
unbroken axis: the outage is *visible* as elapsed exposure, never
silently forgiven.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

if TYPE_CHECKING:
    from repro.service.server import TerpService

JOURNAL_NAME = "sessions.journal"


class SessionJournal:
    """Append-only JSONL record of session identity and exposure."""

    def __init__(self, pool_dir: os.PathLike) -> None:
        self.path = Path(pool_dir) / JOURNAL_NAME
        self._fh = None
        #: optional replication mirror: every appended record is also
        #: handed here (the shipper's ``ship_journal``), so a promoted
        #: standby recovers sessions/epoch exactly as a warm restart
        #: on the primary's own directory would.
        self.mirror: Optional[Any] = None

    # -- writing -----------------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()
        if self.mirror is not None:
            self.mirror(record)

    def record_epoch(self, wall_ns: int) -> None:
        self._append({"rec": "epoch", "wall_ns": wall_ns})

    def record_session(self, *, sid: int, user: str, token: str,
                       budget_ns: int, at_ns: int) -> None:
        self._append({"rec": "session", "sid": sid, "user": user,
                      "token": token, "budget_ns": budget_ns,
                      "at_ns": at_ns})

    def record_attach(self, *, sid: int, pmo_id: int, pmo: str,
                      at_ns: int) -> None:
        self._append({"rec": "attach", "sid": sid, "pmo_id": pmo_id,
                      "pmo": pmo, "at_ns": at_ns})

    def record_detach(self, *, sid: int, pmo_id: int, pmo: str,
                      at_ns: int, forced: bool = False,
                      reason: str = "") -> None:
        self._append({"rec": "detach", "sid": sid, "pmo_id": pmo_id,
                      "pmo": pmo, "at_ns": at_ns, "forced": forced,
                      "reason": reason})

    def record_close(self, *, sid: int, at_ns: int) -> None:
        self._append({"rec": "close", "sid": sid, "at_ns": at_ns})

    def record_restart(self, *, at_ns: int, downtime_ns: int) -> None:
        self._append({"rec": "restart", "at_ns": at_ns,
                      "downtime_ns": downtime_ns})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- reading -----------------------------------------------------------

    def read_records(self) -> List[Dict[str, Any]]:
        """Every parseable record, in append order.

        A torn final line (the crash interrupted an append) is
        discarded, mirroring the redo log's torn-tail rule.
        """
        try:
            raw = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return []
        records = []
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "rec" in record:
                records.append(record)
        return records

    def compact(self, records: List[Dict[str, Any]]) -> None:
        """Rewrite the journal to exactly ``records`` (post-recovery:
        the epoch, the restart marker, and surviving sessions — the
        replayed history has been folded into the audit timeline)."""
        self.close()
        tmp = self.path.with_suffix(".journal.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record, separators=(",", ":"))
                         + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)


@dataclass
class _JournaledSession:
    sid: int
    user: str
    token: str
    budget_ns: int
    opened_at_ns: int
    #: pmo_id -> (attach at_ns, pmo name) for still-open holdings
    holdings: Dict[int, Tuple[int, str]] = field(default_factory=dict)


@dataclass
class RecoveryReport:
    """What one warm restart found and did."""

    epoch_wall_ns: int = 0
    downtime_ns: int = 0
    pmos_loaded: int = 0
    pmos_quarantined: List[Tuple[str, str]] = field(
        default_factory=list)
    pmos_denied: List[Tuple[str, str]] = field(default_factory=list)
    pages_repaired: int = 0
    sessions_restored: int = 0
    forced_detaches: int = 0
    overdue_detaches: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "epoch_wall_ns": self.epoch_wall_ns,
            "downtime_ns": self.downtime_ns,
            "pmos_loaded": self.pmos_loaded,
            "pmos_quarantined": list(self.pmos_quarantined),
            "pmos_denied": list(self.pmos_denied),
            "pages_repaired": self.pages_repaired,
            "sessions_restored": self.sessions_restored,
            "forced_detaches": self.forced_detaches,
            "overdue_detaches": self.overdue_detaches,
        }


class RecoveryManager:
    """Rebuilds a :class:`TerpService` from its pool directory."""

    def __init__(self, service: "TerpService") -> None:
        self.service = service

    def recover(self) -> RecoveryReport:
        """The warm-restart sequence; runs before any socket binds.

        1. Rescan the pool: apply double-write journals, verify CRCs,
           replay redo logs, quarantine unrepairable PMOs.
        2. Replay the session journal: adopt the persisted wall-clock
           epoch (the unbroken exposure axis), restore surviving
           sessions as *lingering* (identity + token, never access),
           and rebuild the audit timeline with original timestamps.
        3. Force-detach every holding that was open at the crash —
           overdue ones attributed to the outage — and journal it.
        4. Compact the journal to the surviving state.
        """
        svc = self.service
        report = RecoveryReport()
        self._recover_pool(report)
        records = svc.session_journal.read_records()
        epoch = next((r["wall_ns"] for r in records
                      if r["rec"] == "epoch"), None)
        first_start = epoch is None
        if first_start:
            epoch = svc.wall_clock_ns()
        svc.adopt_epoch(epoch)
        report.epoch_wall_ns = epoch
        if first_start:
            svc.session_journal.record_epoch(epoch)
            return report

        sessions = self._replay(records, report)
        now = svc.now_ns()
        last_seen = max((r.get("at_ns", 0) for r in records), default=0)
        report.downtime_ns = max(0, now - last_seen)
        svc.lib.advance_to(now)
        if svc.obs.enabled:
            svc.obs.audit.record_restart(
                now, downtime_ns=report.downtime_ns,
                sessions_restored=len(sessions))
        svc.session_journal.record_restart(
            at_ns=now, downtime_ns=report.downtime_ns)

        survivors = []
        for js in sessions.values():
            session = svc.registry.restore(
                session_id=js.sid, user=js.user,
                ew_budget_ns=js.budget_ns, resume_token=js.token,
                disconnected_at_ns=now)
            report.sessions_restored += 1
            survivors.append(js)
            # Access never survives a crash: close every window that
            # was open when the daemon died, on the unbroken clock.
            for pmo_id, (since, name) in sorted(js.holdings.items()):
                overdue = now - since >= js.budget_ns
                reason = ("EW budget elapsed during daemon outage"
                          if overdue else "daemon restart")
                if svc.obs.enabled:
                    svc.obs.audit.record_detach(
                        session.entity_id, pmo_id, name, now,
                        forced=True, reason=reason)
                session.note_forced_detach(pmo_id, name, now, reason)
                svc.session_journal.record_detach(
                    sid=js.sid, pmo_id=pmo_id, pmo=name, at_ns=now,
                    forced=True, reason=reason)
                report.forced_detaches += 1
                if overdue:
                    report.overdue_detaches += 1
        svc.metrics.note_recovery(
            sessions=report.sessions_restored,
            forced_detaches=report.forced_detaches)

        compacted: List[Dict[str, Any]] = [
            {"rec": "epoch", "wall_ns": epoch},
            {"rec": "restart", "at_ns": now,
             "downtime_ns": report.downtime_ns},
        ]
        for js in survivors:
            compacted.append({"rec": "session", "sid": js.sid,
                              "user": js.user, "token": js.token,
                              "budget_ns": js.budget_ns,
                              "at_ns": js.opened_at_ns})
        svc.session_journal.compact(compacted)
        return report

    # -- internals ---------------------------------------------------------

    def _recover_pool(self, report: RecoveryReport) -> None:
        svc = self.service
        load = svc.store.load_all()
        for pmo in load.loaded:
            svc.lib.manager.adopt(pmo)
            report.pmos_loaded += 1
        report.pages_repaired = load.pages_repaired
        report.pmos_quarantined = list(load.quarantined)
        report.pmos_denied = list(load.denied)
        now = svc.lib.clock_ns
        for name, reason in load.quarantined:
            try:
                pmo_id: Any = svc.lib.manager.lookup(name).pmo_id
            except Exception:
                pmo_id = name
            if svc.obs.enabled:
                svc.obs.audit.record_quarantine(pmo_id, name, now,
                                                reason=reason)
            svc.metrics.note_quarantine()
        for name, reason in load.denied:
            if svc.obs.enabled:
                svc.obs.audit.record_quarantine(name, name, now,
                                                reason=f"denied: "
                                                       f"{reason}")
            svc.metrics.note_quarantine()

    def _replay(self, records: List[Dict[str, Any]],
                report: RecoveryReport
                ) -> Dict[int, _JournaledSession]:
        """Fold the journal into live sessions + the audit timeline.

        Attach/detach history is re-recorded with its original
        timestamps so the restarted daemon's timeline is a superset of
        the crashed one's: the invariant checker sees one continuous
        story across the outage.
        """
        svc = self.service
        entity = svc.registry.FIRST_ENTITY_ID
        sessions: Dict[int, _JournaledSession] = {}
        for r in records:
            kind = r["rec"]
            if kind == "session":
                sessions[r["sid"]] = _JournaledSession(
                    sid=r["sid"], user=r.get("user", "root"),
                    token=r.get("token", ""),
                    budget_ns=r.get("budget_ns",
                                    svc.registry.default_ew_budget_ns),
                    opened_at_ns=r.get("at_ns", 0))
            elif kind == "attach":
                js = sessions.get(r["sid"])
                if js is None:
                    continue
                js.holdings[r["pmo_id"]] = (r["at_ns"],
                                            r.get("pmo", ""))
                if svc.obs.enabled:
                    svc.obs.audit.record_attach(
                        entity + js.sid, r["pmo_id"], r.get("pmo"),
                        r["at_ns"], reason="replayed from journal")
            elif kind == "detach":
                js = sessions.get(r["sid"])
                if js is None:
                    continue
                js.holdings.pop(r["pmo_id"], None)
                if svc.obs.enabled:
                    svc.obs.audit.record_detach(
                        entity + js.sid, r["pmo_id"], r.get("pmo"),
                        r["at_ns"], forced=bool(r.get("forced")),
                        reason=r.get("reason", "") or
                        "replayed from journal")
            elif kind == "close":
                sessions.pop(r["sid"], None)
        return sessions
