"""The exposure sweeper, split out of the daemon core.

Temporal enforcement is two-layered (see the paper's Figure 7a): the
arch engine's own sweep closes expired delayed-detach windows and
re-randomizes held PMOs, and the service layer force-detaches any PMO
a session has held past its wall-clock budget.  :class:`Sweeper` owns
the background task that drives both layers plus the linger purge for
dropped sessions, against whatever :class:`~repro.service.registry
.SessionManager` and :class:`~repro.pmo.api.PmoLibrary` it was
composed with — the standalone daemon and every cluster shard run the
identical sweeper; in a cluster each shard's sweeper owns exactly the
exposure clocks of the PMOs that shard serves.
"""

from __future__ import annotations

import asyncio
import time
from typing import TYPE_CHECKING, Callable, Optional

from repro.faults.plan import FaultPlan
from repro.obs.tracing import NULL_SPAN
from repro.pmo.api import PmoLibrary
from repro.service.metrics import ServiceMetrics
from repro.service.registry import SessionManager

if TYPE_CHECKING:
    from repro.obs import Observability


class Sweeper:
    """Periodic session-budget + engine sweep over one library."""

    def __init__(self, *, lib: PmoLibrary, sessions: SessionManager,
                 metrics: ServiceMetrics, obs: "Observability",
                 sweep_period_ns: int, session_linger_ns: int,
                 now_ns: Callable[[], int],
                 faults: Optional[FaultPlan] = None,
                 tracer=None) -> None:
        self.lib = lib
        self.sessions = sessions
        self.metrics = metrics
        self.obs = obs
        self.sweep_period_ns = sweep_period_ns
        self.session_linger_ns = session_linger_ns
        self.now_ns = now_ns
        self.faults = faults
        self.tracer = tracer

    async def loop(self) -> None:
        """The background task body: one pass per period, forever."""
        period_s = self.sweep_period_ns / 1e9
        while True:
            await asyncio.sleep(period_s)
            self.run_sweep()

    def run_sweep(self) -> int:
        """One sweeper pass; returns the number of forced detaches.

        Callable directly (tests, embedders); the background task calls
        it on every period.  Two phases under the library lock:
        session-budget enforcement, then the engine's own sweep.
        """
        t_wall = time.perf_counter_ns()
        tracer = self.tracer
        registry = self.sessions.registry
        if self.faults is not None:
            rule = self.faults.fire("engine.sweep_stall")
            if rule is not None:
                # A stalled sweeper skips this pass entirely (both the
                # session-budget phase and the engine sweep).  Expired
                # windows stay open until the next pass: enforcement is
                # delayed by one period, never lost — the invariant
                # checker's slack budgets for exactly this.
                if rule.delay_ns > 0:
                    time.sleep(rule.delay_ns / 1e9)
                return 0
        forced = 0
        with self.lib.lock:
            now = self.lib.advance_to(self.now_ns())
            with (tracer.span("terpd.sweep") if tracer is not None
                  else NULL_SPAN) as span:
                for session in registry:
                    for pmo_id in session.expired(now):
                        self.sessions.force_detach(session, pmo_id, now)
                        forced += 1
                engine_closed = len(self.lib.runtime.sweep(now))
                span.set("forced", forced)
                span.set("engine_closed", engine_closed)
            for session in registry.lingering():
                # Dropped sessions hold no windows (teardown released
                # them); after the linger grace their identity and
                # replay cache go too.
                if session.linger_expired(now, self.session_linger_ns):
                    registry.remove(session.session_id)
                    self.sessions.journal_close(session, now)
            if self.obs.enabled and (forced or engine_closed):
                self.obs.audit.record_sweep(
                    now, closed=forced + engine_closed,
                    duration_ns=time.perf_counter_ns() - t_wall)
        self.metrics.note_sweep(time.perf_counter_ns() - t_wall)
        return forced
