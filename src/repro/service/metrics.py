"""Service observability: registry-backed counters and latencies.

Two granularities, mirroring what an operator of a multi-tenant PMO
daemon needs:

* :class:`ServiceMetrics` — daemon-wide, every series living in a
  :class:`~repro.obs.registry.MetricsRegistry` (so the same numbers
  are available as the ``metrics`` op's JSON payload, the
  ``--metrics-dump`` document, and Prometheus text exposition):
  request totals per op, attach/forced-detach tallies, sweep runs, and
  request/sweep latency histograms with reservoir percentiles.
* :class:`SessionMetrics` — per session: request count, bytes moved,
  attaches, forced detaches, errors.  Deliberately plain counters —
  sessions are ephemeral and numerous, so they stay out of the
  registry's long-lived series namespace.

:class:`LatencyRecorder` is the historical name of the seeded
reservoir now provided by :class:`repro.obs.registry.Reservoir`; it
remains as a thin subclass with nanosecond-flavoured accessors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.obs.registry import (
    Counter, Histogram, MetricsRegistry, Reservoir)

#: Request/sweep latency buckets (ns): 1us .. 1s.
LATENCY_BUCKETS_NS = (
    1_000, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 5_000_000, 10_000_000, 50_000_000, 100_000_000,
    500_000_000, 1_000_000_000,
)


class LatencyRecorder(Reservoir):
    """Reservoir-sampled latency population with percentile queries."""

    @property
    def total_ns(self) -> int:
        return self.total

    @property
    def max_ns(self) -> int:
        return self.max_value

    @property
    def mean_ns(self) -> float:
        return self.mean

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_us": self.mean / 1e3,
            "p50_us": (self.percentile(50) or 0) / 1e3,
            "p99_us": (self.percentile(99) or 0) / 1e3,
            "max_us": self.max_value / 1e3,
        }


def _histogram_latency_dict(hist: Histogram) -> Dict[str, float]:
    """A histogram's latency summary in the wire-report shape (us)."""
    return {
        "count": hist.count,
        "mean_us": hist.mean / 1e3,
        "p50_us": (hist.percentile(50) or 0) / 1e3,
        "p99_us": (hist.percentile(99) or 0) / 1e3,
        "max_us": hist.max_value / 1e3,
    }


@dataclass
class SessionMetrics:
    """One session's share of the daemon's work."""

    requests: int = 0
    errors: int = 0
    attaches: int = 0
    detaches: int = 0
    forced_detaches: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "attaches": self.attaches,
            "detaches": self.detaches,
            "forced_detaches": self.forced_detaches,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }


class ServiceMetrics:
    """Daemon-wide series, the ``metrics`` op's payload.

    Every counter and histogram is an instrument in ``registry``;
    the attribute-style accessors (``metrics.requests`` …) read the
    live registry values, and ``to_dict()`` keeps the wire shape the
    clients, tests, and the throughput bench already consume.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None
                 ) -> None:
        self.registry = (registry if registry is not None
                         else MetricsRegistry())
        reg = self.registry
        self._requests = reg.counter(
            "terpd_requests_total", "requests dispatched")
        self._errors = reg.counter(
            "terpd_request_errors_total", "requests answered with an "
            "error")
        self._batches = reg.counter(
            "terpd_batches_total", "array frames received")
        self._sessions_opened = reg.counter(
            "terpd_sessions_opened_total", "sessions bound by hello")
        self._sessions_closed = reg.counter(
            "terpd_sessions_closed_total", "sessions ended")
        self._attaches = reg.counter(
            "terpd_attaches_total", "successful attach ops")
        self._detaches = reg.counter(
            "terpd_detaches_total", "successful detach ops")
        self._forced_detaches = reg.counter(
            "terpd_forced_detaches_total", "windows closed by the "
            "sweeper or the arch engine on a session's behalf")
        self._disconnect_detaches = reg.counter(
            "terpd_disconnect_detaches_total", "holdings released on "
            "connection teardown")
        self._sweep_runs = reg.counter(
            "terpd_sweep_runs_total", "sweeper passes")
        self._faults_injected = reg.counter(
            "terpd_faults_injected_total", "fault-injection rules "
            "fired across every site")
        self._sessions_resumed = reg.counter(
            "terpd_sessions_resumed_total", "sessions rebound after a "
            "connection drop")
        self._replays_served = reg.counter(
            "terpd_replays_served_total", "responses served from the "
            "idempotent replay cache")
        self._scrub_pages_verified = reg.counter(
            "terpd_scrub_pages_verified_total", "at-rest pages CRC-"
            "verified by the sweep-integrated scrubber")
        self._scrub_pages_repaired = reg.counter(
            "terpd_scrub_pages_repaired_total", "pages repaired from "
            "the double-write journal (or the live resident copy)")
        self._pmos_quarantined = reg.counter(
            "terpd_pmos_quarantined_total", "PMOs quarantined after an "
            "unrepairable integrity failure")
        self._restarts_recovered = reg.counter(
            "terpd_restarts_recovered_total", "warm restarts that "
            "replayed the pool directory and session journal")
        self._sessions_recovered = reg.counter(
            "terpd_sessions_recovered_total", "sessions restored from "
            "the session journal at warm restart")
        self._recovery_forced_detaches = reg.counter(
            "terpd_recovery_forced_detaches_total", "holdings force-"
            "detached at recovery (EW elapsed during the outage)")
        self._batches_shipped = reg.counter(
            "terpd_repl_batches_shipped_total", "group-commit batches "
            "streamed to the standby")
        self._batches_ship_acked = reg.counter(
            "terpd_repl_batches_acked_total", "shipped batches the "
            "standby acked as fsynced")
        self._batches_ship_dropped = reg.counter(
            "terpd_repl_batches_dropped_total", "batches not "
            "replicated (standby absent, link down, or ack timeout)")
        self._replication_lag = reg.gauge(
            "terpd_repl_lag_batches", "batches shipped but not yet "
            "acked by the standby")
        self._op_counters: Dict[str, Counter] = {}
        self._fault_site_counters: Dict[str, Counter] = {}
        self.request_latency = reg.histogram(
            "terpd_request_latency_ns", "request service time",
            buckets=LATENCY_BUCKETS_NS, reservoir_capacity=8192, seed=7)
        self.sweep_latency = reg.histogram(
            "terpd_sweep_latency_ns", "sweeper pass duration",
            buckets=LATENCY_BUCKETS_NS, reservoir_capacity=2048,
            seed=11)
        self.ship_ack_latency = reg.histogram(
            "terpd_repl_ack_latency_ns", "ship-to-ack round trip",
            buckets=LATENCY_BUCKETS_NS, reservoir_capacity=4096,
            seed=13)

    # -- write side -------------------------------------------------------

    def note_request(self, op: str, latency_ns: int, *,
                     ok: bool) -> None:
        self._requests.inc()
        if not ok:
            self._errors.inc()
        counter = self._op_counters.get(op)
        if counter is None:
            counter = self.registry.counter(
                "terpd_op_total", "requests per op", labels={"op": op})
            self._op_counters[op] = counter
        counter.inc()
        self.request_latency.observe(latency_ns)

    def note_sweep(self, latency_ns: int) -> None:
        self._sweep_runs.inc()
        self.sweep_latency.observe(latency_ns)

    def note_batch(self) -> None:
        self._batches.inc()

    def note_session_opened(self) -> None:
        self._sessions_opened.inc()

    def note_session_closed(self) -> None:
        self._sessions_closed.inc()

    def note_attach(self) -> None:
        self._attaches.inc()

    def note_detach(self) -> None:
        self._detaches.inc()

    def note_forced_detach(self) -> None:
        self._forced_detaches.inc()

    def note_disconnect_detach(self) -> None:
        self._disconnect_detaches.inc()

    def note_fault(self, site: str) -> None:
        self._faults_injected.inc()
        counter = self._fault_site_counters.get(site)
        if counter is None:
            counter = self.registry.counter(
                "terpd_fault_site_total", "injections per site",
                labels={"site": site})
            self._fault_site_counters[site] = counter
        counter.inc()

    def note_session_resumed(self) -> None:
        self._sessions_resumed.inc()

    def note_replay_served(self) -> None:
        self._replays_served.inc()

    def note_scrub(self, *, verified: int, repaired: int,
                   quarantined: int) -> None:
        self._scrub_pages_verified.inc(verified)
        self._scrub_pages_repaired.inc(repaired)
        self._pmos_quarantined.inc(quarantined)

    def note_quarantine(self, count: int = 1) -> None:
        self._pmos_quarantined.inc(count)

    def note_recovery(self, *, sessions: int,
                      forced_detaches: int) -> None:
        self._restarts_recovered.inc()
        self._sessions_recovered.inc(sessions)
        self._recovery_forced_detaches.inc(forced_detaches)

    def note_ship(self) -> None:
        self._batches_shipped.inc()

    def note_ship_ack(self, latency_ns: int) -> None:
        self._batches_ship_acked.inc()
        self.ship_ack_latency.observe(latency_ns)

    def note_ship_drop(self) -> None:
        self._batches_ship_dropped.inc()

    def set_replication_lag(self, batches: int) -> None:
        self._replication_lag.set(batches)

    # -- read side --------------------------------------------------------

    @property
    def requests(self) -> int:
        return self._requests.value

    @property
    def errors(self) -> int:
        return self._errors.value

    @property
    def batches(self) -> int:
        return self._batches.value

    @property
    def sessions_opened(self) -> int:
        return self._sessions_opened.value

    @property
    def sessions_closed(self) -> int:
        return self._sessions_closed.value

    @property
    def attaches(self) -> int:
        return self._attaches.value

    @property
    def detaches(self) -> int:
        return self._detaches.value

    @property
    def forced_detaches(self) -> int:
        return self._forced_detaches.value

    @property
    def disconnect_detaches(self) -> int:
        return self._disconnect_detaches.value

    @property
    def sweep_runs(self) -> int:
        return self._sweep_runs.value

    @property
    def faults_injected(self) -> int:
        return self._faults_injected.value

    @property
    def sessions_resumed(self) -> int:
        return self._sessions_resumed.value

    @property
    def replays_served(self) -> int:
        return self._replays_served.value

    @property
    def scrub_pages_verified(self) -> int:
        return self._scrub_pages_verified.value

    @property
    def scrub_pages_repaired(self) -> int:
        return self._scrub_pages_repaired.value

    @property
    def pmos_quarantined(self) -> int:
        return self._pmos_quarantined.value

    @property
    def restarts_recovered(self) -> int:
        return self._restarts_recovered.value

    @property
    def sessions_recovered(self) -> int:
        return self._sessions_recovered.value

    @property
    def recovery_forced_detaches(self) -> int:
        return self._recovery_forced_detaches.value

    @property
    def batches_shipped(self) -> int:
        return self._batches_shipped.value

    @property
    def batches_ship_acked(self) -> int:
        return self._batches_ship_acked.value

    @property
    def batches_ship_dropped(self) -> int:
        return self._batches_ship_dropped.value

    @property
    def replication_lag(self) -> int:
        return int(self._replication_lag.value)

    @property
    def faults_by_site(self) -> Dict[str, int]:
        return {site: counter.value
                for site, counter in self._fault_site_counters.items()}

    @property
    def ops(self) -> Dict[str, int]:
        return {op: counter.value
                for op, counter in self._op_counters.items()}

    def to_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "batches": self.batches,
            "sessions_opened": self.sessions_opened,
            "sessions_closed": self.sessions_closed,
            "attaches": self.attaches,
            "detaches": self.detaches,
            "forced_detaches": self.forced_detaches,
            "disconnect_detaches": self.disconnect_detaches,
            "sweep_runs": self.sweep_runs,
            "faults_injected": self.faults_injected,
            "faults_by_site": self.faults_by_site,
            "sessions_resumed": self.sessions_resumed,
            "replays_served": self.replays_served,
            "scrub_pages_verified": self.scrub_pages_verified,
            "scrub_pages_repaired": self.scrub_pages_repaired,
            "pmos_quarantined": self.pmos_quarantined,
            "restarts_recovered": self.restarts_recovered,
            "sessions_recovered": self.sessions_recovered,
            "recovery_forced_detaches": self.recovery_forced_detaches,
            "repl_batches_shipped": self.batches_shipped,
            "repl_batches_acked": self.batches_ship_acked,
            "repl_batches_dropped": self.batches_ship_dropped,
            "repl_lag": self.replication_lag,
            "ops": self.ops,
            "request_latency": _histogram_latency_dict(
                self.request_latency),
            "sweep_latency": _histogram_latency_dict(
                self.sweep_latency),
        }
