"""Service observability: counters and latency percentiles.

Two granularities, mirroring what an operator of a multi-tenant PMO
daemon needs:

* :class:`ServiceMetrics` — daemon-wide: request totals per op,
  attach/forced-detach tallies, sweep runs and sweep latency, request
  latency percentiles (p50/p99).
* :class:`SessionMetrics` — per session: request count, bytes moved,
  attaches, forced detaches, errors.

Latency percentiles come from a bounded reservoir
(:class:`LatencyRecorder`): the first ``capacity`` samples are kept
verbatim; after that, samples overwrite uniformly-random slots so the
reservoir stays an unbiased sample of the whole run without unbounded
memory.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class LatencyRecorder:
    """Reservoir-sampled latency population with percentile queries."""

    def __init__(self, capacity: int = 8192, *, seed: int = 2022) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.count = 0
        self.total_ns = 0
        self.max_ns = 0
        self._samples: List[int] = []
        self._rng = random.Random(seed)

    def record(self, latency_ns: int) -> None:
        self.count += 1
        self.total_ns += latency_ns
        if latency_ns > self.max_ns:
            self.max_ns = latency_ns
        if len(self._samples) < self.capacity:
            self._samples.append(latency_ns)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.capacity:
                self._samples[slot] = latency_ns

    def percentile(self, p: float) -> Optional[int]:
        """The p-th percentile (0..100) of the sampled population."""
        if not self._samples:
            return None
        if not 0 <= p <= 100:
            raise ValueError("percentile must be within [0, 100]")
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1,
                    max(0, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[index]

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_us": self.mean_ns / 1e3,
            "p50_us": (self.percentile(50) or 0) / 1e3,
            "p99_us": (self.percentile(99) or 0) / 1e3,
            "max_us": self.max_ns / 1e3,
        }


@dataclass
class SessionMetrics:
    """One session's share of the daemon's work."""

    requests: int = 0
    errors: int = 0
    attaches: int = 0
    detaches: int = 0
    forced_detaches: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "attaches": self.attaches,
            "detaches": self.detaches,
            "forced_detaches": self.forced_detaches,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }


@dataclass
class ServiceMetrics:
    """Daemon-wide counters, the ``metrics`` op's payload."""

    requests: int = 0
    errors: int = 0
    batches: int = 0
    sessions_opened: int = 0
    sessions_closed: int = 0
    attaches: int = 0
    detaches: int = 0
    forced_detaches: int = 0
    disconnect_detaches: int = 0
    sweep_runs: int = 0
    ops: Dict[str, int] = field(default_factory=dict)
    request_latency: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder(seed=7))
    sweep_latency: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder(capacity=2048, seed=11))

    def note_request(self, op: str, latency_ns: int, *,
                     ok: bool) -> None:
        self.requests += 1
        if not ok:
            self.errors += 1
        self.ops[op] = self.ops.get(op, 0) + 1
        self.request_latency.record(latency_ns)

    def note_sweep(self, latency_ns: int) -> None:
        self.sweep_runs += 1
        self.sweep_latency.record(latency_ns)

    def to_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "batches": self.batches,
            "sessions_opened": self.sessions_opened,
            "sessions_closed": self.sessions_closed,
            "attaches": self.attaches,
            "detaches": self.detaches,
            "forced_detaches": self.forced_detaches,
            "disconnect_detaches": self.disconnect_detaches,
            "sweep_runs": self.sweep_runs,
            "ops": dict(self.ops),
            "request_latency": self.request_latency.to_dict(),
            "sweep_latency": self.sweep_latency.to_dict(),
        }
